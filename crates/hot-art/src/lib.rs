//! Adaptive Radix Tree (ART) — the paper's strongest trie competitor
//! (Leis, Kemper, Neumann, ICDE 2013), reimplemented from scratch.
//!
//! A span-8 radix tree with the two classic space optimizations:
//!
//! * **adaptive node sizes** — inner nodes grow through four layouts
//!   (Node4 → Node16 → Node48 → Node256) and shrink back on deletion;
//! * **path compression** — single-child chains collapse into a per-node
//!   prefix (pessimistically materialized up to 8 bytes; longer prefixes are
//!   verified against a leaf's full key, the "hybrid" scheme of the ART
//!   paper).
//!
//! Leaves are 63-bit TIDs resolved through the shared
//! [`KeySource`], so lookups end with a full-key verification exactly like
//! HOT and the binary Patricia trie — keeping all structures comparable in
//! the Figure 8/9/11 experiments. Keys are treated as zero-padded,
//! prefix-free byte strings (same contract as the rest of the workspace).

#![deny(missing_docs)]

use hot_keys::stats::MemoryStats;
use hot_keys::{DepthStats, KeySource, PaddedKey, KEY_PAD_LEN, KEY_SCRATCH_LEN, MAX_TID};

/// Bytes of prefix stored inline per node; longer compressed paths fall back
/// to a leaf lookup for verification.
pub const MAX_INLINE_PREFIX: usize = 8;

const LEAF_BIT: u64 = 1 << 63;

/// Tagged child word: null, leaf TID (bit 63) or `*mut Node`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Child(u64);

impl Child {
    const NULL: Child = Child(0);

    #[inline]
    fn leaf(tid: u64) -> Child {
        debug_assert!(tid <= MAX_TID);
        Child(tid | LEAF_BIT)
    }

    #[inline]
    fn node(ptr: *mut Node) -> Child {
        Child(ptr as u64)
    }

    #[inline]
    fn is_null(self) -> bool {
        self.0 == 0
    }

    #[inline]
    fn is_leaf(self) -> bool {
        self.0 & LEAF_BIT != 0
    }

    #[inline]
    fn is_node(self) -> bool {
        !self.is_null() && !self.is_leaf()
    }

    #[inline]
    fn tid(self) -> u64 {
        debug_assert!(self.is_leaf());
        self.0 & !LEAF_BIT
    }

    #[inline]
    fn ptr(self) -> *mut Node {
        debug_assert!(self.is_node());
        self.0 as *mut Node
    }

    /// # Safety
    /// The child must be a node pointer created by `Box::into_raw` and
    /// still owned by the tree.
    #[inline]
    unsafe fn node_ref<'a>(self) -> &'a Node {
        // SAFETY: caller guarantees a live, tree-owned Box allocation.
        unsafe { &*self.ptr() }
    }

    /// # Safety
    /// As [`Self::node_ref`], plus exclusive access.
    #[allow(clippy::mut_from_ref)]
    #[inline]
    unsafe fn node_mut<'a>(self) -> &'a mut Node {
        // SAFETY: caller guarantees a live, tree-owned Box allocation and
        // exclusive access.
        unsafe { &mut *self.ptr() }
    }
}

/// The four adaptive inner-node layouts. The larger bodies are boxed so a
/// node's allocation size tracks its layout (the defining ART property —
/// memory adapts to the fanout), instead of every node paying for the
/// largest variant.
enum Body {
    /// Up to 4 children: parallel key/child arrays, keys sorted.
    N4 {
        len: u8,
        keys: [u8; 4],
        children: [Child; 4],
    },
    /// Up to 16 children: parallel arrays, keys sorted (SIMD-searchable).
    N16 {
        len: u8,
        keys: Box<[u8; 16]>,
        children: Box<[Child; 16]>,
    },
    /// Up to 48 children: 256-entry index into a 48-slot child array.
    N48 {
        len: u8,
        index: Box<[u8; 256]>,
        children: Box<[Child; 48]>,
    },
    /// Direct 256-slot child array.
    N256 {
        len: u16,
        children: Box<[Child; 256]>,
    },
}

const N48_EMPTY: u8 = 0xFF;

/// One inner node: compressed-path header plus the adaptive body.
struct Node {
    /// Total compressed-path length (may exceed the inline capacity).
    prefix_len: u32,
    /// First `min(prefix_len, 8)` compressed-path bytes.
    prefix: [u8; MAX_INLINE_PREFIX],
    body: Body,
}

impl Node {
    fn new_n4(prefix_src: &[u8]) -> Box<Node> {
        let mut prefix = [0u8; MAX_INLINE_PREFIX];
        let inline = prefix_src.len().min(MAX_INLINE_PREFIX);
        prefix[..inline].copy_from_slice(&prefix_src[..inline]);
        Box::new(Node {
            prefix_len: prefix_src.len() as u32,
            prefix,
            body: Body::N4 {
                len: 0,
                keys: [0; 4],
                children: [Child::NULL; 4],
            },
        })
    }

    fn heap_bytes(&self) -> usize {
        let child = std::mem::size_of::<Child>();
        let boxed = match &self.body {
            Body::N4 { .. } => 0,
            Body::N16 { .. } => 16 + 16 * child,
            Body::N48 { .. } => 256 + 48 * child,
            Body::N256 { .. } => 256 * child,
        };
        std::mem::size_of::<Node>() + boxed
    }

    fn count(&self) -> usize {
        match &self.body {
            Body::N4 { len, .. } | Body::N16 { len, .. } | Body::N48 { len, .. } => {
                *len as usize
            }
            Body::N256 { len, .. } => *len as usize,
        }
    }

    /// The child for `byte`, if any.
    #[inline]
    fn find_child(&self, byte: u8) -> Option<Child> {
        match &self.body {
            Body::N4 { len, keys, children } => keys[..*len as usize]
                .iter()
                .position(|&k| k == byte)
                .map(|i| children[i]),
            Body::N16 { len, keys, children } => {
                // Linear scan; the sorted array is small enough that the
                // branchy SSE variant gains little in Rust.
                keys[..*len as usize]
                    .iter()
                    .position(|&k| k == byte)
                    .map(|i| children[i])
            }
            Body::N48 { index, children, .. } => {
                let slot = index[byte as usize];
                (slot != N48_EMPTY).then(|| children[slot as usize])
            }
            Body::N256 { children, .. } => {
                let c = children[byte as usize];
                (!c.is_null()).then_some(c)
            }
        }
    }

    /// Mutable slot of the child for `byte`, if present.
    fn find_child_mut(&mut self, byte: u8) -> Option<&mut Child> {
        match &mut self.body {
            Body::N4 { len, keys, children } => keys[..*len as usize]
                .iter()
                .position(|&k| k == byte)
                .map(move |i| &mut children[i]),
            Body::N16 { len, keys, children } => keys[..*len as usize]
                .iter()
                .position(|&k| k == byte)
                .map(move |i| &mut children[i]),
            Body::N48 { index, children, .. } => {
                let slot = index[byte as usize];
                (slot != N48_EMPTY).then(move || &mut children[slot as usize])
            }
            Body::N256 { children, .. } => {
                let c = &mut children[byte as usize];
                (!c.is_null()).then_some(c)
            }
        }
    }

    /// Whether the node is at capacity for its current layout.
    fn is_full(&self) -> bool {
        match &self.body {
            Body::N4 { len, .. } => *len == 4,
            Body::N16 { len, .. } => *len == 16,
            Body::N48 { len, .. } => *len == 48,
            Body::N256 { .. } => false,
        }
    }

    /// Add a child under `byte`. The node must not be full and `byte` must
    /// be absent.
    fn add_child(&mut self, byte: u8, child: Child) {
        match &mut self.body {
            Body::N4 { len, keys, children } => {
                let n = *len as usize;
                let at = keys[..n].partition_point(|&k| k < byte);
                keys.copy_within(at..n, at + 1);
                children.copy_within(at..n, at + 1);
                keys[at] = byte;
                children[at] = child;
                *len += 1;
            }
            Body::N16 { len, keys, children } => {
                let n = *len as usize;
                let at = keys[..n].partition_point(|&k| k < byte);
                keys.copy_within(at..n, at + 1);
                children.copy_within(at..n, at + 1);
                keys[at] = byte;
                children[at] = child;
                *len += 1;
            }
            Body::N48 {
                len,
                index,
                children,
            } => {
                debug_assert_eq!(index[byte as usize], N48_EMPTY);
                let slot = children
                    .iter()
                    .position(|c| c.is_null())
                    .expect("node48 not full");
                children[slot] = child;
                index[byte as usize] = slot as u8;
                *len += 1;
            }
            Body::N256 { len, children } => {
                debug_assert!(children[byte as usize].is_null());
                children[byte as usize] = child;
                *len += 1;
            }
        }
    }

    /// Grow to the next layout (Node4 → Node16 → Node48 → Node256).
    #[allow(clippy::needless_range_loop)] // byte value doubles as array index
    fn grow(&mut self) {
        self.body = match &self.body {
            Body::N4 { len, keys, children } => {
                let mut nk = [0u8; 16];
                let mut nc = [Child::NULL; 16];
                nk[..4].copy_from_slice(keys);
                nc[..4].copy_from_slice(children);
                Body::N16 {
                    len: *len,
                    keys: Box::new(nk),
                    children: Box::new(nc),
                }
            }
            Body::N16 { len, keys, children } => {
                let mut index = [N48_EMPTY; 256];
                let mut nc = [Child::NULL; 48];
                for i in 0..*len as usize {
                    index[keys[i] as usize] = i as u8;
                    nc[i] = children[i];
                }
                Body::N48 {
                    len: *len,
                    index: Box::new(index),
                    children: Box::new(nc),
                }
            }
            Body::N48 {
                len,
                index,
                children,
            } => {
                let mut nc = [Child::NULL; 256];
                for byte in 0..256 {
                    let slot = index[byte];
                    if slot != N48_EMPTY {
                        nc[byte] = children[slot as usize];
                    }
                }
                Body::N256 {
                    len: *len as u16,
                    children: Box::new(nc),
                }
            }
            Body::N256 { .. } => unreachable!("Node256 never grows"),
        };
    }

    /// Remove the child under `byte` (must exist), shrinking the layout when
    /// the fill factor allows.
    fn remove_child(&mut self, byte: u8) -> Child {
        let removed;
        match &mut self.body {
            Body::N4 { len, keys, children } => {
                let n = *len as usize;
                let at = keys[..n].iter().position(|&k| k == byte).expect("present");
                removed = children[at];
                keys.copy_within(at + 1..n, at);
                children.copy_within(at + 1..n, at);
                *len -= 1;
            }
            Body::N16 { len, keys, children } => {
                let n = *len as usize;
                let at = keys[..n].iter().position(|&k| k == byte).expect("present");
                removed = children[at];
                keys.copy_within(at + 1..n, at);
                children.copy_within(at + 1..n, at);
                *len -= 1;
            }
            Body::N48 {
                len,
                index,
                children,
            } => {
                let slot = index[byte as usize];
                debug_assert_ne!(slot, N48_EMPTY);
                removed = children[slot as usize];
                children[slot as usize] = Child::NULL;
                index[byte as usize] = N48_EMPTY;
                *len -= 1;
            }
            Body::N256 { len, children } => {
                removed = children[byte as usize];
                children[byte as usize] = Child::NULL;
                *len -= 1;
            }
        }
        self.maybe_shrink();
        removed
    }

    #[allow(clippy::needless_range_loop)] // byte value doubles as array index
    fn maybe_shrink(&mut self) {
        let new_body = match &self.body {
            Body::N16 { len, keys, children } if *len <= 3 => {
                let mut nk = [0u8; 4];
                let mut nc = [Child::NULL; 4];
                nk[..*len as usize].copy_from_slice(&keys[..*len as usize]);
                nc[..*len as usize].copy_from_slice(&children[..*len as usize]);
                Some(Body::N4 {
                    len: *len,
                    keys: nk,
                    children: nc,
                })
            }
            Body::N48 {
                len,
                index,
                children,
            } if *len <= 12 => {
                let mut nk = [0u8; 16];
                let mut nc = [Child::NULL; 16];
                let mut at = 0;
                for byte in 0..256 {
                    let slot = index[byte];
                    if slot != N48_EMPTY {
                        nk[at] = byte as u8;
                        nc[at] = children[slot as usize];
                        at += 1;
                    }
                }
                Some(Body::N16 {
                    len: *len,
                    keys: Box::new(nk),
                    children: Box::new(nc),
                })
            }
            Body::N256 { len, children } if *len <= 36 => {
                let mut index = [N48_EMPTY; 256];
                let mut nc = [Child::NULL; 48];
                let mut at = 0;
                for byte in 0..256 {
                    if !children[byte].is_null() {
                        index[byte] = at as u8;
                        nc[at as usize] = children[byte];
                        at += 1;
                    }
                }
                Some(Body::N48 {
                    len: *len as u8,
                    index: Box::new(index),
                    children: Box::new(nc),
                })
            }
            _ => None,
        };
        if let Some(body) = new_body {
            self.body = body;
        }
    }

    /// Children in ascending byte order: `(byte, child)`.
    #[allow(clippy::needless_range_loop)] // byte value doubles as array index
    fn children_sorted(&self) -> Vec<(u8, Child)> {
        let mut out = Vec::with_capacity(self.count());
        match &self.body {
            Body::N4 { len, keys, children } => {
                for i in 0..*len as usize {
                    out.push((keys[i], children[i]));
                }
            }
            Body::N16 { len, keys, children } => {
                for i in 0..*len as usize {
                    out.push((keys[i], children[i]));
                }
            }
            Body::N48 { index, children, .. } => {
                for byte in 0..256usize {
                    let slot = index[byte];
                    if slot != N48_EMPTY {
                        out.push((byte as u8, children[slot as usize]));
                    }
                }
            }
            Body::N256 { children, .. } => {
                for byte in 0..256usize {
                    if !children[byte].is_null() {
                        out.push((byte as u8, children[byte]));
                    }
                }
            }
        }
        out
    }

    /// First child in byte order whose byte is `>= from`.
    fn next_child_at_or_after(&self, from: usize) -> Option<(u8, Child)> {
        match &self.body {
            Body::N4 { len, keys, children } => keys[..*len as usize]
                .iter()
                .position(|&k| k as usize >= from)
                .map(|i| (keys[i], children[i])),
            Body::N16 { len, keys, children } => keys[..*len as usize]
                .iter()
                .position(|&k| k as usize >= from)
                .map(|i| (keys[i], children[i])),
            Body::N48 { index, children, .. } => (from..256).find_map(|byte| {
                let slot = index[byte];
                (slot != N48_EMPTY).then(|| (byte as u8, children[slot as usize]))
            }),
            Body::N256 { children, .. } => (from..256).find_map(|byte| {
                let c = children[byte];
                (!c.is_null()).then_some((byte as u8, c))
            }),
        }
    }
}

/// The Adaptive Radix Tree index.
pub struct Art<S> {
    root: Child,
    source: S,
    len: usize,
    node_bytes: usize,
    node_count: usize,
}

impl<S: KeySource> Art<S> {
    /// Create an empty tree resolving keys through `source`.
    pub fn new(source: S) -> Self {
        Art {
            root: Child::NULL,
            source,
            len: 0,
            node_bytes: 0,
            node_count: 0,
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Access the key source.
    pub fn source(&self) -> &S {
        &self.source
    }

    fn alloc(&mut self, node: Box<Node>) -> Child {
        self.node_bytes += node.heap_bytes();
        self.node_count += 1;
        Child::node(Box::into_raw(node))
    }

    /// # Safety
    /// `child` must be an owned node pointer with no other references.
    unsafe fn free(&mut self, child: Child) {
        // SAFETY: caller passes the last reference to a pointer made by
        // `Box::into_raw` in `alloc`; re-boxing transfers ownership back.
        let node = unsafe { Box::from_raw(child.ptr()) };
        self.node_bytes -= node.heap_bytes();
        self.node_count -= 1;
    }

    /// Look up `key`; returns its TID if present.
    pub fn get(&self, key: &[u8]) -> Option<u64> {
        let padded = PaddedKey::from_key(key);
        let mut cur = self.root;
        let mut depth = 0usize;
        loop {
            if cur.is_null() {
                return None;
            }
            if cur.is_leaf() {
                let tid = cur.tid();
                let mut scratch = [0u8; KEY_SCRATCH_LEN];
                let stored = self.source.load_key(tid, &mut scratch);
                return (hot_bits::first_mismatch_bit(stored, key).is_none()).then_some(tid);
            }
            // SAFETY: tree-owned node pointer.
            let node = unsafe { cur.node_ref() };
            // Optimistic prefix skip: compare only the inline bytes; the
            // final leaf comparison catches false positives.
            let inline = (node.prefix_len as usize).min(MAX_INLINE_PREFIX);
            if depth + node.prefix_len as usize > KEY_PAD_LEN - 1 {
                return None;
            }
            if padded.padded()[depth..depth + inline] != node.prefix[..inline] {
                return None;
            }
            depth += node.prefix_len as usize;
            match node.find_child(padded.padded()[depth]) {
                Some(next) => {
                    cur = next;
                    depth += 1;
                }
                None => return None,
            }
        }
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.get(key).is_some()
    }

    /// Insert `key → tid` (upsert); returns the previous TID if present.
    pub fn insert(&mut self, key: &[u8], tid: u64) -> Option<u64> {
        assert!(tid <= MAX_TID, "tid exceeds MAX_TID");
        let padded = PaddedKey::from_key(key);
        if self.root.is_null() {
            self.root = Child::leaf(tid);
            self.len = 1;
            return None;
        }
        let root_slot = self.root_slot();
        let result = self.insert_rec(root_slot, &padded, 0, tid);
        if result.is_none() {
            self.len += 1;
        }
        result
    }

    /// Bulk-build the tree from key-sorted `(key, tid)` pairs (duplicate
    /// keys collapse, last write wins) in one bottom-up pass: each node's
    /// compressed path is the longest common prefix of its key run (taken
    /// from the run's first and last key — sorted input makes that the lcp
    /// of the whole run), and children partition the run by the next byte.
    /// This produces exactly the path-compressed structure incremental
    /// inserts converge to, without any transient node4→16→48→256 growth.
    ///
    /// Returns the number of distinct keys loaded.
    ///
    /// # Panics
    /// Panics if the tree is not empty or the input is not sorted
    /// ascending.
    pub fn bulk_load<K: AsRef<[u8]>>(&mut self, entries: &[(K, u64)]) -> usize {
        assert!(
            self.root.is_null() && self.len == 0,
            "bulk load requires an empty tree"
        );
        let mut keys: Vec<&[u8]> = Vec::with_capacity(entries.len());
        let mut tids: Vec<u64> = Vec::with_capacity(entries.len());
        for (key, tid) in entries {
            let key = key.as_ref();
            assert!(*tid <= MAX_TID, "tid exceeds MAX_TID");
            match keys.last() {
                Some(&prev) if prev == key => {
                    *tids.last_mut().expect("prev implies an entry") = *tid;
                    continue;
                }
                Some(&prev) => assert!(prev < key, "bulk-load input is not sorted"),
                None => {}
            }
            keys.push(key);
            tids.push(*tid);
        }
        let n = keys.len();
        self.root = match n {
            0 => Child::NULL,
            1 => Child::leaf(tids[0]),
            _ => self.bulk_rec(&keys, &tids, 0, n - 1, 0),
        };
        self.len = n;
        n
    }

    /// Build the subtree for the sorted key run `lo..=hi`, whose keys all
    /// agree on (zero-padded) bytes before `depth`.
    fn bulk_rec(&mut self, keys: &[&[u8]], tids: &[u64], lo: usize, hi: usize, depth: usize) -> Child {
        if lo == hi {
            return Child::leaf(tids[lo]);
        }
        // Longest common prefix of the run from `depth`: sorted input makes
        // the first/last pair the minimum over all pairs.
        let mut p = depth;
        while p < KEY_PAD_LEN - 1 && byte_at(keys[lo], p) == byte_at(keys[hi], p) {
            p += 1;
        }
        let prefix: Vec<u8> = (depth..p).map(|i| byte_at(keys[lo], i)).collect();
        let mut node = Node::new_n4(&prefix);
        let mut a = lo;
        while a <= hi {
            let byte = byte_at(keys[a], p);
            let mut e = a;
            while e < hi && byte_at(keys[e + 1], p) == byte {
                e += 1;
            }
            let child = self.bulk_rec(keys, tids, a, e, p + 1);
            if node.is_full() {
                node.grow();
            }
            node.add_child(byte, child);
            a = e + 1;
        }
        self.alloc(node)
    }

    fn root_slot(&mut self) -> *mut Child {
        &mut self.root
    }

    /// Recursive insert on the slot holding the current subtree. Uses a raw
    /// slot pointer because splits replace the slot's contents while the
    /// borrow checker cannot see through the tagged-pointer graph.
    fn insert_rec(&mut self, slot: *mut Child, key: &PaddedKey, depth: usize, tid: u64) -> Option<u64> {
        // SAFETY: slot points into a live node (or the root field) owned by
        // self, and we hold &mut self.
        let cur = unsafe { *slot };

        if cur.is_leaf() {
            let existing = cur.tid();
            let mut scratch = [0u8; KEY_SCRATCH_LEN];
            let stored = self.source.load_key(existing, &mut scratch);
            if hot_bits::first_mismatch_bit(stored, key.bytes()).is_none() {
                // SAFETY: as above.
                unsafe { *slot = Child::leaf(tid) };
                return Some(existing);
            }
            // Split: find the first differing byte at or after `depth`.
            let mut stored_padded = PaddedKey::from_key(stored);
            let d = mismatch_byte(stored_padded.padded(), key.padded(), depth);
            let mut node = Node::new_n4(&key.padded()[depth..d]);
            node.add_child(stored_padded.padded()[d], cur);
            node.add_child(key.padded()[d], Child::leaf(tid));
            let new_child = self.alloc(node);
            // SAFETY: as above.
            unsafe { *slot = new_child };
            stored_padded.set(&[]); // drop the large buffer eagerly
            return None;
        }

        // SAFETY: tree-owned node pointer, exclusive via &mut self.
        let node = unsafe { cur.node_mut() };
        let prefix_len = node.prefix_len as usize;
        if prefix_len > 0 {
            // Pessimistic check over the inline bytes, full check via a
            // stored leaf when the compressed path exceeds the inline cap.
            let mismatch = self.prefix_mismatch(node, key, depth);
            if mismatch < prefix_len {
                // Split the compressed path at `mismatch`.
                let full_prefix = self.full_prefix(node, depth, prefix_len);
                let mut parent = Node::new_n4(&full_prefix[..mismatch]);
                // Old node keeps the tail of the prefix after the branch byte.
                let old_branch_byte = full_prefix[mismatch];
                let tail = &full_prefix[mismatch + 1..];
                node.prefix_len = tail.len() as u32;
                let inline = tail.len().min(MAX_INLINE_PREFIX);
                node.prefix[..inline].copy_from_slice(&tail[..inline]);
                parent.add_child(old_branch_byte, cur);
                parent.add_child(key.padded()[depth + mismatch], Child::leaf(tid));
                let new_child = self.alloc(parent);
                // SAFETY: as above.
                unsafe { *slot = new_child };
                return None;
            }
        }
        let depth = depth + prefix_len;
        let byte = key.padded()[depth];
        if let Some(child_slot) = node.find_child_mut(byte) {
            let child_slot: *mut Child = child_slot;
            return self.insert_rec(child_slot, key, depth + 1, tid);
        }
        if node.is_full() {
            node.grow();
        }
        node.add_child(byte, Child::leaf(tid));
        None
    }

    /// Number of prefix bytes of `node` matching `key` at `depth`
    /// (up to `prefix_len`).
    fn prefix_mismatch(&self, node: &Node, key: &PaddedKey, depth: usize) -> usize {
        let prefix_len = node.prefix_len as usize;
        let inline = prefix_len.min(MAX_INLINE_PREFIX);
        for i in 0..inline {
            if key.padded()[depth + i] != node.prefix[i] {
                return i;
            }
        }
        if prefix_len <= MAX_INLINE_PREFIX {
            return prefix_len;
        }
        // Long path: reconstruct from any stored leaf (they all share it).
        let full = self.full_prefix(node, depth, prefix_len);
        for (i, &b) in full.iter().enumerate().skip(inline) {
            if key.padded()[depth + i] != b {
                return i;
            }
        }
        prefix_len
    }

    /// Reconstruct the full compressed path of `node` (which spans key bytes
    /// `depth..depth + prefix_len`) from the minimum leaf below it.
    fn full_prefix(&self, node: &Node, depth: usize, prefix_len: usize) -> Vec<u8> {
        if prefix_len <= MAX_INLINE_PREFIX {
            return node.prefix[..prefix_len].to_vec();
        }
        let tid = min_leaf(node);
        let mut scratch = [0u8; KEY_SCRATCH_LEN];
        let leaf_key = PaddedKey::from_key(self.source.load_key(tid, &mut scratch));
        leaf_key.padded()[depth..depth + prefix_len].to_vec()
    }

    /// Remove `key`; returns its TID if present.
    pub fn remove(&mut self, key: &[u8]) -> Option<u64> {
        self.get(key)?;
        let padded = PaddedKey::from_key(key);
        if self.root.is_leaf() {
            let tid = self.root.tid();
            self.root = Child::NULL;
            self.len = 0;
            return Some(tid);
        }
        let root_slot = self.root_slot();
        let removed = self.remove_rec(root_slot, &padded, 0);
        debug_assert!(removed.is_some());
        self.len -= 1;
        removed
    }

    fn remove_rec(&mut self, slot: *mut Child, key: &PaddedKey, depth: usize) -> Option<u64> {
        // SAFETY: slot points into a live, exclusively held node/root.
        let cur = unsafe { *slot };
        debug_assert!(cur.is_node(), "presence verified by the caller");
        // SAFETY: as above.
        let node = unsafe { cur.node_mut() };
        let depth = depth + node.prefix_len as usize;
        let byte = key.padded()[depth];
        let child = node.find_child(byte).expect("verified present");

        if child.is_leaf() {
            let tid = child.tid();
            node.remove_child(byte);
            if node.count() == 1 {
                // Path compression: merge the node into its only child.
                let (only_byte, only_child) = node.children_sorted()[0];
                let merged = if only_child.is_node() {
                    // SAFETY: tree-owned node pointer.
                    let child_node = unsafe { only_child.node_mut() };
                    let mut full = self.full_prefix(node, depth - node.prefix_len as usize, node.prefix_len as usize);
                    full.push(only_byte);
                    let child_prefix_len = child_node.prefix_len as usize;
                    let child_inline = child_prefix_len.min(MAX_INLINE_PREFIX);
                    full.extend_from_slice(&child_node.prefix[..child_inline]);
                    // The child's possibly-longer logical prefix length still
                    // counts in full even if bytes beyond 8 are not inline.
                    let new_len = node.prefix_len as usize + 1 + child_prefix_len;
                    child_node.prefix_len = new_len as u32;
                    let inline = full.len().min(MAX_INLINE_PREFIX);
                    child_node.prefix[..inline].copy_from_slice(&full[..inline]);
                    only_child
                } else {
                    only_child
                };
                // SAFETY: replacing the slot; the old node is freed below.
                unsafe {
                    *slot = merged;
                    self.free(cur);
                }
            }
            return Some(tid);
        }
        let child_slot: *mut Child = node.find_child_mut(byte).expect("present");
        self.remove_rec(child_slot, key, depth + 1)
    }

    /// Iterator over all TIDs in ascending key order.
    pub fn iter(&self) -> Cursor<'_, S> {
        let mut frames = Vec::new();
        let mut pending = None;
        if self.root.is_leaf() {
            pending = Some(self.root.tid());
        } else if self.root.is_node() {
            // SAFETY: tree-owned.
            frames.push((unsafe { self.root.node_ref() }, 0usize));
        }
        Cursor {
            frames,
            pending,
            _tree: self,
        }
    }

    /// Iterator over TIDs with keys `>= key`, ascending.
    pub fn range_from(&self, key: &[u8]) -> Cursor<'_, S> {
        let padded = PaddedKey::from_key(key);
        let mut frames: Vec<(&Node, usize)> = Vec::new();
        let mut pending = None;

        if self.root.is_leaf() {
            let mut scratch = [0u8; KEY_SCRATCH_LEN];
            if self.source.load_key(self.root.tid(), &mut scratch) >= key {
                pending = Some(self.root.tid());
            }
            return Cursor {
                frames,
                pending,
                _tree: self,
            };
        }
        if self.root.is_null() {
            return Cursor {
                frames,
                pending,
                _tree: self,
            };
        }

        // Descend while the compressed paths match the search key exactly;
        // on divergence the whole subtree is entirely before or after.
        // SAFETY: tree-owned.
        let mut node = unsafe { self.root.node_ref() };
        let mut depth = 0usize;
        loop {
            let prefix_len = node.prefix_len as usize;
            let full = self.full_prefix(node, depth, prefix_len);
            if let Some(i) = full
                .iter()
                .zip(&padded.padded()[depth..depth + prefix_len])
                .position(|(a, b)| a != b)
            {
                if full[i] > padded.padded()[depth + i] {
                    // Subtree sorts after the key: take all of it.
                    frames.push((node, 0));
                }
                // Else: subtree entirely before the key; fall through to
                // whatever ancestors queued.
                break;
            }
            let depth_after = depth + prefix_len;
            let byte = padded.padded()[depth_after] as usize;
            // Queue this node starting after `byte`, then descend into the
            // child at `byte` if it exists.
            match node.find_child(byte as u8) {
                Some(child) => {
                    frames.push((node, byte + 1));
                    if child.is_leaf() {
                        let tid = child.tid();
                        let mut scratch = [0u8; KEY_SCRATCH_LEN];
                        if self.source.load_key(tid, &mut scratch) >= key {
                            pending = Some(tid);
                        }
                        break;
                    }
                    // SAFETY: tree-owned.
                    node = unsafe { child.node_ref() };
                    depth = depth_after + 1;
                }
                None => {
                    frames.push((node, byte));
                    break;
                }
            }
        }
        Cursor {
            frames,
            pending,
            _tree: self,
        }
    }

    /// Collect up to `limit` TIDs with keys `>= key`.
    pub fn scan(&self, key: &[u8], limit: usize) -> Vec<u64> {
        self.range_from(key).take(limit).collect()
    }

    /// Memory footprint of the inner nodes.
    pub fn memory_stats(&self) -> MemoryStats {
        MemoryStats {
            node_bytes: self.node_bytes,
            node_count: self.node_count,
            aux_bytes: 0,
            key_count: self.len,
            capacity_bytes: 0,
        }
    }

    /// Leaf-depth histogram (depth = inner nodes on the path), Figure 11's
    /// ART series.
    pub fn depth_stats(&self) -> DepthStats {
        let mut stats = DepthStats::new();
        fn walk(child: Child, depth: usize, stats: &mut DepthStats) {
            if child.is_leaf() {
                stats.record(depth);
            } else if child.is_node() {
                // SAFETY: tree-owned.
                let node = unsafe { child.node_ref() };
                for (_, c) in node.children_sorted() {
                    walk(c, depth + 1, stats);
                }
            }
        }
        walk(self.root, 0, &mut stats);
        stats
    }

    /// Structural invariant check (test support).
    pub fn validate(&self) {
        fn walk(child: Child, count: &mut usize) {
            if child.is_leaf() {
                *count += 1;
                return;
            }
            if child.is_null() {
                return;
            }
            // SAFETY: tree-owned.
            let node = unsafe { child.node_ref() };
            let kids = node.children_sorted();
            assert!(kids.len() >= 2, "inner nodes have >= 2 children");
            assert_eq!(kids.len(), node.count());
            assert!(
                kids.windows(2).all(|w| w[0].0 < w[1].0),
                "child bytes strictly ascending"
            );
            for (_, c) in kids {
                assert!(!c.is_null());
                walk(c, count);
            }
        }
        let mut count = 0;
        walk(self.root, &mut count);
        assert_eq!(count, self.len, "leaf count equals len");
        // Every stored key resolves through the public lookup.
        let mut scratch = [0u8; KEY_SCRATCH_LEN];
        for tid in self.iter().collect::<Vec<_>>() {
            let k = self.source.load_key(tid, &mut scratch).to_vec();
            assert_eq!(self.get(&k), Some(tid));
        }
    }
}

/// Smallest-key leaf below `node` (descend first children).
fn min_leaf(node: &Node) -> u64 {
    let mut cur = node;
    loop {
        let (_, child) = cur
            .next_child_at_or_after(0)
            .expect("inner nodes are non-empty");
        if child.is_leaf() {
            return child.tid();
        }
        // SAFETY: tree-owned.
        cur = unsafe { child.node_ref() };
    }
}

/// First byte index `>= from` where the padded keys differ.
/// Byte `i` of `key` under the zero-padding convention.
#[inline]
fn byte_at(key: &[u8], i: usize) -> u8 {
    if i < key.len() {
        key[i]
    } else {
        0
    }
}

fn mismatch_byte(a: &[u8; KEY_PAD_LEN], b: &[u8; KEY_PAD_LEN], from: usize) -> usize {
    (from..KEY_PAD_LEN)
        .find(|&i| a[i] != b[i])
        .expect("prefix-free keys differ somewhere")
}

impl<S> Drop for Art<S> {
    fn drop(&mut self) {
        fn free_subtree(child: Child) {
            if child.is_node() {
                // SAFETY: dropping the tree, sole owner.
                let node = unsafe { Box::from_raw(child.ptr()) };
                for (_, c) in node.children_sorted() {
                    free_subtree(c);
                }
            }
        }
        free_subtree(self.root);
    }
}

/// Ordered iterator over leaf TIDs. Frames hold (node, next byte slot).
pub struct Cursor<'a, S> {
    frames: Vec<(&'a Node, usize)>,
    pending: Option<u64>,
    _tree: &'a Art<S>,
}

impl<'a, S: KeySource> Iterator for Cursor<'a, S> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if let Some(tid) = self.pending.take() {
            return Some(tid);
        }
        loop {
            let &(node, from) = self.frames.last()?;
            match node.next_child_at_or_after(from) {
                None => {
                    self.frames.pop();
                }
                Some((byte, child)) => {
                    self.frames.last_mut().expect("non-empty").1 = byte as usize + 1;
                    if child.is_leaf() {
                        return Some(child.tid());
                    }
                    // SAFETY: tree-owned; cursor borrows the tree.
                    self.frames.push((unsafe { child.node_ref() }, 0));
                }
            }
        }
    }
}

// SAFETY: the tree owns all nodes; sharing &Art across threads only permits
// reads (all mutation requires &mut).
unsafe impl<S: Sync> Sync for Art<S> {}
// SAFETY: nodes are heap allocations reachable only through the tree; moving
// the tree to another thread moves exclusive ownership of all of them.
unsafe impl<S: Send> Send for Art<S> {}

#[cfg(test)]
mod tests {
    use super::*;
    use hot_keys::{encode_u64, ArenaKeySource, EmbeddedKeySource};

    fn int_art(keys: &[u64]) -> Art<EmbeddedKeySource> {
        let mut t = Art::new(EmbeddedKeySource);
        for &k in keys {
            t.insert(&encode_u64(k), k);
        }
        t
    }

    #[test]
    fn empty_single_pair() {
        let mut t = Art::new(EmbeddedKeySource);
        assert_eq!(t.get(&encode_u64(0)), None);
        t.insert(&encode_u64(5), 5);
        assert_eq!(t.get(&encode_u64(5)), Some(5));
        assert_eq!(t.get(&encode_u64(4)), None);
        t.insert(&encode_u64(300), 300);
        assert_eq!(t.get(&encode_u64(300)), Some(300));
        assert_eq!(t.len(), 2);
        t.validate();
    }

    #[test]
    fn node_growth_through_all_layouts() {
        // 200 keys differing in the last byte exercise N4→N16→N48→N256.
        let keys: Vec<u64> = (0..200).collect();
        let t = int_art(&keys);
        t.validate();
        for &k in &keys {
            assert_eq!(t.get(&encode_u64(k)), Some(k));
        }
        // One N256 (or N48) node at the bottom: few nodes overall.
        assert!(t.memory_stats().node_count <= 3);
    }

    #[test]
    fn node_shrink_through_all_layouts() {
        let keys: Vec<u64> = (0..256).collect();
        let mut t = int_art(&keys);
        for k in 0..250u64 {
            assert_eq!(t.remove(&encode_u64(k)), Some(k));
            if k % 50 == 0 {
                t.validate();
            }
        }
        t.validate();
        for k in 250..256u64 {
            assert_eq!(t.get(&encode_u64(k)), Some(k));
        }
    }

    #[test]
    fn path_compression_with_long_prefixes() {
        let mut arena = ArenaKeySource::new();
        // Shared 30-byte prefix, branch at the end: compressed path longer
        // than the 8-byte inline buffer.
        let prefix = "x".repeat(30);
        let keys: Vec<Vec<u8>> = (0..20)
            .map(|i| hot_keys::str_key(format!("{prefix}{i:02}").as_bytes()).unwrap())
            .collect();
        let tids: Vec<u64> = keys.iter().map(|k| arena.push(k)).collect();
        let mut t = Art::new(&arena);
        for (k, &tid) in keys.iter().zip(&tids) {
            t.insert(k, tid);
        }
        t.validate();
        for (k, &tid) in keys.iter().zip(&tids) {
            assert_eq!(t.get(k), Some(tid));
        }
        // Lookups that diverge inside the long compressed path miss cleanly.
        assert_eq!(t.get(&hot_keys::str_key(b"xxxyyy").unwrap()), None);
        let other = format!("{}00", "y".repeat(30));
        assert_eq!(t.get(&hot_keys::str_key(other.as_bytes()).unwrap()), None);
    }

    #[test]
    fn upsert_and_removal_roundtrip() {
        let mut arena = ArenaKeySource::new();
        let keys: Vec<Vec<u8>> = ["one", "two", "three", "two"]
            .iter()
            .map(|w| hot_keys::str_key(w.as_bytes()).unwrap())
            .collect();
        let tids: Vec<u64> = keys.iter().map(|k| arena.push(k)).collect();
        let mut t = Art::new(&arena);
        assert_eq!(t.insert(&keys[0], tids[0]), None);
        assert_eq!(t.insert(&keys[1], tids[1]), None);
        assert_eq!(t.insert(&keys[2], tids[2]), None);
        // Upsert "two" with a fresh TID for the same key bytes.
        assert_eq!(t.insert(&keys[3], tids[3]), Some(tids[1]));
        assert_eq!(t.get(&keys[1]), Some(tids[3]));
        assert_eq!(t.remove(&keys[1]), Some(tids[3]));
        assert_eq!(t.remove(&keys[1]), None);
        assert_eq!(t.len(), 2);
        t.validate();
        assert_eq!(t.remove(&keys[0]), Some(tids[0]));
        assert_eq!(t.remove(&keys[2]), Some(tids[2]));
        assert!(t.is_empty());
        assert_eq!(t.memory_stats().node_bytes, 0);
    }

    #[test]
    fn ordered_iteration_and_scans() {
        let mut keys: Vec<u64> = vec![5, 1, 300, 70_000, 2, 90, 65_535, 65_536];
        let t = int_art(&keys);
        keys.sort_unstable();
        assert_eq!(t.iter().collect::<Vec<_>>(), keys);
        assert_eq!(t.scan(&encode_u64(3), 3), vec![5, 90, 300]);
        assert_eq!(t.scan(&encode_u64(0), 2), vec![1, 2]);
        assert_eq!(t.scan(&encode_u64(90), 2), vec![90, 300]);
        assert_eq!(t.scan(&encode_u64(70_001), 10), Vec::<u64>::new());
    }

    #[test]
    fn dense_and_random_10k() {
        let dense: Vec<u64> = (0..10_000).collect();
        let t = int_art(&dense);
        t.validate();
        assert_eq!(t.iter().collect::<Vec<_>>(), dense);
        // Dense keys: depth stays tiny (the ART sweet spot).
        assert!(t.depth_stats().max_depth().unwrap() <= 4);

        let mut x = 0x9E37_79B9u64;
        let random: Vec<u64> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x >> 1
            })
            .collect();
        let t = int_art(&random);
        t.validate();
        for &k in random.iter().step_by(101) {
            assert_eq!(t.get(&encode_u64(k)), Some(k));
        }
    }

    #[test]
    fn string_scan_order() {
        let mut arena = ArenaKeySource::new();
        let words = ["art", "arterial", "artist", "bar", "baz", "zoo"];
        let keys: Vec<Vec<u8>> = words
            .iter()
            .map(|w| hot_keys::str_key(w.as_bytes()).unwrap())
            .collect();
        let tids: Vec<u64> = keys.iter().map(|k| arena.push(k)).collect();
        let mut t = Art::new(&arena);
        for (k, &tid) in keys.iter().zip(&tids) {
            t.insert(k, tid);
        }
        t.validate();
        let got: Vec<u64> = t.range_from(&hot_keys::str_key(b"artist").unwrap()).collect();
        assert_eq!(got, vec![tids[2], tids[3], tids[4], tids[5]]);
        let got: Vec<u64> = t.range_from(&hot_keys::str_key(b"aq").unwrap()).collect();
        assert_eq!(got.len(), 6);
        let got: Vec<u64> = t.range_from(&hot_keys::str_key(b"zzz").unwrap()).collect();
        assert!(got.is_empty());
    }

    #[test]
    fn mixed_insert_remove_against_model() {
        use std::collections::BTreeMap;
        let mut t = Art::new(EmbeddedKeySource);
        let mut model = BTreeMap::new();
        let mut x = 12345u64;
        for _ in 0..20_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = x % 2_000;
            if x % 10 < 6 {
                assert_eq!(t.insert(&encode_u64(k), k), model.insert(k, k));
            } else {
                assert_eq!(t.remove(&encode_u64(k)), model.remove(&k));
            }
        }
        t.validate();
        assert_eq!(
            t.iter().collect::<Vec<_>>(),
            model.values().copied().collect::<Vec<_>>()
        );
    }

    #[test]
    fn bulk_load_matches_incremental() {
        let mut x = 0xABCDu64;
        let mut keys: Vec<u64> = (0..5_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % 1_000_000
            })
            .collect();
        let incr = int_art(&keys);
        keys.sort_unstable();
        keys.dedup();
        let entries: Vec<([u8; 8], u64)> = keys.iter().map(|&k| (encode_u64(k), k)).collect();
        let mut bulk = Art::new(EmbeddedKeySource);
        assert_eq!(bulk.bulk_load(&entries), keys.len());
        bulk.validate();
        assert_eq!(bulk.len(), incr.len());
        assert_eq!(bulk.iter().collect::<Vec<_>>(), incr.iter().collect::<Vec<_>>());
        for &k in keys.iter().step_by(37) {
            assert_eq!(bulk.get(&encode_u64(k)), Some(k));
            assert_eq!(bulk.get(&encode_u64(k + 1)), incr.get(&encode_u64(k + 1)));
        }
        // Bottom-up construction allocates each node in its final layout,
        // so the footprint never exceeds the incremental build's.
        assert!(bulk.memory_stats().node_count <= incr.memory_stats().node_count);
    }

    #[test]
    fn bulk_load_strings_duplicates_and_edge_cases() {
        let mut arena = ArenaKeySource::new();
        let words = ["art", "arterial", "artist", "bar", "bar", "baz", "zoo"];
        let keys: Vec<Vec<u8>> = words
            .iter()
            .map(|w| hot_keys::str_key(w.as_bytes()).unwrap())
            .collect();
        let tids: Vec<u64> = keys.iter().map(|k| arena.push(k)).collect();
        let entries: Vec<(&[u8], u64)> = keys
            .iter()
            .map(|k| k.as_slice())
            .zip(tids.iter().copied())
            .collect();
        let mut t = Art::new(&arena);
        assert_eq!(t.bulk_load(&entries), 6, "duplicate bar collapses");
        t.validate();
        // Last write wins on the duplicate.
        assert_eq!(t.get(&keys[3]), Some(tids[4]));
        assert_eq!(t.get(&keys[0]), Some(tids[0]));

        let mut empty = Art::new(EmbeddedKeySource);
        assert_eq!(empty.bulk_load::<[u8; 8]>(&[]), 0);
        assert!(empty.is_empty());
        assert_eq!(empty.bulk_load(&[(encode_u64(9), 9u64)]), 1);
        assert_eq!(empty.get(&encode_u64(9)), Some(9));
    }

    #[test]
    #[should_panic(expected = "not sorted")]
    fn bulk_load_rejects_unsorted() {
        let mut t = Art::new(EmbeddedKeySource);
        t.bulk_load(&[(encode_u64(5), 5u64), (encode_u64(1), 1u64)]);
    }
}
