//! Property tests: ART matches the ordered-map model for arbitrary
//! operation sequences on both integer and string keys.

use hot_art::Art;
use hot_keys::{encode_u64, ArenaKeySource, EmbeddedKeySource};
use proptest::prelude::*;
use std::collections::BTreeMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn integer_ops_match_model(
        ops in prop::collection::vec((0u64..5_000, 0u8..10), 1..500)
    ) {
        let mut art = Art::new(EmbeddedKeySource);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for (k, action) in ops {
            if action < 6 {
                prop_assert_eq!(art.insert(&encode_u64(k), k), model.insert(k, k));
            } else if action < 9 {
                prop_assert_eq!(art.remove(&encode_u64(k)), model.remove(&k));
            } else {
                let got = art.scan(&encode_u64(k), 10);
                let want: Vec<u64> = model.range(k..).take(10).map(|(_, &v)| v).collect();
                prop_assert_eq!(got, want);
            }
            prop_assert_eq!(art.len(), model.len());
        }
        art.validate();
        prop_assert_eq!(
            art.iter().collect::<Vec<_>>(),
            model.values().copied().collect::<Vec<_>>()
        );
    }

    #[test]
    fn string_keys_with_deep_prefixes(
        words in prop::collection::btree_set("[ab]{1,24}", 1..80),
        probe in "[ab]{1,24}",
    ) {
        // Two-letter alphabet: long shared prefixes, chains longer than the
        // inline prefix buffer.
        let mut arena = ArenaKeySource::new();
        let keys: Vec<Vec<u8>> = words
            .iter()
            .map(|w| hot_keys::str_key(w.as_bytes()).unwrap())
            .collect();
        let tids: Vec<u64> = keys.iter().map(|k| arena.push(k)).collect();
        let mut art = Art::new(&arena);
        let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        for (k, &tid) in keys.iter().zip(&tids) {
            art.insert(k, tid);
            model.insert(k.clone(), tid);
        }
        art.validate();
        for (k, &tid) in &model {
            prop_assert_eq!(art.get(k), Some(tid));
        }
        let probe_key = hot_keys::str_key(probe.as_bytes()).unwrap();
        prop_assert_eq!(art.get(&probe_key), model.get(&probe_key).copied());
        let got: Vec<u64> = art.range_from(&probe_key).collect();
        let want: Vec<u64> = model.range(probe_key..).map(|(_, &v)| v).collect();
        prop_assert_eq!(got, want);
    }
}
