//! Binary Patricia trie (Morrison 1968), as surveyed in Section 2 /
//! Figure 2b of the HOT paper.
//!
//! Every inner **BiNode** stores one discriminative bit position and has
//! exactly two children; nodes with a single child are omitted, so a trie
//! storing `n` keys has exactly `n - 1` inner BiNodes. Because skipped bits
//! are never inspected, a lookup must verify the candidate leaf against the
//! full key, which is resolved from the leaf's TID through a
//! [`KeySource`] — the same convention every other index in this workspace
//! uses.
//!
//! In this reproduction the structure plays two roles:
//!
//! 1. the **BIN** baseline of the Figure 11 leaf-depth experiment, and
//! 2. the executable *reference model* for the HOT property-test suite: a
//!    HOT tree is a partition of exactly this binary Patricia trie into
//!    k-constrained compound nodes, so structural properties (discriminative
//!    bit sets, key order, depth bounds) are checked against this
//!    implementation.

#![deny(missing_docs)]

use hot_keys::stats::MemoryStats;
use hot_keys::{DepthStats, KeySource, KEY_SCRATCH_LEN, MAX_TID};

/// One node of the Patricia trie: either a leaf TID or an inner BiNode with
/// a discriminative bit position and two children.
#[derive(Debug)]
enum Node {
    Leaf(u64),
    Inner {
        /// MSB-first discriminative bit position (see `hot_bits::bitpos`).
        bit: u32,
        /// `children[0]` holds keys with bit 0 at `bit`, `children[1]` bit 1.
        children: [Box<Node>; 2],
    },
}

impl Node {
    fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf(_))
    }
}

/// A binary Patricia trie mapping prefix-free byte-string keys to TIDs.
///
/// Keys are resolved from TIDs through the key source `S`; inserting a key
/// that is a strict prefix of a stored key (after zero padding) is not
/// supported — use the prefix-free encoders from `hot_keys::encode`.
pub struct PatriciaTree<S> {
    root: Option<Box<Node>>,
    source: S,
    len: usize,
}

impl<S: KeySource> PatriciaTree<S> {
    /// Create an empty trie resolving keys through `source`.
    pub fn new(source: S) -> Self {
        PatriciaTree {
            root: None,
            source,
            len: 0,
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trie is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Access the key source.
    pub fn source(&self) -> &S {
        &self.source
    }

    /// Blind descend: follow discriminative bits to the unique candidate leaf.
    fn candidate<'a>(mut node: &'a Node, key: &[u8]) -> &'a Node {
        while let Node::Inner { bit, children } = node {
            node = &children[hot_bits::bit_at(key, *bit as usize) as usize];
        }
        node
    }

    /// Look up `key`; returns its TID if present.
    pub fn get(&self, key: &[u8]) -> Option<u64> {
        let root = self.root.as_deref()?;
        let Node::Leaf(tid) = Self::candidate(root, key) else {
            unreachable!("candidate always ends at a leaf")
        };
        let mut scratch = [0u8; KEY_SCRATCH_LEN];
        if hot_bits::first_mismatch_bit(self.source.load_key(*tid, &mut scratch), key).is_none() {
            Some(*tid)
        } else {
            None
        }
    }

    /// Insert `key → tid`. Returns the previous TID if the key was present
    /// (upsert semantics).
    ///
    /// # Panics
    /// Panics if `tid` exceeds [`MAX_TID`].
    pub fn insert(&mut self, key: &[u8], tid: u64) -> Option<u64> {
        assert!(tid <= MAX_TID, "tid exceeds MAX_TID");
        if self.root.is_none() {
            self.root = Some(Box::new(Node::Leaf(tid)));
            self.len = 1;
            return None;
        }

        // Phase 1: find the candidate leaf and the mismatch position.
        let candidate_tid = {
            let root = self.root.as_deref().expect("non-empty");
            let Node::Leaf(t) = Self::candidate(root, key) else {
                unreachable!()
            };
            *t
        };
        let mut scratch = [0u8; KEY_SCRATCH_LEN];
        let mismatch = {
            let existing = self.source.load_key(candidate_tid, &mut scratch);
            hot_bits::first_mismatch_bit(existing, key)
        };
        let Some(bit) = mismatch else {
            // Key already present: replace the TID in place.
            let mut node = self.root.as_deref_mut().expect("non-empty");
            loop {
                match node {
                    Node::Leaf(t) => {
                        let old = *t;
                        *t = tid;
                        return Some(old);
                    }
                    Node::Inner { bit, children } => {
                        node = &mut children[hot_bits::bit_at(key, *bit as usize) as usize];
                    }
                }
            }
        };
        let new_bit_value = hot_bits::bit_at(key, bit) as usize;

        // Phase 2: re-descend to the insertion point — the first node whose
        // discriminative bit exceeds the mismatch bit (or a leaf).
        let mut slot: &mut Box<Node> = self.root.as_mut().expect("non-empty");
        loop {
            match slot.as_ref() {
                Node::Leaf(_) => break,
                Node::Inner { bit: b, .. } if *b as usize > bit => break,
                _ => {}
            }
            let Node::Inner { bit: b, children } = slot.as_mut() else {
                unreachable!()
            };
            let dir = hot_bits::bit_at(key, *b as usize) as usize;
            slot = &mut children[dir];
        }

        // Splice in the new BiNode: the displaced subtree keeps the inverse
        // bit value, the new leaf takes `new_bit_value`.
        let displaced = std::mem::replace(slot.as_mut(), Node::Leaf(0));
        let new_leaf = Node::Leaf(tid);
        let children = if new_bit_value == 1 {
            [Box::new(displaced), Box::new(new_leaf)]
        } else {
            [Box::new(new_leaf), Box::new(displaced)]
        };
        *slot.as_mut() = Node::Inner {
            bit: bit as u32,
            children,
        };
        self.len += 1;
        None
    }

    /// Remove `key`; returns its TID if it was present.
    pub fn remove(&mut self, key: &[u8]) -> Option<u64> {
        // Verify presence first (blind descends don't detect absence).
        self.get(key)?;

        let root = self.root.as_mut().expect("key present implies non-empty");
        if let Node::Leaf(tid) = root.as_ref() {
            let tid = *tid;
            self.root = None;
            self.len = 0;
            return Some(tid);
        }

        // Descend, remembering the parent slot so the sibling can be pulled
        // up when the leaf is removed (Patricia collapse).
        let mut parent: &mut Box<Node> = root;
        loop {
            let Node::Inner { bit, .. } = parent.as_ref() else {
                unreachable!("loop maintains parent as inner node")
            };
            let dir = hot_bits::bit_at(key, *bit as usize) as usize;
            let child_is_leaf = {
                let Node::Inner { children, .. } = parent.as_ref() else {
                    unreachable!()
                };
                children[dir].is_leaf()
            };
            if child_is_leaf {
                let Node::Inner { children, .. } = parent.as_mut() else {
                    unreachable!()
                };
                let sibling = std::mem::replace(children[1 - dir].as_mut(), Node::Leaf(0));
                let Node::Leaf(tid) = *children[dir].as_ref() else {
                    unreachable!()
                };
                *parent.as_mut() = sibling;
                self.len -= 1;
                return Some(tid);
            }
            let Node::Inner { children, .. } = parent.as_mut() else {
                unreachable!()
            };
            parent = &mut children[dir];
        }
    }

    /// In-order iterator over all TIDs (ascending key order).
    pub fn iter(&self) -> Iter<'_> {
        let mut stack = Vec::new();
        if let Some(root) = self.root.as_deref() {
            stack.push(root);
        }
        Iter { stack }
    }

    /// Iterator over TIDs whose keys are `>= key`, in ascending key order.
    pub fn range_from(&self, key: &[u8]) -> Iter<'_> {
        let mut stack: Vec<&Node> = Vec::new();
        let Some(root) = self.root.as_deref() else {
            return Iter { stack };
        };

        // Blind descend to the candidate leaf first to learn the mismatch
        // position; zero cost for the exact-hit case.
        let Node::Leaf(tid) = Self::candidate(root, key) else {
            unreachable!()
        };
        let mut scratch = [0u8; KEY_SCRATCH_LEN];
        let leaf_key = self.source.load_key(*tid, &mut scratch);
        let mismatch = hot_bits::first_mismatch_bit(leaf_key, key);

        // Re-descend, collecting unvisited right siblings; stop early at the
        // subtree the mismatch bit splits.
        let stop_bit = mismatch.unwrap_or(usize::MAX);
        let mut node = root;
        loop {
            match node {
                Node::Inner { bit, children } if (*bit as usize) < stop_bit => {
                    let dir = hot_bits::bit_at(key, *bit as usize) as usize;
                    if dir == 0 {
                        stack.push(&children[1]);
                    }
                    node = &children[dir];
                }
                _ => break,
            }
        }
        match mismatch {
            None => stack.push(node), // exact hit: include the leaf itself
            Some(bit) => {
                if hot_bits::bit_at(key, bit) == 0 {
                    // The search key sorts before the whole stopped subtree.
                    stack.push(node);
                }
                // Otherwise the search key sorts after the stopped subtree:
                // only the collected right siblings qualify.
            }
        }
        // The stack was filled top-down (shallowest right sibling first), so
        // popping yields the stopped subtree, then siblings deepest-first —
        // exactly ascending key order.
        Iter { stack }
    }

    /// Leaf-depth histogram (depth = number of BiNodes on the root-to-leaf
    /// path), as plotted in Figure 11 for the "BIN" structure.
    pub fn depth_stats(&self) -> DepthStats {
        let mut stats = DepthStats::new();
        fn walk(node: &Node, depth: usize, stats: &mut DepthStats) {
            match node {
                Node::Leaf(_) => stats.record(depth),
                Node::Inner { children, .. } => {
                    walk(&children[0], depth + 1, stats);
                    walk(&children[1], depth + 1, stats);
                }
            }
        }
        if let Some(root) = self.root.as_deref() {
            walk(root, 0, &mut stats);
        }
        stats
    }

    /// Memory accounting: one heap allocation per node.
    pub fn memory_stats(&self) -> MemoryStats {
        fn count(node: &Node) -> (usize, usize) {
            match node {
                Node::Leaf(_) => (std::mem::size_of::<Node>(), 1),
                Node::Inner { children, .. } => {
                    let (b0, n0) = count(&children[0]);
                    let (b1, n1) = count(&children[1]);
                    (std::mem::size_of::<Node>() + b0 + b1, 1 + n0 + n1)
                }
            }
        }
        let (node_bytes, node_count) = self.root.as_deref().map(count).unwrap_or((0, 0));
        MemoryStats {
            node_bytes,
            node_count,
            aux_bytes: 0,
            key_count: self.len,
            capacity_bytes: 0,
        }
    }

    /// The set of discriminative bit positions used anywhere in the trie,
    /// sorted ascending. Used by property tests to compare against HOT
    /// (both structures discriminate on exactly the same bits).
    pub fn discriminative_bits(&self) -> Vec<u32> {
        let mut bits = Vec::new();
        fn walk(node: &Node, bits: &mut Vec<u32>) {
            if let Node::Inner { bit, children } = node {
                bits.push(*bit);
                walk(&children[0], bits);
                walk(&children[1], bits);
            }
        }
        if let Some(root) = self.root.as_deref() {
            walk(root, &mut bits);
        }
        bits.sort_unstable();
        bits.dedup();
        bits
    }
}

/// In-order iterator over leaf TIDs.
pub struct Iter<'a> {
    stack: Vec<&'a Node>,
}

impl<'a> Iterator for Iter<'a> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        loop {
            match self.stack.pop()? {
                Node::Leaf(tid) => return Some(*tid),
                Node::Inner { children, .. } => {
                    self.stack.push(&children[1]);
                    self.stack.push(&children[0]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hot_keys::{encode_u64, ArenaKeySource, EmbeddedKeySource};

    fn int_tree(keys: &[u64]) -> PatriciaTree<EmbeddedKeySource> {
        let mut t = PatriciaTree::new(EmbeddedKeySource);
        for &k in keys {
            t.insert(&encode_u64(k), k);
        }
        t
    }

    #[test]
    fn empty_tree() {
        let t = PatriciaTree::new(EmbeddedKeySource);
        assert!(t.is_empty());
        assert_eq!(t.get(b"anything"), None);
        assert_eq!(t.iter().count(), 0);
        assert_eq!(t.depth_stats().total(), 0);
    }

    #[test]
    fn single_key() {
        let t = int_tree(&[42]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&encode_u64(42)), Some(42));
        assert_eq!(t.get(&encode_u64(43)), None);
        assert_eq!(t.depth_stats().max_depth(), Some(0));
    }

    #[test]
    fn insert_lookup_many_integers() {
        let keys: Vec<u64> = (0..1000u64).map(|i| i.wrapping_mul(2654435761) % 100_000).collect();
        let mut t = PatriciaTree::new(EmbeddedKeySource);
        let mut expected = std::collections::BTreeSet::new();
        for &k in &keys {
            t.insert(&encode_u64(k), k);
            expected.insert(k);
        }
        for &k in &expected {
            assert_eq!(t.get(&encode_u64(k)), Some(k), "key {k}");
        }
        assert_eq!(t.len(), expected.len());
        assert_eq!(t.get(&encode_u64(999_999_999)), None);
    }

    #[test]
    fn upsert_replaces_tid() {
        let mut arena = ArenaKeySource::new();
        let t1 = arena.push(b"dup");
        let t2 = arena.push(b"dup");
        let mut t = PatriciaTree::new(&arena);
        assert_eq!(t.insert(b"dup", t1), None);
        assert_eq!(t.insert(b"dup", t2), Some(t1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(b"dup"), Some(t2));
    }

    #[test]
    fn inner_node_count_is_n_minus_one() {
        // "a binary Patricia trie storing n keys has exactly n-1 inner
        // nodes" (Section 3.1) — so total nodes = 2n-1.
        for n in [2u64, 5, 17, 100] {
            let keys: Vec<u64> = (0..n).map(|i| i * 7919).collect();
            let t = int_tree(&keys);
            let m = t.memory_stats();
            assert_eq!(m.node_count as u64, 2 * n - 1, "n={n}");
        }
    }

    #[test]
    fn iteration_is_in_key_order() {
        let keys = [9u64, 1, 5, 0, 1000, 63, 64, 65, u32::MAX as u64];
        let t = int_tree(&keys);
        let tids: Vec<u64> = t.iter().collect();
        let mut sorted = keys.to_vec();
        sorted.sort_unstable();
        assert_eq!(tids, sorted);
    }

    #[test]
    fn range_from_exact_and_between() {
        let keys = [10u64, 20, 30, 40];
        let t = int_tree(&keys);
        let from20: Vec<u64> = t.range_from(&encode_u64(20)).collect();
        assert_eq!(from20, vec![20, 30, 40]);
        let from25: Vec<u64> = t.range_from(&encode_u64(25)).collect();
        assert_eq!(from25, vec![30, 40]);
        let from0: Vec<u64> = t.range_from(&encode_u64(0)).collect();
        assert_eq!(from0, vec![10, 20, 30, 40]);
        let past: Vec<u64> = t.range_from(&encode_u64(41)).collect();
        assert!(past.is_empty());
    }

    #[test]
    fn range_from_dense_keys() {
        let keys: Vec<u64> = (0..64).collect();
        let t = int_tree(&keys);
        for start in 0..64u64 {
            let got: Vec<u64> = t.range_from(&encode_u64(start)).collect();
            let want: Vec<u64> = (start..64).collect();
            assert_eq!(got, want, "start={start}");
        }
    }

    #[test]
    fn remove_basics() {
        let mut t = int_tree(&[1, 2, 3]);
        assert_eq!(t.remove(&encode_u64(2)), Some(2));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&encode_u64(2)), None);
        assert_eq!(t.get(&encode_u64(1)), Some(1));
        assert_eq!(t.get(&encode_u64(3)), Some(3));
        assert_eq!(t.remove(&encode_u64(2)), None);
        assert_eq!(t.remove(&encode_u64(1)), Some(1));
        assert_eq!(t.remove(&encode_u64(3)), Some(3));
        assert!(t.is_empty());
    }

    #[test]
    fn string_keys_via_arena() {
        let words: &[&[u8]] = &[b"trie", b"tree", b"tries", b"art", b"hot", b"patricia"];
        let mut arena = ArenaKeySource::new();
        let encoded: Vec<Vec<u8>> = words
            .iter()
            .map(|w| hot_keys::str_key(w).unwrap())
            .collect();
        let tids: Vec<u64> = encoded.iter().map(|k| arena.push(k)).collect();
        let mut t = PatriciaTree::new(&arena);
        for (k, &tid) in encoded.iter().zip(&tids) {
            t.insert(k, tid);
        }
        for (k, &tid) in encoded.iter().zip(&tids) {
            assert_eq!(t.get(k), Some(tid));
        }
        assert_eq!(t.get(&hot_keys::str_key(b"missing").unwrap()), None);
        // In-order iteration sorts the words.
        let mut sorted = encoded.clone();
        sorted.sort();
        let iterated: Vec<Vec<u8>> = t.iter().map(|tid| arena.key(tid).to_vec()).collect();
        assert_eq!(iterated, sorted);
    }

    #[test]
    fn depth_reflects_patricia_collapse() {
        // Monotonic dense keys 0..8 over 64-bit big-endian integers share a
        // long prefix; Patricia skips it, so depth stays small (3 = log2(8)).
        let t = int_tree(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let stats = t.depth_stats();
        assert_eq!(stats.total(), 8);
        assert_eq!(stats.max_depth(), Some(3));
        assert_eq!(stats.min_depth(), Some(3));
    }

    #[test]
    fn discriminative_bits_for_dense_ints() {
        let t = int_tree(&[0, 1, 2, 3]);
        // Keys differ in the lowest two bits of the last byte: positions
        // 62 and 63 of the 64-bit big-endian encoding.
        assert_eq!(t.discriminative_bits(), vec![62, 63]);
    }
}
