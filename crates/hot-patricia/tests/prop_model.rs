//! Property tests: the Patricia trie behaves exactly like an ordered map
//! over prefix-free keys (the `BTreeMap` model), for arbitrary operation
//! sequences. This matters doubly because the trie is itself the reference
//! model for the HOT property suite.

use hot_keys::{encode_u64, ArenaKeySource, EmbeddedKeySource};
use hot_patricia::PatriciaTree;
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64),
    Remove(u64),
    Get(u64),
    RangeFrom(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Small key domain to provoke collisions, removals of present keys, etc.
    let key = 0u64..5000;
    prop_oneof![
        4 => key.clone().prop_map(Op::Insert),
        2 => key.clone().prop_map(Op::Remove),
        2 => key.clone().prop_map(Op::Get),
        1 => key.prop_map(Op::RangeFrom),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matches_btreemap_model(ops in prop::collection::vec(op_strategy(), 1..400)) {
        let mut tree = PatriciaTree::new(EmbeddedKeySource);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Insert(k) => {
                    let old = tree.insert(&encode_u64(k), k);
                    let model_old = model.insert(k, k);
                    prop_assert_eq!(old, model_old);
                }
                Op::Remove(k) => {
                    let removed = tree.remove(&encode_u64(k));
                    let model_removed = model.remove(&k);
                    prop_assert_eq!(removed, model_removed);
                }
                Op::Get(k) => {
                    prop_assert_eq!(tree.get(&encode_u64(k)), model.get(&k).copied());
                }
                Op::RangeFrom(k) => {
                    let got: Vec<u64> = tree.range_from(&encode_u64(k)).take(20).collect();
                    let want: Vec<u64> = model.range(k..).take(20).map(|(_, &v)| v).collect();
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(tree.len(), model.len());
        }

        // Full iteration equals the model's order.
        let got: Vec<u64> = tree.iter().collect();
        let want: Vec<u64> = model.values().copied().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn string_keys_match_model(
        words in prop::collection::vec("[a-z]{1,12}", 1..60),
        probe in "[a-z]{1,12}",
    ) {
        let mut arena = ArenaKeySource::new();
        let encoded: Vec<Vec<u8>> = words
            .iter()
            .map(|w| hot_keys::str_key(w.as_bytes()).unwrap())
            .collect();
        let tids: Vec<u64> = encoded.iter().map(|k| arena.push(k)).collect();
        let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        let mut tree = PatriciaTree::new(&arena);
        for (k, &tid) in encoded.iter().zip(&tids) {
            tree.insert(k, tid);
            model.insert(k.clone(), tid); // later duplicate wins in both
        }
        prop_assert_eq!(tree.len(), model.len());
        for (k, &tid) in &model {
            prop_assert_eq!(tree.get(k), Some(tid));
        }
        let probe_key = hot_keys::str_key(probe.as_bytes()).unwrap();
        prop_assert_eq!(tree.get(&probe_key), model.get(&probe_key).copied());
        let got: Vec<u64> = tree.range_from(&probe_key).collect();
        let want: Vec<u64> = model.range(probe_key..).map(|(_, &v)| v).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn patricia_invariant_n_minus_one_binodes(keys in prop::collection::btree_set(any::<u64>(), 1..200)) {
        let mut tree = PatriciaTree::new(EmbeddedKeySource);
        for &k in &keys {
            tree.insert(&encode_u64(k & hot_keys::MAX_TID), k & hot_keys::MAX_TID);
        }
        let distinct: std::collections::BTreeSet<u64> =
            keys.iter().map(|&k| k & hot_keys::MAX_TID).collect();
        let stats = tree.memory_stats();
        prop_assert_eq!(stats.node_count, 2 * distinct.len() - 1);
        prop_assert_eq!(stats.key_count, distinct.len());
    }
}
