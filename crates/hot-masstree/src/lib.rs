//! Masstree-like hybrid index — the paper's "Masstree" baseline
//! (Mao, Kohler, Morris, EuroSys 2012), reimplemented from scratch.
//!
//! Masstree is "a trie with a large span of 64 bits whose internal node
//! structure is a B-tree" (Section 2 of the HOT paper): layer `d` indexes
//! bytes `8d..8d+8` of the key as one big-endian 64-bit *slice* inside a
//! B+-tree; keys that share a full slice and continue descend into a
//! nested next-layer tree. This solves the sparsity problem of fixed-span
//! tries "at the cost of relying more heavily on comparison-based search".
//!
//! Slice comparisons are native `u64` compares (the Masstree trick); only
//! the final candidate is verified against the full key through the shared
//! [`KeySource`]. Keys are zero-padded and must be prefix-free, like
//! everywhere else in this workspace.
//!
//! A slot in a layer leaf holds the key ending at this layer (a TID), a
//! nested layer (keys continuing past the slice), or both.

#![deny(missing_docs)]

use hot_keys::stats::MemoryStats;
use hot_keys::{DepthStats, KeySource, PaddedKey, KEY_SCRATCH_LEN, MAX_TID};

/// B+-tree fanout within a layer (Masstree uses 15-key nodes; we keep the
/// workspace-wide 16).
pub const FANOUT: usize = 16;

/// One leaf slot: the key(s) associated with a slice.
enum Slot {
    /// A single key that ends within this slice (its suffix, if any, is
    /// implied by the TID and verified on lookup).
    Tid(u64),
    /// Keys that share this slice and continue into the next layer.
    Layer(Box<Layer>),
    /// Both: one key ends exactly here, others continue.
    Both(u64, Box<Layer>),
}

impl Slot {
    fn tid(&self) -> Option<u64> {
        match self {
            Slot::Tid(t) | Slot::Both(t, _) => Some(*t),
            Slot::Layer(_) => None,
        }
    }

    fn layer(&self) -> Option<&Layer> {
        match self {
            Slot::Layer(l) | Slot::Both(_, l) => Some(l),
            Slot::Tid(_) => None,
        }
    }
}

/// B+-tree node within one layer.
#[allow(clippy::vec_box)] // boxed children keep split/merge moves O(1) per child
enum LNode {
    Leaf { keys: Vec<u64>, slots: Vec<Slot> },
    Inner { seps: Vec<u64>, children: Vec<Box<LNode>> },
}

impl LNode {
    fn new_leaf() -> LNode {
        LNode::Leaf {
            keys: Vec::with_capacity(FANOUT),
            slots: Vec::with_capacity(FANOUT),
        }
    }
}

/// One trie layer: a B+-tree over 64-bit key slices.
struct Layer {
    root: LNode,
    len: usize,
}

impl Layer {
    fn new() -> Layer {
        Layer {
            root: LNode::new_leaf(),
            len: 0,
        }
    }
}

enum InsertUp {
    Done,
    Split { sep: u64, right: Box<LNode> },
}

/// The Masstree-like index.
pub struct Masstree<S> {
    root: Layer,
    source: S,
    len: usize,
}

/// Big-endian 64-bit slice of the padded key at layer `d`.
#[inline]
fn slice_at(key: &PaddedKey, d: usize) -> u64 {
    hot_bits::load_be_u64(key.padded(), d * 8)
}

/// Whether the key terminates within layer `d`'s slice.
#[inline]
fn ends_at(key: &PaddedKey, d: usize) -> bool {
    key.len() <= (d + 1) * 8
}

impl<S: KeySource> Masstree<S> {
    /// Create an empty tree resolving keys through `source`.
    pub fn new(source: S) -> Self {
        Masstree {
            root: Layer::new(),
            source,
            len: 0,
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Access the key source.
    pub fn source(&self) -> &S {
        &self.source
    }

    /// Look up `key`; returns its TID if present.
    pub fn get(&self, key: &[u8]) -> Option<u64> {
        let padded = PaddedKey::from_key(key);
        let mut layer = &self.root;
        let mut d = 0usize;
        loop {
            let slice = slice_at(&padded, d);
            let slot = layer_find(&layer.root, slice)?;
            let ends = ends_at(&padded, d);
            match slot {
                Slot::Tid(t) => return self.verify(*t, key),
                Slot::Both(t, l) => {
                    if ends {
                        return self.verify(*t, key);
                    }
                    layer = l;
                    d += 1;
                }
                Slot::Layer(l) => {
                    if ends {
                        return None;
                    }
                    layer = l;
                    d += 1;
                }
            }
        }
    }

    #[inline]
    fn verify(&self, tid: u64, key: &[u8]) -> Option<u64> {
        let mut scratch = [0u8; KEY_SCRATCH_LEN];
        let stored = self.source.load_key(tid, &mut scratch);
        hot_bits::first_mismatch_bit(stored, key).is_none().then_some(tid)
    }

    /// Insert `key → tid` (upsert); returns the previous TID if present.
    pub fn insert(&mut self, key: &[u8], tid: u64) -> Option<u64> {
        assert!(tid <= MAX_TID, "tid exceeds MAX_TID");
        let padded = PaddedKey::from_key(key);
        // Split borrows: move the layer walk into a free function that only
        // borrows the source immutably.
        let old = insert_into_layer(&self.source, &mut self.root, &padded, 0, tid);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Remove `key`; returns its TID if present.
    pub fn remove(&mut self, key: &[u8]) -> Option<u64> {
        self.get(key)?;
        let padded = PaddedKey::from_key(key);
        let removed = remove_from_layer(&mut self.root, &padded, 0);
        debug_assert!(removed.is_some());
        self.len -= 1;
        removed
    }

    /// Iterator over all TIDs in ascending key order.
    pub fn iter(&self) -> Cursor<'_, S> {
        Cursor {
            frames: vec![Frame::Node(&self.root.root, 0)],
            pending: None,
            _tree: self,
        }
    }

    /// Iterator over TIDs with keys `>= key`, ascending.
    pub fn range_from(&self, key: &[u8]) -> Cursor<'_, S> {
        let padded = PaddedKey::from_key(key);
        let mut frames = Vec::new();
        self.seek(&self.root, &padded, key, 0, &mut frames);
        Cursor {
            frames,
            pending: None,
            _tree: self,
        }
    }

    /// Build cursor frames for the first entry `>= key` within `layer`.
    fn seek<'a>(
        &'a self,
        layer: &'a Layer,
        padded: &PaddedKey,
        key: &[u8],
        d: usize,
        frames: &mut Vec<Frame<'a>>,
    ) {
        let slice = slice_at(padded, d);
        // Descend the layer's B-tree, queueing right siblings.
        let mut node = &layer.root;
        loop {
            match node {
                LNode::Inner { seps, children } => {
                    let at = seps.partition_point(|&s| s <= slice);
                    frames.push(Frame::Node(node, at + 1));
                    node = &children[at];
                }
                LNode::Leaf { keys, slots } => {
                    let at = keys.partition_point(|&s| s < slice);
                    if at < keys.len() && keys[at] == slice {
                        // Boundary slot: decide inclusion precisely.
                        frames.push(Frame::Node(node, at + 1));
                        let ends = ends_at(padded, d);
                        match &slots[at] {
                            Slot::Tid(t) => {
                                let mut scratch = [0u8; KEY_SCRATCH_LEN];
                                if self.source.load_key(*t, &mut scratch) >= key {
                                    frames.push(Frame::Pending(*t));
                                }
                            }
                            Slot::Layer(l) => {
                                if ends {
                                    // Everything below continues past the
                                    // slice, hence sorts after `key`.
                                    frames.push(Frame::Node(&l.root, 0));
                                } else {
                                    self.seek(l, padded, key, d + 1, frames);
                                }
                            }
                            Slot::Both(t, l) => {
                                if ends {
                                    frames.push(Frame::Node(&l.root, 0));
                                    let mut scratch = [0u8; KEY_SCRATCH_LEN];
                                    if self.source.load_key(*t, &mut scratch) >= key {
                                        frames.push(Frame::Pending(*t));
                                    }
                                } else {
                                    // The ending key sorts before `key`.
                                    self.seek(l, padded, key, d + 1, frames);
                                }
                            }
                        }
                    } else {
                        frames.push(Frame::Node(node, at));
                    }
                    return;
                }
            }
        }
    }

    /// Collect up to `limit` TIDs with keys `>= key`.
    pub fn scan(&self, key: &[u8], limit: usize) -> Vec<u64> {
        self.range_from(key).take(limit).collect()
    }

    /// Memory footprint of all layer nodes, plus the key-suffix (ksuf)
    /// storage the original Masstree keeps in its leaves: a key ending in
    /// layer `d` whose bytes extend past the matched slices has its suffix
    /// materialized leaf-side. Our TID-based variant resolves suffixes
    /// through the key source instead, but charges the same bytes so the
    /// Figure 9 comparison stays faithful to the original's footprint.
    pub fn memory_stats(&self) -> MemoryStats {
        fn node_size<S: KeySource>(
            src: &S,
            node: &LNode,
            depth: usize,
        ) -> (usize, usize, usize) {
            match node {
                LNode::Leaf { slots, .. } => {
                    // Fixed-capacity slot area (16 slices + 16 slots) plus
                    // recursion into nested layers.
                    let mut bytes = std::mem::size_of::<LNode>()
                        + FANOUT * (8 + std::mem::size_of::<Slot>());
                    let mut count = 1;
                    let mut ksuf = 0usize;
                    let mut scratch = [0u8; KEY_SCRATCH_LEN];
                    for s in slots {
                        if let Some(t) = s.tid() {
                            let len = src.load_key(t, &mut scratch).len();
                            ksuf += len.saturating_sub((depth + 1) * 8);
                        }
                        if let Some(l) = s.layer() {
                            let (b, c, k) = node_size(src, &l.root, depth + 1);
                            bytes += b + std::mem::size_of::<Layer>();
                            count += c;
                            ksuf += k;
                        }
                    }
                    (bytes, count, ksuf)
                }
                LNode::Inner { children, .. } => {
                    let mut bytes = std::mem::size_of::<LNode>() + FANOUT * 16;
                    let mut count = 1;
                    let mut ksuf = 0usize;
                    for c in children {
                        let (b, n, k) = node_size(src, c, depth);
                        bytes += b;
                        count += n;
                        ksuf += k;
                    }
                    (bytes, count, ksuf)
                }
            }
        }
        let (node_bytes, node_count, ksuf) = node_size(&self.source, &self.root.root, 0);
        MemoryStats {
            node_bytes,
            node_count,
            aux_bytes: ksuf,
            key_count: self.len,
            capacity_bytes: 0,
        }
    }

    /// Leaf-depth histogram: depth counts B-tree nodes traversed across all
    /// layers (the comparison-based work per lookup).
    pub fn depth_stats(&self) -> DepthStats {
        let mut stats = DepthStats::new();
        fn walk(node: &LNode, depth: usize, stats: &mut DepthStats) {
            match node {
                LNode::Leaf { slots, .. } => {
                    for s in slots {
                        if s.tid().is_some() {
                            stats.record(depth);
                        }
                        if let Some(l) = s.layer() {
                            walk(&l.root, depth + 1, stats);
                        }
                    }
                }
                LNode::Inner { children, .. } => {
                    for c in children {
                        walk(c, depth + 1, stats);
                    }
                }
            }
        }
        walk(&self.root.root, 1, &mut stats);
        stats
    }

    /// Structural invariant check (test support): slice order within
    /// layers, layer sizes, and full-key order across the whole tree.
    pub fn validate(&self) {
        let mut scratch = [0u8; KEY_SCRATCH_LEN];
        let tids: Vec<u64> = self.iter().collect();
        assert_eq!(tids.len(), self.len, "iterated count equals len");
        let mut prev: Option<Vec<u8>> = None;
        for tid in &tids {
            let k = self.source.load_key(*tid, &mut scratch).to_vec();
            if let Some(p) = &prev {
                assert!(*p < k, "iteration strictly ascending");
            }
            assert_eq!(self.get(&k), Some(*tid), "every key findable");
            prev = Some(k);
        }
    }
}

/// Find the slot for `slice` within a layer's B-tree.
fn layer_find(node: &LNode, slice: u64) -> Option<&Slot> {
    let mut node = node;
    loop {
        match node {
            LNode::Inner { seps, children } => {
                let at = seps.partition_point(|&s| s <= slice);
                node = &children[at];
            }
            LNode::Leaf { keys, slots } => {
                let at = keys.partition_point(|&s| s < slice);
                return (at < keys.len() && keys[at] == slice).then(|| &slots[at]);
            }
        }
    }
}

fn insert_into_layer<S: KeySource>(
    source: &S,
    layer: &mut Layer,
    key: &PaddedKey,
    d: usize,
    tid: u64,
) -> Option<u64> {
    let slice = slice_at(key, d);
    let (old, up) = insert_rec(source, &mut layer.root, key, d, slice, tid);
    if let InsertUp::Split { sep, right } = up {
        let old_root = std::mem::replace(&mut layer.root, LNode::new_leaf());
        layer.root = LNode::Inner {
            seps: vec![sep],
            children: vec![Box::new(old_root), right],
        };
    }
    if old.is_none() {
        layer.len += 1;
    }
    old
}

fn insert_rec<S: KeySource>(
    source: &S,
    node: &mut LNode,
    key: &PaddedKey,
    d: usize,
    slice: u64,
    tid: u64,
) -> (Option<u64>, InsertUp) {
    match node {
        LNode::Inner { seps, children } => {
            let at = seps.partition_point(|&s| s <= slice);
            let (old, up) = insert_rec(source, &mut children[at], key, d, slice, tid);
            match up {
                InsertUp::Done => (old, InsertUp::Done),
                InsertUp::Split { sep, right } => {
                    seps.insert(at, sep);
                    children.insert(at + 1, right);
                    if children.len() <= FANOUT {
                        return (old, InsertUp::Done);
                    }
                    let mid = children.len() / 2;
                    let promote = seps[mid - 1];
                    let right_seps = seps.split_off(mid);
                    seps.pop();
                    let right_children = children.split_off(mid);
                    (
                        old,
                        InsertUp::Split {
                            sep: promote,
                            right: Box::new(LNode::Inner {
                                seps: right_seps,
                                children: right_children,
                            }),
                        },
                    )
                }
            }
        }
        LNode::Leaf { keys, slots } => {
            let at = keys.partition_point(|&s| s < slice);
            if at < keys.len() && keys[at] == slice {
                let old = slot_insert(source, &mut slots[at], key, d, tid);
                return (old, InsertUp::Done);
            }
            keys.insert(at, slice);
            slots.insert(at, Slot::Tid(tid));
            if keys.len() <= FANOUT {
                return (None, InsertUp::Done);
            }
            let mid = keys.len() / 2;
            let right_keys = keys.split_off(mid);
            let right_slots = slots.split_off(mid);
            let sep = right_keys[0];
            (
                None,
                InsertUp::Split {
                    sep,
                    right: Box::new(LNode::Leaf {
                        keys: right_keys,
                        slots: right_slots,
                    }),
                },
            )
        }
    }
}

/// Insert into an occupied slot (same slice). Handles upsert, sub-layer
/// creation and the ends-here/continues distinction.
fn slot_insert<S: KeySource>(
    source: &S,
    slot: &mut Slot,
    key: &PaddedKey,
    d: usize,
    tid: u64,
) -> Option<u64> {
    let ends = ends_at(key, d);
    match slot {
        Slot::Tid(existing) => {
            let existing = *existing;
            let mut scratch = [0u8; KEY_SCRATCH_LEN];
            let stored = source.load_key(existing, &mut scratch);
            if hot_bits::first_mismatch_bit(stored, key.bytes()).is_none() {
                *slot = Slot::Tid(tid);
                return Some(existing);
            }
            // Conflict: same slice, different keys — at most one ends here.
            let stored_padded = PaddedKey::from_key(stored);
            let existing_ends = ends_at(&stored_padded, d);
            debug_assert!(
                !(ends && existing_ends),
                "two distinct keys cannot both end in the same slice"
            );
            if ends {
                // New key ends; existing continues into a fresh sub-layer.
                let mut sub = Layer::new();
                insert_into_layer(source, &mut sub, &stored_padded, d + 1, existing);
                *slot = Slot::Both(tid, Box::new(sub));
            } else if existing_ends {
                let mut sub = Layer::new();
                insert_into_layer(source, &mut sub, key, d + 1, tid);
                *slot = Slot::Both(existing, Box::new(sub));
            } else {
                // Both continue: push both down (they may share further
                // slices; the recursion handles it).
                let mut sub = Layer::new();
                insert_into_layer(source, &mut sub, &stored_padded, d + 1, existing);
                insert_into_layer(source, &mut sub, key, d + 1, tid);
                *slot = Slot::Layer(Box::new(sub));
            }
            None
        }
        Slot::Layer(l) => {
            if ends {
                let l = std::mem::replace(l, Box::new(Layer::new()));
                *slot = Slot::Both(tid, l);
                None
            } else {
                insert_into_layer(source, l, key, d + 1, tid)
            }
        }
        Slot::Both(existing, l) => {
            if ends {
                // Same slice, both end -> same key: upsert.
                let old = *existing;
                *existing = tid;
                Some(old)
            } else {
                insert_into_layer(source, l, key, d + 1, tid)
            }
        }
    }
}

fn remove_from_layer(layer: &mut Layer, key: &PaddedKey, d: usize) -> Option<u64> {
    let slice = slice_at(key, d);
    let removed = remove_rec(&mut layer.root, key, d, slice);
    if removed.is_some() {
        layer.len -= 1;
    }
    // Root shrink: an inner root with a single child collapses.
    loop {
        match &mut layer.root {
            LNode::Inner { children, .. } if children.len() == 1 => {
                let only = children.pop().expect("one child");
                layer.root = *only;
            }
            _ => break,
        }
    }
    removed
}

fn remove_rec(node: &mut LNode, key: &PaddedKey, d: usize, slice: u64) -> Option<u64> {
    match node {
        LNode::Inner { seps, children } => {
            let at = seps.partition_point(|&s| s <= slice);
            let removed = remove_rec(&mut children[at], key, d, slice)?;
            // Merge an emptied leaf child away (no rebalancing: layers are
            // small and correctness is what the baseline needs).
            let empty = matches!(children[at].as_ref(), LNode::Leaf { keys, .. } if keys.is_empty());
            if empty && children.len() > 1 {
                children.remove(at);
                seps.remove(at.min(seps.len() - 1));
            }
            Some(removed)
        }
        LNode::Leaf { keys, slots } => {
            let at = keys.partition_point(|&s| s < slice);
            if at >= keys.len() || keys[at] != slice {
                return None;
            }
            let ends = ends_at(key, d);
            match &mut slots[at] {
                Slot::Tid(t) => {
                    let tid = *t;
                    keys.remove(at);
                    slots.remove(at);
                    Some(tid)
                }
                Slot::Both(t, l) => {
                    if ends {
                        let tid = *t;
                        let l = match std::mem::replace(&mut slots[at], Slot::Tid(0)) {
                            Slot::Both(_, l) => l,
                            _ => unreachable!(),
                        };
                        slots[at] = Slot::Layer(l);
                        Some(tid)
                    } else {
                        let removed = remove_from_layer(l, key, d + 1)?;
                        if l.len == 0 {
                            let t = *t;
                            slots[at] = Slot::Tid(t);
                        }
                        Some(removed)
                    }
                }
                Slot::Layer(l) => {
                    if ends {
                        return None;
                    }
                    let removed = remove_from_layer(l, key, d + 1)?;
                    if l.len == 0 {
                        keys.remove(at);
                        slots.remove(at);
                    } else if l.len == 1 {
                        // Collapse a singleton pure-TID sub-layer.
                        if let LNode::Leaf { slots: ss, .. } = &l.root {
                            if ss.len() == 1 {
                                if let Slot::Tid(t) = ss[0] {
                                    slots[at] = Slot::Tid(t);
                                }
                            }
                        }
                    }
                    Some(removed)
                }
            }
        }
    }
}

/// Cursor frame: a position in some layer's B-tree, or a key to yield.
enum Frame<'a> {
    Node(&'a LNode, usize),
    Pending(u64),
}

/// Ordered iterator over leaf TIDs.
pub struct Cursor<'a, S> {
    frames: Vec<Frame<'a>>,
    pending: Option<u64>,
    _tree: &'a Masstree<S>,
}

impl<'a, S: KeySource> Iterator for Cursor<'a, S> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if let Some(t) = self.pending.take() {
            return Some(t);
        }
        loop {
            match self.frames.last_mut()? {
                Frame::Pending(t) => {
                    let t = *t;
                    self.frames.pop();
                    return Some(t);
                }
                Frame::Node(node, idx) => match node {
                    LNode::Inner { children, .. } => {
                        if *idx >= children.len() {
                            self.frames.pop();
                            continue;
                        }
                        *idx += 1;
                        let child = &children[*idx - 1];
                        self.frames.push(Frame::Node(child, 0));
                    }
                    LNode::Leaf { keys, slots } => {
                        if *idx >= keys.len() {
                            self.frames.pop();
                            continue;
                        }
                        *idx += 1;
                        match &slots[*idx - 1] {
                            Slot::Tid(t) => return Some(*t),
                            Slot::Layer(l) => {
                                self.frames.push(Frame::Node(&l.root, 0));
                            }
                            Slot::Both(t, l) => {
                                let t = *t;
                                self.frames.push(Frame::Node(&l.root, 0));
                                return Some(t);
                            }
                        }
                    }
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hot_keys::{encode_u64, str_key, ArenaKeySource, EmbeddedKeySource};

    fn int_tree(keys: &[u64]) -> Masstree<EmbeddedKeySource> {
        let mut t = Masstree::new(EmbeddedKeySource);
        for &k in keys {
            t.insert(&encode_u64(k), k);
        }
        t
    }

    #[test]
    fn empty_and_single_layer_integers() {
        let mut t = Masstree::new(EmbeddedKeySource);
        assert!(t.is_empty());
        assert_eq!(t.get(&encode_u64(1)), None);
        for k in [7u64, 1, 900, 42] {
            t.insert(&encode_u64(k), k);
        }
        // 8-byte keys live entirely in layer 0.
        assert_eq!(t.len(), 4);
        assert_eq!(t.get(&encode_u64(900)), Some(900));
        assert_eq!(t.get(&encode_u64(901)), None);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![1, 7, 42, 900]);
        t.validate();
    }

    #[test]
    fn ten_thousand_integers() {
        let keys: Vec<u64> = (0..10_000).collect();
        let t = int_tree(&keys);
        t.validate();
        assert_eq!(t.iter().collect::<Vec<_>>(), keys);
        for &k in keys.iter().step_by(103) {
            assert_eq!(t.get(&encode_u64(k)), Some(k));
        }
    }

    #[test]
    fn multi_layer_strings() {
        let mut arena = ArenaKeySource::new();
        // 20+ byte keys sharing 16-byte prefixes force three layers.
        let keys: Vec<Vec<u8>> = (0..50)
            .map(|i| str_key(format!("shared-prefix-0123456789-{i:03}").as_bytes()).unwrap())
            .collect();
        let tids: Vec<u64> = keys.iter().map(|k| arena.push(k)).collect();
        let mut t = Masstree::new(&arena);
        for (k, &tid) in keys.iter().zip(&tids) {
            t.insert(k, tid);
        }
        t.validate();
        for (k, &tid) in keys.iter().zip(&tids) {
            assert_eq!(t.get(k), Some(tid));
        }
        assert_eq!(t.get(&str_key(b"shared-prefix-0123456789-xxx").unwrap()), None);
        assert_eq!(t.iter().collect::<Vec<_>>(), tids);
    }

    #[test]
    fn key_ending_at_slice_boundary_coexists_with_extension() {
        let mut arena = ArenaKeySource::new();
        // "abcdefg" -> 8 bytes with terminator: ends exactly at slice 0.
        // "abcdefg\x01..." style extensions share slice 0 and continue.
        let short = str_key(b"abcdefg").unwrap();
        let long1 = str_key(b"abcdefg\x01xyz").unwrap();
        let long2 = str_key(b"abcdefg\x02").unwrap();
        let ts = arena.push(&short);
        let t1 = arena.push(&long1);
        let t2 = arena.push(&long2);
        let mut t = Masstree::new(&arena);
        t.insert(&long1, t1);
        t.insert(&short, ts);
        t.insert(&long2, t2);
        t.validate();
        assert_eq!(t.get(&short), Some(ts));
        assert_eq!(t.get(&long1), Some(t1));
        assert_eq!(t.get(&long2), Some(t2));
        // Order: short key first (it is a prefix-before-extension).
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![ts, t1, t2]);
        // Remove the boundary key; extensions survive.
        assert_eq!(t.remove(&short), Some(ts));
        assert_eq!(t.get(&short), None);
        assert_eq!(t.get(&long1), Some(t1));
        t.validate();
    }

    #[test]
    fn removal_collapses_layers() {
        let mut arena = ArenaKeySource::new();
        let keys: Vec<Vec<u8>> = (0..20)
            .map(|i| str_key(format!("long-common-prefix-for-all-{i:02}").as_bytes()).unwrap())
            .collect();
        let tids: Vec<u64> = keys.iter().map(|k| arena.push(k)).collect();
        let mut t = Masstree::new(&arena);
        for (k, &tid) in keys.iter().zip(&tids) {
            t.insert(k, tid);
        }
        for (k, &tid) in keys.iter().zip(&tids) {
            assert_eq!(t.remove(k), Some(tid));
            assert_eq!(t.remove(k), None);
        }
        assert!(t.is_empty());
        t.validate();
    }

    #[test]
    fn scans_across_layers() {
        let mut arena = ArenaKeySource::new();
        let mut keys: Vec<Vec<u8>> = Vec::new();
        for stem in ["alpha", "beta", "gamma-very-long-stem"] {
            for i in 0..30 {
                keys.push(str_key(format!("{stem}/{i:04}").as_bytes()).unwrap());
            }
        }
        keys.sort();
        let tids: Vec<u64> = keys.iter().map(|k| arena.push(k)).collect();
        let mut t = Masstree::new(&arena);
        for (k, &tid) in keys.iter().zip(&tids) {
            t.insert(k, tid);
        }
        t.validate();
        // Scan from several probes, including between keys.
        for probe in ["alpha/0010", "beta", "gamma", "a", "zzz", "beta/0015x"] {
            let probe_key = str_key(probe.as_bytes()).unwrap();
            let want: Vec<u64> = keys
                .iter()
                .zip(&tids)
                .filter(|(k, _)| k.as_slice() >= probe_key.as_slice())
                .map(|(_, &tid)| tid)
                .take(10)
                .collect();
            assert_eq!(t.scan(&probe_key, 10), want, "probe {probe}");
        }
    }

    #[test]
    fn random_integers_match_model() {
        use std::collections::BTreeMap;
        let mut t = Masstree::new(EmbeddedKeySource);
        let mut model = BTreeMap::new();
        let mut x = 0xDEAD_BEEFu64;
        for _ in 0..20_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = x % 3_000;
            if x % 8 < 5 {
                assert_eq!(t.insert(&encode_u64(k), k), model.insert(k, k));
            } else {
                assert_eq!(t.remove(&encode_u64(k)), model.remove(&k));
            }
        }
        t.validate();
        assert_eq!(
            t.iter().collect::<Vec<_>>(),
            model.values().copied().collect::<Vec<_>>()
        );
    }

    #[test]
    fn memory_grows_with_string_length() {
        // Masstree's defining cost: long keys mean more layers (the paper's
        // Figure 9 shows its footprint growing 230% for urls).
        let n = 2_000u64;
        let ints = int_tree(&(0..n).collect::<Vec<_>>());
        let mut arena = ArenaKeySource::new();
        let keys: Vec<Vec<u8>> = (0..n)
            .map(|i| {
                str_key(
                    format!(
                        "http://www.domain-{:04}.example.org/section-{}/page?id={i:08}",
                        i % 150,
                        i % 11
                    )
                    .as_bytes(),
                )
                .unwrap()
            })
            .collect();
        let tids: Vec<u64> = keys.iter().map(|k| arena.push(k)).collect();
        let mut urls = Masstree::new(&arena);
        for (k, &tid) in keys.iter().zip(&tids) {
            urls.insert(k, tid);
        }
        let a = ints.memory_stats().bytes_per_key();
        let b = urls.memory_stats().bytes_per_key();
        assert!(b > a * 1.5, "url {b:.1} B/key should far exceed int {a:.1} B/key");
    }
}
