//! TID → key resolution.
//!
//! Patricia-style tries skip non-discriminative bits, so a lookup that
//! reaches a leaf must compare the search key against the leaf's *full* key
//! (Listing 2, line 7 of the paper). In a main-memory DBMS that key lives in
//! the base tuple addressed by the TID; [`KeySource`] abstracts that
//! resolution so that all index structures in this workspace share one
//! convention:
//!
//! * [`EmbeddedKeySource`] — the TID *is* the key (up to 63-bit integers,
//!   encoded big-endian), mirroring the paper's embedding of keys ≤ 8 bytes;
//! * [`ArenaKeySource`] — TIDs index a caller-owned append-only tuple arena,
//!   mirroring string keys resolved from the record store.

use crate::encode::encode_u64;
use crate::{MAX_KEY_LEN, MAX_TID};

/// Scratch buffer length for [`KeySource::load_key`] (large enough for any
/// embedded fixed-width encoding).
pub const KEY_SCRATCH_LEN: usize = 16;

/// Resolve the key bytes for a tuple identifier.
///
/// Implementations must be cheap and, for the concurrent index, callable from
/// many threads simultaneously (`Sync`). A TID handed to `load_key` is always
/// one previously inserted into the index, with the leaf tag bit cleared.
pub trait KeySource: Sync {
    /// Return the full key for `tid`. Implementations either reference
    /// storage they own or encode into `scratch` and return a slice of it.
    fn load_key<'a>(&'a self, tid: u64, scratch: &'a mut [u8; KEY_SCRATCH_LEN]) -> &'a [u8];

    /// Compare the key stored under `tid` with `key`.
    ///
    /// Comparison-based structures (the B+-tree baseline) call this on every
    /// node visited — the paper's STX-B+-tree setup, where slots hold TIDs
    /// and long keys are resolved through the tuple store. Sources with
    /// embedded keys override this with a direct integer comparison.
    #[inline]
    fn cmp_tid_key(&self, tid: u64, key: &[u8]) -> std::cmp::Ordering {
        let mut scratch = [0u8; KEY_SCRATCH_LEN];
        self.load_key(tid, &mut scratch).cmp(key)
    }

    /// Hint that `load_key(tid, ..)` is about to be called, so the tuple
    /// memory can be prefetched while other work proceeds.
    ///
    /// The batched-lookup engine (`hot_core::batch`) issues this for every
    /// leaf it reaches, then verifies all keys of the group afterwards —
    /// overlapping what would otherwise be one serial cache miss per key.
    /// Sources that materialize keys from the TID itself (no memory
    /// dereference) keep the default no-op.
    #[inline]
    fn prefetch_key(&self, tid: u64) {
        let _ = tid;
    }
}

/// Key source for keys embedded directly in the TID: the key is the 8-byte
/// big-endian encoding of the (≤ 63-bit) TID value.
///
/// With this source the index stores *no* per-key heap data at all — exactly
/// how the paper reaches 11–14 bytes/key for the integer data set.
#[derive(Debug, Default, Clone, Copy)]
pub struct EmbeddedKeySource;

impl KeySource for EmbeddedKeySource {
    #[inline]
    fn load_key<'a>(&'a self, tid: u64, scratch: &'a mut [u8; KEY_SCRATCH_LEN]) -> &'a [u8] {
        debug_assert!(tid <= MAX_TID);
        scratch[..8].copy_from_slice(&encode_u64(tid));
        &scratch[..8]
    }

    #[inline]
    fn cmp_tid_key(&self, tid: u64, key: &[u8]) -> std::cmp::Ordering {
        if key.len() == 8 {
            // Big-endian encoding preserves order: compare natively.
            let probe = u64::from_be_bytes(key.try_into().expect("len checked"));
            tid.cmp(&probe)
        } else {
            encode_u64(tid).as_slice().cmp(key)
        }
    }
}

/// An append-only arena of variable-length keys; the TID is the key's byte
/// offset in the arena.
///
/// This stands in for the DBMS tuple store: `push` appends a length-prefixed
/// key record and returns the TID the index should store; `load_key` is a
/// single bounds-checked slice into the arena — one pointer dereference,
/// exactly like resolving an in-memory tuple (keys up to 64 bytes typically
/// cost one cache miss).
#[derive(Debug, Default)]
pub struct ArenaKeySource {
    /// Length-prefixed records: `[len: u8][key bytes…]` back to back.
    data: Vec<u8>,
    count: usize,
}

impl ArenaKeySource {
    /// Create an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an arena with preallocated capacity for `keys` keys of
    /// `avg_len` average length.
    pub fn with_capacity(keys: usize, avg_len: usize) -> Self {
        ArenaKeySource {
            data: Vec::with_capacity(keys * (avg_len + 1)),
            count: 0,
        }
    }

    /// Append a key and return its TID (the record's byte offset).
    ///
    /// # Panics
    /// Panics if the key exceeds [`MAX_KEY_LEN`] or the arena would exceed
    /// the TID space.
    pub fn push(&mut self, key: &[u8]) -> u64 {
        assert!(key.len() <= MAX_KEY_LEN);
        let tid = self.data.len() as u64;
        assert!(tid <= MAX_TID);
        self.data.push(key.len() as u8);
        self.data.extend_from_slice(key);
        self.count += 1;
        tid
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The key stored under `tid`.
    #[inline]
    pub fn key(&self, tid: u64) -> &[u8] {
        let offset = tid as usize;
        let len = self.data[offset] as usize;
        &self.data[offset + 1..offset + 1 + len]
    }

    /// The key stored under `tid`, or `None` when `tid` does not name a
    /// record inside the arena — the validation gate for TIDs arriving
    /// from an untrusted source (the wire protocol's PUT frames): a
    /// bogus offset must be rejected, not dereferenced.
    ///
    /// An offset is only accepted when its length prefix fits entirely
    /// inside the arena; an offset pointing *into* a record's key bytes
    /// is indistinguishable from a record header by construction, so the
    /// caller must also compare the returned key against the claimed one
    /// (the server does) before trusting the TID.
    pub fn try_key(&self, tid: u64) -> Option<&[u8]> {
        let offset = usize::try_from(tid).ok()?;
        let len = *self.data.get(offset)? as usize;
        self.data.get(offset + 1..offset + 1 + len)
    }

    /// Total bytes of raw key data, excluding the length prefixes (the
    /// paper's "raw key" line in Figure 9).
    pub fn raw_key_bytes(&self) -> usize {
        self.data.len() - self.count
    }

    /// Allocator-level bytes held by the key store: the record `Vec`'s
    /// reserved capacity, length prefixes and growth slack included. This
    /// is the tuple-store side of a TID-only index's total footprint — the
    /// storage a heap-backed trie still needs at lookup time to resolve a
    /// TID back into its key.
    pub fn capacity_bytes(&self) -> usize {
        self.data.capacity()
    }
}

impl KeySource for ArenaKeySource {
    #[inline]
    fn load_key<'a>(&'a self, tid: u64, _scratch: &'a mut [u8; KEY_SCRATCH_LEN]) -> &'a [u8] {
        self.key(tid)
    }

    #[inline]
    fn prefetch_key(&self, tid: u64) {
        // One line covers the length prefix plus the first 63 key bytes —
        // the whole record for every data set in this workspace except the
        // longest url tails.
        hot_bits::prefetch_read(self.data.as_ptr().wrapping_add(tid as usize));
    }
}

/// Adapter making `&S` a key source (lets index structures borrow a shared
/// arena instead of owning it).
impl<S: KeySource + ?Sized> KeySource for &S {
    #[inline]
    fn load_key<'a>(&'a self, tid: u64, scratch: &'a mut [u8; KEY_SCRATCH_LEN]) -> &'a [u8] {
        (**self).load_key(tid, scratch)
    }

    #[inline]
    fn cmp_tid_key(&self, tid: u64, key: &[u8]) -> std::cmp::Ordering {
        (**self).cmp_tid_key(tid, key)
    }

    #[inline]
    fn prefetch_key(&self, tid: u64) {
        (**self).prefetch_key(tid)
    }
}

impl<S: KeySource + Send + ?Sized> KeySource for std::sync::Arc<S> {
    #[inline]
    fn load_key<'a>(&'a self, tid: u64, scratch: &'a mut [u8; KEY_SCRATCH_LEN]) -> &'a [u8] {
        (**self).load_key(tid, scratch)
    }

    #[inline]
    fn cmp_tid_key(&self, tid: u64, key: &[u8]) -> std::cmp::Ordering {
        (**self).cmp_tid_key(tid, key)
    }

    #[inline]
    fn prefetch_key(&self, tid: u64) {
        (**self).prefetch_key(tid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedded_source_encodes_big_endian() {
        let src = EmbeddedKeySource;
        let mut scratch = [0u8; KEY_SCRATCH_LEN];
        assert_eq!(src.load_key(0x0102, &mut scratch), &encode_u64(0x0102));
        let mut scratch2 = [0u8; KEY_SCRATCH_LEN];
        assert_eq!(src.load_key(MAX_TID, &mut scratch2), &encode_u64(MAX_TID));
    }

    #[test]
    fn embedded_source_preserves_order() {
        let src = EmbeddedKeySource;
        let mut s1 = [0u8; KEY_SCRATCH_LEN];
        let mut s2 = [0u8; KEY_SCRATCH_LEN];
        let a = src.load_key(100, &mut s1).to_vec();
        let b = src.load_key(200, &mut s2).to_vec();
        assert!(a < b);
    }

    #[test]
    fn arena_roundtrip() {
        let mut arena = ArenaKeySource::new();
        let t1 = arena.push(b"alpha");
        let t2 = arena.push(b"beta");
        let t3 = arena.push(b"");
        // TIDs are record offsets: 0, 1+5, 1+5+1+4.
        assert_eq!((t1, t2, t3), (0, 6, 11));
        assert_eq!(arena.key(t1), b"alpha");
        assert_eq!(arena.key(t2), b"beta");
        assert_eq!(arena.key(t3), b"");
        assert_eq!(arena.len(), 3);
        assert_eq!(arena.raw_key_bytes(), 9);
    }

    #[test]
    fn arena_as_key_source() {
        let mut arena = ArenaKeySource::new();
        let tid = arena.push(b"hello world");
        let mut scratch = [0u8; KEY_SCRATCH_LEN];
        assert_eq!(arena.load_key(tid, &mut scratch), b"hello world");
        // Through a shared reference too.
        let by_ref: &ArenaKeySource = &arena;
        let mut scratch2 = [0u8; KEY_SCRATCH_LEN];
        assert_eq!(by_ref.load_key(tid, &mut scratch2), b"hello world");
    }
}
