//! Shared key plumbing for every index structure in the HOT workspace.
//!
//! The paper's evaluation (Section 6.1) indexes binary-comparable keys and
//! resolves values through 64-bit **tuple identifiers** (TIDs): keys of up to
//! 8 bytes are embedded directly in the TID, longer keys live in an external
//! tuple store the index references. This crate provides:
//!
//! * [`encode`] — order-preserving, prefix-free key encodings (big-endian
//!   integers, NUL-terminated strings, the yago compound-key bit layout);
//! * [`PaddedKey`] — a fixed-size zero-padded key buffer that lets node-level
//!   code read 8-byte windows at any mask offset without bounds checks;
//! * [`KeySource`] — the trait through which tries resolve a TID back to its
//!   key bytes (needed because Patricia-style lookups must verify the
//!   candidate leaf against the full key), with embedded-integer and
//!   arena-backed implementations;
//! * [`DepthStats`] — the leaf-depth histogram used by the Figure 11
//!   experiment, shared across all tree structures.

#![deny(missing_docs)]

pub mod encode;
pub mod source;
pub mod stats;

pub use encode::{decode_u64, encode_u32, encode_u64, encode_yago, str_key, KeyError};
pub use source::{ArenaKeySource, EmbeddedKeySource, KeySource, KEY_SCRATCH_LEN};
pub use stats::DepthStats;

/// Maximum length, in bytes, of an encoded key.
///
/// Node masks address key bytes with 8-bit offsets, so keys are limited to
/// 256 bytes; the reference C++ implementation has the same bound. One byte
/// is reserved for the string terminator.
pub const MAX_KEY_LEN: usize = 255;

/// Length of the zero-padded key buffer: covers the largest addressable byte
/// offset (255) plus a full 8-byte window.
pub const KEY_PAD_LEN: usize = 264;

/// Largest legal tuple identifier (bit 63 is the leaf tag inside the tries).
pub const MAX_TID: u64 = (1 << 63) - 1;

/// A key copied into a fixed-size, zero-padded buffer.
///
/// All intra-node operations (mask extraction, bit addressing) operate on the
/// padded buffer so that no per-access bounds checks are needed; zero padding
/// is semantically correct because shorter keys sort before their extensions
/// and all stored keys are prefix-free.
#[derive(Clone)]
pub struct PaddedKey {
    buf: [u8; KEY_PAD_LEN],
    len: usize,
}

impl PaddedKey {
    /// An empty padded key.
    #[inline]
    pub fn new() -> Self {
        PaddedKey {
            buf: [0u8; KEY_PAD_LEN],
            len: 0,
        }
    }

    /// Copy `key` into the buffer, zeroing the remainder.
    ///
    /// # Panics
    /// Panics if `key` exceeds [`MAX_KEY_LEN`] bytes; callers validate key
    /// length at the public API boundary.
    #[inline]
    pub fn set(&mut self, key: &[u8]) {
        assert!(key.len() <= MAX_KEY_LEN, "key exceeds MAX_KEY_LEN");
        // Zero only the previously used prefix to keep this O(len).
        let dirty = self.len.max(key.len());
        self.buf[..dirty].fill(0);
        self.buf[..key.len()].copy_from_slice(key);
        self.len = key.len();
    }

    /// Construct directly from a key.
    #[inline]
    pub fn from_key(key: &[u8]) -> Self {
        let mut p = PaddedKey::new();
        p.set(key);
        p
    }

    /// The key bytes (unpadded).
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        &self.buf[..self.len]
    }

    /// The full zero-padded buffer.
    #[inline]
    pub fn padded(&self) -> &[u8; KEY_PAD_LEN] {
        &self.buf
    }

    /// Key length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the key is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Default for PaddedKey {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for PaddedKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PaddedKey({:02x?})", self.bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_key_roundtrip() {
        let mut p = PaddedKey::new();
        p.set(b"hello");
        assert_eq!(p.bytes(), b"hello");
        assert_eq!(p.len(), 5);
        assert_eq!(p.padded()[5], 0);
        assert_eq!(p.padded()[KEY_PAD_LEN - 1], 0);
    }

    #[test]
    fn padded_key_reset_clears_old_bytes() {
        let mut p = PaddedKey::new();
        p.set(b"a-rather-long-key");
        p.set(b"ab");
        assert_eq!(p.bytes(), b"ab");
        // Old tail must be zeroed: padding reads as 0.
        assert!(p.padded()[2..].iter().all(|&b| b == 0));
    }

    #[test]
    fn padded_key_max_len_accepted() {
        let big = vec![0xFFu8; MAX_KEY_LEN];
        let p = PaddedKey::from_key(&big);
        assert_eq!(p.len(), MAX_KEY_LEN);
        // Window loads at the largest offset stay in bounds.
        assert!(p.padded().len() >= MAX_KEY_LEN + 8);
    }

    #[test]
    #[should_panic(expected = "MAX_KEY_LEN")]
    fn padded_key_rejects_oversized() {
        let big = vec![0u8; MAX_KEY_LEN + 1];
        PaddedKey::from_key(&big);
    }
}
