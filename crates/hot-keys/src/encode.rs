//! Order-preserving, prefix-free key encodings.
//!
//! Tries index *binary-comparable* keys: the bit-string order must equal the
//! domain order, and no stored key may be a strict prefix of another (a
//! Patricia trie cannot represent a key that ends at an inner BiNode). The
//! encoders here establish both properties:
//!
//! * fixed-width big-endian integers are binary-comparable and, being all the
//!   same length, trivially prefix-free;
//! * strings without interior NUL bytes become prefix-free by appending a
//!   single 0x00 terminator (the classic C-string trick the reference HOT
//!   implementation uses), which also preserves order among NUL-free strings;
//! * yago triples use the exact compound bit layout of Section 6.1: bits
//!   38–63 subject, 27–37 predicate, 0–26 object.

use crate::MAX_KEY_LEN;

/// Errors returned by the fallible key encoders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyError {
    /// The encoded key would exceed [`MAX_KEY_LEN`] bytes.
    TooLong,
    /// The string contains an interior NUL byte and cannot be made
    /// prefix-free with the terminator encoding.
    EmbeddedNul,
    /// A compound-key component does not fit in its bit field.
    FieldOverflow,
}

impl std::fmt::Display for KeyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KeyError::TooLong => write!(f, "encoded key exceeds {MAX_KEY_LEN} bytes"),
            KeyError::EmbeddedNul => write!(f, "string key contains an interior NUL byte"),
            KeyError::FieldOverflow => write!(f, "compound key component overflows its bit field"),
        }
    }
}

impl std::error::Error for KeyError {}

/// Encode a `u64` as a big-endian, binary-comparable 8-byte key.
#[inline]
pub fn encode_u64(v: u64) -> [u8; 8] {
    v.to_be_bytes()
}

/// Encode a `u32` as a big-endian, binary-comparable 4-byte key.
#[inline]
pub fn encode_u32(v: u32) -> [u8; 4] {
    v.to_be_bytes()
}

/// Encode an `i64` order-preservingly (flip the sign bit so negative values
/// sort before positive ones in unsigned byte order).
#[inline]
pub fn encode_i64(v: i64) -> [u8; 8] {
    ((v as u64) ^ (1u64 << 63)).to_be_bytes()
}

/// Decode the big-endian 8-byte encoding back into a `u64`.
#[inline]
pub fn decode_u64(key: &[u8]) -> u64 {
    let mut bytes = [0u8; 8];
    bytes[..key.len().min(8)].copy_from_slice(&key[..key.len().min(8)]);
    u64::from_be_bytes(bytes)
}

/// Encode a string as a prefix-free, order-preserving key by appending a
/// 0x00 terminator.
///
/// Returns an error for strings containing interior NUL bytes or longer than
/// `MAX_KEY_LEN - 1` bytes.
pub fn str_key(s: &[u8]) -> Result<Vec<u8>, KeyError> {
    if s.len() > MAX_KEY_LEN - 1 {
        return Err(KeyError::TooLong);
    }
    if s.contains(&0u8) {
        return Err(KeyError::EmbeddedNul);
    }
    let mut key = Vec::with_capacity(s.len() + 1);
    key.extend_from_slice(s);
    key.push(0);
    Ok(key)
}

/// Width of the yago subject field (bits 38–63).
pub const YAGO_SUBJECT_BITS: u32 = 26;
/// Width of the yago predicate field (bits 27–37).
pub const YAGO_PREDICATE_BITS: u32 = 11;
/// Width of the yago object field (bits 0–26).
pub const YAGO_OBJECT_BITS: u32 = 27;

/// Compose a yago triple identifier with the paper's bit layout
/// (Section 6.1): the lowest 27 bits (0–26) hold the object id, bits 27–37
/// the predicate, bits 38–63 the subject.
pub fn encode_yago(subject: u32, predicate: u32, object: u32) -> Result<[u8; 8], KeyError> {
    if subject >= 1 << YAGO_SUBJECT_BITS
        || predicate >= 1 << YAGO_PREDICATE_BITS
        || object >= 1 << YAGO_OBJECT_BITS
    {
        return Err(KeyError::FieldOverflow);
    }
    let v = ((subject as u64) << (YAGO_PREDICATE_BITS + YAGO_OBJECT_BITS))
        | ((predicate as u64) << YAGO_OBJECT_BITS)
        | object as u64;
    Ok(encode_u64(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_encoding_is_order_preserving() {
        let values = [0u64, 1, 255, 256, u32::MAX as u64, u64::MAX - 1, u64::MAX];
        for &a in &values {
            for &b in &values {
                assert_eq!(a.cmp(&b), encode_u64(a).cmp(&encode_u64(b)));
            }
        }
    }

    #[test]
    fn i64_encoding_is_order_preserving() {
        let values = [i64::MIN, -1000, -1, 0, 1, 1000, i64::MAX];
        for &a in &values {
            for &b in &values {
                assert_eq!(a.cmp(&b), encode_i64(a).cmp(&encode_i64(b)));
            }
        }
    }

    #[test]
    fn u64_roundtrip() {
        for v in [0u64, 42, u64::MAX, 0xDEAD_BEEF] {
            assert_eq!(decode_u64(&encode_u64(v)), v);
        }
    }

    #[test]
    fn str_key_is_prefix_free_and_ordered() {
        let a = str_key(b"abc").unwrap();
        let b = str_key(b"abcd").unwrap();
        // "abc\0" is not a prefix of "abcd\0".
        assert!(!b.starts_with(&a));
        assert!(a < b);
        // Order among unrelated strings preserved.
        assert!(str_key(b"apple").unwrap() < str_key(b"banana").unwrap());
    }

    #[test]
    fn str_key_rejects_nul_and_oversize() {
        assert_eq!(str_key(b"a\0b"), Err(KeyError::EmbeddedNul));
        let long = vec![b'x'; MAX_KEY_LEN];
        assert_eq!(str_key(&long), Err(KeyError::TooLong));
        let ok = vec![b'x'; MAX_KEY_LEN - 1];
        assert!(str_key(&ok).is_ok());
    }

    #[test]
    fn yago_layout_matches_paper() {
        let key = encode_yago(1, 1, 1).unwrap();
        let v = u64::from_be_bytes(key);
        assert_eq!(v & ((1 << 27) - 1), 1, "object in bits 0-26");
        assert_eq!((v >> 27) & ((1 << 11) - 1), 1, "predicate in bits 27-37");
        assert_eq!(v >> 38, 1, "subject in bits 38-63");
    }

    #[test]
    fn yago_rejects_overflow() {
        assert_eq!(
            encode_yago(1 << YAGO_SUBJECT_BITS, 0, 0),
            Err(KeyError::FieldOverflow)
        );
        assert_eq!(
            encode_yago(0, 1 << YAGO_PREDICATE_BITS, 0),
            Err(KeyError::FieldOverflow)
        );
        assert_eq!(
            encode_yago(0, 0, 1 << YAGO_OBJECT_BITS),
            Err(KeyError::FieldOverflow)
        );
    }

    #[test]
    fn yago_sorts_by_subject_then_predicate_then_object() {
        let k1 = encode_yago(1, 5, 9).unwrap();
        let k2 = encode_yago(1, 6, 0).unwrap();
        let k3 = encode_yago(2, 0, 0).unwrap();
        assert!(k1 < k2 && k2 < k3);
    }
}
