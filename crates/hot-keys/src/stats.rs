//! Shared statistics types for the evaluation harness.

/// Histogram of leaf depths — "the depth distribution of leaf values, which
/// is a measure of how balanced a tree is" (Section 6.5, Figure 11).
///
/// Depth 1 means the leaf hangs directly off the root node.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct DepthStats {
    counts: Vec<u64>,
}

impl DepthStats {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one leaf at `depth`.
    pub fn record(&mut self, depth: usize) {
        if self.counts.len() <= depth {
            self.counts.resize(depth + 1, 0);
        }
        self.counts[depth] += 1;
    }

    /// Record `n` leaves at `depth`.
    pub fn record_n(&mut self, depth: usize, n: u64) {
        if self.counts.len() <= depth {
            self.counts.resize(depth + 1, 0);
        }
        self.counts[depth] += n;
    }

    /// Total number of leaves recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Smallest depth with at least one leaf.
    pub fn min_depth(&self) -> Option<usize> {
        self.counts.iter().position(|&c| c > 0)
    }

    /// Largest depth with at least one leaf (the overall tree height).
    pub fn max_depth(&self) -> Option<usize> {
        self.counts.iter().rposition(|&c| c > 0)
    }

    /// Mean leaf depth.
    pub fn mean_depth(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(d, &c)| d as u64 * c)
            .sum();
        weighted as f64 / total as f64
    }

    /// Leaf count per depth, from depth 0 upward.
    pub fn histogram(&self) -> &[u64] {
        &self.counts
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &DepthStats) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, &c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
    }
}

impl std::fmt::Display for DepthStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "leaves={} depth[min={} mean={:.2} max={}]",
            self.total(),
            self.min_depth().unwrap_or(0),
            self.mean_depth(),
            self.max_depth().unwrap_or(0),
        )
    }
}

/// Memory-footprint accounting reported by every index structure, matching
/// what Figure 9 measures ("custom code … that allows computing the memory
/// consumption without impacting the runtime behavior").
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MemoryStats {
    /// Bytes in live tree nodes (headers, masks, partial keys, value slots).
    pub node_bytes: usize,
    /// Number of live tree nodes.
    pub node_count: usize,
    /// Bytes of auxiliary index-owned storage (e.g. leaf records of an
    /// owning map wrapper); zero for TID-only indexes.
    pub aux_bytes: usize,
    /// Number of keys indexed.
    pub key_count: usize,
    /// Bytes the index's allocator has reserved from the OS, including
    /// slack not yet occupied by live data (0 when the index has no
    /// arena-level accounting — i.e. reservation tracks live bytes).
    pub capacity_bytes: usize,
}

impl MemoryStats {
    /// Total index footprint in bytes.
    pub fn total_bytes(&self) -> usize {
        self.node_bytes + self.aux_bytes
    }

    /// Allocator-level footprint: reserved capacity where tracked, else
    /// the live-byte total. This is what fig9 reports — what the process
    /// actually holds, not a `size_of` summation.
    pub fn footprint_bytes(&self) -> usize {
        self.capacity_bytes.max(self.total_bytes())
    }

    /// Allocator-level bytes per key (see
    /// [`footprint_bytes`](Self::footprint_bytes)).
    pub fn footprint_per_key(&self) -> f64 {
        if self.key_count == 0 {
            return 0.0;
        }
        self.footprint_bytes() as f64 / self.key_count as f64
    }

    /// Index bytes per key — the paper's headline space metric
    /// ("between 11.4 and 14.4 bytes per key" for HOT).
    pub fn bytes_per_key(&self) -> f64 {
        if self.key_count == 0 {
            return 0.0;
        }
        self.total_bytes() as f64 / self.key_count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let s = DepthStats::new();
        assert_eq!(s.total(), 0);
        assert_eq!(s.min_depth(), None);
        assert_eq!(s.max_depth(), None);
        assert_eq!(s.mean_depth(), 0.0);
    }

    #[test]
    fn record_and_aggregate() {
        let mut s = DepthStats::new();
        s.record(1);
        s.record(1);
        s.record(3);
        assert_eq!(s.total(), 3);
        assert_eq!(s.min_depth(), Some(1));
        assert_eq!(s.max_depth(), Some(3));
        assert!((s.mean_depth() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.histogram(), &[0, 2, 0, 1]);
    }

    #[test]
    fn merge_histograms() {
        let mut a = DepthStats::new();
        a.record_n(2, 5);
        let mut b = DepthStats::new();
        b.record_n(4, 1);
        b.record_n(2, 1);
        a.merge(&b);
        assert_eq!(a.total(), 7);
        assert_eq!(a.histogram(), &[0, 0, 6, 0, 1]);
    }

    #[test]
    fn memory_stats_bytes_per_key() {
        let m = MemoryStats {
            node_bytes: 1150,
            node_count: 10,
            aux_bytes: 0,
            key_count: 100,
            capacity_bytes: 0,
        };
        assert_eq!(m.total_bytes(), 1150);
        assert!((m.bytes_per_key() - 11.5).abs() < 1e-12);
        assert_eq!(m.footprint_bytes(), 1150);
        let reserved = MemoryStats {
            capacity_bytes: 2048,
            ..m
        };
        assert_eq!(reserved.footprint_bytes(), 2048);
        assert!((reserved.footprint_per_key() - 20.48).abs() < 1e-12);
    }
}
