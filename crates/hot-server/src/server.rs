//! The TCP server: shard-affine execution behind per-connection pipelining.
//!
//! Threading model (DESIGN.md §18): the index is a [`ShardedHot`] whose
//! *shard-owning worker threads* (one per shard, optionally core-pinned via
//! `hot_core::numa`) do all trie work. Connections get one lightweight I/O
//! thread each; a connection thread never descends the trie itself — it
//! decodes a window of pipelined requests, routes the window through the
//! sharded batch entry points (`get_batch_with` / `scan_batch`: one epoch
//! pin and one MLP ring per shard per drain), and scatters the responses
//! back in request order. So the expensive part of the server scales with
//! shards, not with connections.
//!
//! Backpressure is structural: a connection's window is bounded
//! ([`ServerConfig::window`]), responses are written with blocking
//! `write_all` *before* the next read, and the socket's write timeout is
//! the idle timeout — a reader that stops draining responses first stalls
//! only its own connection, then gets disconnected. Graceful shutdown (the
//! SHUTDOWN frame or [`ServerHandle::shutdown`]) stops the acceptor, lets
//! every connection finish its in-flight window, and joins all threads.

use crate::protocol::{
    err_code, FrameDecoder, ProtoError, Request, Response, MAX_BATCH_SCAN_TIDS, MAX_SCAN_TIDS,
};
use crate::store::{net_data_for, NetData};
use hot_core::{RouterScratch, ShardedHot};
use hot_keys::ArenaKeySource;
use hot_metrics::{OpKind, Registry};
use hot_ycsb::DatasetKind;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How often a blocked read wakes up to check the stop flag and the idle
/// clock. Bounds both shutdown latency and idle-timeout resolution.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Serving configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick one (the bound address
    /// is reported by [`ServerHandle::addr`]).
    pub addr: String,
    /// Which key corpus to materialize.
    pub kind: DatasetKind,
    /// Keys bulk-loaded at startup.
    pub keys: usize,
    /// Operations per workload phase the insert reserve is sized for.
    pub ops: usize,
    /// Corpus seed (must match the client's).
    pub seed: u64,
    /// Shard count of the range-partitioned index.
    pub shards: usize,
    /// Spawn the shard-owning worker pool (`false` = inline router, the
    /// single-threaded fallback used by small tests).
    pub workers: bool,
    /// Pin each shard worker to a core (`hot_core::numa`).
    pub pin: bool,
    /// Maximum pipelined requests executed per drain, per connection.
    pub window: usize,
    /// Close connections idle longer than this; also the write timeout
    /// that bounds how long a slow reader can stall its own connection.
    pub idle_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            kind: DatasetKind::Integer,
            keys: 100_000,
            ops: 100_000,
            seed: 42,
            shards: 4,
            workers: true,
            pin: false,
            window: 128,
            idle_timeout: Duration::from_secs(30),
        }
    }
}

/// One monotonically increasing, wait-free counter.
#[derive(Debug, Default)]
struct Counter(AtomicU64);

impl Counter {
    fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Per-server operation counters, readable at any time (STATS frames and
/// [`ServerHandle::stats_json`]).
#[derive(Debug, Default)]
pub struct ServerStats {
    accepted: Counter,
    closed: Counter,
    requests: Counter,
    batches: Counter,
    bytes_in: Counter,
    bytes_out: Counter,
    proto_errors: Counter,
}

impl ServerStats {
    /// Connections accepted since startup.
    pub fn accepted(&self) -> u64 {
        self.accepted.get()
    }

    /// Connections currently open.
    pub fn active(&self) -> u64 {
        self.accepted.get().saturating_sub(self.closed.get())
    }

    /// Requests executed (BATCH sub-requests counted individually).
    pub fn requests(&self) -> u64 {
        self.requests.get()
    }

    /// Framing/decode violations answered with an ERR frame.
    pub fn proto_errors(&self) -> u64 {
        self.proto_errors.get()
    }

    /// Raw bytes read off all sockets.
    pub fn bytes_in(&self) -> u64 {
        self.bytes_in.get()
    }

    /// Raw bytes written to all sockets.
    pub fn bytes_out(&self) -> u64 {
        self.bytes_out.get()
    }
}

/// State shared by the acceptor and every connection thread.
struct Shared {
    index: ShardedHot<Arc<ArenaKeySource>>,
    arena: Arc<ArenaKeySource>,
    registry: Registry,
    stats: ServerStats,
    stop: AtomicBool,
    addr: SocketAddr,
    window: usize,
    idle_timeout: Duration,
    conns: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Shared {
    fn stop_requested(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    /// Flip the stop flag and nudge the acceptor out of `accept()` with a
    /// throwaway self-connection.
    fn begin_shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = TcpStream::connect(self.addr);
    }

    fn stats_json(&self) -> String {
        format!(
            "{{\"connections\": {{\"accepted\": {}, \"active\": {}}}, \
             \"requests\": {}, \"batches\": {}, \"proto_errors\": {}, \
             \"bytes_in\": {}, \"bytes_out\": {}, \"shards\": {}, \
             \"keys\": {}, \"metrics\": {}}}",
            self.stats.accepted(),
            self.stats.active(),
            self.stats.requests(),
            self.stats.batches.get(),
            self.stats.proto_errors(),
            self.stats.bytes_in(),
            self.stats.bytes_out(),
            self.index.shards(),
            self.index.len(),
            self.registry.ops_snapshot().to_json(),
        )
    }
}

/// A running server. Dropping the handle shuts the server down.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
}

/// Start a server: materialize the corpus, bulk-load the first
/// [`ServerConfig::keys`] keys into a [`ShardedHot`], bind, and spawn the
/// acceptor. Returns once the socket is listening.
pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let data = net_data_for(config.kind, config.keys, config.ops, config.seed);
    start_with_data(config, data)
}

/// [`start`] over an already-materialized corpus (lets tests and the
/// loopback benchmark reuse one corpus for several server instances).
pub fn start_with_data(config: ServerConfig, data: NetData) -> std::io::Result<ServerHandle> {
    let index = ShardedHot::with_config(
        Arc::clone(&data.arena),
        config.shards,
        config.workers,
        config.pin,
    );
    let entries = data.sorted_entries();
    index
        .bulk_load(&entries)
        .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, format!("bulk load: {e:?}")))?;

    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        index,
        arena: data.arena,
        registry: Registry::new(),
        stats: ServerStats::default(),
        stop: AtomicBool::new(false),
        addr,
        window: config.window.max(1),
        idle_timeout: config.idle_timeout,
        conns: Mutex::new(Vec::new()),
    });

    let accept_shared = Arc::clone(&shared);
    let accept = std::thread::Builder::new()
        .name("hot-server-accept".to_string())
        .spawn(move || accept_loop(listener, accept_shared))?;

    Ok(ServerHandle { shared, accept: Some(accept) })
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Live operation counters.
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }

    /// The full STATS document (counters + metrics snapshot).
    pub fn stats_json(&self) -> String {
        self.shared.stats_json()
    }

    /// True once a SHUTDOWN frame (or [`ServerHandle::shutdown`]) was
    /// processed.
    pub fn stopping(&self) -> bool {
        self.shared.stop_requested()
    }

    /// Stop accepting, let in-flight windows finish, join every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Block until a client-driven SHUTDOWN stops the server, then join
    /// every thread — the serving binary's main loop.
    pub fn join(mut self) {
        while !self.shared.stop_requested() {
            std::thread::sleep(POLL_INTERVAL);
        }
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.begin_shutdown();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let conns = std::mem::take(&mut *self.shared.conns.lock().expect("conns lock"));
        for conn in conns {
            let _ = conn.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop_and_join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stop_requested() {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        shared.stats.accepted.add(1);
        let conn_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("hot-server-conn".to_string())
            .spawn(move || {
                serve_conn(&conn_shared, stream);
                conn_shared.stats.closed.add(1);
            });
        match handle {
            Ok(h) => {
                let mut conns = shared.conns.lock().expect("conns lock");
                // Reap connections that already exited, so churn doesn't
                // grow the handle list (and retain thread resources)
                // without bound; shutdown joins whatever is left.
                let mut i = 0;
                while i < conns.len() {
                    if conns[i].is_finished() {
                        let _ = conns.swap_remove(i).join();
                    } else {
                        i += 1;
                    }
                }
                conns.push(h);
            }
            Err(_) => shared.stats.closed.add(1),
        }
    }
}

/// One connection's read → decode → execute → respond loop.
fn serve_conn(shared: &Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_write_timeout(Some(shared.idle_timeout));
    let mut dec = FrameDecoder::new();
    let mut rbuf = vec![0u8; 64 << 10];
    let mut scratch = RouterScratch::new();
    let mut window: Vec<Request> = Vec::new();
    let mut responses: Vec<Response> = Vec::new();
    let mut wbuf: Vec<u8> = Vec::new();
    let mut last_activity = Instant::now();

    loop {
        if shared.stop_requested() {
            // A concurrent SHUTDOWN: tell the client why before closing.
            send_error(&mut stream, err_code::SHUTTING_DOWN, "server shutting down");
            return;
        }
        // Drain already-buffered frames into the bounded request window.
        while window.len() < shared.window {
            match dec.next_frame() {
                Ok(Some(body)) => match Request::decode(&body) {
                    Ok(req) => window.push(req),
                    Err(e) => {
                        protocol_error(shared, &mut stream, &e);
                        return;
                    }
                },
                Ok(None) => break,
                Err(e) => {
                    protocol_error(shared, &mut stream, &e);
                    return;
                }
            }
        }
        if window.is_empty() {
            // Nothing decodable: block (bounded by the poll interval) for
            // more bytes.
            match stream.read(&mut rbuf) {
                Ok(0) => return,
                Ok(n) => {
                    shared.stats.bytes_in.add(n as u64);
                    dec.feed(&rbuf[..n]);
                    last_activity = Instant::now();
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    if last_activity.elapsed() >= shared.idle_timeout {
                        return;
                    }
                }
                Err(_) => return,
            }
            continue;
        }
        // Execute the drained window and write every response before
        // reading again — the structural backpressure bound: at most
        // `window` requests plus one socket buffer are ever in flight.
        responses.clear();
        let shutdown = execute_window(shared, &window, &mut scratch, &mut responses);
        // BATCH frames count as their sub-requests (added by exec_ops),
        // not as a request of their own — `requests` is operations, so a
        // batch of N records N, not N + 1.
        let scalar_frames =
            window.iter().filter(|r| !matches!(r, Request::Batch(_))).count();
        shared.stats.requests.add(scalar_frames as u64);
        window.clear();
        wbuf.clear();
        for r in &responses {
            r.encode(&mut wbuf);
        }
        if stream.write_all(&wbuf).is_err() {
            return;
        }
        shared.stats.bytes_out.add(wbuf.len() as u64);
        last_activity = Instant::now();
        if shutdown {
            let _ = stream.flush();
            shared.begin_shutdown();
            return;
        }
    }
}

fn protocol_error(shared: &Arc<Shared>, stream: &mut TcpStream, err: &ProtoError) {
    shared.stats.proto_errors.add(1);
    // Best-effort ERR frame, then close: a framing error leaves no way to
    // find the next frame boundary.
    send_error(stream, err_code::BAD_FRAME, &err.to_string());
}

fn send_error(stream: &mut TcpStream, code: u8, msg: &str) {
    let mut wire = Vec::new();
    Response::Error { code, msg: msg.to_string() }.encode(&mut wire);
    let _ = stream.write_all(&wire);
}

/// Execute one drained window in request order, coalescing runs of GETs
/// into `get_batch_with` and runs of SCANs into `scan_batch`. Returns
/// true when a SHUTDOWN frame was in the window.
fn execute_window(
    shared: &Shared,
    reqs: &[Request],
    scratch: &mut RouterScratch,
    out: &mut Vec<Response>,
) -> bool {
    let mut shutdown = false;
    // Top-level scans are each clamped to MAX_SCAN_TIDS and each get
    // their own response frame, so they need no aggregate budget.
    let mut scan_budget = usize::MAX;
    exec_ops(shared, reqs, true, scratch, out, &mut shutdown, &mut scan_budget);
    shutdown
}

/// Clamp one scan's grant against its per-scan cap and the enclosing
/// aggregate budget. Every non-empty request is granted at least one
/// result even on an exhausted budget, so it can still make progress and
/// mint a continuation token (an empty page reads as end-of-keyspace).
fn grant_scan(limit: u32, scan_budget: &mut usize) -> usize {
    let want = (limit as usize).min(MAX_SCAN_TIDS);
    if want == 0 {
        return 0;
    }
    let grant = want.min((*scan_budget).max(1));
    *scan_budget = scan_budget.saturating_sub(grant);
    grant
}

fn exec_ops(
    shared: &Shared,
    reqs: &[Request],
    allow_batch: bool,
    scratch: &mut RouterScratch,
    out: &mut Vec<Response>,
    shutdown: &mut bool,
    scan_budget: &mut usize,
) {
    let mut i = 0;
    while i < reqs.len() {
        match &reqs[i] {
            Request::Get { .. } => {
                let mut j = i + 1;
                while j < reqs.len() && matches!(reqs[j], Request::Get { .. }) {
                    j += 1;
                }
                exec_gets(shared, &reqs[i..j], scratch, out);
                i = j;
            }
            Request::Scan { .. } => {
                let mut j = i + 1;
                while j < reqs.len() && matches!(reqs[j], Request::Scan { .. }) {
                    j += 1;
                }
                exec_scans(shared, &reqs[i..j], scratch, out, scan_budget);
                i = j;
            }
            Request::Batch(subs) => {
                if allow_batch {
                    shared.stats.batches.add(1);
                    let mut sub_out = Vec::with_capacity(subs.len());
                    // A batch answers with ONE frame, so its scans share
                    // an aggregate budget sized to keep the OK_BATCH
                    // response within MAX_FRAME (truncated scans return
                    // continuation tokens).
                    let mut batch_budget = MAX_BATCH_SCAN_TIDS;
                    exec_ops(
                        shared,
                        subs,
                        false,
                        scratch,
                        &mut sub_out,
                        shutdown,
                        &mut batch_budget,
                    );
                    shared.stats.requests.add(subs.len() as u64);
                    out.push(Response::Batch(sub_out));
                } else {
                    // Unreachable through the decoder; kept total anyway.
                    out.push(Response::Error {
                        code: err_code::BAD_FRAME,
                        msg: ProtoError::NestedBatch.to_string(),
                    });
                }
                i += 1;
            }
            other => {
                out.push(exec_scalar(shared, other, shutdown, scan_budget));
                i += 1;
            }
        }
    }
}

/// Record a coalesced run: one timer sample per request (the run's time
/// amortized over its requests), under the op's kind and the aggregate
/// `NetOp`.
fn record_run(shared: &Shared, kind: OpKind, elapsed: Duration, n: usize) {
    if n == 0 {
        return;
    }
    let per_op = (elapsed.as_nanos() / n as u128) as u64;
    for _ in 0..n {
        shared.registry.record_ns(kind, per_op);
        shared.registry.record_ns(OpKind::NetOp, per_op);
    }
    shared.registry.add_items(kind, n as u64);
}

fn exec_gets(shared: &Shared, gets: &[Request], scratch: &mut RouterScratch, out: &mut Vec<Response>) {
    let start = Instant::now();
    let keys: Vec<&[u8]> = gets
        .iter()
        .map(|r| match r {
            Request::Get { key } => key.as_slice(),
            _ => unreachable!("run contains only GETs"),
        })
        .collect();
    let mut found: Vec<Option<u64>> = vec![None; keys.len()];
    shared.index.get_batch_with(&keys, &mut found, scratch);
    record_run(shared, OpKind::NetGet, start.elapsed(), keys.len());
    out.extend(found.into_iter().map(|f| match f {
        Some(tid) => Response::Tid(tid),
        None => Response::None,
    }));
}

fn exec_scans(
    shared: &Shared,
    scans: &[Request],
    scratch: &mut RouterScratch,
    out: &mut Vec<Response>,
    scan_budget: &mut usize,
) {
    let start = Instant::now();
    let requests: Vec<(&[u8], usize)> = scans
        .iter()
        .map(|r| match r {
            Request::Scan { start, limit } => {
                (start.as_slice(), grant_scan(*limit, scan_budget))
            }
            _ => unreachable!("run contains only SCANs"),
        })
        .collect();
    let mut tids = Vec::new();
    let mut bounds = Vec::new();
    shared.index.scan_batch(&requests, &mut tids, &mut bounds, scratch);
    record_run(shared, OpKind::NetScan, start.elapsed(), requests.len());
    for (i, &(_, limit)) in requests.iter().enumerate() {
        let page = &tids[bounds[i]..bounds[i + 1]];
        let token = shared.index.scan_token(page, limit);
        out.push(Response::Scan { tids: page.to_vec(), token });
    }
}

fn exec_scalar(
    shared: &Shared,
    req: &Request,
    shutdown: &mut bool,
    scan_budget: &mut usize,
) -> Response {
    let start = Instant::now();
    match req {
        Request::Put { tid, key } => {
            // The TID must resolve to the claimed key in the tuple store
            // before it may enter the index — the KeySource invariant
            // (every stored TID loads a valid key) holds against
            // arbitrary wire input.
            let resp = match shared.arena.try_key(*tid) {
                Some(stored) if stored == key.as_slice() => {
                    match shared.index.insert(key, *tid) {
                        Some(old) => Response::Tid(old),
                        None => Response::None,
                    }
                }
                _ => Response::Error {
                    code: err_code::TID_MISMATCH,
                    msg: format!("tid {tid} does not resolve to the {}-byte key", key.len()),
                },
            };
            record_run(shared, OpKind::NetPut, start.elapsed(), 1);
            resp
        }
        Request::Del { key } => {
            let resp = match shared.index.remove(key) {
                Some(old) => Response::Tid(old),
                None => Response::None,
            };
            record_run(shared, OpKind::NetDel, start.elapsed(), 1);
            resp
        }
        Request::Resume { token, limit } => {
            let mut tids = Vec::new();
            let limit = grant_scan(*limit, scan_budget);
            let token = shared.index.scan_resume(token, limit, &mut tids);
            record_run(shared, OpKind::NetScan, start.elapsed(), 1);
            Response::Scan { tids, token }
        }
        Request::Stats => Response::Text(shared.stats_json()),
        Request::Ping => Response::None,
        Request::Shutdown => {
            *shutdown = true;
            Response::None
        }
        Request::Get { .. } | Request::Scan { .. } | Request::Batch(_) => {
            unreachable!("handled by exec_ops runs")
        }
    }
}
