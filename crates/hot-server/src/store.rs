//! The server's tuple store: a deterministic key corpus shared with the
//! client by construction.
//!
//! HOT is a *secondary index*: it stores TIDs, and key bytes live in the
//! DBMS tuple store (the [`ArenaKeySource`]). A network front-end has to
//! preserve that indirection — a PUT carries a TID, not a value — which
//! raises the question of where the TIDs come from. The answer here mirrors
//! the benchmark harness: server and client both materialize the *same*
//! dataset from the same `(kind, keys, ops, seed)` tuple, so every key
//! index maps to the same arena offset on both sides. The client can then
//! drive the YCSB workloads over the wire with nothing but key indices,
//! and the in-process driver over the identical corpus is the ground truth
//! its checksums are compared against.
//!
//! The arena holds `keys + reserve` records: the first `keys` are
//! bulk-loaded into the index at startup, the reserve tail backs the
//! insert fraction of workloads D/E (sized exactly like the in-process
//! harness sizes it).

use hot_keys::ArenaKeySource;
use hot_ycsb::{Dataset, DatasetKind, RequestDistribution, Workload, WorkloadRun};
use std::sync::Arc;

/// The materialized corpus: dataset, tuple arena and the TID for every
/// key index. Identical on server and client for equal `(kind, keys,
/// ops, seed)` — the invariant all checksum parity rests on.
pub struct NetData {
    /// The generated key set (`loaded + reserve` keys).
    pub dataset: Dataset,
    /// Tuple store the index resolves keys from.
    pub arena: Arc<ArenaKeySource>,
    /// TID per key index (the key's arena offset).
    pub tids: Vec<u64>,
    /// Number of keys bulk-loaded at startup; `dataset.keys[loaded..]`
    /// is the insert reserve.
    pub loaded: usize,
}

/// Materialize the corpus for a serving session of `keys` loaded keys and
/// up to `ops` operations per workload phase.
///
/// The insert reserve is sized by workload E (the largest insert consumer
/// among A–E) so one corpus serves any phase sequence the driver runs;
/// D/E phases re-consume the same reserve indices, and since PUT is an
/// idempotent upsert of `key → tid` that is harmless.
pub fn net_data_for(kind: DatasetKind, keys: usize, ops: usize, seed: u64) -> NetData {
    let reserve =
        WorkloadRun::new(Workload::E, RequestDistribution::Uniform, keys, ops, seed).reserve_keys();
    let dataset = Dataset::generate(kind, keys + reserve, seed);
    let mut arena =
        ArenaKeySource::with_capacity(dataset.keys.len(), dataset.avg_key_len().ceil() as usize);
    let tids: Vec<u64> = dataset.keys.iter().map(|k| arena.push(k)).collect();
    NetData { dataset, arena: Arc::new(arena), tids, loaded: keys }
}

impl NetData {
    /// The first `loaded` entries in key order, ready for
    /// [`hot_core::ShardedHot::bulk_load`].
    pub fn sorted_entries(&self) -> Vec<(&[u8], u64)> {
        let mut order: Vec<usize> = (0..self.loaded).collect();
        order.sort_unstable_by(|&a, &b| self.dataset.keys[a].cmp(&self.dataset.keys[b]));
        order.iter().map(|&i| (self.dataset.keys[i].as_slice(), self.tids[i])).collect()
    }
}
