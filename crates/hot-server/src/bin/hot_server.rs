//! The serving binary: bind, load, announce, serve until SHUTDOWN.
//!
//! ```text
//! hot-server --addr 127.0.0.1:0 --dataset integer --keys 100000 \
//!            --ops 100000 --seed 42 --shards 4 [--pin] [--inline] \
//!            [--window N] [--idle-ms N]
//! ```
//!
//! Prints exactly one `LISTENING <addr>` line to stdout once the socket is
//! bound (scripts parse it to learn the OS-assigned port), then blocks
//! until a client sends a SHUTDOWN frame, and exits 0.

use hot_server::{start, ServerConfig};
use std::io::Write;
use std::time::Duration;

fn main() {
    let mut config = ServerConfig::default();
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                config.addr = args[i + 1].clone();
                i += 2;
            }
            "--dataset" => {
                config.kind = args[i + 1].parse().expect("--dataset url|email|yago|integer");
                i += 2;
            }
            "--keys" => {
                config.keys = args[i + 1].parse().expect("--keys N");
                i += 2;
            }
            "--ops" => {
                config.ops = args[i + 1].parse().expect("--ops N");
                i += 2;
            }
            "--seed" => {
                config.seed = args[i + 1].parse().expect("--seed N");
                i += 2;
            }
            "--shards" => {
                config.shards = args[i + 1].parse().expect("--shards N");
                i += 2;
            }
            "--window" => {
                config.window = args[i + 1].parse().expect("--window N");
                i += 2;
            }
            "--idle-ms" => {
                let ms: u64 = args[i + 1].parse().expect("--idle-ms N");
                config.idle_timeout = Duration::from_millis(ms);
                i += 2;
            }
            "--pin" => {
                config.pin = true;
                i += 1;
            }
            "--inline" => {
                config.workers = false;
                i += 1;
            }
            other => {
                eprintln!(
                    "unknown argument: {other} (expected --addr/--dataset/--keys/--ops/--seed/\
                     --shards/--window/--idle-ms/--pin/--inline)"
                );
                std::process::exit(2);
            }
        }
    }

    let handle = match start(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("hot-server: failed to start: {e}");
            std::process::exit(1);
        }
    };
    println!("LISTENING {}", handle.addr());
    std::io::stdout().flush().expect("announce the bound address");
    handle.join();
}
