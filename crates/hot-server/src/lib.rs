//! A TCP key-value front-end for the HOT reproduction.
//!
//! This crate turns the sharded concurrent trie ([`hot_core::ShardedHot`])
//! into a network service speaking a length-prefixed binary protocol
//! ([`protocol`]): GET / PUT / DEL / SCAN / RESUME / BATCH frames, fully
//! pipelineable, decoded incrementally from arbitrary read boundaries.
//! The server ([`server`]) drains each connection's pipelined request
//! window into the index's batched entry points — the same
//! memory-level-parallel paths the in-process benchmarks exercise — so the
//! figures measured over loopback differ from the in-process ones by
//! protocol + syscall cost only (EXPERIMENTS.md discusses the
//! methodology).
//!
//! Because HOT is a secondary index (TIDs in the trie, key bytes in the
//! tuple store), the service is an *index server over a shared corpus*:
//! server and client materialize the same deterministic dataset
//! ([`store`]) and a PUT's TID is validated against that corpus before it
//! may enter the index.
//!
//! The `hot-server` binary serves one corpus from the command line; the
//! companion `hot-client` crate holds the connection handle and the
//! network YCSB driver.

#![deny(missing_docs)]

pub mod protocol;
pub mod server;
pub mod store;

pub use protocol::{FrameDecoder, ProtoError, Request, Response, MAX_FRAME, MAX_KEY};
pub use server::{start, start_with_data, ServerConfig, ServerHandle, ServerStats};
pub use store::{net_data_for, NetData};
