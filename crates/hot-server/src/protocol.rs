//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! Every message — request or response — is one *frame*:
//!
//! ```text
//! [len: u32 LE][body: len bytes]
//! ```
//!
//! where the body's first byte is an opcode (requests) or a status code
//! (responses) and the rest is that code's payload. All integers are
//! little-endian; keys carry a `u16` length prefix. The format is designed
//! so that a pipelining client can write any number of frames back to back
//! and a server can decode them incrementally from arbitrary read
//! boundaries — [`FrameDecoder`] never assumes a read ends on a frame
//! boundary.
//!
//! Request opcodes and their payloads:
//!
//! | opcode | name     | payload                                          |
//! |-------:|----------|--------------------------------------------------|
//! | `0x01` | GET      | `[klen: u16][key]`                               |
//! | `0x02` | PUT      | `[tid: u64][klen: u16][key]`                     |
//! | `0x03` | DEL      | `[klen: u16][key]`                               |
//! | `0x04` | SCAN     | `[limit: u32][klen: u16][start key]`             |
//! | `0x05` | BATCH    | `[count: u32][count × sub-request bodies]`       |
//! | `0x06` | STATS    | empty                                            |
//! | `0x07` | PING     | empty                                            |
//! | `0x08` | SHUTDOWN | empty                                            |
//! | `0x09` | RESUME   | `[limit: u32][shard: u32][klen: u16][last key]`  |
//!
//! Sub-requests inside a BATCH are encoded exactly like a top-level body
//! (opcode + payload, no length prefix — every payload is self-delimiting),
//! may not nest another BATCH, and are capped at [`MAX_BATCH_SUBS`] per
//! group; the server additionally caps the aggregate scan results of one
//! BATCH at [`MAX_BATCH_SCAN_TIDS`] (truncated scans return continuation
//! tokens), so one frame can never demand more than a constant amount of
//! work or response bytes.
//!
//! Response status codes:
//!
//! | status | name     | payload                                                        |
//! |-------:|----------|----------------------------------------------------------------|
//! | `0x00` | OK_NONE  | empty (key absent / write without prior value / pong)          |
//! | `0x01` | OK_TID   | `[tid: u64]`                                                   |
//! | `0x02` | OK_SCAN  | `[more: u8][token if more][count: u32][count × tid: u64]`      |
//! | `0x03` | OK_BATCH | `[count: u32][count × sub-response bodies]`                    |
//! | `0x04` | OK_TEXT  | `[tlen: u32][utf-8 bytes]`                                     |
//! | `0x0F` | ERR      | `[code: u8][mlen: u16][utf-8 message]`                         |
//!
//! An OK_SCAN token (present when `more == 1`) is `[shard: u32][klen:
//! u16][last key]` — the serialized [`ScanToken`] a RESUME request hands
//! back to continue the scan.

use hot_core::ScanToken;
use std::fmt;

/// Hard ceiling on one frame's body length. Anything larger is a protocol
/// violation ([`ProtoError::FrameTooLarge`]): the decoder refuses to
/// buffer it, so a hostile length prefix cannot balloon server memory.
pub const MAX_FRAME: usize = 1 << 20;

/// Largest key the protocol carries — the index's own per-key ceiling, so
/// a frame that decodes is always safe to hand to the trie.
pub const MAX_KEY: usize = hot_keys::MAX_KEY_LEN;

/// Server-side clamp on one scan's result count, chosen so the largest
/// OK_SCAN response still fits [`MAX_FRAME`] with room for the token.
pub const MAX_SCAN_TIDS: usize = 100_000;

/// Decode-time cap on the sub-requests of one BATCH. A 1 MiB frame can
/// physically carry ~500k one-byte sub-requests, each of which may fan
/// out into a [`MAX_SCAN_TIDS`]-sized scan — without this cap a single
/// frame could demand gigabytes of results. The cap keeps the per-batch
/// work (and, together with [`MAX_BATCH_SCAN_TIDS`], the OK_BATCH
/// response) bounded by constants, not by what fits in the frame.
pub const MAX_BATCH_SUBS: usize = 1024;

/// Aggregate scan-result budget across all SCAN/RESUME sub-requests of
/// one BATCH, sized so a batch response full of TIDs still fits
/// [`MAX_FRAME`]: `100_000 × 8` bytes of TIDs plus [`MAX_BATCH_SUBS`]
/// sub-response headers and tokens stays under 1 MiB. Scans truncated
/// by the budget return a continuation token, so clients page through
/// RESUME exactly as they do for [`MAX_SCAN_TIDS`]-clamped scans.
pub const MAX_BATCH_SCAN_TIDS: usize = 100_000;

/// Error codes carried by an ERR response.
pub mod err_code {
    /// The request body could not be decoded.
    pub const BAD_FRAME: u8 = 1;
    /// PUT named a TID whose stored key differs from the one sent.
    pub const TID_MISMATCH: u8 = 2;
    /// The server is draining connections after a SHUTDOWN.
    pub const SHUTTING_DOWN: u8 = 3;
    /// The response to a legal request would exceed [`super::MAX_FRAME`];
    /// sent in its place (the request needs to be split up).
    pub const RESPONSE_TOO_LARGE: u8 = 4;
}

const OP_GET: u8 = 0x01;
const OP_PUT: u8 = 0x02;
const OP_DEL: u8 = 0x03;
const OP_SCAN: u8 = 0x04;
const OP_BATCH: u8 = 0x05;
const OP_STATS: u8 = 0x06;
const OP_PING: u8 = 0x07;
const OP_SHUTDOWN: u8 = 0x08;
const OP_RESUME: u8 = 0x09;

const ST_NONE: u8 = 0x00;
const ST_TID: u8 = 0x01;
const ST_SCAN: u8 = 0x02;
const ST_BATCH: u8 = 0x03;
const ST_TEXT: u8 = 0x04;
const ST_ERR: u8 = 0x0F;

/// Typed decode failure. Every variant is a *protocol* violation — the
/// decoder never panics on wire input, it returns one of these, and the
/// server answers with an ERR frame and closes the connection (a framing
/// error leaves no safe way to resynchronize the byte stream).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// A length prefix exceeded [`MAX_FRAME`].
    FrameTooLarge(usize),
    /// A zero-length body (every body holds at least an opcode).
    EmptyFrame,
    /// The body ended before its payload was complete.
    Truncated(&'static str),
    /// The body continued past its payload.
    TrailingBytes(usize),
    /// An opcode outside the request table.
    UnknownOpcode(u8),
    /// A status byte outside the response table.
    UnknownStatus(u8),
    /// A BATCH inside a BATCH.
    NestedBatch,
    /// A BATCH with more than [`MAX_BATCH_SUBS`] sub-requests.
    BatchTooLarge(usize),
    /// A key length above [`MAX_KEY`].
    KeyTooLong(usize),
    /// A text payload that was not UTF-8.
    BadText,
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::FrameTooLarge(n) => write!(f, "frame body of {n} bytes exceeds MAX_FRAME"),
            ProtoError::EmptyFrame => write!(f, "zero-length frame body"),
            ProtoError::Truncated(what) => write!(f, "frame body truncated reading {what}"),
            ProtoError::TrailingBytes(n) => write!(f, "{n} trailing bytes after payload"),
            ProtoError::UnknownOpcode(op) => write!(f, "unknown request opcode {op:#04x}"),
            ProtoError::UnknownStatus(st) => write!(f, "unknown response status {st:#04x}"),
            ProtoError::NestedBatch => write!(f, "BATCH nested inside BATCH"),
            ProtoError::BatchTooLarge(n) => {
                write!(f, "BATCH of {n} sub-requests exceeds MAX_BATCH_SUBS")
            }
            ProtoError::KeyTooLong(n) => write!(f, "key of {n} bytes exceeds MAX_KEY"),
            ProtoError::BadText => write!(f, "text payload is not valid UTF-8"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// One decoded request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Point lookup.
    Get {
        /// The probed key.
        key: Vec<u8>,
    },
    /// Upsert of `key → tid`. The server validates that `tid` resolves to
    /// `key` in its tuple store before touching the index (see
    /// [`err_code::TID_MISMATCH`]).
    Put {
        /// The tuple identifier to store.
        tid: u64,
        /// The key it must resolve to.
        key: Vec<u8>,
    },
    /// Remove a key.
    Del {
        /// The key to remove.
        key: Vec<u8>,
    },
    /// Range scan of up to `limit` entries from `start` (inclusive).
    Scan {
        /// First key of the range.
        start: Vec<u8>,
        /// Maximum entries returned (server-clamped to [`MAX_SCAN_TIDS`]).
        limit: u32,
    },
    /// Continue a paged scan from a token minted by a previous
    /// SCAN/RESUME response.
    Resume {
        /// The continuation token (strictly-after semantics).
        token: ScanToken,
        /// Maximum entries returned for this page.
        limit: u32,
    },
    /// A client-assembled group of sub-requests answered by one OK_BATCH.
    Batch(
        /// The sub-requests, in execution order; never contains a nested
        /// `Batch`.
        Vec<Request>,
    ),
    /// Server metrics snapshot as an OK_TEXT JSON document.
    Stats,
    /// Liveness probe; answered with OK_NONE.
    Ping,
    /// Ask the server to stop accepting connections and exit cleanly.
    Shutdown,
}

/// One decoded response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// OK with no value.
    None,
    /// OK with a tuple identifier.
    Tid(u64),
    /// Scan results plus an optional continuation token.
    Scan {
        /// The TIDs, in key order.
        tids: Vec<u64>,
        /// Present when the page filled — hand it to a RESUME request
        /// for the next page.
        token: Option<ScanToken>,
    },
    /// One sub-response per sub-request of a BATCH, in order.
    Batch(
        /// The sub-responses; never contains a nested `Batch`.
        Vec<Response>,
    ),
    /// A UTF-8 document (STATS).
    Text(String),
    /// A typed failure.
    Error {
        /// One of the [`err_code`] constants.
        code: u8,
        /// Human-readable detail.
        msg: String,
    },
}

/// Bounded reader over one frame body.
struct Cursor<'a> {
    body: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(body: &'a [u8]) -> Cursor<'a> {
        Cursor { body, at: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], ProtoError> {
        let end = self.at.checked_add(n).ok_or(ProtoError::Truncated(what))?;
        let bytes = self.body.get(self.at..end).ok_or(ProtoError::Truncated(what))?;
        self.at = end;
        Ok(bytes)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, ProtoError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().expect("len checked")))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("len checked")))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("len checked")))
    }

    /// `[klen: u16][key]`, bounded by [`MAX_KEY`].
    fn key(&mut self) -> Result<Vec<u8>, ProtoError> {
        let len = self.u16("key length")? as usize;
        if len > MAX_KEY {
            return Err(ProtoError::KeyTooLong(len));
        }
        Ok(self.take(len, "key bytes")?.to_vec())
    }

    fn done(&self) -> Result<(), ProtoError> {
        if self.at == self.body.len() {
            Ok(())
        } else {
            Err(ProtoError::TrailingBytes(self.body.len() - self.at))
        }
    }
}

fn put_key(out: &mut Vec<u8>, key: &[u8]) {
    debug_assert!(key.len() <= MAX_KEY, "callers construct keys within MAX_KEY");
    out.extend_from_slice(&(key.len() as u16).to_le_bytes());
    out.extend_from_slice(key);
}

/// Reserve a frame's length slot, run `body`, then patch the slot with
/// the encoded body length. Requests only: every request a conforming
/// client can construct fits [`MAX_FRAME`] by the key and batch caps,
/// so an overrun here is a caller bug, not a wire condition.
fn frame(out: &mut Vec<u8>, body: impl FnOnce(&mut Vec<u8>)) {
    let slot = out.len();
    out.extend_from_slice(&[0u8; 4]);
    body(out);
    let len = out.len() - slot - 4;
    debug_assert!(len <= MAX_FRAME, "encoded frame exceeds MAX_FRAME");
    out[slot..slot + 4].copy_from_slice(&(len as u32).to_le_bytes());
}

impl Request {
    /// Append this request as one complete frame (length prefix included).
    pub fn encode(&self, out: &mut Vec<u8>) {
        frame(out, |out| self.encode_body(out));
    }

    /// Append the frame body only (opcode + payload) — the encoding of a
    /// BATCH sub-request.
    fn encode_body(&self, out: &mut Vec<u8>) {
        match self {
            Request::Get { key } => {
                out.push(OP_GET);
                put_key(out, key);
            }
            Request::Put { tid, key } => {
                out.push(OP_PUT);
                out.extend_from_slice(&tid.to_le_bytes());
                put_key(out, key);
            }
            Request::Del { key } => {
                out.push(OP_DEL);
                put_key(out, key);
            }
            Request::Scan { start, limit } => {
                out.push(OP_SCAN);
                out.extend_from_slice(&limit.to_le_bytes());
                put_key(out, start);
            }
            Request::Resume { token, limit } => {
                out.push(OP_RESUME);
                out.extend_from_slice(&limit.to_le_bytes());
                out.extend_from_slice(&token.shard.to_le_bytes());
                put_key(out, &token.last_key);
            }
            Request::Batch(subs) => {
                out.push(OP_BATCH);
                out.extend_from_slice(&(subs.len() as u32).to_le_bytes());
                for sub in subs {
                    debug_assert!(
                        !matches!(sub, Request::Batch(_)),
                        "BATCH must not nest (rejected on decode)"
                    );
                    sub.encode_body(out);
                }
            }
            Request::Stats => out.push(OP_STATS),
            Request::Ping => out.push(OP_PING),
            Request::Shutdown => out.push(OP_SHUTDOWN),
        }
    }

    /// Decode one frame body. Rejects trailing bytes, so a frame is
    /// exactly one request.
    pub fn decode(body: &[u8]) -> Result<Request, ProtoError> {
        let mut cur = Cursor::new(body);
        let req = Request::decode_body(&mut cur, true)?;
        cur.done()?;
        Ok(req)
    }

    fn decode_body(cur: &mut Cursor<'_>, allow_batch: bool) -> Result<Request, ProtoError> {
        match cur.u8("opcode")? {
            OP_GET => Ok(Request::Get { key: cur.key()? }),
            OP_PUT => {
                let tid = cur.u64("PUT tid")?;
                Ok(Request::Put { tid, key: cur.key()? })
            }
            OP_DEL => Ok(Request::Del { key: cur.key()? }),
            OP_SCAN => {
                let limit = cur.u32("SCAN limit")?;
                Ok(Request::Scan { start: cur.key()?, limit })
            }
            OP_RESUME => {
                let limit = cur.u32("RESUME limit")?;
                let shard = cur.u32("RESUME shard")?;
                let last_key = cur.key()?;
                Ok(Request::Resume { token: ScanToken { shard, last_key }, limit })
            }
            OP_BATCH if allow_batch => {
                let count = cur.u32("BATCH count")? as usize;
                // Reject oversized groups before decoding (or allocating
                // for) a single sub-request: a frame that passes this gate
                // can demand at most MAX_BATCH_SUBS operations of work.
                if count > MAX_BATCH_SUBS {
                    return Err(ProtoError::BatchTooLarge(count));
                }
                let mut subs = Vec::with_capacity(count);
                for _ in 0..count {
                    subs.push(Request::decode_body(cur, false)?);
                }
                Ok(Request::Batch(subs))
            }
            OP_BATCH => Err(ProtoError::NestedBatch),
            OP_STATS => Ok(Request::Stats),
            OP_PING => Ok(Request::Ping),
            OP_SHUTDOWN => Ok(Request::Shutdown),
            other => Err(ProtoError::UnknownOpcode(other)),
        }
    }
}

impl Response {
    /// Append this response as one complete frame (length prefix included).
    ///
    /// Never emits a frame over [`MAX_FRAME`]: a body that would exceed
    /// the cap (which the peer's decoder would reject, poisoning the
    /// connection — and whose u32 length prefix could even wrap) is
    /// replaced in place by an [`err_code::RESPONSE_TOO_LARGE`] ERR
    /// frame, so every encoded response is decodable by a conforming
    /// peer.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let slot = out.len();
        out.extend_from_slice(&[0u8; 4]);
        self.encode_body(out);
        let mut len = out.len() - slot - 4;
        if len > MAX_FRAME {
            out.truncate(slot + 4);
            Response::Error {
                code: err_code::RESPONSE_TOO_LARGE,
                msg: format!("response of {len} bytes exceeds the {MAX_FRAME}-byte frame cap"),
            }
            .encode_body(out);
            len = out.len() - slot - 4;
        }
        out[slot..slot + 4].copy_from_slice(&(len as u32).to_le_bytes());
    }

    fn encode_body(&self, out: &mut Vec<u8>) {
        match self {
            Response::None => out.push(ST_NONE),
            Response::Tid(tid) => {
                out.push(ST_TID);
                out.extend_from_slice(&tid.to_le_bytes());
            }
            Response::Scan { tids, token } => {
                out.push(ST_SCAN);
                match token {
                    Some(t) => {
                        out.push(1);
                        out.extend_from_slice(&t.shard.to_le_bytes());
                        put_key(out, &t.last_key);
                    }
                    Option::None => out.push(0),
                }
                out.extend_from_slice(&(tids.len() as u32).to_le_bytes());
                for tid in tids {
                    out.extend_from_slice(&tid.to_le_bytes());
                }
            }
            Response::Batch(subs) => {
                out.push(ST_BATCH);
                out.extend_from_slice(&(subs.len() as u32).to_le_bytes());
                for sub in subs {
                    debug_assert!(
                        !matches!(sub, Response::Batch(_)),
                        "OK_BATCH must not nest (rejected on decode)"
                    );
                    sub.encode_body(out);
                }
            }
            Response::Text(text) => {
                out.push(ST_TEXT);
                out.extend_from_slice(&(text.len() as u32).to_le_bytes());
                out.extend_from_slice(text.as_bytes());
            }
            Response::Error { code, msg } => {
                out.push(ST_ERR);
                out.push(*code);
                // The u16 length forces truncation of huge messages; back
                // off to a char boundary so the peer never sees a split
                // codepoint (which would decode as BadText, hiding the
                // original error behind a protocol error).
                let mut cut = msg.len().min(u16::MAX as usize);
                while !msg.is_char_boundary(cut) {
                    cut -= 1;
                }
                let bytes = &msg.as_bytes()[..cut];
                out.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
                out.extend_from_slice(bytes);
            }
        }
    }

    /// Decode one frame body. Rejects trailing bytes, so a frame is
    /// exactly one response.
    pub fn decode(body: &[u8]) -> Result<Response, ProtoError> {
        let mut cur = Cursor::new(body);
        let resp = Response::decode_body(&mut cur, true)?;
        cur.done()?;
        Ok(resp)
    }

    fn decode_body(cur: &mut Cursor<'_>, allow_batch: bool) -> Result<Response, ProtoError> {
        match cur.u8("status")? {
            ST_NONE => Ok(Response::None),
            ST_TID => Ok(Response::Tid(cur.u64("OK_TID tid")?)),
            ST_SCAN => {
                let token = match cur.u8("OK_SCAN more flag")? {
                    0 => Option::None,
                    _ => {
                        let shard = cur.u32("OK_SCAN token shard")?;
                        Some(ScanToken { shard, last_key: cur.key()? })
                    }
                };
                let count = cur.u32("OK_SCAN count")? as usize;
                // A true count is bounded by the remaining payload; refuse
                // to allocate more than that for a hostile one.
                if count > cur.body.len().saturating_sub(cur.at) / 8 {
                    return Err(ProtoError::Truncated("OK_SCAN tids"));
                }
                let mut tids = Vec::with_capacity(count);
                for _ in 0..count {
                    tids.push(cur.u64("OK_SCAN tid")?);
                }
                Ok(Response::Scan { tids, token })
            }
            ST_BATCH if allow_batch => {
                let count = cur.u32("OK_BATCH count")? as usize;
                // Mirror the request-side cap: a conforming server never
                // answers with more sub-responses than a BATCH may carry.
                if count > MAX_BATCH_SUBS {
                    return Err(ProtoError::BatchTooLarge(count));
                }
                let mut subs = Vec::with_capacity(count);
                for _ in 0..count {
                    subs.push(Response::decode_body(cur, false)?);
                }
                Ok(Response::Batch(subs))
            }
            ST_BATCH => Err(ProtoError::NestedBatch),
            ST_TEXT => {
                let len = cur.u32("OK_TEXT length")? as usize;
                let bytes = cur.take(len, "OK_TEXT bytes")?;
                let text = std::str::from_utf8(bytes).map_err(|_| ProtoError::BadText)?;
                Ok(Response::Text(text.to_string()))
            }
            ST_ERR => {
                let code = cur.u8("ERR code")?;
                let len = cur.u16("ERR message length")? as usize;
                let bytes = cur.take(len, "ERR message bytes")?;
                let msg = std::str::from_utf8(bytes).map_err(|_| ProtoError::BadText)?;
                Ok(Response::Error { code, msg: msg.to_string() })
            }
            other => Err(ProtoError::UnknownStatus(other)),
        }
    }
}

/// Incremental frame splitter: feed it raw socket reads, pull complete
/// frame bodies out. Tolerates any split of the byte stream — a frame may
/// arrive one byte at a time or many frames may land in one read.
///
/// The decoder is format-agnostic: it enforces only the length-prefix
/// framing ([`MAX_FRAME`], non-empty bodies); [`Request::decode`] /
/// [`Response::decode`] interpret the bodies it yields.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by yielded frames.
    pos: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Append raw bytes from the transport.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Reclaim the consumed prefix before growing, so a long-lived
        // connection's buffer stays proportional to its in-flight data.
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos >= 4096) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet yielded as frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Yield the next complete frame body, `Ok(None)` when more bytes are
    /// needed, or a framing error (after which the stream cannot be
    /// resynchronized and should be closed).
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, ProtoError> {
        let avail = self.pending();
        if avail < 4 {
            return Ok(None);
        }
        let at = self.pos;
        let len =
            u32::from_le_bytes(self.buf[at..at + 4].try_into().expect("len checked")) as usize;
        if len == 0 {
            return Err(ProtoError::EmptyFrame);
        }
        if len > MAX_FRAME {
            return Err(ProtoError::FrameTooLarge(len));
        }
        if avail < 4 + len {
            return Ok(None);
        }
        let body = self.buf[at + 4..at + 4 + len].to_vec();
        self.pos = at + 4 + len;
        Ok(Some(body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_each_request() {
        let reqs = vec![
            Request::Get { key: b"k".to_vec() },
            Request::Put { tid: 7, key: b"key".to_vec() },
            Request::Del { key: Vec::new() },
            Request::Scan { start: b"a".to_vec(), limit: 100 },
            Request::Resume {
                token: ScanToken { shard: 3, last_key: b"zz".to_vec() },
                limit: 5,
            },
            Request::Batch(vec![Request::Ping, Request::Get { key: b"x".to_vec() }]),
            Request::Stats,
            Request::Ping,
            Request::Shutdown,
        ];
        let mut wire = Vec::new();
        for r in &reqs {
            r.encode(&mut wire);
        }
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        for want in &reqs {
            let body = dec.next_frame().unwrap().expect("frame present");
            assert_eq!(&Request::decode(&body).unwrap(), want);
        }
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn round_trip_each_response() {
        let resps = vec![
            Response::None,
            Response::Tid(u64::MAX),
            Response::Scan { tids: vec![1, 2, 3], token: None },
            Response::Scan {
                tids: vec![9],
                token: Some(ScanToken { shard: 1, last_key: b"m".to_vec() }),
            },
            Response::Batch(vec![Response::None, Response::Tid(4)]),
            Response::Text("{\"ok\":true}".to_string()),
            Response::Error { code: err_code::BAD_FRAME, msg: "nope".to_string() },
        ];
        let mut wire = Vec::new();
        for r in &resps {
            r.encode(&mut wire);
        }
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        for want in &resps {
            let body = dec.next_frame().unwrap().expect("frame present");
            assert_eq!(&Response::decode(&body).unwrap(), want);
        }
    }

    #[test]
    fn split_reads_reassemble() {
        let mut wire = Vec::new();
        Request::Put { tid: 42, key: b"hello".to_vec() }.encode(&mut wire);
        for chunk in [1usize, 2, 3, 7] {
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            for piece in wire.chunks(chunk) {
                dec.feed(piece);
                while let Some(body) = dec.next_frame().unwrap() {
                    got.push(Request::decode(&body).unwrap());
                }
            }
            assert_eq!(got, vec![Request::Put { tid: 42, key: b"hello".to_vec() }]);
        }
    }

    #[test]
    fn framing_violations_are_typed() {
        let mut dec = FrameDecoder::new();
        dec.feed(&0u32.to_le_bytes());
        assert_eq!(dec.next_frame(), Err(ProtoError::EmptyFrame));

        let mut dec = FrameDecoder::new();
        dec.feed(&(MAX_FRAME as u32 + 1).to_le_bytes());
        assert_eq!(dec.next_frame(), Err(ProtoError::FrameTooLarge(MAX_FRAME + 1)));

        assert_eq!(Request::decode(&[]), Err(ProtoError::Truncated("opcode")));
        assert_eq!(Request::decode(&[0x7E]), Err(ProtoError::UnknownOpcode(0x7E)));
        assert_eq!(Request::decode(&[OP_PING, 0]), Err(ProtoError::TrailingBytes(1)));
        // A BATCH containing a BATCH.
        let nested = [OP_BATCH, 1, 0, 0, 0, OP_BATCH, 0, 0, 0, 0];
        assert_eq!(Request::decode(&nested), Err(ProtoError::NestedBatch));
    }

    #[test]
    fn batch_sub_request_count_is_capped() {
        let batch = |n: usize| {
            let mut body = vec![OP_BATCH];
            body.extend_from_slice(&(n as u32).to_le_bytes());
            body.extend(std::iter::repeat(OP_PING).take(n.min(MAX_BATCH_SUBS)));
            body
        };
        assert_eq!(
            Request::decode(&batch(MAX_BATCH_SUBS)).unwrap(),
            Request::Batch(vec![Request::Ping; MAX_BATCH_SUBS])
        );
        assert_eq!(
            Request::decode(&batch(MAX_BATCH_SUBS + 1)),
            Err(ProtoError::BatchTooLarge(MAX_BATCH_SUBS + 1))
        );
        // The response side mirrors the cap.
        let mut body = vec![ST_BATCH];
        body.extend_from_slice(&((MAX_BATCH_SUBS + 1) as u32).to_le_bytes());
        assert_eq!(
            Response::decode(&body),
            Err(ProtoError::BatchTooLarge(MAX_BATCH_SUBS + 1))
        );
    }

    #[test]
    fn oversized_response_is_replaced_by_err_frame() {
        let resp = Response::Scan { tids: vec![7; MAX_FRAME / 8 + 1], token: None };
        let mut wire = Vec::new();
        resp.encode(&mut wire);
        assert!(wire.len() <= MAX_FRAME + 4, "frame must fit the decoder's cap");
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        let body = dec.next_frame().unwrap().expect("one complete frame");
        match Response::decode(&body).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, err_code::RESPONSE_TOO_LARGE),
            other => panic!("expected ERR replacement, got {other:?}"),
        }
    }

    #[test]
    fn error_message_truncates_on_char_boundary() {
        // 2-byte codepoints put every char boundary at an even offset;
        // the u16::MAX (odd) cut must back off one byte, not split 'é'.
        let msg = "é".repeat(40_000); // 80_000 bytes
        let mut wire = Vec::new();
        Response::Error { code: err_code::BAD_FRAME, msg: msg.clone() }.encode(&mut wire);
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        let body = dec.next_frame().unwrap().expect("one complete frame");
        match Response::decode(&body).expect("truncation must stay valid UTF-8") {
            Response::Error { code, msg: got } => {
                assert_eq!(code, err_code::BAD_FRAME);
                assert_eq!(got.len(), u16::MAX as usize - 1);
                assert!(msg.starts_with(&got));
            }
            other => panic!("expected ERR, got {other:?}"),
        }
    }
}
