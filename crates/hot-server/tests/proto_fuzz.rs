//! Protocol fuzzing: the frame decoder and both body codecs must be total
//! over arbitrary wire input — any byte sequence either decodes or
//! returns a typed [`ProtoError`], never panics, never over-allocates —
//! and encode → (arbitrarily split) decode must be the identity on every
//! representable request and response.
//!
//! Runs in the normal, `HOT_FORCE_SCALAR` and `HOT_ARENA` CI lanes; the
//! decoder is index-independent, so identical behavior across lanes is
//! itself part of the property.

use hot_core::ScanToken;
use hot_server::protocol::{
    err_code, FrameDecoder, ProtoError, Request, Response, MAX_BATCH_SUBS, MAX_FRAME,
};
use proptest::prelude::*;

fn key() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..48)
}

fn token() -> impl Strategy<Value = ScanToken> {
    (any::<u32>(), key()).prop_map(|(shard, last_key)| ScanToken { shard, last_key })
}

/// Any non-BATCH request.
fn scalar_request() -> BoxedStrategy<Request> {
    prop_oneof![
        4 => key().prop_map(|key| Request::Get { key }),
        3 => (any::<u64>(), key()).prop_map(|(tid, key)| Request::Put { tid, key }),
        2 => key().prop_map(|key| Request::Del { key }),
        2 => (key(), any::<u32>()).prop_map(|(start, limit)| Request::Scan { start, limit }),
        2 => (token(), any::<u32>()).prop_map(|(token, limit)| Request::Resume { token, limit }),
        1 => (0u32..1).prop_map(|_| Request::Stats),
        1 => (0u32..1).prop_map(|_| Request::Ping),
        1 => (0u32..1).prop_map(|_| Request::Shutdown),
    ]
    .boxed()
}

/// Any request, including single-level BATCH groups.
fn request() -> BoxedStrategy<Request> {
    prop_oneof![
        5 => scalar_request(),
        1 => proptest::collection::vec(scalar_request(), 0..6).prop_map(Request::Batch),
    ]
    .boxed()
}

fn ascii() -> impl Strategy<Value = String> {
    proptest::collection::vec(32u8..127, 0..40)
        .prop_map(|bytes| String::from_utf8(bytes).expect("printable ascii"))
}

/// Any non-BATCH response.
fn scalar_response() -> BoxedStrategy<Response> {
    prop_oneof![
        2 => (0u32..1).prop_map(|_| Response::None),
        3 => any::<u64>().prop_map(Response::Tid),
        3 => (proptest::collection::vec(any::<u64>(), 0..20), any::<bool>(), token()).prop_map(
            |(tids, more, token)| Response::Scan { tids, token: more.then_some(token) }
        ),
        1 => ascii().prop_map(Response::Text),
        1 => (any::<u8>(), ascii()).prop_map(|(code, msg)| Response::Error { code, msg }),
    ]
    .boxed()
}

fn response() -> BoxedStrategy<Response> {
    prop_oneof![
        5 => scalar_response(),
        1 => proptest::collection::vec(scalar_response(), 0..6).prop_map(Response::Batch),
    ]
    .boxed()
}

/// Feed `wire` to a fresh decoder in the given chunk sizes and collect
/// every decoded frame body.
fn decode_split(wire: &[u8], chunks: &[usize]) -> Vec<Vec<u8>> {
    let mut dec = FrameDecoder::new();
    let mut out = Vec::new();
    let mut at = 0;
    let mut chunk_idx = 0;
    while at < wire.len() {
        let step = chunks.get(chunk_idx).copied().unwrap_or(7).clamp(1, wire.len() - at);
        chunk_idx += 1;
        dec.feed(&wire[at..at + step]);
        at += step;
        while let Some(body) = dec.next_frame().expect("valid stream") {
            out.push(body);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode → decode is the identity for any request pipeline, at any
    /// read fragmentation.
    #[test]
    fn request_round_trip_survives_any_split(
        reqs in proptest::collection::vec(request(), 1..8),
        chunks in proptest::collection::vec(1usize..64, 1..32),
    ) {
        let mut wire = Vec::new();
        for r in &reqs {
            r.encode(&mut wire);
        }
        let bodies = decode_split(&wire, &chunks);
        prop_assert_eq!(bodies.len(), reqs.len());
        for (body, want) in bodies.iter().zip(&reqs) {
            prop_assert_eq!(&Request::decode(body).expect("own encoding decodes"), want);
        }
    }

    /// encode → decode is the identity for any response pipeline, at any
    /// read fragmentation.
    #[test]
    fn response_round_trip_survives_any_split(
        resps in proptest::collection::vec(response(), 1..8),
        chunks in proptest::collection::vec(1usize..64, 1..32),
    ) {
        let mut wire = Vec::new();
        for r in &resps {
            r.encode(&mut wire);
        }
        let bodies = decode_split(&wire, &chunks);
        prop_assert_eq!(bodies.len(), resps.len());
        for (body, want) in bodies.iter().zip(&resps) {
            prop_assert_eq!(&Response::decode(body).expect("own encoding decodes"), want);
        }
    }

    /// Arbitrary bytes never panic the decoder or the body codecs: every
    /// outcome is a decoded value or a typed error.
    #[test]
    fn arbitrary_bytes_never_panic(
        junk in proptest::collection::vec(any::<u8>(), 0..256),
        chunks in proptest::collection::vec(1usize..32, 1..16),
    ) {
        let mut dec = FrameDecoder::new();
        let mut at = 0;
        let mut chunk_idx = 0;
        'outer: while at < junk.len() {
            let step = chunks.get(chunk_idx).copied().unwrap_or(5).clamp(1, junk.len() - at);
            chunk_idx += 1;
            dec.feed(&junk[at..at + step]);
            at += step;
            loop {
                match dec.next_frame() {
                    Ok(Some(body)) => {
                        // Both interpretations must be total on the body.
                        let _ = Request::decode(&body);
                        let _ = Response::decode(&body);
                    }
                    Ok(None) => break,
                    // A framing violation ends the stream, as it would
                    // end the connection.
                    Err(_) => break 'outer,
                }
            }
        }
    }

    /// Any truncation of a valid frame yields `Ok(None)` (wait for more
    /// bytes), never an error and never a phantom frame.
    #[test]
    fn truncated_frames_wait_for_more(req in request(), cut in any::<u16>()) {
        let mut wire = Vec::new();
        req.encode(&mut wire);
        let cut = (cut as usize) % wire.len(); // strictly short of complete
        let mut dec = FrameDecoder::new();
        dec.feed(&wire[..cut]);
        prop_assert_eq!(dec.next_frame(), Ok(None));
        // Completing the bytes completes the frame.
        dec.feed(&wire[cut..]);
        let body = dec.next_frame().expect("valid stream").expect("complete frame");
        prop_assert_eq!(Request::decode(&body).expect("own encoding decodes"), req);
    }

    /// A hostile length prefix is rejected before any allocation of its
    /// claimed size.
    #[test]
    fn oversized_length_prefix_is_rejected(extra in 1u32..=u32::MAX - MAX_FRAME as u32) {
        let len = MAX_FRAME as u32 + extra;
        let mut dec = FrameDecoder::new();
        dec.feed(&len.to_le_bytes());
        prop_assert_eq!(dec.next_frame(), Err(ProtoError::FrameTooLarge(len as usize)));
    }

    /// A truncated BATCH count cannot cause an oversized allocation or a
    /// hang: decode returns a typed error.
    #[test]
    fn hostile_batch_count_is_bounded(count in 1u32..=u32::MAX, tail in key()) {
        let mut body = vec![0x05u8]; // OP_BATCH
        body.extend_from_slice(&count.to_le_bytes());
        body.extend_from_slice(&tail);
        // Either the tail happens to decode as `count` sub-requests (only
        // possible for tiny counts) or we get a typed error; both are
        // fine, a panic or OOM is not. Above the sub-request cap the
        // error is pinned: rejected before any sub-request is decoded.
        let got = Request::decode(&body);
        if count as usize > MAX_BATCH_SUBS {
            prop_assert_eq!(got, Err(ProtoError::BatchTooLarge(count as usize)));
        }
    }

    /// No representable response encodes to a frame the decoder refuses:
    /// an over-MAX_FRAME body is replaced by a typed ERR frame, so the
    /// peer always sees a decodable response.
    #[test]
    fn encoded_responses_always_fit_max_frame(extra in 0usize..65536) {
        let resp = Response::Scan {
            tids: vec![0u64; MAX_FRAME / 8 + extra],
            token: None,
        };
        let mut wire = Vec::new();
        resp.encode(&mut wire);
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        let body = dec.next_frame().expect("within MAX_FRAME").expect("complete frame");
        match Response::decode(&body).expect("decodable response") {
            Response::Error { code, .. } => {
                prop_assert_eq!(code, err_code::RESPONSE_TOO_LARGE);
            }
            other => prop_assert!(false, "expected ERR replacement, got {:?}", other),
        }
    }
}
