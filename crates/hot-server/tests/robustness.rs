//! Connection-robustness integration tests: one misbehaving client must
//! never corrupt another connection's results, and every failure mode
//! (mid-frame disconnect, idle stall, slow reader, garbage frames) ends
//! with the server still serving and the well-behaved connection's
//! checksum intact.

use hot_server::protocol::{FrameDecoder, Request, Response};
use hot_server::{net_data_for, start_with_data, NetData, ServerConfig, ServerHandle};
use hot_ycsb::DatasetKind;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

const KEYS: usize = 2_000;
const SEED: u64 = 7;

fn test_config(idle: Duration) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        kind: DatasetKind::Integer,
        keys: KEYS,
        ops: KEYS,
        seed: SEED,
        shards: 2,
        workers: false,
        pin: false,
        window: 32,
        idle_timeout: idle,
    }
}

fn test_server(idle: Duration) -> (ServerHandle, NetData) {
    let data = net_data_for(DatasetKind::Integer, KEYS, KEYS, SEED);
    let check = net_data_for(DatasetKind::Integer, KEYS, KEYS, SEED);
    let handle = start_with_data(test_config(idle), data).expect("server starts");
    (handle, check)
}

/// Minimal raw-socket client (kept independent of hot-client, which this
/// crate cannot depend on) so these tests double as a second protocol
/// implementation.
struct Raw {
    stream: TcpStream,
    dec: FrameDecoder,
    buf: Vec<u8>,
}

impl Raw {
    fn connect(handle: &ServerHandle) -> Raw {
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .expect("read timeout");
        Raw { stream, dec: FrameDecoder::new(), buf: vec![0u8; 64 << 10] }
    }

    fn send_all(&mut self, reqs: &[Request]) {
        let mut wire = Vec::new();
        for r in reqs {
            r.encode(&mut wire);
        }
        self.stream.write_all(&wire).expect("request bytes accepted");
    }

    fn recv(&mut self) -> Response {
        self.try_recv().expect("a response frame")
    }

    /// `None` when the server closed the connection.
    fn try_recv(&mut self) -> Option<Response> {
        loop {
            match self.dec.next_frame().expect("well-framed response stream") {
                Some(body) => return Some(Response::decode(&body).expect("valid response")),
                None => {
                    let n = self.stream.read(&mut self.buf).ok()?;
                    if n == 0 {
                        return None;
                    }
                    let fed = &self.buf[..n];
                    self.dec.feed(fed);
                }
            }
        }
    }
}

/// GET every loaded key and fold the returned TIDs — the checksum a
/// well-behaved connection must always reproduce exactly.
fn get_all_checksum(conn: &mut Raw, data: &NetData) -> u64 {
    let mut checksum = 0u64;
    for chunk in (0..data.loaded).collect::<Vec<_>>().chunks(64) {
        let reqs: Vec<Request> = chunk
            .iter()
            .map(|&i| Request::Get { key: data.dataset.keys[i].clone() })
            .collect();
        conn.send_all(&reqs);
        for &i in chunk {
            match conn.recv() {
                Response::Tid(tid) => {
                    assert_eq!(tid, data.tids[i], "GET returned the wrong TID");
                    checksum = checksum.wrapping_add(tid);
                }
                other => panic!("GET answered with {other:?}"),
            }
        }
    }
    checksum
}

fn expected_checksum(data: &NetData) -> u64 {
    data.tids[..data.loaded].iter().fold(0u64, |acc, &t| acc.wrapping_add(t))
}

/// A client that dies mid-frame (half a BATCH header on the wire) must
/// not disturb a concurrent connection's results.
#[test]
fn mid_batch_disconnect_leaves_other_connections_intact() {
    let (handle, data) = test_server(Duration::from_secs(10));

    let mut sick = Raw::connect(&handle);
    // A legitimate request, then a torn one: a BATCH frame announcing 100
    // sub-requests, cut off after the first.
    sick.send_all(&[Request::Ping]);
    assert_eq!(sick.recv(), Response::None);
    let mut torn = Vec::new();
    Request::Batch(vec![
        Request::Get { key: data.dataset.keys[0].clone() };
        100
    ])
    .encode(&mut torn);
    sick.stream.write_all(&torn[..torn.len() / 2]).expect("partial frame accepted");
    drop(sick); // RST/FIN mid-frame

    let mut good = Raw::connect(&handle);
    assert_eq!(get_all_checksum(&mut good, &data), expected_checksum(&data));
    assert_eq!(handle.stats().proto_errors(), 0, "a torn frame is not a protocol error");
    handle.shutdown();
}

/// An idle connection is reaped after the timeout; the server keeps
/// accepting new ones.
#[test]
fn idle_connections_are_reaped() {
    let (handle, data) = test_server(Duration::from_millis(200));

    let mut idler = Raw::connect(&handle);
    assert_eq!(idler.try_recv(), None, "idle connection closed by the server");

    let mut good = Raw::connect(&handle);
    assert_eq!(get_all_checksum(&mut good, &data), expected_checksum(&data));
    handle.shutdown();
}

/// A reader that stops draining responses stalls only itself: its window
/// backs up against `write_all` while another connection stays fully
/// served; once it finally drains, every one of its responses is intact.
#[test]
fn slow_reader_backpressure_is_isolated() {
    let (handle, data) = test_server(Duration::from_secs(30));

    // ~2000 scans × 2000 TIDs × 8 bytes ≈ 32 MB of responses — far past
    // the socket buffers, so the server must block writing long before
    // it finishes the stream.
    let smallest = data.dataset.keys[..data.loaded]
        .iter()
        .min()
        .expect("corpus is non-empty")
        .clone();
    let scans = 2_000usize;
    let mut slow = Raw::connect(&handle);
    // Over-ask by one so the page visibly ends the key space (a page
    // filled exactly to its limit correctly mints a continuation token).
    slow.send_all(&vec![
        Request::Scan { start: smallest, limit: data.loaded as u32 + 1 };
        scans
    ]);

    // Leave the slow reader stalled while a second connection does a full
    // checksum sweep — it must be completely unaffected.
    std::thread::sleep(Duration::from_millis(200));
    let mut good = Raw::connect(&handle);
    assert_eq!(get_all_checksum(&mut good, &data), expected_checksum(&data));

    // Now drain: every response arrives, in order, complete.
    for _ in 0..scans {
        match slow.recv() {
            Response::Scan { tids, token } => {
                assert_eq!(tids.len(), data.loaded, "full-corpus scan");
                assert!(token.is_none(), "limit covered the whole corpus");
            }
            other => panic!("SCAN answered with {other:?}"),
        }
    }
    handle.shutdown();
}

/// Garbage on the wire gets a typed ERR frame and a closed connection —
/// and nothing else: concurrent connections and subsequent ones are fine.
#[test]
fn garbage_frames_get_typed_errors() {
    let (handle, data) = test_server(Duration::from_secs(10));

    let mut evil = Raw::connect(&handle);
    // A frame whose body is an unknown opcode.
    evil.stream
        .write_all(&[1, 0, 0, 0, 0x7E])
        .expect("garbage accepted at the transport level");
    match evil.try_recv() {
        Some(Response::Error { code, msg }) => {
            assert_eq!(code, hot_server::protocol::err_code::BAD_FRAME);
            assert!(msg.contains("opcode"), "error names the violation: {msg}");
        }
        other => panic!("expected a typed ERR frame, got {other:?}"),
    }
    assert_eq!(evil.try_recv(), None, "connection closed after the framing error");

    // Poll until the error is counted (the connection thread may still be
    // between the write and the counter bump).
    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.stats().proto_errors() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(handle.stats().proto_errors(), 1);

    let mut good = Raw::connect(&handle);
    assert_eq!(get_all_checksum(&mut good, &data), expected_checksum(&data));
    handle.shutdown();
}

/// One hostile BATCH frame cannot balloon the server: sub-requests are
/// capped at decode time, a batch's scans share an aggregate result
/// budget (truncated scans stay resumable via tokens), the response
/// frame fits MAX_FRAME, and the batch counts as its sub-requests in
/// the stats — not one extra for the frame.
#[test]
fn hostile_batch_is_bounded() {
    use hot_server::protocol::{err_code, MAX_BATCH_SCAN_TIDS, MAX_BATCH_SUBS};

    let (handle, data) = test_server(Duration::from_secs(10));
    let smallest = data.dataset.keys[..data.loaded]
        .iter()
        .min()
        .expect("corpus is non-empty")
        .clone();

    // The worst legal batch: the maximum sub-count, every sub a scan
    // asking for everything.
    let mut conn = Raw::connect(&handle);
    let before = handle.stats().requests();
    conn.send_all(&[Request::Batch(vec![
        Request::Scan { start: smallest, limit: u32::MAX };
        MAX_BATCH_SUBS
    ])]);
    // Raw's FrameDecoder enforces MAX_FRAME, so receiving the response
    // at all proves the frame stayed within the cap.
    match conn.recv() {
        Response::Batch(subs) => {
            assert_eq!(subs.len(), MAX_BATCH_SUBS);
            let mut total = 0usize;
            for sub in &subs {
                match sub {
                    Response::Scan { tids, token } => {
                        total += tids.len();
                        // A budget-truncated page must stay resumable:
                        // only a page that visibly ends the key space may
                        // omit the continuation token.
                        assert!(
                            token.is_some() || tids.len() >= data.loaded,
                            "truncated scan of {} TIDs lost its token",
                            tids.len()
                        );
                    }
                    other => panic!("SCAN answered with {other:?}"),
                }
            }
            assert!(
                total <= MAX_BATCH_SCAN_TIDS + MAX_BATCH_SUBS,
                "aggregate scan budget exceeded: {total} TIDs"
            );
        }
        other => panic!("BATCH answered with {other:?}"),
    }
    assert_eq!(
        handle.stats().requests() - before,
        MAX_BATCH_SUBS as u64,
        "a batch of N counts as N requests, not N + 1"
    );

    // One past the cap: rejected at decode with a typed error, before any
    // sub-request is executed.
    let mut evil = Raw::connect(&handle);
    let mut body = vec![0x05u8]; // OP_BATCH
    body.extend_from_slice(&((MAX_BATCH_SUBS + 1) as u32).to_le_bytes());
    body.extend(std::iter::repeat(0x07u8).take(MAX_BATCH_SUBS + 1)); // OP_PING
    let mut frame = (body.len() as u32).to_le_bytes().to_vec();
    frame.extend_from_slice(&body);
    evil.stream.write_all(&frame).expect("frame accepted at the transport level");
    match evil.try_recv() {
        Some(Response::Error { code, msg }) => {
            assert_eq!(code, err_code::BAD_FRAME);
            assert!(msg.contains("BATCH"), "error names the violation: {msg}");
        }
        other => panic!("expected a typed ERR frame, got {other:?}"),
    }
    assert_eq!(evil.try_recv(), None, "connection closed after the violation");

    let mut good = Raw::connect(&handle);
    assert_eq!(get_all_checksum(&mut good, &data), expected_checksum(&data));
    handle.shutdown();
}

/// The SHUTDOWN frame: acknowledged, then the whole server winds down and
/// every thread joins (ServerHandle::join returns).
#[test]
fn shutdown_frame_stops_the_server() {
    let (handle, data) = test_server(Duration::from_secs(10));

    let mut conn = Raw::connect(&handle);
    // Real work first, so shutdown happens with warm connections.
    let reqs = vec![
        Request::Get { key: data.dataset.keys[0].clone() },
        Request::Stats,
        Request::Shutdown,
    ];
    conn.send_all(&reqs);
    assert_eq!(conn.recv(), Response::Tid(data.tids[0]));
    match conn.recv() {
        Response::Text(json) => assert!(json.contains("\"requests\""), "stats document: {json}"),
        other => panic!("STATS answered with {other:?}"),
    }
    assert_eq!(conn.recv(), Response::None, "SHUTDOWN acknowledged");

    handle.join(); // returns only because the frame stopped the server
}
