//! Supplementary probe: bytes/key of HOT vs ART on the integer data set as
//! the key count grows — shows ART's footprint rising toward (and past)
//! HOT's as the uniform key space gets sparse at depth, which is where the
//! paper's 50 M-key Figure 9 sits.
//!
//! ```text
//! cargo run --release -p hot-bench --bin mem_scale -- --keys 5000000
//! ```

use hot_bench::{row, BenchData, Config};
use hot_ycsb::{Dataset, DatasetKind};
use std::sync::Arc;

fn main() {
    let config = Config::from_args();
    println!("# bytes/key vs scale, integer data set (uniform 63-bit)");
    row(&[
        "keys".into(),
        "HOT_bpk".into(),
        "ART_bpk".into(),
        "HOT_mean_depth".into(),
        "ART_mean_depth".into(),
    ]);
    let mut n = 250_000usize;
    while n <= config.keys {
        let data = BenchData::new(Dataset::generate(DatasetKind::Integer, n, config.seed));
        let mut hot = hot_core::HotTrie::new(Arc::clone(&data.arena));
        let mut art = hot_art::Art::new(Arc::clone(&data.arena));
        for i in 0..n {
            hot.insert(&data.dataset.keys[i], data.tids[i]);
            art.insert(&data.dataset.keys[i], data.tids[i]);
        }
        row(&[
            n.to_string(),
            format!("{:.2}", hot.memory_stats().bytes_per_key()),
            format!("{:.2}", art.memory_stats().bytes_per_key()),
            format!("{:.2}", hot.depth_stats().mean_depth()),
            format!("{:.2}", art.depth_stats().mean_depth()),
        ]);
        n *= 4;
    }
}
