//! Figure 11 — the depth distribution of leaf values (min / mean / max) for
//! HOT, ART and the binary Patricia trie, over all four data sets.
//!
//! Paper shape (Section 6.5): HOT reduces the mean leaf depth by up to 68%
//! vs ART on the textual data sets and by an order of magnitude vs binary
//! Patricia; yago: HOT lowest; integer: ART's 256-fanout wins
//! (HOT 6.0 vs ART 4.02 at 50 M keys). HOT's worst-case mean is only ~42%
//! above its best case, while ART varies by 560% and Patricia by 270%.
//!
//! ```text
//! cargo run --release -p hot-bench --bin fig11_height -- --keys 1000000
//! ```

use hot_bench::{depth_row, row, BenchData, Config};
use hot_keys::DepthStats;
use hot_ycsb::{Dataset, DatasetKind};
use std::sync::Arc;

fn main() {
    let config = Config::from_args();
    println!(
        "# Figure 11: leaf depth distribution after loading {} keys (seed={})",
        config.keys, config.seed
    );
    println!("# paper_shape: HOT lowest mean depth on url/email/yago; ART lower on integer; HOT's depth varies least across data sets");
    row(&[
        "dataset".into(),
        "structure".into(),
        "min".into(),
        "mean".into(),
        "max".into(),
    ]);

    let mut hot_means: Vec<f64> = Vec::new();
    let mut art_means: Vec<f64> = Vec::new();
    let mut bin_means: Vec<f64> = Vec::new();

    for kind in DatasetKind::ALL {
        let data = BenchData::new(Dataset::generate(kind, config.keys, config.seed));
        let mut hot = hot_core::HotTrie::new(Arc::clone(&data.arena));
        let mut art = hot_art::Art::new(Arc::clone(&data.arena));
        let mut bin = hot_patricia::PatriciaTree::new(Arc::clone(&data.arena));
        for (i, key) in data.dataset.keys.iter().enumerate() {
            hot.insert(key, data.tids[i]);
            art.insert(key, data.tids[i]);
            bin.insert(key, data.tids[i]);
        }

        for (name, stats) in [
            ("HOT", hot.depth_stats()),
            ("ART", art.depth_stats()),
            ("BIN", bin.depth_stats()),
        ] {
            let (min, mean, max) = depth_row(&stats);
            match name {
                "HOT" => hot_means.push(mean),
                "ART" => art_means.push(mean),
                _ => bin_means.push(mean),
            }
            row(&[
                kind.label().into(),
                name.into(),
                min.to_string(),
                format!("{mean:.2}"),
                max.to_string(),
            ]);
        }
    }

    let spread = |means: &[f64]| -> f64 {
        let max = means.iter().cloned().fold(f64::MIN, f64::max);
        let min = means.iter().cloned().fold(f64::MAX, f64::min);
        (max / min - 1.0) * 100.0
    };
    println!(
        "# worst-vs-best mean depth spread: HOT {:.0}% | ART {:.0}% | BIN {:.0}% (paper: 42% | 560% | 270%)",
        spread(&hot_means),
        spread(&art_means),
        spread(&bin_means)
    );
    let _ = DepthStats::new();
}
