//! Ad-hoc COW-cycle cost measurement (not a paper figure).
use hot_core::node::builder::Builder;
use hot_core::node::MemCounter;
use std::time::Instant;

fn main() {
    let mem = MemCounter::default();
    // A full 32-entry node over 31 positions.
    let positions: Vec<u16> = (0..31).collect();
    let sparse: Vec<u32> = (0..32u32).map(|i| if i == 0 { 0 } else { 1 << (i % 31) }).collect();
    // Build valid linearization instead: reference trie over keys 0..32 (5 bits).
    let b = {
        let mut t = hot_core::HotTrie::new(hot_keys::EmbeddedKeySource);
        for k in 0..32u64 { t.insert(&hot_keys::encode_u64(k), k); }
        // decode root via... use pair for rough cost instead
        Builder { positions: positions.clone(), sparse: sparse.clone(), values: (0..32).map(|i| hot_core::NodeRef::leaf(i).0).collect(), height: 1 }
    };
    let iters = 1_000_000;
    let t = Instant::now();
    let mut acc = 0u64;
    for _ in 0..iters {
        let r = b.encode(&mem);
        acc = acc.wrapping_add(r.0);
        // SAFETY: `r` was just encoded and never published.
        unsafe { hot_core::node::free_for_bench(r, &mem) };
    }
    println!("encode+free (32 entries): {:.0} ns/cycle (acc {acc:x})", t.elapsed().as_nanos() as f64 / iters as f64);

    let small = Builder::pair(5, hot_core::NodeRef::leaf(1).0, hot_core::NodeRef::leaf(2).0, 1);
    let t = Instant::now();
    for _ in 0..iters {
        let r = small.encode(&mem);
        acc = acc.wrapping_add(r.0);
        // SAFETY: `r` was just encoded and never published.
        unsafe { hot_core::node::free_for_bench(r, &mem) };
    }
    println!("encode+free (pair): {:.0} ns/cycle", t.elapsed().as_nanos() as f64 / iters as f64);

    let t = Instant::now();
    for _ in 0..iters {
        let p = Builder::pair(5, hot_core::NodeRef::leaf(1).0, hot_core::NodeRef::leaf(2).0, 1);
        acc = acc.wrapping_add(p.values[0]);
    }
    println!("Builder::pair alone: {:.0} ns (acc {acc:x})", t.elapsed().as_nanos() as f64 / iters as f64);
}
