//! Ad-hoc insert-cost breakdown (not a paper figure).
use hot_bench::BenchData;
use hot_ycsb::{Dataset, DatasetKind};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(400_000);
    let data = BenchData::new(Dataset::generate(DatasetKind::Email, n, 42));
    let dataset = &data.dataset;

    // Full insert.
    let mut trie = hot_core::HotTrie::new(Arc::clone(&data.arena));
    let t = Instant::now();
    for (i, key) in dataset.keys.iter().enumerate() {
        trie.insert(key, data.tids[i]);
    }
    let insert_time = t.elapsed();

    // Lookup for comparison.
    let t = Instant::now();
    let mut hits = 0u64;
    for key in &dataset.keys {
        if trie.get(key).is_some() { hits += 1; }
    }
    let get_time = t.elapsed();
    println!("insert {:?} ({:.0} ns/op)  get {:?} ({:.0} ns/op) hits {hits}",
        insert_time, insert_time.as_nanos() as f64 / n as f64,
        get_time, get_time.as_nanos() as f64 / n as f64);
    println!("nodes {} bytes/key {:.1}", trie.memory_stats().node_count, trie.memory_stats().bytes_per_key());

}
// phases printed by lib instrumentation
