//! Appendix A — the full benchmark grid: all six YCSB workloads × four data
//! sets × two request distributions (uniform, Zipfian) × four structures.
//!
//! Paper shape: the same ordering as Figure 8 holds across the grid — HOT
//! leads or ties every cell except insert-heavy operation on the integer
//! data set, where ART leads; Zipfian results track the uniform ones.
//!
//! This is the longest-running binary (48 configurations); scale `--keys` /
//! `--ops` accordingly.
//!
//! ```text
//! cargo run --release -p hot-bench --bin appendix_a -- --keys 300000 --ops 600000
//! ```

use hot_bench::{all_indexes, row, run_load, run_transactions, BenchData, Config};
use hot_ycsb::{Dataset, DatasetKind, RequestDistribution, Workload, WorkloadRun};

fn main() {
    let config = Config::from_args();
    println!(
        "# Appendix A: all workloads x data sets x distributions (keys={}, ops={}, seed={})",
        config.keys, config.ops, config.seed
    );
    println!("# paper_shape: same ordering as Figure 8 in every cell; zipfian tracks uniform");
    row(&[
        "workload".into(),
        "distribution".into(),
        "dataset".into(),
        "structure".into(),
        "mops".into(),
    ]);

    for kind in DatasetKind::ALL {
        // One dataset (with worst-case reserve) serves all configurations.
        let max_reserve = WorkloadRun::new(
            Workload::E,
            RequestDistribution::Uniform,
            config.keys,
            config.ops,
            config.seed,
        )
        .reserve_keys();
        let data = BenchData::new(Dataset::generate(kind, config.keys + max_reserve, config.seed));

        for workload in Workload::ALL {
            for distribution in RequestDistribution::ALL {
                let run = WorkloadRun::new(
                    workload,
                    distribution,
                    config.keys,
                    config.ops,
                    config.seed,
                );
                for mut index in all_indexes(&data.arena) {
                    run_load(index.as_mut(), &data, config.keys);
                    let (tx_mops, checksum) = run_transactions(index.as_mut(), &data, &run);
                    row(&[
                        format!("{workload:?}"),
                        distribution.label().into(),
                        kind.label().into(),
                        index.name().into(),
                        format!("{tx_mops:.3}"),
                    ]);
                    std::hint::black_box(checksum);
                }
            }
        }
    }
}
