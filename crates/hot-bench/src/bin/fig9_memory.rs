//! Figure 9 — memory consumption after the load phase, per data set and
//! structure, plus the two reference lines of the figure: the minimum 8
//! bytes/key of raw tuple identifiers and the raw size of the stored keys.
//!
//! Paper shape (Section 6.3): HOT smallest on every data set (11.4–14.4
//! bytes/key, below the raw key size for both string sets); BT constant
//! across data sets and ≥ 88% above HOT; Masstree grows the most for long
//! keys (+230% from integer to url); ART in between (+51%).
//!
//! ```text
//! cargo run --release -p hot-bench --bin fig9_memory -- --keys 1000000
//! ```
//!
//! With `--bulk` the indexes are built through [`BenchIndex::bulk_load`]
//! over pre-sorted keys instead of the insert loop, so the figure reports
//! the footprint of bulk-built structures (never larger for HOT: the
//! bottom-up builder packs nodes at least as densely as incremental COW
//! growth).
//!
//! [`BenchIndex::bulk_load`]: hot_bench::BenchIndex::bulk_load

use hot_bench::{all_indexes, row, run_load, run_load_bulk, BenchData, Config};
use hot_ycsb::{Dataset, DatasetKind};

fn main() {
    let config = Config::from_args();
    println!(
        "# Figure 9: index memory after loading {} keys (seed={}, load={})",
        config.keys,
        config.seed,
        if config.bulk { "bulk" } else { "insert-loop" }
    );
    println!("# paper_shape: HOT smallest everywhere (11-15 B/key); BT constant across data sets (~88% above HOT); Masstree worst on url (+230% vs its integer footprint); ART +51%");
    row(&[
        "dataset".into(),
        "structure".into(),
        "total_MB".into(),
        "bytes_per_key".into(),
        "tid_floor_MB".into(),
        "raw_keys_MB".into(),
    ]);

    let mb = |bytes: usize| bytes as f64 / 1e6;
    for kind in DatasetKind::ALL {
        let data = BenchData::new(Dataset::generate(kind, config.keys, config.seed));
        let raw_keys = data.dataset.raw_key_bytes();
        let tid_floor = config.keys * 8;
        for mut index in all_indexes(&data.arena) {
            if config.bulk {
                run_load_bulk(index.as_mut(), &data, config.keys, 1);
            } else {
                run_load(index.as_mut(), &data, config.keys);
            }
            let stats = index.memory();
            row(&[
                kind.label().into(),
                index.name().into(),
                format!("{:.1}", mb(stats.total_bytes())),
                format!("{:.2}", stats.bytes_per_key()),
                format!("{:.1}", mb(tid_floor)),
                format!("{:.1}", mb(raw_keys)),
            ]);
        }
    }
}
