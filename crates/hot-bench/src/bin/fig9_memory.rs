//! Figure 9 — memory consumption after the load phase, per data set and
//! structure, plus the two reference lines of the figure: the minimum 8
//! bytes/key of raw tuple identifiers and the raw size of the stored keys.
//!
//! Paper shape (Section 6.3): HOT smallest on every data set (11.4–14.4
//! bytes/key, below the raw key size for both string sets); BT constant
//! across data sets and ≥ 88% above HOT; Masstree grows the most for long
//! keys (+230% from integer to url); ART in between (+51%).
//!
//! ```text
//! cargo run --release -p hot-bench --bin fig9_memory -- --keys 1000000
//! ```
//!
//! Two space metrics per row:
//!
//! * `live_B_key` — live index bytes per key (node headers, masks, partial
//!   keys, value slots): the paper's headline metric, a `size_of`
//!   summation over reachable structures.
//! * `footprint_B_key` — allocator-level bytes per key: what the index's
//!   allocator actually reserved from the OS, growth slack and free-list
//!   blocks included. For the compact arena backend this is committed slab
//!   capacity; for heap structures no arena-level accounting exists, so
//!   reservation tracks live bytes and the two metrics coincide. The
//!   footprint is the honest answer to "what does this index cost my
//!   process" and is the number the `--arena` comparison gates on.
//!
//! `with_keys_B_key` adds the storage a lookup actually needs: heap
//! structures store 8-byte TIDs and resolve keys through the shared
//! [`ArenaKeySource`] tuple store, so their self-contained cost includes
//! its reserved bytes; the compact arena backend front-codes keys inline
//! and adds nothing.
//!
//! With `--bulk` the indexes are built through [`BenchIndex::bulk_load`]
//! over pre-sorted keys instead of the insert loop, so the figure reports
//! the footprint of bulk-built structures (never larger for HOT: the
//! bottom-up builder packs nodes at least as densely as incremental COW
//! growth).
//!
//! With `--arena` a `HOT-arena` row ([`CompactHotIndex`]) joins each data
//! set, its get/scan checksums are asserted identical to the heap HOT row
//! before its numbers are reported, and the arena-vs-heap comparison is
//! written to `results/BENCH_arena.json` for the `cargo xtask bench-check`
//! gate (fields ending `_bpk` are gated lower-is-better).
//!
//! [`BenchIndex::bulk_load`]: hot_bench::BenchIndex::bulk_load
//! [`ArenaKeySource`]: hot_keys::ArenaKeySource
//! [`CompactHotIndex`]: hot_bench::CompactHotIndex

use hot_bench::{
    all_indexes, row, run_load, run_load_bulk, BenchData, BenchIndex, CompactHotIndex, Config,
};
use hot_ycsb::{Dataset, DatasetKind};

/// One `BENCH_arena.json` row: the self-contained bytes/key of the two HOT
/// backends on one data set.
struct ArenaRecord {
    dataset: &'static str,
    arena_bpk: f64,
    heap_bpk: f64,
}

/// Sum of found TIDs over every key plus scan entry counts from a strided
/// sample — a black-box the two backends must agree on exactly before
/// their memory rows are comparable (same tree, same answers).
fn op_checksum(index: &dyn BenchIndex, data: &BenchData, n: usize) -> u64 {
    let mut checksum = 0u64;
    for i in 0..n {
        if let Some(tid) = index.get(&data.dataset.keys[i]) {
            checksum = checksum.wrapping_add(tid.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
    }
    let mut i = 0;
    while i < n {
        checksum = checksum.wrapping_add(index.scan(&data.dataset.keys[i], 64) as u64);
        i += 997;
    }
    checksum
}

fn load(index: &mut dyn BenchIndex, data: &BenchData, config: &Config) {
    if config.bulk {
        run_load_bulk(index, data, config.keys, 1);
    } else {
        run_load(index, data, config.keys);
    }
}

fn main() {
    let config = Config::from_args();
    println!(
        "# Figure 9: index memory after loading {} keys (seed={}, load={})",
        config.keys,
        config.seed,
        if config.bulk { "bulk" } else { "insert-loop" }
    );
    println!("# paper_shape: HOT smallest everywhere (11-15 B/key); BT constant across data sets (~88% above HOT); Masstree worst on url (+230% vs its integer footprint); ART +51%");
    if config.arena {
        println!("# arena_shape: HOT-arena self-contained (keys inline) at <= 60% of heap HOT + tuple store on url");
    }
    row(&[
        "dataset".into(),
        "structure".into(),
        "footprint_MB".into(),
        "footprint_B_key".into(),
        "live_B_key".into(),
        "with_keys_B_key".into(),
        "tid_floor_MB".into(),
        "raw_keys_MB".into(),
    ]);

    let mb = |bytes: usize| bytes as f64 / 1e6;
    let mut records: Vec<ArenaRecord> = Vec::new();
    for kind in DatasetKind::ALL {
        let data = BenchData::new(Dataset::generate(kind, config.keys, config.seed));
        let raw_keys = data.dataset.raw_key_bytes();
        let key_store = data.arena.capacity_bytes();
        let tid_floor = config.keys * 8;
        let mut heap_hot_with_keys = 0.0;
        let mut heap_hot_checksum = 0u64;
        for (slot, mut index) in all_indexes(&data.arena).into_iter().enumerate() {
            load(index.as_mut(), &data, &config);
            let stats = index.memory();
            // Heap structures answer lookups through the shared tuple
            // store, so their self-contained cost includes its reserved
            // bytes.
            let with_keys = stats.footprint_bytes() + key_store;
            if slot == 0 {
                // all_indexes puts HOT first: the heap side of the arena
                // comparison.
                heap_hot_with_keys = with_keys as f64 / config.keys as f64;
                if config.arena {
                    heap_hot_checksum = op_checksum(index.as_ref(), &data, config.keys);
                }
            }
            row(&[
                kind.label().into(),
                index.name().into(),
                format!("{:.1}", mb(stats.footprint_bytes())),
                format!("{:.2}", stats.footprint_per_key()),
                format!("{:.2}", stats.bytes_per_key()),
                format!("{:.2}", with_keys as f64 / config.keys as f64),
                format!("{:.1}", mb(tid_floor)),
                format!("{:.1}", mb(raw_keys)),
            ]);
        }
        if config.arena {
            let mut index = CompactHotIndex::new();
            load(&mut index, &data, &config);
            let checksum = op_checksum(&index, &data, config.keys);
            assert_eq!(
                checksum,
                heap_hot_checksum,
                "{}: arena backend get/scan checksum diverges from heap HOT",
                kind.label()
            );
            let stats = index.memory();
            // Keys live front-coded inside the slabs: nothing external to
            // add.
            let arena_bpk = stats.footprint_per_key();
            row(&[
                kind.label().into(),
                index.name().into(),
                format!("{:.1}", mb(stats.footprint_bytes())),
                format!("{:.2}", arena_bpk),
                format!("{:.2}", stats.bytes_per_key()),
                format!("{:.2}", arena_bpk),
                format!("{:.1}", mb(tid_floor)),
                format!("{:.1}", mb(raw_keys)),
            ]);
            let arena = index.trie().arena_stats();
            println!(
                "# {}: arena split: node {:.2} B/key (live {:.2}), leaf {:.2} B/key (tail {:.2}, dead {:.2})",
                kind.label(),
                arena.node_capacity_bytes as f64 / config.keys as f64,
                arena.node_live_bytes as f64 / config.keys as f64,
                arena.leaf_capacity_bytes as f64 / config.keys as f64,
                arena.leaf_tail_bytes as f64 / config.keys as f64,
                arena.leaf_dead_bytes as f64 / config.keys as f64,
            );
            println!(
                "# {}: arena {:.2} B/key vs heap {:.2} B/key with keys = {:.0}% (checksums agree)",
                kind.label(),
                arena_bpk,
                heap_hot_with_keys,
                100.0 * arena_bpk / heap_hot_with_keys
            );
            records.push(ArenaRecord {
                dataset: kind.label(),
                arena_bpk,
                heap_bpk: heap_hot_with_keys,
            });
        }
    }
    if config.arena {
        write_arena_json(&config, &records);
    }
}

/// Hand-rolled JSON: self-contained bytes/key of the arena backend vs the
/// heap backend (HOT footprint + tuple-store reservation) per data set.
/// The `*_bpk` fields are gated lower-is-better by `cargo xtask
/// bench-check`.
fn write_arena_json(config: &Config, records: &[ArenaRecord]) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"fig9_arena_footprint\",\n");
    out.push_str(&format!(
        "  \"keys\": {}, \"seed\": {}, \"load\": \"{}\",\n",
        config.keys,
        config.seed,
        if config.bulk { "bulk" } else { "insert-loop" }
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"structure\": \"HOT-arena\", \"arena_bpk\": {:.3}, \"heap_bpk\": {:.3}, \"ratio_pct\": {:.1}}}{}\n",
            r.dataset,
            r.arena_bpk,
            r.heap_bpk,
            100.0 * r.arena_bpk / r.heap_bpk,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/BENCH_arena.json", &out))
    {
        // Results are advisory; a read-only checkout should not fail the run.
        eprintln!("# could not write results/BENCH_arena.json: {e}");
    } else {
        eprintln!("# wrote results/BENCH_arena.json");
    }
}
