//! Figure 10 — scalability of the synchronized index on the url data set:
//! insert throughput (50 M random inserts in the paper) and lookup
//! throughput (100 M uniform lookups) for increasing thread counts.
//!
//! We run the full ROWEX-synchronized HOT of Section 5. The paper also
//! plots concurrent ART (ROWEX) and Masstree; re-implementing their
//! native synchronization protocols is outside this reproduction's scope
//! (see DESIGN.md §5), so the figure reports HOT plus the single-threaded
//! baselines' 1-thread numbers for context.
//!
//! Paper shape (Section 6.4): near-linear speedup — mean lookup speedup 9.96
//! and insert speedup 9.00 on 10 cores for HOT. **Note:** on a single-core
//! container no multi-core speedup is physically observable; the harness
//! still exercises the full concurrent protocol and reports whatever the
//! hardware allows.
//!
//! With `--bulk`, a `bulk_load` row is added per thread count: the whole
//! key set is pre-sorted once (untimed) and built bottom-up through
//! `ConcurrentHot::bulk_load_parallel` with that worker budget, then
//! published with a single root CAS. This measures how the parallel
//! subtrie construction itself scales, independent of the insert protocol.
//!
//! With `--metrics` (requires a binary built with `--features metrics`),
//! every thread count additionally reports a `restart_rate` row — ROWEX
//! restarts per write from the trie's own health counters — and the full
//! counter set (lock failures, restarts, obsolete sightings, epoch pins,
//! deferred-free queue depth) is written to
//! `results/BENCH_metrics_fig10.json`.
//!
//! ```text
//! cargo run --release -p hot-bench --bin fig10_scalability -- --keys 1000000 --ops 2000000 --threads 1,2,4,8
//! ```

use hot_bench::{mops, row, run_transactions_sharded, BenchData, Config};
#[cfg(feature = "metrics")]
use hot_core::hot_metrics::RowexCounter;
use hot_core::sync::ConcurrentHot;
use hot_core::{BatchCursor, MlpScheduler, RouterScratch, ShardedHot};
use hot_keys::PaddedKey;
use hot_ycsb::{Dataset, DatasetKind, RequestDistribution, Workload, WorkloadRun};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let config = Config::from_args();
    println!(
        "# Figure 10: HOT (ROWEX) scalability on the url data set (keys={}, ops={}, threads={:?})",
        config.keys, config.ops, config.threads
    );
    println!("# paper_shape: near-linear speedup with thread count (paper: 9.96x lookups / 9.00x inserts at 10 threads)");
    println!("# note: available parallelism on this host: {} core(s)", std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
    row(&[
        "op".into(),
        "threads".into(),
        "mops".into(),
        "speedup_vs_1".into(),
    ]);

    let data = BenchData::new(Dataset::generate(DatasetKind::Url, config.keys, config.seed));

    // `--bulk`: the sorted view is the untimed one-off preparation step; the
    // timed region is the bottom-up build + single-CAS publish alone.
    let sorted: Option<(Vec<&[u8]>, Vec<u64>)> = config.bulk.then(|| {
        let order = data.dataset.sorted_order();
        (
            order.iter().map(|&i| data.dataset.keys[i].as_slice()).collect(),
            order.iter().map(|&i| data.tids[i]).collect(),
        )
    });

    let mut insert_base = None;
    let mut lookup_base = None;
    let mut batch_base = None;
    let mut ooo_base = None;
    let mut bulk_base = None;
    let mut metrics_rows: Vec<(usize, String)> = Vec::new();
    for &threads in &config.threads {
        let (insert_mops, lookup_mops, batch_mops, ooo_mops, rowex) =
            run_with_threads(&data, threads, &config);
        let ib = *insert_base.get_or_insert(insert_mops);
        let lb = *lookup_base.get_or_insert(lookup_mops);
        let bb = *batch_base.get_or_insert(batch_mops);
        let ob = *ooo_base.get_or_insert(ooo_mops);
        row(&[
            "insert".into(),
            threads.to_string(),
            format!("{insert_mops:.3}"),
            format!("{:.2}", insert_mops / ib),
        ]);
        row(&[
            "lookup".into(),
            threads.to_string(),
            format!("{lookup_mops:.3}"),
            format!("{:.2}", lookup_mops / lb),
        ]);
        row(&[
            "lookup_batch".into(),
            threads.to_string(),
            format!("{batch_mops:.3}"),
            format!("{:.2}", batch_mops / bb),
        ]);
        row(&[
            "lookup_ooo".into(),
            threads.to_string(),
            format!("{ooo_mops:.3}"),
            format!("{:.2}", ooo_mops / ob),
        ]);
        if let Some((rate, json)) = rowex {
            row(&[
                "restart_rate".into(),
                threads.to_string(),
                format!("{rate:.4}"),
                "-".into(),
            ]);
            metrics_rows.push((threads, json));
        }
        if let Some((keys, tids)) = &sorted {
            let bulk_mops = run_bulk_with_threads(&data, keys, tids, threads);
            let base = *bulk_base.get_or_insert(bulk_mops);
            row(&[
                "bulk_load".into(),
                threads.to_string(),
                format!("{bulk_mops:.3}"),
                format!("{:.2}", bulk_mops / base),
            ]);
        }
    }
    if !metrics_rows.is_empty() {
        write_metrics_json(&config, &metrics_rows);
    }
    if !config.shards.is_empty() {
        run_sharded_section(&config);
    }
}

/// `--shards a,b,c`: the thread-per-core sharded execution layer
/// (DESIGN.md §17) against the single-trie out-of-order baseline, on the
/// integer and url data sets. Per shard count: one routed
/// `get_batch_with` over the full shuffled key set (classify → per-shard
/// queues → shard-grouped drain windows) and one YCSB-C pass through the
/// [`run_transactions_sharded`] dispatch driver, with routing balance as
/// max/mean shard load. `--pin` builds the pooled configuration —
/// shard-affine worker threads pinned to cores — instead of the inline
/// single-driver router that a one-core host measures best.
fn run_sharded_section(config: &Config) {
    // Unless `--keys` was explicit, floor this section at 4 M keys: the
    // routed path's win grows with trie depth — classify cost is flat per
    // key while the per-descent cache-miss saving of the shallower
    // per-shard tries grows — so small key sets understate it.
    let n = if config.keys_explicit {
        config.keys
    } else {
        config.keys.max(4_000_000)
    };
    let window = 1024usize;
    println!(
        "# Sharded router: aggregate lookup + YCSB-C throughput vs the single trie (keys={n}, ops={}, {})",
        config.ops,
        if config.pin { "pinned worker pool" } else { "inline router" },
    );
    row(&[
        "op".into(),
        "dataset".into(),
        "shards".into(),
        "mops".into(),
        "vs_single".into(),
        "imbalance".into(),
    ]);
    let mut json_rows: Vec<String> = Vec::new();
    for kind in [DatasetKind::Integer, DatasetKind::Url] {
        let data = BenchData::new(Dataset::generate(kind, n, config.seed));
        let order = data.dataset.sorted_order();
        let entries: Vec<(&[u8], u64)> = order
            .iter()
            .map(|&i| (data.dataset.keys[i].as_slice(), data.tids[i]))
            .collect();
        // Every loaded key probed once, in shuffled order.
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5AAD);
        let mut probes: Vec<&[u8]> = data.dataset.keys.iter().map(|k| k.as_slice()).collect();
        for i in (1..probes.len()).rev() {
            probes.swap(i, rng.gen_range(0..=i));
        }

        // Single-trie baseline: a 1-shard inline router — its one shard
        // IS a plain `ConcurrentHot`, driven with chunked out-of-order
        // batches, and the same instance serves the YCSB-C baseline (and
        // its checksum, which every sharded pass must reproduce).
        let baseline = ShardedHot::inline_router(Arc::clone(&data.arena), 1);
        baseline
            .bulk_load(&entries)
            .expect("sorted distinct entries into an empty trie");
        let mut sched = MlpScheduler::new();
        let mut out = vec![None; window];
        let mut single_mops = 0f64;
        let mut hits = 0u64;
        for rep in 0..6 {
            let t = Instant::now();
            let mut h = 0u64;
            for chunk in probes.chunks(window) {
                baseline
                    .shard(0)
                    .get_batch_ooo(chunk, &mut out[..chunk.len()], &mut sched);
                h += out[..chunk.len()].iter().flatten().count() as u64;
            }
            let m = mops(probes.len(), t.elapsed().as_secs_f64());
            // First rep warms the page cache and branch history; score
            // the best of the rest.
            if rep > 0 {
                single_mops = single_mops.max(m);
            }
            hits = h;
        }
        assert_eq!(hits, probes.len() as u64, "every loaded key found");
        let run = WorkloadRun::new(
            Workload::C,
            RequestDistribution::Uniform,
            n,
            config.ops,
            config.seed,
        );
        // Dispatch planning amortizes over large read batches (the
        // router's own drain window), not the scalar-driver group size.
        let ycsb_batch = config.batch.max(window);
        let (ycsb_single, check_single) =
            run_transactions_sharded(&baseline, &data, &run, ycsb_batch);
        let label = kind.label();
        row(&[
            "lookup_ooo".into(),
            label.into(),
            "1".into(),
            format!("{single_mops:.3}"),
            "1.00".into(),
            "-".into(),
        ]);
        row(&[
            "ycsb_c".into(),
            label.into(),
            "1".into(),
            format!("{ycsb_single:.3}"),
            "1.00".into(),
            "-".into(),
        ]);
        json_rows.push(format!(
            "{{\"dataset\": \"{label}\", \"structure\": \"single\", \"lookup_ooo_mops\": {single_mops:.3}, \"ycsb_c_mops\": {ycsb_single:.3}}}"
        ));

        for &s in &config.shards {
            let sharded = if config.pin {
                ShardedHot::with_config(Arc::clone(&data.arena), s, true, true)
            } else {
                ShardedHot::inline_router(Arc::clone(&data.arena), s)
            };
            sharded
                .bulk_load(&entries)
                .expect("sorted distinct entries into empty shards");
            let mut scratch = RouterScratch::new();
            let mut routed = vec![None; probes.len()];
            // Warm-up rep grows the per-shard queues and faults their
            // pages in; timed reps run on warm scratch. Both sides of the
            // comparison score the best of five timed passes: scheduler
            // noise on a shared host is strictly subtractive, so the
            // per-side maximum estimates the undisturbed rate.
            sharded.get_batch_with(&probes, &mut routed, &mut scratch);
            let mut shard_mops = 0f64;
            for _ in 0..5 {
                let t = Instant::now();
                sharded.get_batch_with(&probes, &mut routed, &mut scratch);
                shard_mops = shard_mops.max(mops(probes.len(), t.elapsed().as_secs_f64()));
            }
            assert_eq!(
                routed.iter().flatten().count() as u64,
                hits,
                "routed lookups find every key the single trie found"
            );
            let (ycsb_mops, check) = run_transactions_sharded(&sharded, &data, &run, ycsb_batch);
            assert_eq!(
                check, check_single,
                "sharded YCSB-C checksum matches the single trie"
            );
            let imbalance = sharded.imbalance();
            row(&[
                "lookup_sharded".into(),
                label.into(),
                s.to_string(),
                format!("{shard_mops:.3}"),
                format!("{:.2}", shard_mops / single_mops),
                format!("{imbalance:.3}"),
            ]);
            row(&[
                "ycsb_c_sharded".into(),
                label.into(),
                s.to_string(),
                format!("{ycsb_mops:.3}"),
                format!("{:.2}", ycsb_mops / ycsb_single),
                format!("{imbalance:.3}"),
            ]);
            json_rows.push(format!(
                "{{\"dataset\": \"{label}\", \"structure\": \"shard{s}\", \"lookup_mops\": {shard_mops:.3}, \"ycsb_c_mops\": {ycsb_mops:.3}, \"imbalance\": {imbalance:.3}}}"
            ));
        }
    }
    write_shard_json(config, n, &json_rows);
}

/// Hand-rolled JSON for the sharded-router rows, in the same
/// `rows: [{dataset, structure, *_mops}]` shape the bench-check gate
/// parses.
fn write_shard_json(config: &Config, keys: usize, rows: &[String]) {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"fig10_sharded_router\",\n");
    out.push_str(&format!(
        "  \"keys\": {keys}, \"ops\": {}, \"seed\": {}, \"pinned\": {},\n",
        config.ops, config.seed, config.pin
    ));
    out.push_str("  \"rows\": [\n");
    for (i, json) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {json}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/BENCH_shard.json", &out))
    {
        eprintln!("# could not write results/BENCH_shard.json: {e}");
    } else {
        eprintln!("# wrote results/BENCH_shard.json");
    }
}

/// Hand-rolled JSON: one ROWEX health-counter object per thread count,
/// written only under `--metrics` with the `metrics` feature built in.
fn write_metrics_json(config: &Config, rows: &[(usize, String)]) {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"fig10_rowex_health\",\n");
    out.push_str(&format!(
        "  \"keys\": {}, \"ops\": {}, \"seed\": {},\n",
        config.keys, config.ops, config.seed
    ));
    out.push_str("  \"rows\": [\n");
    for (i, (_, json)) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {json}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/BENCH_metrics_fig10.json", &out))
    {
        eprintln!("# could not write results/BENCH_metrics_fig10.json: {e}");
    } else {
        eprintln!("# wrote results/BENCH_metrics_fig10.json");
    }
}

/// Bottom-up bulk build of the full sorted key set on `threads` workers,
/// published with one root CAS. Returns million keys loaded per second.
fn run_bulk_with_threads(data: &BenchData, keys: &[&[u8]], tids: &[u64], threads: usize) -> f64 {
    let entries: Vec<(&[u8], u64)> = keys.iter().copied().zip(tids.iter().copied()).collect();
    let trie = ConcurrentHot::new(Arc::clone(&data.arena));
    let start = Instant::now();
    let n = trie
        .bulk_load_parallel(&entries, threads)
        .expect("sorted entries into an empty trie");
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(n, entries.len(), "every distinct key landed");
    mops(n, elapsed)
}

/// Insert / lookup / batched-lookup / out-of-order-lookup phases at one
/// thread count. The last element is `Some((restart_rate, rowex_json))`
/// only under `--metrics` with the `metrics` feature compiled in.
fn run_with_threads(
    data: &BenchData,
    threads: usize,
    config: &Config,
) -> (f64, f64, f64, f64, Option<(f64, String)>) {
    let trie = Arc::new(ConcurrentHot::new(Arc::clone(&data.arena)));
    let keys = Arc::new(data.dataset.keys.clone());
    let tids = Arc::new(data.tids.clone());
    let n = config.keys;

    // Insert phase: the key set is striped over the threads.
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let trie = Arc::clone(&trie);
            let keys = Arc::clone(&keys);
            let tids = Arc::clone(&tids);
            scope.spawn(move || {
                let mut i = t;
                while i < n {
                    trie.insert(&keys[i], tids[i]);
                    i += threads;
                }
            });
        }
    });
    let insert_mops = mops(n, start.elapsed().as_secs_f64());
    assert_eq!(trie.len(), n, "all inserts landed");

    // Lookup phase: uniform random lookups, `ops` in total, each thread
    // reusing one padded key buffer instead of re-zeroing a fresh one.
    let per_thread = config.ops / threads;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let trie = Arc::clone(&trie);
            let keys = Arc::clone(&keys);
            let seed = config.seed ^ (t as u64) << 32;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut buf = PaddedKey::new();
                let mut checksum = 0u64;
                for _ in 0..per_thread {
                    let idx = rng.gen_range(0..n);
                    if let Some(tid) = trie.get_with(&keys[idx], &mut buf) {
                        checksum = checksum.wrapping_add(tid);
                    }
                }
                std::hint::black_box(checksum);
            });
        }
    });
    let lookup_mops = mops(per_thread * threads, start.elapsed().as_secs_f64());

    // Batched lookup phase: same uniform stream, resolved `batch` keys at a
    // time through the memory-level-parallel descent (one epoch pin per
    // call, per-thread cursor).
    let batch = config.batch;
    let groups = per_thread / batch;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let trie = Arc::clone(&trie);
            let keys = Arc::clone(&keys);
            let seed = config.seed ^ (t as u64) << 32;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut cursor = BatchCursor::with_group(batch);
                let mut probe: Vec<&[u8]> = Vec::with_capacity(batch);
                let mut out: Vec<Option<u64>> = vec![None; batch];
                let mut checksum = 0u64;
                for _ in 0..groups {
                    probe.clear();
                    probe.extend((0..batch).map(|_| keys[rng.gen_range(0..n)].as_slice()));
                    trie.get_batch_with(&probe, &mut out, &mut cursor);
                    for tid in out.iter().flatten() {
                        checksum = checksum.wrapping_add(*tid);
                    }
                }
                std::hint::black_box(checksum);
            });
        }
    });
    let batch_mops = mops(groups * batch * threads, start.elapsed().as_secs_f64());

    // Out-of-order lookup phase: the same uniform stream through the
    // completion-driven scheduler — per-thread lane ring, one epoch pin per
    // window, per-refill root reload. The window is a few multiples of the
    // deepest ring so refills, not window edges, set occupancy.
    let window = batch.max(4 * hot_core::MAX_DEPTH);
    let ooo_groups = per_thread / window;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let trie = Arc::clone(&trie);
            let keys = Arc::clone(&keys);
            let seed = config.seed ^ (t as u64) << 32;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut sched = MlpScheduler::new();
                let mut probe: Vec<&[u8]> = Vec::with_capacity(window);
                let mut out: Vec<Option<u64>> = vec![None; window];
                let mut checksum = 0u64;
                for _ in 0..ooo_groups {
                    probe.clear();
                    probe.extend((0..window).map(|_| keys[rng.gen_range(0..n)].as_slice()));
                    trie.get_batch_ooo(&probe, &mut out, &mut sched);
                    for tid in out.iter().flatten() {
                        checksum = checksum.wrapping_add(*tid);
                    }
                }
                std::hint::black_box(checksum);
            });
        }
    });
    let ooo_mops = mops(ooo_groups * window * threads, start.elapsed().as_secs_f64());

    // ROWEX health counters, read after (never inside) the timed phases.
    #[cfg(feature = "metrics")]
    let rowex = config.metrics.then(|| {
        let snap = trie.metrics_ops_snapshot();
        let rate = snap.rowex.restart_rate(snap.write_ops());
        let json = format!(
            "{{\"threads\": {}, \"lock_failures\": {}, \"restarts\": {}, \"obsolete_seen\": {}, \"epoch_pins\": {}, \"deferred_queued\": {}, \"deferred_freed\": {}, \"deferred_depth\": {}, \"restart_rate\": {rate:.6}}}",
            threads,
            snap.rowex.get(RowexCounter::LockFail),
            snap.rowex.get(RowexCounter::Restart),
            snap.rowex.get(RowexCounter::ObsoleteSeen),
            snap.rowex.get(RowexCounter::EpochPin),
            snap.rowex.get(RowexCounter::DeferredQueued),
            snap.rowex.get(RowexCounter::DeferredFreed),
            snap.rowex.deferred_depth(),
        );
        (rate, json)
    });
    #[cfg(not(feature = "metrics"))]
    let rowex: Option<(f64, String)> = None;

    (insert_mops, lookup_mops, batch_mops, ooo_mops, rowex)
}
