//! Figure 10 — scalability of the synchronized index on the url data set:
//! insert throughput (50 M random inserts in the paper) and lookup
//! throughput (100 M uniform lookups) for increasing thread counts.
//!
//! We run the full ROWEX-synchronized HOT of Section 5. The paper also
//! plots concurrent ART (ROWEX) and Masstree; re-implementing their
//! native synchronization protocols is outside this reproduction's scope
//! (see DESIGN.md §5), so the figure reports HOT plus the single-threaded
//! baselines' 1-thread numbers for context.
//!
//! Paper shape (Section 6.4): near-linear speedup — mean lookup speedup 9.96
//! and insert speedup 9.00 on 10 cores for HOT. **Note:** on a single-core
//! container no multi-core speedup is physically observable; the harness
//! still exercises the full concurrent protocol and reports whatever the
//! hardware allows.
//!
//! ```text
//! cargo run --release -p hot-bench --bin fig10_scalability -- --keys 1000000 --ops 2000000 --threads 1,2,4,8
//! ```

use hot_bench::{mops, row, BenchData, Config};
use hot_core::sync::ConcurrentHot;
use hot_core::BatchCursor;
use hot_keys::PaddedKey;
use hot_ycsb::{Dataset, DatasetKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let config = Config::from_args();
    println!(
        "# Figure 10: HOT (ROWEX) scalability on the url data set (keys={}, ops={}, threads={:?})",
        config.keys, config.ops, config.threads
    );
    println!("# paper_shape: near-linear speedup with thread count (paper: 9.96x lookups / 9.00x inserts at 10 threads)");
    println!("# note: available parallelism on this host: {} core(s)", std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
    row(&[
        "op".into(),
        "threads".into(),
        "mops".into(),
        "speedup_vs_1".into(),
    ]);

    let data = BenchData::new(Dataset::generate(DatasetKind::Url, config.keys, config.seed));

    let mut insert_base = None;
    let mut lookup_base = None;
    let mut batch_base = None;
    for &threads in &config.threads {
        let (insert_mops, lookup_mops, batch_mops) = run_with_threads(&data, threads, &config);
        let ib = *insert_base.get_or_insert(insert_mops);
        let lb = *lookup_base.get_or_insert(lookup_mops);
        let bb = *batch_base.get_or_insert(batch_mops);
        row(&[
            "insert".into(),
            threads.to_string(),
            format!("{insert_mops:.3}"),
            format!("{:.2}", insert_mops / ib),
        ]);
        row(&[
            "lookup".into(),
            threads.to_string(),
            format!("{lookup_mops:.3}"),
            format!("{:.2}", lookup_mops / lb),
        ]);
        row(&[
            "lookup_batch".into(),
            threads.to_string(),
            format!("{batch_mops:.3}"),
            format!("{:.2}", batch_mops / bb),
        ]);
    }
}

fn run_with_threads(data: &BenchData, threads: usize, config: &Config) -> (f64, f64, f64) {
    let trie = Arc::new(ConcurrentHot::new(Arc::clone(&data.arena)));
    let keys = Arc::new(data.dataset.keys.clone());
    let tids = Arc::new(data.tids.clone());
    let n = config.keys;

    // Insert phase: the key set is striped over the threads.
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let trie = Arc::clone(&trie);
            let keys = Arc::clone(&keys);
            let tids = Arc::clone(&tids);
            scope.spawn(move || {
                let mut i = t;
                while i < n {
                    trie.insert(&keys[i], tids[i]);
                    i += threads;
                }
            });
        }
    });
    let insert_mops = mops(n, start.elapsed().as_secs_f64());
    assert_eq!(trie.len(), n, "all inserts landed");

    // Lookup phase: uniform random lookups, `ops` in total, each thread
    // reusing one padded key buffer instead of re-zeroing a fresh one.
    let per_thread = config.ops / threads;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let trie = Arc::clone(&trie);
            let keys = Arc::clone(&keys);
            let seed = config.seed ^ (t as u64) << 32;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut buf = PaddedKey::new();
                let mut checksum = 0u64;
                for _ in 0..per_thread {
                    let idx = rng.gen_range(0..n);
                    if let Some(tid) = trie.get_with(&keys[idx], &mut buf) {
                        checksum = checksum.wrapping_add(tid);
                    }
                }
                std::hint::black_box(checksum);
            });
        }
    });
    let lookup_mops = mops(per_thread * threads, start.elapsed().as_secs_f64());

    // Batched lookup phase: same uniform stream, resolved `batch` keys at a
    // time through the memory-level-parallel descent (one epoch pin per
    // call, per-thread cursor).
    let batch = config.batch;
    let groups = per_thread / batch;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let trie = Arc::clone(&trie);
            let keys = Arc::clone(&keys);
            let seed = config.seed ^ (t as u64) << 32;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut cursor = BatchCursor::with_group(batch);
                let mut probe: Vec<&[u8]> = Vec::with_capacity(batch);
                let mut out: Vec<Option<u64>> = vec![None; batch];
                let mut checksum = 0u64;
                for _ in 0..groups {
                    probe.clear();
                    probe.extend((0..batch).map(|_| keys[rng.gen_range(0..n)].as_slice()));
                    trie.get_batch_with(&probe, &mut out, &mut cursor);
                    for tid in out.iter().flatten() {
                        checksum = checksum.wrapping_add(*tid);
                    }
                }
                std::hint::black_box(checksum);
            });
        }
    });
    let batch_mops = mops(groups * batch * threads, start.elapsed().as_secs_f64());
    (insert_mops, lookup_mops, batch_mops)
}
