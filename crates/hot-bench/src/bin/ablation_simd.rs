//! Ablation — what the hardware primitives buy (Section 4's design
//! rationale): run the workload-C lookup benchmark for HOT with the
//! BMI2/AVX2 paths enabled vs. forced to the portable scalar fallbacks
//! (`HOT_FORCE_SCALAR=1`).
//!
//! Feature detection is cached process-wide, so the binary re-executes
//! itself once with the environment variable set and compares.
//!
//! ```text
//! cargo run --release -p hot-bench --bin ablation_simd -- --keys 500000 --ops 1000000
//! ```

use hot_bench::{row, run_load, run_transactions, BenchData, Config, HotIndex};
use hot_ycsb::{Dataset, DatasetKind, RequestDistribution, Workload, WorkloadRun};
use std::sync::Arc;

fn main() {
    let config = Config::from_args();
    let forced = std::env::var_os("HOT_FORCE_SCALAR").is_some_and(|v| !v.is_empty());

    if !forced {
        println!(
            "# SIMD ablation: HOT workload C + insert, hardware (PEXT/AVX2) vs scalar (keys={}, ops={})",
            config.keys, config.ops
        );
        println!("# expected: the hardware paths win lookups clearly; scalar PEXT hurts extraction most on multi-mask (string) nodes");
        row(&[
            "mode".into(),
            "dataset".into(),
            "lookup_mops".into(),
            "insert_mops".into(),
        ]);
    }
    let mode = if forced { "scalar" } else { "simd" };

    for kind in [DatasetKind::Integer, DatasetKind::Email, DatasetKind::Url] {
        let data = BenchData::new(Dataset::generate(kind, config.keys, config.seed));
        let mut index = HotIndex::new(Arc::clone(&data.arena));
        let insert_mops = run_load(&mut index, &data, config.keys);
        let run = WorkloadRun::new(
            Workload::C,
            RequestDistribution::Uniform,
            config.keys,
            config.ops,
            config.seed,
        );
        let (lookup_mops, checksum) = run_transactions(&mut index, &data, &run);
        row(&[
            mode.into(),
            kind.label().into(),
            format!("{lookup_mops:.3}"),
            format!("{insert_mops:.3}"),
        ]);
        std::hint::black_box(checksum);
    }

    if !forced {
        // Re-run ourselves with the scalar fallbacks forced.
        let exe = std::env::current_exe().expect("own path");
        let status = std::process::Command::new(exe)
            .args(std::env::args().skip(1))
            .env("HOT_FORCE_SCALAR", "1")
            .status()
            .expect("spawn scalar run");
        assert!(status.success(), "scalar run failed");
    }
}
