//! Network serving benchmark — the loopback face of the YCSB figures:
//! workloads A → C → E driven through the hot-server binary protocol
//! (closed-loop pipelining client against an in-process server on
//! 127.0.0.1) per data set and shard count.
//!
//! This measures the serving stack — framing, request windows, batched
//! trie execution, response encoding — not the network: loopback RTT is
//! the floor, so the interesting numbers are the *gap* to the in-process
//! driver (EXPERIMENTS.md discusses the methodology) and the latency
//! percentiles under pipelining. Checksums are always compared against
//! the in-process ground truth; `--check` promotes a mismatch to a
//! non-zero exit.
//!
//! Writes `results/BENCH_net.json` with one row per dataset × shard
//! count, fields `<w>_mops` (higher is better) and `<w>_p50_us` /
//! `<w>_p99_us` / `<w>_p999_us` (lower is better) per workload — both
//! polarities are gated by `cargo xtask bench-check`.
//!
//! ```text
//! cargo run --release -p hot-bench --bin fig_net -- --keys 100000 --ops 100000 --shards 1,4
//! ```

use hot_bench::{row, Config};
use hot_client::{expected_checksums, run_closed_loop, Connection, Registry};
use hot_server::{net_data_for, start_with_data, ServerConfig};
use hot_ycsb::{DatasetKind, RequestDistribution, Workload, WorkloadRun};
use std::time::Duration;

/// The phase sequence: every pipelineable workload class — update-heavy
/// (A), read-only (C), scan-heavy (E).
const PHASES: [Workload; 3] = [Workload::A, Workload::C, Workload::E];

/// In-flight request window per connection: deep enough to keep the
/// server's batched drain paths fed, matching the server default.
const WINDOW: usize = 128;

fn main() {
    let mut config = Config::from_args();
    if config.shards.is_empty() {
        config.shards = vec![1, 4];
    }
    println!(
        "# Network YCSB: closed-loop pipelined client over loopback (keys={}, ops={}, window={WINDOW}, shards={:?})",
        config.keys, config.ops, config.shards
    );
    println!("# paper_shape: serving adds framing + syscall cost over the in-process driver; batching in the request window claws most of it back");
    row(&[
        "dataset".into(),
        "shards".into(),
        "workload".into(),
        "mops".into(),
        "p50_us".into(),
        "p99_us".into(),
        "p999_us".into(),
        "checksum_ok".into(),
    ]);

    let mut json_rows: Vec<String> = Vec::new();
    let mut failed = false;
    for kind in DatasetKind::ALL {
        for &shards in &config.shards {
            let data = net_data_for(kind, config.keys, config.ops, config.seed);
            let expected = expected_checksums(
                &data,
                &PHASES,
                RequestDistribution::Uniform,
                config.ops,
                config.seed,
                shards,
            );
            let server_config = ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                kind,
                keys: config.keys,
                ops: config.ops,
                seed: config.seed,
                shards,
                workers: shards > 1,
                pin: config.pin,
                window: WINDOW,
                idle_timeout: Duration::from_secs(60),
            };
            let handle = start_with_data(
                server_config,
                net_data_for(kind, config.keys, config.ops, config.seed),
            )
            .expect("loopback server starts");
            let mut conn = Connection::connect(handle.addr()).expect("loopback connect");
            let registry = Registry::new();

            let label = kind.label();
            let mut fields = String::new();
            for (phase, &workload) in PHASES.iter().enumerate() {
                let run = WorkloadRun::new(
                    workload,
                    RequestDistribution::Uniform,
                    config.keys,
                    config.ops,
                    config.seed,
                );
                let report = run_closed_loop(&mut conn, &data, &run, workload, WINDOW, &registry)
                    .expect("network phase completes");
                let ok = report.checksum == expected[phase];
                if !ok {
                    eprintln!(
                        "# CHECKSUM MISMATCH {label} shards={shards} workload {}: network {:#018x} != in-process {:#018x}",
                        workload.letter(),
                        report.checksum,
                        expected[phase],
                    );
                    failed = true;
                }
                row(&[
                    label.into(),
                    shards.to_string(),
                    workload.letter().into(),
                    format!("{:.3}", report.mops),
                    format!("{:.1}", report.p50_us),
                    format!("{:.1}", report.p99_us),
                    format!("{:.1}", report.p999_us),
                    ok.to_string(),
                ]);
                let w = workload.letter().to_ascii_lowercase();
                fields.push_str(&format!(
                    ", \"{w}_mops\": {:.3}, \"{w}_p50_us\": {:.1}, \"{w}_p99_us\": {:.1}, \"{w}_p999_us\": {:.1}",
                    report.mops, report.p50_us, report.p99_us, report.p999_us
                ));
            }
            json_rows.push(format!(
                "{{\"dataset\": \"{label}\", \"structure\": \"net{shards}\"{fields}}}"
            ));
            handle.shutdown();
        }
    }

    write_net_json(&config, &json_rows);
    if failed {
        eprintln!("# fig_net: network/in-process checksum divergence (see rows above)");
        if config.check {
            std::process::exit(1);
        }
    } else {
        println!("# all network checksums match the in-process driver");
    }
}

/// Hand-rolled JSON in the `rows: [{dataset, structure, <field>...}]`
/// shape the bench-check gate parses. `*_mops` fields gate higher-is-
/// better, `*_us` latency fields lower-is-better.
fn write_net_json(config: &Config, rows: &[String]) {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"fig_net_serving\",\n");
    out.push_str(&format!(
        "  \"keys\": {}, \"ops\": {}, \"seed\": {}, \"window\": {WINDOW},\n",
        config.keys, config.ops, config.seed
    ));
    out.push_str("  \"rows\": [\n");
    for (i, json) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {json}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/BENCH_net.json", &out))
    {
        eprintln!("# could not write results/BENCH_net.json: {e}");
    } else {
        eprintln!("# wrote results/BENCH_net.json");
    }
}
