//! Figure 2 / Section 2 — the qualitative trie-variant comparison that
//! motivates HOT: the height of (a) a binary trie, (b) a binary Patricia
//! trie, (c) a fixed-span trie (span 3 in the figure; span 4 and 8 here,
//! matching the Generalized Prefix Tree and ART), (d) a fixed-span trie
//! with Patricia-style chain skipping, and (f) HOT's data-dependent span.
//!
//! Reproduced twice: for the figure's 13 nine-bit example keys and for the
//! four evaluation data sets.
//!
//! Paper shape: fixed spans leave the height hostage to the distribution;
//! HOT's adaptive span yields by far the smallest height everywhere.
//!
//! ```text
//! cargo run --release -p hot-bench --bin fig2_trie_variants -- --keys 200000
//! ```

use hot_bench::{row, BenchData, Config};
use hot_ycsb::{Dataset, DatasetKind};
use std::sync::Arc;

/// Leaf depths of a fixed-span trie over bit-chunks of `span` bits.
/// `skip_chains` omits single-child nodes (Patricia optimization).
/// Returns (mean leaf depth, max leaf depth).
///
/// Computed from the bit-level LCP array of the sorted keys: a range of
/// keys first splits at chunk level `floor(min_lcp / span)`; without chain
/// skipping every level down to the split costs one node, with skipping
/// only the branching level does.
fn fixed_span_depths(keys: &mut [Vec<u8>], span: usize, skip_chains: bool) -> (f64, usize) {
    keys.sort();
    // lcp[i] = common-prefix bits of sorted keys i and i+1.
    let lcp: Vec<u32> = keys
        .windows(2)
        .map(|w| hot_bits::first_mismatch_bit(&w[0], &w[1]).expect("distinct keys") as u32)
        .collect();

    #[allow(clippy::too_many_arguments)]
    fn recurse(
        lcp: &[u32],
        lo: usize,
        hi: usize, // inclusive key range
        depth_above: u64,
        entry_level: u64, // chunk level the range was entered at
        span: u64,
        skip: bool,
        sum: &mut u64,
        max: &mut u64,
        count: &mut u64,
    ) {
        if lo == hi {
            // Chain down to the key's end adds nothing: the key becomes a
            // leaf at its parent's next level.
            *sum += depth_above;
            *max = (*max).max(depth_above);
            *count += 1;
            return;
        }
        let min_lcp = (lo..hi).map(|i| lcp[i]).min().expect("non-empty");
        let split_level = min_lcp as u64 / span;
        // Levels entry..=split cost one node each without chain skipping;
        // with skipping only the branching node counts.
        let depth_here = if skip {
            depth_above + 1
        } else {
            depth_above + (split_level - entry_level) + 1
        };
        // Children: maximal subranges whose internal lcp exceeds the
        // branching chunk.
        let chunk_end = (split_level + 1) * span;
        let mut start = lo;
        for i in lo..hi {
            if (lcp[i] as u64) < chunk_end {
                recurse(lcp, start, i, depth_here, split_level + 1, span, skip, sum, max, count);
                start = i + 1;
            }
        }
        recurse(lcp, start, hi, depth_here, split_level + 1, span, skip, sum, max, count);
    }

    let (mut sum, mut max, mut count) = (0u64, 0u64, 0u64);
    recurse(
        &lcp,
        0,
        keys.len() - 1,
        0,
        0,
        span as u64,
        skip_chains,
        &mut sum,
        &mut max,
        &mut count,
    );
    (sum as f64 / count.max(1) as f64, max as usize)
}

fn main() {
    let config = Config::from_args();

    // Part 1: the 13 nine-bit keys of Figure 2 (a representative set with
    // both dense and sparse regions, as in the paper's illustration).
    println!("# Figure 2 (example): 13 nine-bit keys");
    let nine_bit: Vec<u16> = vec![
        0b000000000, 0b000000001, 0b000000110, 0b000001000, 0b000100000, 0b000100001,
        0b011000000, 0b011000100, 0b100000000, 0b100100000, 0b110000000, 0b110000001,
        0b111111111,
    ];
    let mut keys: Vec<Vec<u8>> = nine_bit
        .iter()
        .map(|&v| vec![(v >> 1) as u8, ((v & 1) << 7) as u8])
        .collect();
    report_example(&mut keys);

    // Part 2: the four data sets.
    println!("\n# Figure 2 (data sets): mean/max leaf depth per variant (keys={})", config.keys);
    println!("# paper_shape: binary >> patricia >> span-4 >= span-8 > HOT; fixed spans degrade on sparse (string) keys");
    row(&[
        "dataset".into(),
        "variant".into(),
        "mean_depth".into(),
        "max_depth".into(),
    ]);
    for kind in DatasetKind::ALL {
        let data = BenchData::new(Dataset::generate(kind, config.keys, config.seed));
        let dataset = &data.dataset;
        let arena = &data.arena;
        let mut keys = dataset.keys.clone();

        // Binary trie = fixed span 1 without chain skipping; Patricia = the
        // pointer-based reference implementation.
        let (bin_mean, bin_max) = fixed_span_depths(&mut keys, 1, false);
        emit(kind.label(), "binary-trie", bin_mean, bin_max);

        let mut patricia = hot_patricia::PatriciaTree::new(Arc::clone(arena));
        for (i, key) in dataset.keys.iter().enumerate() {
            patricia.insert(key, data.tids[i]);
        }
        let p = patricia.depth_stats();
        emit(
            kind.label(),
            "binary-patricia",
            p.mean_depth(),
            p.max_depth().unwrap_or(0),
        );

        let (s4_mean, s4_max) = fixed_span_depths(&mut keys, 4, false);
        emit(kind.label(), "span-4 (GPT)", s4_mean, s4_max);
        let (s4p_mean, s4p_max) = fixed_span_depths(&mut keys, 4, true);
        emit(kind.label(), "span-4+patricia", s4p_mean, s4p_max);
        let (s8_mean, s8_max) = fixed_span_depths(&mut keys, 8, true);
        emit(kind.label(), "span-8 (ART-like)", s8_mean, s8_max);

        let mut hot = hot_core::HotTrie::new(Arc::clone(arena));
        for (i, key) in dataset.keys.iter().enumerate() {
            hot.insert(key, data.tids[i]);
        }
        let h = hot.depth_stats();
        emit(
            kind.label(),
            "HOT (adaptive span)",
            h.mean_depth(),
            h.max_depth().unwrap_or(0),
        );
    }
}

fn report_example(keys: &mut [Vec<u8>]) {
    let mut keys_vec = keys.to_vec();
    let (bin_mean, bin_max) = fixed_span_depths(&mut keys_vec, 1, false);
    let (s3_mean, s3_max) = fixed_span_depths(&mut keys_vec, 3, false);
    let (s3p_mean, s3p_max) = fixed_span_depths(&mut keys_vec, 3, true);

    let mut arena = hot_keys::ArenaKeySource::new();
    let tids: Vec<u64> = keys_vec.iter().map(|k| arena.push(k)).collect();
    let arena = Arc::new(arena);
    let mut patricia = hot_patricia::PatriciaTree::new(Arc::clone(&arena));
    let mut hot = hot_core::HotTrie::new(Arc::clone(&arena));
    for (key, &tid) in keys_vec.iter().zip(&tids) {
        patricia.insert(key, tid);
        hot.insert(key, tid);
    }
    let p = patricia.depth_stats();
    let h = hot.depth_stats();
    row(&[
        "variant".into(),
        "mean_depth".into(),
        "max_depth".into(),
    ]);
    emit("example", "binary-trie", bin_mean, bin_max);
    emit(
        "example",
        "binary-patricia",
        p.mean_depth(),
        p.max_depth().unwrap_or(0),
    );
    emit("example", "span-3", s3_mean, s3_max);
    emit("example", "span-3+patricia", s3p_mean, s3p_max);
    emit(
        "example",
        "HOT",
        h.mean_depth(),
        h.max_depth().unwrap_or(0),
    );
    println!(
        "# paper: binary height 9, patricia 5, span-3 height 3, HOT(k=4) height 2; with k=32 all 13 keys fit one node"
    );
}

fn emit(dataset: &str, variant: &str, mean: f64, max: usize) {
    row(&[
        dataset.into(),
        variant.into(),
        format!("{mean:.2}"),
        max.to_string(),
    ]);
}
