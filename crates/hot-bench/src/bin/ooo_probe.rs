//! Diagnostic harness: round-robin vs out-of-order lookup throughput on
//! one data set, sweeping the in-flight depth — so scheduler regressions
//! can be bisected in seconds instead of a full fig8 run.
//!
//! ```text
//! cargo run --release -p hot-bench --bin ooo_probe -- url 1000000 2000000
//! ```
//!
//! Prints one `row\tmops` line for the round-robin group-of-8 baseline
//! and for each depth in [`hot_core::DEPTH_SWEEP`], asserting every
//! variant resolves the same TID checksum.

use std::time::Instant;

use hot_bench::{BenchData, HotIndex};
use hot_core::{BatchCursor, MlpScheduler};
use hot_ycsb::{Dataset, DatasetKind};

fn main() {
    let mut args = std::env::args().skip(1);
    let kind_arg = args.next().unwrap_or_else(|| "url".to_string());
    let keys_n: usize = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    let ops: usize = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000_000);
    let kind = DatasetKind::ALL
        .into_iter()
        .find(|k| k.label() == kind_arg)
        .expect("dataset: url | email | yago | integer");

    let data = BenchData::new(Dataset::generate(kind, keys_n, 42));
    let mut index = HotIndex::new(std::sync::Arc::clone(&data.arena));
    let mut entries: Vec<(&[u8], u64)> = data
        .dataset
        .keys
        .iter()
        .map(Vec::as_slice)
        .zip(data.tids.iter().copied())
        .collect();
    entries.sort_unstable_by(|a, b| a.0.cmp(b.0));
    let (keys, tids): (Vec<&[u8]>, Vec<u64>) = entries.into_iter().unzip();
    hot_bench::BenchIndex::bulk_load(&mut index, &keys, &tids, 1);
    let trie = index.trie();

    // Uniform probe stream (xorshift64), same length as fig8's workload C.
    let mut state = 0x9e37_79b9_7f4a_7c15_u64;
    let probes: Vec<&[u8]> = (0..ops)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            data.dataset.keys[(state % keys_n as u64) as usize].as_slice()
        })
        .collect();

    let mut out: Vec<Option<u64>> = vec![None; 256];
    let mops = |n: usize, secs: f64| n as f64 / secs / 1e6;

    let mut sum = 0u64;
    let mut cursor = BatchCursor::new();
    let start = Instant::now();
    for window in probes.chunks(8) {
        trie.get_batch_with(window, &mut out[..window.len()], &mut cursor);
        for tid in out[..window.len()].iter().flatten() {
            sum = sum.wrapping_add(*tid);
        }
    }
    println!(
        "round_robin_g8\t{:.3}",
        mops(probes.len(), start.elapsed().as_secs_f64())
    );

    // Degenerate configuration: window == depth == 8 makes the scheduler
    // structurally equivalent to one round-robin group per window (fill 8,
    // sweep, drain, no refill) — isolates per-visit cost from scheduling
    // policy when compared against the row above.
    for window_len in [8usize, 16, 32, 64, 128, 256] {
        let mut sched = MlpScheduler::with_depth(8);
        let mut osum = 0u64;
        let start = Instant::now();
        for window in probes.chunks(window_len) {
            trie.get_batch_ooo(window, &mut out[..window.len()], &mut sched);
            for tid in out[..window.len()].iter().flatten() {
                osum = osum.wrapping_add(*tid);
            }
        }
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(sum, osum, "ooo w{window_len} checksum mismatch");
        println!("ooo_w{window_len}_n8\t{:.3}", mops(probes.len(), secs));
    }

    for depth in hot_core::DEPTH_SWEEP {
        let mut sched = MlpScheduler::with_depth(depth);
        let mut osum = 0u64;
        let start = Instant::now();
        for window in probes.chunks(256) {
            trie.get_batch_ooo(window, &mut out[..window.len()], &mut sched);
            for tid in out[..window.len()].iter().flatten() {
                osum = osum.wrapping_add(*tid);
            }
        }
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(sum, osum, "ooo checksum mismatch at depth {depth}");
        println!("ooo_n{depth}\t{:.3}", mops(probes.len(), secs));
    }
}
