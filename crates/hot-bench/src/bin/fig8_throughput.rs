//! Figure 8 — single-threaded throughput (million operations / second) for
//! the lookup-only workload C, the scan-heavy workload E and the insert-only
//! load phase, over all four data sets and all four index structures.
//!
//! Paper shape (Section 6.2): HOT wins workload C on every data set (≥ 25%
//! over the best competitor), wins workload E everywhere (up to 3× on url),
//! and wins insert-only on all string data sets while ART leads on the
//! integer data set (~1.5× over HOT).
//!
//! Beyond the paper, a `C_batch` row re-runs workload C through the batched
//! read path (`BenchIndex::get_batch`, group size `--batch N`): HOT's
//! memory-level-parallel descent vs. the baselines' scalar fallback. The
//! scalar/batched pairs are also written to `results/BENCH_batch.json`.
//! Checksums of the two paths are asserted equal.
//!
//! With `--bulk`, two extra load-phase rows appear per structure:
//! `load_bulk` (sorted input through the bottom-up builder, one thread) and
//! `load_bulk_par` (same builder, worker budget = max of `--threads`). The
//! incremental/bulk triples land in `results/BENCH_bulk.json`, and every
//! bulk-built index is spot-checked to resolve the keys it was loaded with.
//!
//! ```text
//! cargo run --release -p hot-bench --bin fig8_throughput -- --keys 1000000 --ops 2000000 --batch 8
//! ```
//!
//! With `--check`, every structural invariant of the HOT trie is verified
//! after the load phase and again after the mutating workload-E phase
//! (whole-tree walk: fanout bounds, linearization well-formedness, height
//! monotonicity, key ordering, full re-lookup — see `hot_core::invariants`).
//! The checks run strictly outside the timed regions, so reported
//! throughput is unchanged; the run aborts on the first violation.
//!
//! With `--metrics` (requires a binary built with `--features metrics`),
//! an extra instrumented pass runs *after* the timed figure on fresh
//! indexes: per workload phase it reports operation counts and p50/p99/p999
//! latencies from the in-trie histograms, plus ROWEX health counters
//! (restarts, lock failures, epoch pins) from a concurrent mixed run, all
//! written to `results/BENCH_metrics.json`. The figure's own timed numbers
//! are never taken from instrumented indexes.

use hot_bench::{
    all_indexes, row, run_load, run_load_bulk, run_transactions, run_transactions_batched,
    run_transactions_fresh_scans, run_transactions_ooo, BenchData, Config,
};
use hot_ycsb::{Dataset, DatasetKind, RequestDistribution, Workload, WorkloadRun};

/// One scalar/batched workload-C pair for the JSON report.
struct BatchRecord {
    dataset: &'static str,
    structure: &'static str,
    scalar_mops: f64,
    batched_mops: f64,
}

/// One workload-E triple (allocating / cursor-amortized / batched scan
/// paths) for the `results/BENCH_scan.json` report.
struct ScanRecord {
    dataset: &'static str,
    structure: &'static str,
    alloc_mops: f64,
    cursor_mops: f64,
    batched_mops: f64,
}

/// One out-of-order-scheduler row for the `--ooo` JSON report: workload C
/// through the round-robin batched path vs. the completion-driven
/// scheduler, plus workload E through the mixed OoO pipeline.
struct OooRecord {
    dataset: &'static str,
    structure: &'static str,
    batched_mops: f64,
    ooo_mops: f64,
    ooo_scan_mops: f64,
    tuned_depth: usize,
}

/// One HOT in-flight-depth sweep cell for the `--ooo` JSON report.
struct DepthRecord {
    dataset: &'static str,
    depth: usize,
    mops: f64,
}

/// One incremental/bulk load-phase triple for the `--bulk` JSON report.
struct BulkRecord {
    dataset: &'static str,
    structure: &'static str,
    incremental_mops: f64,
    bulk_seq_mops: f64,
    bulk_par_mops: f64,
    bulk_threads: usize,
}

fn main() {
    let config = Config::from_args();
    println!(
        "# Figure 8: throughput in Mops (keys={}, ops={}, seed={}, uniform distribution, batch={})",
        config.keys, config.ops, config.seed, config.batch
    );
    println!("# paper_shape: HOT highest on C and E for all data sets; insert-only: HOT highest on strings, ART ~1.5x HOT on integer");
    println!("# C_batch: workload C through get_batch (group={}); HOT overlaps misses, baselines run the scalar fallback", config.batch);
    if config.ooo {
        println!(
            "# C_ooo/E_ooo: mixed streams through the completion-driven out-of-order scheduler (adaptive depth, sweep={:?}, HOT_MLP_DEPTH overrides)",
            hot_core::DEPTH_SWEEP
        );
    }
    row(&[
        "workload".into(),
        "dataset".into(),
        "structure".into(),
        "mops".into(),
    ]);

    let mut records: Vec<BatchRecord> = Vec::new();
    let mut bulk_records: Vec<BulkRecord> = Vec::new();
    let mut scan_records: Vec<ScanRecord> = Vec::new();
    let mut ooo_records: Vec<OooRecord> = Vec::new();
    let mut depth_records: Vec<DepthRecord> = Vec::new();
    // Coalescing window for the mixed out-of-order stream: a few multiples
    // of the LARGEST sweepable in-flight depth, so completion-driven refills
    // (not window edges) set the pipeline's occupancy even when the adaptive
    // controller picks the deepest ring.
    let ooo_window = config.batch.max(4 * hot_core::MAX_DEPTH);

    for kind in DatasetKind::ALL {
        // Reserve insert keys for workload E.
        let e_run = WorkloadRun::new(
            Workload::E,
            RequestDistribution::Uniform,
            config.keys,
            config.ops,
            config.seed,
        );
        let data = BenchData::new(Dataset::generate(
            kind,
            config.keys + e_run.reserve_keys(),
            config.seed,
        ));

        // Stride sample over the loaded keys for the adaptive in-flight-depth
        // controller: the sweep runs untimed, so the timed `*_ooo` rows use
        // the depth the controller picked rather than the static default.
        let ooo_sample: Vec<Vec<u8>> = if config.ooo {
            let keys = &data.dataset.keys[..config.keys.min(data.dataset.keys.len())];
            let stride = (keys.len() / 4096).max(1);
            keys.iter().step_by(stride).cloned().collect()
        } else {
            Vec::new()
        };

        let mut incremental_load: Vec<f64> = Vec::new();
        let mut e_results: Vec<(f64, u64)> = Vec::new();
        let mut c_results: Vec<(f64, f64, usize)> = Vec::new(); // (C_batch, C_ooo, depth) per index
        for mut index in all_indexes(&data.arena) {
            // Insert-only = the load phase itself.
            let load_mops = run_load(index.as_mut(), &data, config.keys);
            incremental_load.push(load_mops);
            check_index(&config, index.as_ref(), kind.label(), "load");

            // Workload C (100% lookup), scalar then batched over the same
            // read-only stream.
            let c_run = WorkloadRun::new(
                Workload::C,
                RequestDistribution::Uniform,
                config.keys,
                config.ops,
                config.seed,
            );
            let (c_mops, c_sum) = run_transactions(index.as_mut(), &data, &c_run);
            let (mut cb_mops, cb_sum) =
                run_transactions_batched(index.as_mut(), &data, &c_run, config.batch);
            assert_eq!(
                c_sum, cb_sum,
                "batched lookups must resolve the same TIDs as scalar ones"
            );

            // `--ooo`: the same read-only stream through the out-of-order
            // scheduler (C is read-only, so index state is untouched). A
            // single pass swings ±10-30% run-to-run on shared 1-core hosts,
            // so BOTH sides of the round-robin/out-of-order comparison take
            // the best of three interleaved passes — the rows then compare
            // the code paths, not scheduler luck. The scalar C row and the
            // state-mutating E rows stay single-pass.
            let mut co_mops = 0.0f64;
            let mut tuned_depth = hot_core::DEFAULT_DEPTH;
            if config.ooo {
                tuned_depth = index.tune_mlp_depth(&ooo_sample);
                if index.name() == "HOT" {
                    eprintln!(
                        "# {} HOT: adaptive controller picked in-flight depth {tuned_depth}",
                        kind.label()
                    );
                }
                for pass in 0..3 {
                    if pass > 0 {
                        let (b, b_sum) =
                            run_transactions_batched(index.as_mut(), &data, &c_run, config.batch);
                        assert_eq!(
                            c_sum, b_sum,
                            "batched lookups must resolve the same TIDs as scalar ones"
                        );
                        cb_mops = cb_mops.max(b);
                    }
                    let (o, o_sum) =
                        run_transactions_ooo(index.as_mut(), &data, &c_run, ooo_window);
                    assert_eq!(
                        c_sum, o_sum,
                        "out-of-order lookups must resolve the same TIDs as scalar ones"
                    );
                    co_mops = co_mops.max(o);
                }
            }
            c_results.push((cb_mops, co_mops, tuned_depth));

            // Workload E (95% scan / 5% insert), through the amortized
            // cursor scan path (for HOT; baselines run their only path).
            let (e_mops, e_sum) = run_transactions(index.as_mut(), &data, &e_run);
            check_index(&config, index.as_ref(), kind.label(), "workload E");
            e_results.push((e_mops, e_sum));

            row(&[
                "C".into(),
                kind.label().into(),
                index.name().into(),
                format!("{c_mops:.3}"),
            ]);
            row(&[
                "C_batch".into(),
                kind.label().into(),
                index.name().into(),
                format!("{cb_mops:.3}"),
            ]);
            if config.ooo {
                row(&[
                    "C_ooo".into(),
                    kind.label().into(),
                    index.name().into(),
                    format!("{co_mops:.3}"),
                ]);
            }
            row(&[
                "E".into(),
                kind.label().into(),
                index.name().into(),
                format!("{e_mops:.3}"),
            ]);
            row(&[
                "insert".into(),
                kind.label().into(),
                index.name().into(),
                format!("{load_mops:.3}"),
            ]);
            records.push(BatchRecord {
                dataset: kind.label(),
                structure: index.name(),
                scalar_mops: c_mops,
                batched_mops: cb_mops,
            });
            // Keep checksums observable so the compiler cannot drop work.
            eprintln!(
                "# {} {}: checksums C={c_sum:x} E={e_sum:x}",
                kind.label(),
                index.name()
            );
        }

        // Workload-E scan-path comparison: the same operation stream through
        // the pre-cursor allocating scan path (`E_alloc`) and through the
        // coalesced batched path (`E_batch`), each on a fresh index loaded
        // to the identical pre-E state — E inserts reserve keys, so
        // re-running it on an already-run index would change what the scans
        // see and break checksum comparability.
        {
            let alloc_set = all_indexes(&data.arena);
            let batch_set = all_indexes(&data.arena);
            for (i, (mut a, mut b)) in alloc_set.into_iter().zip(batch_set).enumerate() {
                run_load(a.as_mut(), &data, config.keys);
                run_load(b.as_mut(), &data, config.keys);
                let (ea_mops, ea_sum) = run_transactions_fresh_scans(a.as_mut(), &data, &e_run);
                let (eb_mops, eb_sum) =
                    run_transactions_batched(b.as_mut(), &data, &e_run, config.batch);
                let (e_mops, e_sum) = e_results[i];
                assert_eq!(
                    e_sum, ea_sum,
                    "amortized scans must return the same entries as the allocating path"
                );
                assert_eq!(
                    e_sum, eb_sum,
                    "batched scans must return the same entries as scalar ones"
                );
                row(&[
                    "E_alloc".into(),
                    kind.label().into(),
                    a.name().into(),
                    format!("{ea_mops:.3}"),
                ]);
                row(&[
                    "E_batch".into(),
                    kind.label().into(),
                    a.name().into(),
                    format!("{eb_mops:.3}"),
                ]);
                scan_records.push(ScanRecord {
                    dataset: kind.label(),
                    structure: a.name(),
                    alloc_mops: ea_mops,
                    cursor_mops: e_mops,
                    batched_mops: eb_mops,
                });
            }
        }

        // `--ooo`: workload E through the mixed out-of-order pipeline on a
        // fresh index loaded to the identical pre-E state (E inserts
        // reserve keys, so the already-run indexes above would give the
        // scans a different view and break checksum comparability), plus
        // an in-flight-depth sweep over the read-only C stream for HOT.
        if config.ooo {
            for (i, mut index) in all_indexes(&data.arena).into_iter().enumerate() {
                run_load(index.as_mut(), &data, config.keys);
                index.tune_mlp_depth(&ooo_sample);
                let (eo_mops, eo_sum) =
                    run_transactions_ooo(index.as_mut(), &data, &e_run, ooo_window);
                let (_, e_sum) = e_results[i];
                assert_eq!(
                    e_sum, eo_sum,
                    "out-of-order scans must return the same entries as scalar ones"
                );
                row(&[
                    "E_ooo".into(),
                    kind.label().into(),
                    index.name().into(),
                    format!("{eo_mops:.3}"),
                ]);
                let (cb_mops, co_mops, tuned_depth) = c_results[i];
                ooo_records.push(OooRecord {
                    dataset: kind.label(),
                    structure: index.name(),
                    batched_mops: cb_mops,
                    ooo_mops: co_mops,
                    ooo_scan_mops: eo_mops,
                    tuned_depth,
                });
            }

            // Depth sweep (HOT only): the same workload-C stream at each
            // candidate in-flight depth. `HOT_MLP_DEPTH` trumps this sweep
            // at run time; the sweep shows what the controller would pick.
            let c_run = WorkloadRun::new(
                Workload::C,
                RequestDistribution::Uniform,
                config.keys,
                config.ops,
                config.seed,
            );
            let mut hot = hot_bench::HotIndex::new(std::sync::Arc::clone(&data.arena));
            run_load(&mut hot, &data, config.keys);
            for &depth in &hot_core::DEPTH_SWEEP {
                hot_bench::BenchIndex::set_mlp_depth(&hot, depth);
                let (d_mops, _) = run_transactions_ooo(&mut hot, &data, &c_run, ooo_window);
                row(&[
                    "C_ooo_depth".into(),
                    kind.label().into(),
                    format!("HOT@{depth}"),
                    format!("{d_mops:.3}"),
                ]);
                depth_records.push(DepthRecord {
                    dataset: kind.label(),
                    depth,
                    mops: d_mops,
                });
            }
        }

        // `--bulk`: load two more fresh sets of indexes over the same data —
        // one through the sequential bottom-up builder, one with the full
        // worker budget — and report load throughput next to the
        // insert-loop number from above.
        if config.bulk {
            let par_threads = config.threads.iter().copied().max().unwrap_or(1);
            let seq = all_indexes(&data.arena);
            let par = all_indexes(&data.arena);
            for (i, (mut s, mut p)) in seq.into_iter().zip(par).enumerate() {
                let seq_mops = run_load_bulk(s.as_mut(), &data, config.keys, 1);
                check_index(&config, s.as_ref(), kind.label(), "bulk load");
                let par_mops = run_load_bulk(p.as_mut(), &data, config.keys, par_threads);
                check_index(&config, p.as_ref(), kind.label(), "parallel bulk load");
                verify_bulk_gets(&data, s.as_ref(), p.as_ref(), config.keys);
                row(&[
                    "load_bulk".into(),
                    kind.label().into(),
                    s.name().into(),
                    format!("{seq_mops:.3}"),
                ]);
                row(&[
                    "load_bulk_par".into(),
                    kind.label().into(),
                    s.name().into(),
                    format!("{par_mops:.3}"),
                ]);
                bulk_records.push(BulkRecord {
                    dataset: kind.label(),
                    structure: s.name(),
                    incremental_mops: incremental_load[i],
                    bulk_seq_mops: seq_mops,
                    bulk_par_mops: par_mops,
                    bulk_threads: par_threads,
                });
            }
        }
    }

    write_batch_json(&config, &records);
    write_scan_json(&config, &scan_records);
    if config.ooo {
        write_ooo_json(&config, &ooo_records, &depth_records);
    }
    if config.bulk {
        write_bulk_json(&config, &bulk_records);
    }
    #[cfg(feature = "metrics")]
    if config.metrics {
        metrics_pass::run(&config);
    }
}

/// Bulk-built indexes must resolve exactly the keys they were loaded with.
/// Samples the key set (always on — the cost is outside any timed region).
fn verify_bulk_gets(
    data: &BenchData,
    seq: &dyn hot_bench::BenchIndex,
    par: &dyn hot_bench::BenchIndex,
    load_n: usize,
) {
    let step = (load_n / 1024).max(1);
    for i in (0..load_n).step_by(step) {
        let key = &data.dataset.keys[i];
        let want = Some(data.tids[i]);
        assert_eq!(seq.get(key), want, "sequential bulk load lost a key");
        assert_eq!(par.get(key), want, "parallel bulk load lost a key");
    }
}

/// `--check` hook: verify the index's structural invariants between (never
/// inside) timed phases. Panics on violation; indexes without a checker
/// report nothing.
fn check_index(config: &Config, index: &dyn hot_bench::BenchIndex, dataset: &str, phase: &str) {
    if !config.check {
        return;
    }
    if let Some(summary) = index.check_invariants() {
        eprintln!(
            "# check: {} {} after {phase}: ok ({summary})",
            dataset,
            index.name()
        );
    }
}

/// Hand-rolled JSON (no serde in the workspace): scalar vs. batched
/// workload-C throughput per (dataset, structure).
fn write_batch_json(config: &Config, records: &[BatchRecord]) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"fig8_workload_C_batched\",\n");
    out.push_str(&format!(
        "  \"keys\": {}, \"ops\": {}, \"seed\": {}, \"batch\": {},\n",
        config.keys, config.ops, config.seed, config.batch
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"structure\": \"{}\", \"scalar_mops\": {:.3}, \"batched_mops\": {:.3}}}{}\n",
            r.dataset,
            r.structure,
            r.scalar_mops,
            r.batched_mops,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/BENCH_batch.json", &out))
    {
        // Results are advisory; a read-only checkout should not fail the run.
        eprintln!("# could not write results/BENCH_batch.json: {e}");
    } else {
        eprintln!("# wrote results/BENCH_batch.json");
    }
}

/// Hand-rolled JSON: workload-E throughput through the allocating,
/// cursor-amortized and batched scan paths per (dataset, structure), plus
/// the amortized- and batched-over-allocating speedups.
fn write_scan_json(config: &Config, records: &[ScanRecord]) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"fig8_workload_E_scan_paths\",\n");
    out.push_str(&format!(
        "  \"keys\": {}, \"ops\": {}, \"seed\": {}, \"batch\": {},\n",
        config.keys, config.ops, config.seed, config.batch
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in records.iter().enumerate() {
        let cursor_speedup = if r.alloc_mops > 0.0 { r.cursor_mops / r.alloc_mops } else { 0.0 };
        let batched_speedup = if r.alloc_mops > 0.0 { r.batched_mops / r.alloc_mops } else { 0.0 };
        out.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"structure\": \"{}\", \"alloc_mops\": {:.3}, \"cursor_mops\": {:.3}, \"batched_mops\": {:.3}, \"cursor_speedup\": {:.2}, \"batched_speedup\": {:.2}}}{}\n",
            r.dataset,
            r.structure,
            r.alloc_mops,
            r.cursor_mops,
            r.batched_mops,
            cursor_speedup,
            batched_speedup,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/BENCH_scan.json", &out))
    {
        eprintln!("# could not write results/BENCH_scan.json: {e}");
    } else {
        eprintln!("# wrote results/BENCH_scan.json");
    }
}

/// Hand-rolled JSON: round-robin vs. out-of-order workload-C throughput
/// and mixed-stream workload-E throughput per (dataset, structure), plus
/// HOT's in-flight-depth sweep (kept outside `rows` so bench-check gates
/// the headline numbers, not every sweep cell). Written only under
/// `--ooo`.
fn write_ooo_json(config: &Config, records: &[OooRecord], depths: &[DepthRecord]) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"fig8_ooo_scheduler\",\n");
    out.push_str(&format!(
        "  \"keys\": {}, \"ops\": {}, \"seed\": {}, \"batch\": {}, \"default_depth\": {},\n",
        config.keys,
        config.ops,
        config.seed,
        config.batch,
        hot_core::DEFAULT_DEPTH
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in records.iter().enumerate() {
        let speedup = if r.batched_mops > 0.0 { r.ooo_mops / r.batched_mops } else { 0.0 };
        out.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"structure\": \"{}\", \"batched_mops\": {:.3}, \"ooo_mops\": {:.3}, \"ooo_scan_mops\": {:.3}, \"ooo_speedup\": {:.2}, \"tuned_depth\": {}}}{}\n",
            r.dataset,
            r.structure,
            r.batched_mops,
            r.ooo_mops,
            r.ooo_scan_mops,
            speedup,
            r.tuned_depth,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"depth_sweep\": [\n");
    for (i, d) in depths.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"depth\": {}, \"mops\": {:.3}}}{}\n",
            d.dataset,
            d.depth,
            d.mops,
            if i + 1 < depths.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/BENCH_ooo.json", &out))
    {
        eprintln!("# could not write results/BENCH_ooo.json: {e}");
    } else {
        eprintln!("# wrote results/BENCH_ooo.json");
    }
}

/// Hand-rolled JSON: incremental vs. sequential-bulk vs. parallel-bulk load
/// throughput per (dataset, structure), written only under `--bulk`.
fn write_bulk_json(config: &Config, records: &[BulkRecord]) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"fig8_bulk_load\",\n");
    out.push_str(&format!(
        "  \"keys\": {}, \"seed\": {},\n",
        config.keys, config.seed
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"structure\": \"{}\", \"incremental_mops\": {:.3}, \"bulk_seq_mops\": {:.3}, \"bulk_par_mops\": {:.3}, \"bulk_threads\": {}}}{}\n",
            r.dataset,
            r.structure,
            r.incremental_mops,
            r.bulk_seq_mops,
            r.bulk_par_mops,
            r.bulk_threads,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/BENCH_bulk.json", &out))
    {
        eprintln!("# could not write results/BENCH_bulk.json: {e}");
    } else {
        eprintln!("# wrote results/BENCH_bulk.json");
    }
}

/// `--metrics` instrumented pass (only with the `metrics` cargo feature).
///
/// Runs on fresh indexes after the timed figure so the figure's throughput
/// numbers are never taken from snapshotted runs. Per data set:
///
/// * a single-threaded `HotIndex` goes through load / workload C /
///   batched C / workload E with a [`PhaseRecorder`] diffing the trie's
///   cumulative histograms at each phase boundary — per-phase per-op
///   count, mean and p50/p99/p999 latency;
/// * a `ConcurrentHot` with the largest `--threads` budget runs a striped
///   load plus a 90/10 read/upsert mix, and its ROWEX health counters
///   (lock failures, restarts, obsolete sightings, epoch pins, deferred
///   frees) and restart rate are reported;
/// * the single-threaded trie's structural gauges (layout census, height,
///   fill) are sampled once at the end.
///
/// Everything lands in `results/BENCH_metrics.json`; the headline
/// percentiles are also printed as `metrics` rows.
#[cfg(feature = "metrics")]
mod metrics_pass {
    use hot_bench::{
        row, run_load, run_transactions, run_transactions_batched, BenchData, Config, HotIndex,
    };
    use hot_core::hot_metrics::{OpKind, RowexCounter, StructuralSnapshot};
    use hot_core::sync::ConcurrentHot;
    use hot_keys::PaddedKey;
    use hot_ycsb::phase::PhaseRecorder;
    use hot_ycsb::{Dataset, DatasetKind, RequestDistribution, Workload, WorkloadRun};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;

    pub(super) fn run(config: &Config) {
        println!("# metrics: instrumented pass (feature \"metrics\"): per-phase latency percentiles + ROWEX health");
        row(&[
            "metrics".into(),
            "dataset".into(),
            "phase".into(),
            "op".into(),
            "count".into(),
            "p50_ns".into(),
            "p99_ns".into(),
            "p999_ns".into(),
        ]);

        let mut out = String::new();
        out.push_str("{\n  \"bench\": \"fig8_metrics\",\n");
        out.push_str(&format!(
            "  \"keys\": {}, \"ops\": {}, \"seed\": {}, \"batch\": {},\n",
            config.keys, config.ops, config.seed, config.batch
        ));
        out.push_str("  \"datasets\": {\n");

        for (di, &kind) in DatasetKind::ALL.iter().enumerate() {
            let e_run = WorkloadRun::new(
                Workload::E,
                RequestDistribution::Uniform,
                config.keys,
                config.ops,
                config.seed,
            );
            let data = BenchData::new(Dataset::generate(
                kind,
                config.keys + e_run.reserve_keys(),
                config.seed,
            ));

            let (rec, structure) = single_thread_phases(config, &data, &e_run);
            let (rowex_json, restart_rate) = concurrent_pass(config, &data);

            out.push_str(&format!("    \"{}\": {{\n", kind.label()));
            out.push_str("      \"phases\": [\n");
            let mut first = true;
            for p in rec.phases() {
                for op in OpKind::ALL {
                    let s = p.delta.op(op);
                    if s.count == 0 {
                        continue;
                    }
                    if !first {
                        out.push_str(",\n");
                    }
                    first = false;
                    out.push_str(&format!(
                        "        {{\"phase\": \"{}\", \"op\": \"{}\", \"count\": {}, \"items\": {}, \"mean_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}}}",
                        p.name,
                        op.label(),
                        s.count,
                        s.items,
                        s.mean_ns(),
                        s.p50_ns(),
                        s.p99_ns(),
                        s.p999_ns()
                    ));
                    row(&[
                        "metrics".into(),
                        kind.label().into(),
                        p.name.clone(),
                        op.label().into(),
                        s.count.to_string(),
                        s.p50_ns().to_string(),
                        s.p99_ns().to_string(),
                        s.p999_ns().to_string(),
                    ]);
                }
            }
            out.push_str("\n      ],\n");
            out.push_str(&format!("      \"rowex\": {rowex_json},\n"));
            out.push_str(&format!("      \"structure\": {}\n", structure_json(&structure)));
            out.push_str(&format!(
                "    }}{}\n",
                if di + 1 < DatasetKind::ALL.len() { "," } else { "" }
            ));
            eprintln!(
                "# metrics {}: concurrent restart_rate={restart_rate:.4}",
                kind.label()
            );
        }

        out.push_str("  }\n}\n");
        if let Err(e) = std::fs::create_dir_all("results")
            .and_then(|()| std::fs::write("results/BENCH_metrics.json", &out))
        {
            eprintln!("# could not write results/BENCH_metrics.json: {e}");
        } else {
            eprintln!("# wrote results/BENCH_metrics.json");
        }
    }

    /// Load / C / batched-C / E on a fresh single-threaded `HotIndex`,
    /// diffed into per-phase deltas; returns the recorder and the final
    /// structural gauges.
    fn single_thread_phases(
        config: &Config,
        data: &BenchData,
        e_run: &WorkloadRun,
    ) -> (PhaseRecorder, Option<StructuralSnapshot>) {
        let mut index = HotIndex::new(Arc::clone(&data.arena));
        let mut rec = PhaseRecorder::new();

        rec.begin(index.trie().metrics_ops_snapshot());
        run_load(&mut index, data, config.keys);
        rec.finish("load", index.trie().metrics_ops_snapshot());

        let c_run = WorkloadRun::new(
            Workload::C,
            RequestDistribution::Uniform,
            config.keys,
            config.ops,
            config.seed,
        );
        rec.begin(index.trie().metrics_ops_snapshot());
        run_transactions(&mut index, data, &c_run);
        rec.finish("run:C", index.trie().metrics_ops_snapshot());

        rec.begin(index.trie().metrics_ops_snapshot());
        run_transactions_batched(&mut index, data, &c_run, config.batch);
        rec.finish("run:C_batch", index.trie().metrics_ops_snapshot());

        rec.begin(index.trie().metrics_ops_snapshot());
        run_transactions(&mut index, data, e_run);
        rec.finish("run:E", index.trie().metrics_ops_snapshot());

        let structure = index.trie().metrics_snapshot().structure;
        (rec, structure)
    }

    /// Striped concurrent load plus a 90/10 read/upsert mix on the widest
    /// `--threads` budget; returns the ROWEX counter object as JSON and
    /// the restart rate.
    fn concurrent_pass(config: &Config, data: &BenchData) -> (String, f64) {
        let threads = config.threads.iter().copied().max().unwrap_or(1);
        let trie = Arc::new(ConcurrentHot::new(Arc::clone(&data.arena)));
        let n = config.keys;

        std::thread::scope(|scope| {
            for t in 0..threads {
                let trie = Arc::clone(&trie);
                scope.spawn(move || {
                    let mut i = t;
                    while i < n {
                        trie.insert(&data.dataset.keys[i], data.tids[i]);
                        i += threads;
                    }
                });
            }
        });

        let per_thread = (config.ops / threads).max(1);
        std::thread::scope(|scope| {
            for t in 0..threads {
                let trie = Arc::clone(&trie);
                let seed = config.seed ^ ((t as u64) << 32);
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let mut buf = PaddedKey::new();
                    let mut checksum = 0u64;
                    for _ in 0..per_thread {
                        let idx = rng.gen_range(0..n);
                        if rng.gen_range(0..10) == 0 {
                            // Upsert: re-inserting an existing key still walks
                            // the full analyze→lock→validate write path.
                            trie.insert(&data.dataset.keys[idx], data.tids[idx]);
                        } else if let Some(tid) = trie.get_with(&data.dataset.keys[idx], &mut buf) {
                            checksum = checksum.wrapping_add(tid);
                        }
                    }
                    std::hint::black_box(checksum);
                });
            }
        });

        let snap = trie.metrics_ops_snapshot();
        let rate = snap.rowex.restart_rate(snap.write_ops());
        let json = format!(
            "{{\"threads\": {}, \"lock_failures\": {}, \"restarts\": {}, \"obsolete_seen\": {}, \"epoch_pins\": {}, \"deferred_queued\": {}, \"deferred_freed\": {}, \"deferred_depth\": {}, \"restart_rate\": {:.6}}}",
            threads,
            snap.rowex.get(RowexCounter::LockFail),
            snap.rowex.get(RowexCounter::Restart),
            snap.rowex.get(RowexCounter::ObsoleteSeen),
            snap.rowex.get(RowexCounter::EpochPin),
            snap.rowex.get(RowexCounter::DeferredQueued),
            snap.rowex.get(RowexCounter::DeferredFreed),
            snap.rowex.deferred_depth(),
            rate
        );
        (json, rate)
    }

    /// Structural gauges as a JSON object (`null` if the walk was skipped).
    fn structure_json(structure: &Option<StructuralSnapshot>) -> String {
        let Some(s) = structure else {
            return "null".into();
        };
        let census: Vec<String> = s.layout_census.iter().map(|n| n.to_string()).collect();
        format!(
            "{{\"nodes\": {}, \"leaves\": {}, \"entries\": {}, \"height\": {}, \"avg_fill\": {:.2}, \"layout_census\": [{}]}}",
            s.nodes,
            s.leaves,
            s.entries,
            s.height,
            s.avg_fill(),
            census.join(", ")
        )
    }
}
