//! Figure 8 — single-threaded throughput (million operations / second) for
//! the lookup-only workload C, the scan-heavy workload E and the insert-only
//! load phase, over all four data sets and all four index structures.
//!
//! Paper shape (Section 6.2): HOT wins workload C on every data set (≥ 25%
//! over the best competitor), wins workload E everywhere (up to 3× on url),
//! and wins insert-only on all string data sets while ART leads on the
//! integer data set (~1.5× over HOT).
//!
//! ```text
//! cargo run --release -p hot-bench --bin fig8_throughput -- --keys 1000000 --ops 2000000
//! ```

use hot_bench::{all_indexes, row, run_load, run_transactions, BenchData, Config};
use hot_ycsb::{Dataset, DatasetKind, RequestDistribution, Workload, WorkloadRun};

fn main() {
    let config = Config::from_args();
    println!(
        "# Figure 8: throughput in Mops (keys={}, ops={}, seed={}, uniform distribution)",
        config.keys, config.ops, config.seed
    );
    println!("# paper_shape: HOT highest on C and E for all data sets; insert-only: HOT highest on strings, ART ~1.5x HOT on integer");
    row(&[
        "workload".into(),
        "dataset".into(),
        "structure".into(),
        "mops".into(),
    ]);

    for kind in DatasetKind::ALL {
        // Reserve insert keys for workload E.
        let e_run = WorkloadRun::new(
            Workload::E,
            RequestDistribution::Uniform,
            config.keys,
            config.ops,
            config.seed,
        );
        let data = BenchData::new(Dataset::generate(
            kind,
            config.keys + e_run.reserve_keys(),
            config.seed,
        ));

        for mut index in all_indexes(&data.arena) {
            // Insert-only = the load phase itself.
            let load_mops = run_load(index.as_mut(), &data, config.keys);

            // Workload C (100% lookup).
            let c_run = WorkloadRun::new(
                Workload::C,
                RequestDistribution::Uniform,
                config.keys,
                config.ops,
                config.seed,
            );
            let (c_mops, c_sum) = run_transactions(index.as_mut(), &data, &c_run);

            // Workload E (95% scan / 5% insert).
            let (e_mops, e_sum) = run_transactions(index.as_mut(), &data, &e_run);

            row(&[
                "C".into(),
                kind.label().into(),
                index.name().into(),
                format!("{c_mops:.3}"),
            ]);
            row(&[
                "E".into(),
                kind.label().into(),
                index.name().into(),
                format!("{e_mops:.3}"),
            ]);
            row(&[
                "insert".into(),
                kind.label().into(),
                index.name().into(),
                format!("{load_mops:.3}"),
            ]);
            // Keep checksums observable so the compiler cannot drop work.
            eprintln!(
                "# {} {}: checksums C={c_sum:x} E={e_sum:x}",
                kind.label(),
                index.name()
            );
        }
    }
}
