//! Criterion micro-benchmark for the memory-level-parallel batched lookup
//! path: HOT's `get_batch` swept over descent group sizes G ∈ {1, 2, 4, 8,
//! 16, 32} against the scalar `get` loop, plus the completion-driven
//! out-of-order scheduler swept over in-flight depths N ∈ {4, 8, 16, 32,
//! 64}, on the integer, email and url data sets.
//!
//! Each iteration resolves one chunk of 1024 shuffled probe keys, so every
//! reported time divides evenly into per-lookup cost. `batched_g1` isolates
//! the pure engine overhead (same code path, no overlap); the win should
//! appear from G = 2 on and flatten once G exceeds the machine's
//! line-fill-buffer budget (~10 on commodity x86).
//!
//! Key count defaults to 200 k; set `HOT_BENCH_KEYS` (e.g. 1000000) to
//! reproduce the recorded `results/bench_batch_ops*.txt` runs at full size.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use hot_bench::{BenchData, HotIndex};
use hot_core::{BatchCursor, MlpScheduler};
use hot_ycsb::{Dataset, DatasetKind};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Probe keys resolved per benchmark iteration.
const CHUNK: usize = 1024;

fn key_count() -> usize {
    std::env::var("HOT_BENCH_KEYS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000)
}

fn bench_batched_lookups(c: &mut Criterion) {
    let n = key_count();
    for kind in [DatasetKind::Integer, DatasetKind::Email, DatasetKind::Url] {
        let data = BenchData::new(Dataset::generate(kind, n, 7));
        let mut hot = HotIndex::new(std::sync::Arc::clone(&data.arena));
        for i in 0..n {
            use hot_bench::BenchIndex;
            hot.insert(&data.dataset.keys[i], data.tids[i]);
        }

        // Shuffled probe order: defeats any correlation between insert
        // order and probe order, so descents miss the cache like the YCSB
        // uniform distribution does.
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut StdRng::seed_from_u64(0xBA7C4));
        let probes: Vec<&[u8]> = order.iter().map(|&i| data.dataset.keys[i].as_slice()).collect();
        let wrap = n - CHUNK;

        let mut group = c.benchmark_group(format!("batch_get_{}", kind.label()));
        group.throughput(Throughput::Elements(CHUNK as u64));

        let mut offset = 0usize;
        group.bench_function("scalar", |b| {
            b.iter(|| {
                use hot_bench::BenchIndex;
                offset = (offset + CHUNK) % wrap;
                let mut sum = 0u64;
                for key in &probes[offset..offset + CHUNK] {
                    if let Some(tid) = hot.get(key) {
                        sum = sum.wrapping_add(tid);
                    }
                }
                black_box(sum)
            })
        });

        for g in [1usize, 2, 4, 8, 16, 32] {
            let mut cursor = BatchCursor::with_group(g);
            let mut out: Vec<Option<u64>> = vec![None; CHUNK];
            let mut offset = 0usize;
            group.bench_function(format!("batched_g{g}"), |b| {
                b.iter(|| {
                    offset = (offset + CHUNK) % wrap;
                    hot.trie()
                        .get_batch_with(&probes[offset..offset + CHUNK], &mut out, &mut cursor);
                    let mut sum = 0u64;
                    for tid in out.iter().flatten() {
                        sum = sum.wrapping_add(*tid);
                    }
                    black_box(sum)
                })
            });
        }

        // Out-of-order scheduler, the DEPTH_SWEEP candidates the adaptive
        // controller chooses between at run time.
        for depth in hot_core::DEPTH_SWEEP {
            let mut sched = MlpScheduler::with_depth(depth);
            let mut out: Vec<Option<u64>> = vec![None; CHUNK];
            let mut offset = 0usize;
            group.bench_function(format!("ooo_n{depth}"), |b| {
                b.iter(|| {
                    offset = (offset + CHUNK) % wrap;
                    hot.trie()
                        .get_batch_ooo(&probes[offset..offset + CHUNK], &mut out, &mut sched);
                    let mut sum = 0u64;
                    for tid in out.iter().flatten() {
                        sum = sum.wrapping_add(*tid);
                    }
                    black_box(sum)
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_batched_lookups);
criterion_main!(benches);
