//! Criterion micro-benchmarks for structure-level point operations:
//! lookup, insert and short scans on all four index structures, for one
//! dense-integer and one string data set (100 k keys).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hot_bench::{all_indexes, BenchData};
use hot_ycsb::{Dataset, DatasetKind};

const N: usize = 100_000;

fn bench_lookups(c: &mut Criterion) {
    for kind in [DatasetKind::Integer, DatasetKind::Email] {
        let data = BenchData::new(Dataset::generate(kind, N, 7));
        let mut group = c.benchmark_group(format!("get_{}", kind.label()));
        for mut index in all_indexes(&data.arena) {
            for i in 0..N {
                index.insert(&data.dataset.keys[i], data.tids[i]);
            }
            let name = index.name();
            let mut i = 0usize;
            group.bench_function(name, |b| {
                b.iter(|| {
                    i = (i.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407))
                        % N;
                    black_box(index.get(&data.dataset.keys[i]))
                })
            });
        }
        group.finish();
    }
}

fn bench_inserts(c: &mut Criterion) {
    for kind in [DatasetKind::Integer, DatasetKind::Email] {
        let data = BenchData::new(Dataset::generate(kind, N, 8));
        let mut group = c.benchmark_group(format!("insert_{}", kind.label()));
        group.sample_size(10);
        for mut index in all_indexes(&data.arena) {
            let name = index.name();
            group.bench_function(name, |b| {
                b.iter(|| {
                    for i in 0..N {
                        index.insert(&data.dataset.keys[i], data.tids[i]);
                    }
                    index.memory().key_count
                })
            });
        }
        group.finish();
    }
}

fn bench_scans(c: &mut Criterion) {
    let data = BenchData::new(Dataset::generate(DatasetKind::Url, N, 9));
    let mut group = c.benchmark_group("scan100_url");
    for mut index in all_indexes(&data.arena) {
        for i in 0..N {
            index.insert(&data.dataset.keys[i], data.tids[i]);
        }
        let name = index.name();
        let mut i = 0usize;
        group.bench_function(name, |b| {
            b.iter(|| {
                i = (i.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407)) % N;
                black_box(index.scan(&data.dataset.keys[i], 100))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lookups, bench_inserts, bench_scans);
criterion_main!(benches);
