//! Criterion micro-benchmark for the range-scan fast path: the allocating
//! `range_from` iterator (the pre-cursor baseline), the cursor-amortized
//! `scan_with` path, the single-group pipelined `scan_batch_with` path, and
//! the completion-driven out-of-order `scan_batch_ooo` path swept over
//! in-flight depths N ∈ {4, 8, 16, 32, 64}, all over scan lengths
//! L ∈ {1, 10, 100} on the integer and url data sets.
//!
//! Each iteration runs one chunk of 256 scans from shuffled start keys, so
//! reported times divide evenly into per-scan cost. `alloc` pays a `Vec`
//! allocation plus frame-stack growth per scan; `cursor` reuses one
//! [`ScanCursor`] and one output buffer across the whole chunk; `batched`
//! additionally overlaps the seek descents of [`DEFAULT_GROUP`] scans.
//!
//! Key count defaults to 200 k; set `HOT_BENCH_KEYS` (e.g. 1000000) to
//! reproduce full-size runs.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use hot_bench::{BenchData, HotIndex};
use hot_core::{MlpScheduler, ScanBatchCursor, ScanCursor};
use hot_ycsb::{Dataset, DatasetKind};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Scans issued per benchmark iteration.
const CHUNK: usize = 256;

fn key_count() -> usize {
    std::env::var("HOT_BENCH_KEYS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000)
}

fn bench_scan_paths(c: &mut Criterion) {
    let n = key_count();
    for kind in [DatasetKind::Integer, DatasetKind::Url] {
        let data = BenchData::new(Dataset::generate(kind, n, 7));
        let mut hot = HotIndex::new(std::sync::Arc::clone(&data.arena));
        for i in 0..n {
            use hot_bench::BenchIndex;
            hot.insert(&data.dataset.keys[i], data.tids[i]);
        }

        // Shuffled start keys: every seek descends from a cold root path,
        // like the Zipfian-chosen start keys of YCSB workload E.
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut StdRng::seed_from_u64(0x5CA11));
        let starts: Vec<&[u8]> = order.iter().map(|&i| data.dataset.keys[i].as_slice()).collect();
        let wrap = n - CHUNK;

        for len in [1usize, 10, 100] {
            let mut group = c.benchmark_group(format!("scan{}_{}", len, kind.label()));
            group.throughput(Throughput::Elements(CHUNK as u64));

            let mut offset = 0usize;
            group.bench_function("alloc", |b| {
                b.iter(|| {
                    offset = (offset + CHUNK) % wrap;
                    let mut sum = 0usize;
                    for key in &starts[offset..offset + CHUNK] {
                        sum += hot.trie().range_from(key).take(len).count();
                    }
                    black_box(sum)
                })
            });

            let mut cursor = ScanCursor::new();
            let mut out: Vec<u64> = Vec::new();
            let mut offset = 0usize;
            group.bench_function("cursor", |b| {
                b.iter(|| {
                    offset = (offset + CHUNK) % wrap;
                    let mut sum = 0usize;
                    for key in &starts[offset..offset + CHUNK] {
                        hot.trie().scan_with(key, len, &mut out, &mut cursor);
                        sum += out.len();
                    }
                    black_box(sum)
                })
            });

            let mut batch_cursor = ScanBatchCursor::new();
            let mut tids: Vec<u64> = Vec::new();
            let mut bounds: Vec<usize> = Vec::new();
            let mut requests: Vec<(&[u8], usize)> = Vec::new();
            let mut offset = 0usize;
            group.bench_function("batched", |b| {
                b.iter(|| {
                    offset = (offset + CHUNK) % wrap;
                    requests.clear();
                    requests.extend(starts[offset..offset + CHUNK].iter().map(|&k| (k, len)));
                    hot.trie().scan_batch_with(&requests, &mut tids, &mut bounds, &mut batch_cursor);
                    black_box(tids.len())
                })
            });

            // Out-of-order seek descents: the scheduler's reorder buffer
            // keeps the output request-ordered, so results stay comparable
            // with the lane-cursor path above.
            for depth in hot_core::DEPTH_SWEEP {
                let mut sched = MlpScheduler::with_depth(depth);
                let mut tids: Vec<u64> = Vec::new();
                let mut bounds: Vec<usize> = Vec::new();
                let mut requests: Vec<(&[u8], usize)> = Vec::new();
                let mut offset = 0usize;
                group.bench_function(format!("ooo_n{depth}"), |b| {
                    b.iter(|| {
                        offset = (offset + CHUNK) % wrap;
                        requests.clear();
                        requests.extend(starts[offset..offset + CHUNK].iter().map(|&k| (k, len)));
                        hot.trie().scan_batch_ooo(&requests, &mut tids, &mut bounds, &mut sched);
                        black_box(tids.len())
                    })
                });
            }
            group.finish();
        }
    }
}

criterion_group!(benches, bench_scan_paths);
criterion_main!(benches);
