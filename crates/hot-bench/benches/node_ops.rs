//! Criterion micro-benchmarks for the node-level primitives of Section 4:
//! PEXT-based dense-key extraction (hardware vs scalar), SIMD sparse-key
//! search (hardware vs scalar) and the copy-on-write node cycle.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hot_core::node::builder::Builder;
use hot_core::node::MemCounter;
use hot_core::NodeRef;

fn bench_pext(c: &mut Criterion) {
    let mut group = c.benchmark_group("pext");
    let xs: Vec<(u64, u64)> = (0..64u64)
        .map(|i| {
            (
                i.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                i.wrapping_mul(0xBF58_476D_1CE4_E5B9) | 1,
            )
        })
        .collect();
    group.bench_function("hardware_dispatch", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &(x, m) in &xs {
                acc ^= hot_bits::pext64(black_box(x), black_box(m));
            }
            acc
        })
    });
    group.bench_function("scalar", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &(x, m) in &xs {
                acc ^= hot_bits::pext::pext64_scalar(black_box(x), black_box(m));
            }
            acc
        })
    });
    group.finish();
}

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_key_search");
    let mut pkeys8 = [0u8; 32];
    for (i, k) in pkeys8.iter_mut().enumerate() {
        *k = (i as u8).wrapping_mul(37) & 0x1F;
    }
    pkeys8[0] = 0;
    group.bench_function("simd_u8_32", |b| {
        // SAFETY: `pkeys8` is a 32-byte array, matching the count passed.
        b.iter(|| unsafe {
            let mut acc = 0usize;
            for dense in 0..64u8 {
                acc += hot_bits::search_subset_u8(black_box(pkeys8.as_ptr()), 32, dense);
            }
            acc
        })
    });
    group.bench_function("scalar_u8_32", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for dense in 0..64u8 {
                acc +=
                    hot_bits::search::search_subset_u8_scalar(black_box(&pkeys8), 32, dense);
            }
            acc
        })
    });
    group.finish();
}

fn bench_cow_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("node_cow");
    let mem = MemCounter::default();
    for n in [8usize, 32] {
        // A height-1 node over n leaves with n-1 positions.
        let positions: Vec<u16> = (0..n as u16 - 1).collect();
        let m = positions.len();
        let sparse: Vec<u32> = (0..n as u32)
            .map(|i| if i == 0 { 0 } else { 1 << (m as u32 - i.min(m as u32)) })
            .collect();
        // Build a *valid* linearization via repeated insert_entry instead.
        let mut b = Builder::pair(
            (m - 1) as u16,
            NodeRef::leaf(0).0,
            NodeRef::leaf(1).0,
            1,
        );
        for i in 2..n {
            let pos = (m - i + 1) as u16;
            b.insert_entry(pos, 0, 1, NodeRef::leaf(i as u64).0);
        }
        let _ = sparse;
        group.bench_function(format!("encode_free_{n}_entries"), |bch| {
            bch.iter(|| {
                let r = b.encode(&mem);
                // SAFETY: never published.
                unsafe { hot_core::node::free_for_bench(r, &mem) };
                r.0
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pext, bench_search, bench_cow_cycle);
criterion_main!(benches);
