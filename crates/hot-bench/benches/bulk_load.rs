//! Criterion benchmark for the bottom-up bulk loader: building a HOT trie
//! from pre-sorted keys (sequential and with a parallel worker budget)
//! against the incremental insert loop, on the integer and url data sets.
//!
//! Each iteration builds a complete fresh trie over the whole key set, so
//! the reported time is the full load phase; throughput is keys/second.
//! Sorting happens once in setup — it is the one-off data-preparation step
//! of a real load pipeline, not part of the build being measured.
//!
//! Key counts default to 100 k and 1 M; set `HOT_BENCH_KEYS` (e.g. 200000)
//! to bench a single size instead. The parallel worker budget is the
//! host's available parallelism (a single-core container still exercises
//! the partition/graft machinery, it just cannot show speedup).

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use hot_bench::BenchData;
use hot_core::HotTrie;
use hot_ycsb::{Dataset, DatasetKind};
use std::sync::Arc;

fn key_counts() -> Vec<usize> {
    match std::env::var("HOT_BENCH_KEYS").ok().and_then(|v| v.parse().ok()) {
        Some(n) => vec![n],
        None => vec![100_000, 1_000_000],
    }
}

fn bench_bulk_load(c: &mut Criterion) {
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    for kind in [DatasetKind::Integer, DatasetKind::Url] {
        for n in key_counts() {
            let data = BenchData::new(Dataset::generate(kind, n, 7));
            let order = data.dataset.sorted_order();
            let sorted: Vec<(&[u8], u64)> = order
                .iter()
                .map(|&i| (data.dataset.keys[i].as_slice(), data.tids[i]))
                .collect();

            let mut group = c.benchmark_group(format!("bulk_load_{}_{n}", kind.label()));
            group.throughput(Throughput::Elements(n as u64));
            group.sample_size(10);

            // Each routine returns the built trie, so its teardown (freeing
            // every node) is dropped by the harness outside the timer.
            group.bench_function("incremental", |b| {
                b.iter_batched(
                    || HotTrie::new(Arc::clone(&data.arena)),
                    |mut trie| {
                        for i in 0..n {
                            trie.insert(&data.dataset.keys[i], data.tids[i]);
                        }
                        black_box(trie.len());
                        trie
                    },
                    BatchSize::PerIteration,
                )
            });

            group.bench_function("bulk_seq", |b| {
                b.iter_batched(
                    || HotTrie::new(Arc::clone(&data.arena)),
                    |mut trie| {
                        black_box(trie.bulk_load(&sorted).expect("sorted into empty"));
                        trie
                    },
                    BatchSize::PerIteration,
                )
            });

            group.bench_function(format!("bulk_par_t{workers}"), |b| {
                b.iter_batched(
                    || HotTrie::new(Arc::clone(&data.arena)),
                    |mut trie| {
                        black_box(
                            trie.bulk_load_parallel(&sorted, workers)
                                .expect("sorted into empty"),
                        );
                        trie
                    },
                    BatchSize::PerIteration,
                )
            });
            group.finish();
        }
    }
}

criterion_group!(benches, bench_bulk_load);
criterion_main!(benches);
