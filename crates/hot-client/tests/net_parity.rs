//! Network/in-process parity: the YCSB checksums computed over the wire
//! must be byte-identical to the in-process driver on every data set, at
//! shard counts 1 and 4, across the A → C → E phase sequence — the
//! acceptance gate of the serving layer.
//!
//! Runs in the normal, `HOT_FORCE_SCALAR` and `HOT_ARENA` CI lanes: the
//! server executes through the same batched trie paths as the in-process
//! harness, so lane-specific node-layout or SIMD divergence would surface
//! here as a checksum break.

use hot_client::{expected_checksums, run_closed_loop, Connection};
use hot_metrics::Registry;
use hot_server::{net_data_for, start_with_data, ServerConfig};
use hot_ycsb::{DatasetKind, RequestDistribution, Workload, WorkloadRun};
use std::time::Duration;

const KEYS: usize = 3_000;
const OPS: usize = 3_000;
const SEED: u64 = 42;
const PHASES: [Workload; 3] = [Workload::A, Workload::C, Workload::E];

/// Run the full phase sequence over the wire and compare each phase's
/// checksum with the in-process ground truth.
fn parity_for(kind: DatasetKind, shards: usize, window: usize) {
    let data = net_data_for(kind, KEYS, OPS, SEED);
    let expected =
        expected_checksums(&data, &PHASES, RequestDistribution::Uniform, OPS, SEED, shards);

    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        kind,
        keys: KEYS,
        ops: OPS,
        seed: SEED,
        shards,
        // Exercise the shard-owning worker pool exactly when there is
        // real parallelism to route to.
        workers: shards > 1,
        pin: false,
        window: 128,
        idle_timeout: Duration::from_secs(10),
    };
    let handle = start_with_data(config, net_data_for(kind, KEYS, OPS, SEED))
        .expect("server starts");

    let mut conn = Connection::connect(handle.addr()).expect("connect");
    let registry = Registry::new();
    for (phase, &workload) in PHASES.iter().enumerate() {
        let run = WorkloadRun::new(workload, RequestDistribution::Uniform, KEYS, OPS, SEED);
        let report = run_closed_loop(&mut conn, &data, &run, workload, window, &registry)
            .expect("network run");
        assert_eq!(
            report.checksum,
            expected[phase],
            "{} workload {} shards={shards} window={window}: network checksum diverged",
            kind.label(),
            workload.letter(),
        );
        assert_eq!(report.ops, OPS);
    }
    handle.shutdown();
}

#[test]
fn integer_parity_all_shard_counts() {
    parity_for(DatasetKind::Integer, 1, 32);
    parity_for(DatasetKind::Integer, 4, 32);
}

#[test]
fn url_parity_all_shard_counts() {
    parity_for(DatasetKind::Url, 1, 32);
    parity_for(DatasetKind::Url, 4, 32);
}

#[test]
fn email_parity_all_shard_counts() {
    parity_for(DatasetKind::Email, 1, 32);
    parity_for(DatasetKind::Email, 4, 32);
}

#[test]
fn yago_parity_all_shard_counts() {
    parity_for(DatasetKind::Yago, 1, 32);
    parity_for(DatasetKind::Yago, 4, 32);
}

/// The degenerate window (strict request–response) and a deep pipeline
/// must agree with each other and with the ground truth — checksum parity
/// is insensitive to how requests are grouped into windows.
#[test]
fn window_depth_does_not_change_checksums() {
    parity_for(DatasetKind::Integer, 2, 1);
    parity_for(DatasetKind::Integer, 2, 256);
}
