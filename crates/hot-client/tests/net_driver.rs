//! Driver-level coverage beyond closed-loop parity: the open-loop paced
//! mode must reproduce the same checksums (pacing changes timing, never
//! results), and the SCAN → RESUME token walk over the wire must
//! reassemble exactly the unbroken scan.

use hot_client::{expected_checksums, run_open_loop, Connection};
use hot_metrics::Registry;
use hot_server::protocol::{Request, Response};
use hot_server::{net_data_for, start_with_data, ServerConfig, ServerHandle};
use hot_ycsb::{DatasetKind, RequestDistribution, Workload, WorkloadRun};
use std::time::Duration;

const KEYS: usize = 2_000;
const OPS: usize = 2_000;
const SEED: u64 = 11;

fn server(kind: DatasetKind, shards: usize) -> ServerHandle {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        kind,
        keys: KEYS,
        ops: OPS,
        seed: SEED,
        shards,
        workers: false,
        pin: false,
        window: 64,
        idle_timeout: Duration::from_secs(10),
    };
    start_with_data(config, net_data_for(kind, KEYS, OPS, SEED)).expect("server starts")
}

/// Open-loop pacing is a measurement choice, not a semantic one: the
/// checksums must match the in-process driver exactly.
#[test]
fn open_loop_checksums_match_in_process() {
    let kind = DatasetKind::Integer;
    let data = net_data_for(kind, KEYS, OPS, SEED);
    let phases = [Workload::A, Workload::C, Workload::E];
    let expected =
        expected_checksums(&data, &phases, RequestDistribution::Uniform, OPS, SEED, 2);
    let handle = server(kind, 2);
    let mut conn = Connection::connect(handle.addr()).expect("connect");
    let registry = Registry::new();
    for (phase, &workload) in phases.iter().enumerate() {
        let run = WorkloadRun::new(workload, RequestDistribution::Uniform, KEYS, OPS, SEED);
        // A rate far above loopback capacity: the sender never sleeps, so
        // the test stays fast while still driving the split-thread path.
        let report = run_open_loop(&mut conn, &data, &run, workload, 2_000_000, &registry)
            .expect("open-loop run");
        assert_eq!(report.ops, OPS);
        assert_eq!(
            report.checksum,
            expected[phase],
            "workload {} open-loop checksum diverged",
            workload.letter(),
        );
    }
    handle.shutdown();
}

/// Page through the whole corpus over the wire with SCAN + RESUME and
/// compare against one unbroken SCAN — the network face of the
/// `scan_token` regression suite.
#[test]
fn resume_tokens_page_the_corpus_exactly() {
    let kind = DatasetKind::Url;
    let data = net_data_for(kind, KEYS, OPS, SEED);
    let handle = server(kind, 4);
    let mut conn = Connection::connect(handle.addr()).expect("connect");

    let smallest =
        data.dataset.keys[..data.loaded].iter().min().expect("corpus is non-empty").clone();
    let unbroken = match conn
        .call(&Request::Scan { start: smallest.clone(), limit: data.loaded as u32 + 1 })
        .expect("scan")
    {
        Response::Scan { tids, token } => {
            assert!(token.is_none(), "over-asked scan ends the key space");
            tids
        }
        other => panic!("SCAN answered with {other:?}"),
    };
    assert_eq!(unbroken.len(), data.loaded);

    for page in [1usize, 7, 128] {
        let mut paged = Vec::new();
        let mut resp = conn
            .call(&Request::Scan { start: smallest.clone(), limit: page as u32 })
            .expect("first page");
        loop {
            match resp {
                Response::Scan { mut tids, token } => {
                    paged.append(&mut tids);
                    match token {
                        Some(token) => {
                            resp = conn
                                .call(&Request::Resume { token, limit: page as u32 })
                                .expect("resume");
                        }
                        None => break,
                    }
                }
                other => panic!("paging answered with {other:?}"),
            }
        }
        assert_eq!(paged, unbroken, "page={page} reassembly diverged");
    }
    handle.shutdown();
}

/// PUT with a TID that does not resolve to the claimed key is refused
/// with the typed error and leaves the index unchanged.
#[test]
fn put_validates_tid_against_the_corpus() {
    let kind = DatasetKind::Integer;
    let data = net_data_for(kind, KEYS, OPS, SEED);
    let handle = server(kind, 2);
    let mut conn = Connection::connect(handle.addr()).expect("connect");

    // Claim key[0]'s bytes under key[1]'s TID.
    let resp = conn
        .call(&Request::Put { tid: data.tids[1], key: data.dataset.keys[0].clone() })
        .expect("call");
    match resp {
        Response::Error { code, .. } => {
            assert_eq!(code, hot_server::protocol::err_code::TID_MISMATCH);
        }
        other => panic!("mismatched PUT answered with {other:?}"),
    }
    // A bogus offset (points into the middle of a record) is refused too.
    let resp = conn
        .call(&Request::Put { tid: u64::MAX - 3, key: data.dataset.keys[0].clone() })
        .expect("call");
    assert!(
        matches!(resp, Response::Error { .. }),
        "out-of-arena TID must be refused, got {resp:?}"
    );
    // The index still answers the original binding.
    let resp = conn.call(&Request::Get { key: data.dataset.keys[0].clone() }).expect("call");
    assert_eq!(resp, Response::Tid(data.tids[0]));
    handle.shutdown();
}
