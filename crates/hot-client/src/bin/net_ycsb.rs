//! Network YCSB: drive a running hot-server through the paper's workload
//! mix and report throughput, latency percentiles, and checksum parity
//! with the in-process driver.
//!
//! ```text
//! net_ycsb --addr 127.0.0.1:4600 --dataset integer --keys 100000 \
//!          --ops 100000 --seed 42 --shards 4 --workloads A,C,E \
//!          [--window N | --rate R] [--zipfian] [--check] [--shutdown]
//! ```
//!
//! `--dataset/--keys/--ops/--seed` must match the server's invocation —
//! both sides materialize the same corpus (see `hot_server::store`).
//! `--shards` only parameterizes the in-process reference index used for
//! `--check`. With `--check`, any checksum mismatch exits non-zero; with
//! `--shutdown`, the server is asked to stop after the last phase.

use hot_client::{expected_checksums, run_workload, Connection, Pacing};
use hot_metrics::Registry;
use hot_server::net_data_for;
use hot_ycsb::{DatasetKind, RequestDistribution, Workload};

struct Args {
    addr: String,
    kind: DatasetKind,
    keys: usize,
    ops: usize,
    seed: u64,
    shards: usize,
    workloads: Vec<Workload>,
    pacing: Pacing,
    dist: RequestDistribution,
    check: bool,
    shutdown: bool,
}

fn parse_args() -> Args {
    let mut out = Args {
        addr: String::new(),
        kind: DatasetKind::Integer,
        keys: 100_000,
        ops: 100_000,
        seed: 42,
        shards: 4,
        workloads: vec![Workload::A, Workload::C, Workload::E],
        pacing: Pacing::ClosedLoop { window: 64 },
        dist: RequestDistribution::Uniform,
        check: false,
        shutdown: false,
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                out.addr = args[i + 1].clone();
                i += 2;
            }
            "--dataset" => {
                out.kind = args[i + 1].parse().expect("--dataset url|email|yago|integer");
                i += 2;
            }
            "--keys" => {
                out.keys = args[i + 1].parse().expect("--keys N");
                i += 2;
            }
            "--ops" => {
                out.ops = args[i + 1].parse().expect("--ops N");
                i += 2;
            }
            "--seed" => {
                out.seed = args[i + 1].parse().expect("--seed N");
                i += 2;
            }
            "--shards" => {
                out.shards = args[i + 1].parse().expect("--shards N");
                i += 2;
            }
            "--workloads" => {
                out.workloads = args[i + 1]
                    .split(',')
                    .map(|w| w.parse().expect("--workloads A,C,E"))
                    .collect();
                i += 2;
            }
            "--window" => {
                out.pacing =
                    Pacing::ClosedLoop { window: args[i + 1].parse().expect("--window N") };
                i += 2;
            }
            "--rate" => {
                out.pacing = Pacing::OpenLoop { rate: args[i + 1].parse().expect("--rate R") };
                i += 2;
            }
            "--zipfian" => {
                out.dist = RequestDistribution::Zipfian;
                i += 1;
            }
            "--check" => {
                out.check = true;
                i += 1;
            }
            "--shutdown" => {
                out.shutdown = true;
                i += 1;
            }
            other => {
                eprintln!(
                    "unknown argument: {other} (expected --addr/--dataset/--keys/--ops/--seed/\
                     --shards/--workloads/--window/--rate/--zipfian/--check/--shutdown)"
                );
                std::process::exit(2);
            }
        }
    }
    if out.addr.is_empty() {
        eprintln!("--addr is required");
        std::process::exit(2);
    }
    out
}

fn main() {
    let args = parse_args();
    let data = net_data_for(args.kind, args.keys, args.ops, args.seed);
    let expected = if args.check {
        expected_checksums(&data, &args.workloads, args.dist, args.ops, args.seed, args.shards)
    } else {
        Vec::new()
    };

    let mut conn = Connection::connect(&args.addr).unwrap_or_else(|e| {
        eprintln!("net_ycsb: cannot connect to {}: {e}", args.addr);
        std::process::exit(1);
    });
    let registry = Registry::new();
    println!("workload\tmops\tp50_us\tp99_us\tp999_us\tchecksum");
    let mut failed = false;
    for (phase, &workload) in args.workloads.iter().enumerate() {
        let run = hot_ycsb::WorkloadRun::new(workload, args.dist, args.keys, args.ops, args.seed);
        let report = run_workload(&mut conn, &data, &run, workload, args.pacing, &registry)
            .unwrap_or_else(|e| {
                eprintln!("net_ycsb: workload {} failed: {e}", workload.letter());
                std::process::exit(1);
            });
        println!(
            "{}\t{:.3}\t{:.1}\t{:.1}\t{:.1}\t{:#018x}",
            workload.letter(),
            report.mops,
            report.p50_us,
            report.p99_us,
            report.p999_us,
            report.checksum,
        );
        if args.check {
            if report.checksum == expected[phase] {
                println!("# workload {}: checksum matches in-process driver", workload.letter());
            } else {
                eprintln!(
                    "net_ycsb: workload {} checksum {:#018x} != in-process {:#018x}",
                    workload.letter(),
                    report.checksum,
                    expected[phase],
                );
                failed = true;
            }
        }
    }
    if args.shutdown {
        if let Err(e) = conn.shutdown_server() {
            eprintln!("net_ycsb: shutdown request failed: {e}");
            failed = true;
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}
