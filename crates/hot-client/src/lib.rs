//! Client side of the hot-server binary protocol: a pipelining
//! [`Connection`] handle and the network YCSB driver ([`driver`]).
//!
//! The driver runs the paper's workload mix over the wire in two pacing
//! modes — closed-loop (bounded in-flight window, peak throughput) and
//! open-loop (fixed schedule, coordinated-omission-free latency) — and
//! carries its own in-process ground truth
//! ([`driver::expected_checksums`]) so every network run can be checked
//! byte-for-byte against the same operations executed directly on the
//! index.

#![deny(missing_docs)]

pub mod connection;
pub mod driver;

pub use connection::Connection;
pub use driver::{
    expected_checksums, run_closed_loop, run_open_loop, run_workload, NetRunReport, Pacing,
};
// Re-exported so driver callers (the `fig_net` bench, scripts) can build
// the registry the run functions record into without naming hot-metrics
// as a direct dependency.
pub use hot_metrics::Registry;
