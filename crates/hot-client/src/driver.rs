//! The network YCSB driver: closed- and open-loop workload execution over
//! one pipelined connection, plus the in-process reference it is checked
//! against.
//!
//! Checksum parity is the driver's contract: for workloads A–E (no
//! read-modify-write, so every operation is independent of in-flight
//! responses) the checksum computed over the wire must be byte-identical
//! to the in-process one over the same corpus — the server executes each
//! connection's stream in request order, TCP preserves response order, and
//! the checksum (summed found-TIDs and scan counts) is insensitive to how
//! requests were grouped into windows.

use crate::connection::Connection;
use hot_core::ShardedHot;
use hot_metrics::{OpKind, OpSnapshot, Registry};
use hot_server::protocol::{Request, Response};
use hot_server::store::NetData;
use hot_ycsb::{Operation, RequestDistribution, Workload, WorkloadRun};
use std::collections::VecDeque;
use std::io::{ErrorKind, Write};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One phase's result: throughput, latency percentiles, and the checksum
/// the parity gates compare.
#[derive(Debug, Clone)]
pub struct NetRunReport {
    /// The workload that ran.
    pub workload: Workload,
    /// Operations executed.
    pub ops: usize,
    /// Million operations per second, end to end.
    pub mops: f64,
    /// Summed found-TIDs (reads) and result counts (scans).
    pub checksum: u64,
    /// Median per-operation latency in microseconds.
    pub p50_us: f64,
    /// 99th-percentile latency in microseconds.
    pub p99_us: f64,
    /// 99.9th-percentile latency in microseconds.
    pub p999_us: f64,
}

/// How the driver paces requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pacing {
    /// Keep a bounded window of in-flight requests; a response admits the
    /// next request. Measures peak pipeline throughput.
    ClosedLoop {
        /// In-flight request bound.
        window: usize,
    },
    /// Send on a fixed schedule regardless of responses, so queueing
    /// delay is charged to latency (coordinated-omission-free): latency
    /// is measured from each request's *scheduled* send time.
    OpenLoop {
        /// Target request rate per second.
        rate: u64,
    },
}

/// Map one YCSB operation onto a wire request and the metric kind its
/// latency is recorded under.
fn to_request(op: &Operation, data: &NetData) -> (Request, OpKind) {
    match *op {
        Operation::Read(idx) => {
            (Request::Get { key: data.dataset.keys[idx].clone() }, OpKind::NetGet)
        }
        Operation::Update(idx) | Operation::Insert(idx) => (
            Request::Put { tid: data.tids[idx], key: data.dataset.keys[idx].clone() },
            OpKind::NetPut,
        ),
        Operation::Scan(idx, len) => (
            Request::Scan { start: data.dataset.keys[idx].clone(), limit: len as u32 },
            OpKind::NetScan,
        ),
        Operation::ReadModifyWrite(idx) => {
            // Approximated as a read (A–E never emit this); the checksum
            // contract below only covers workloads without RMW.
            (Request::Get { key: data.dataset.keys[idx].clone() }, OpKind::NetGet)
        }
    }
}

/// Fold one response into the running checksum, mirroring the in-process
/// driver: found reads add their TID, scans add their result count.
fn settle(kind: OpKind, resp: &Response, checksum: &mut u64) -> std::io::Result<()> {
    match (kind, resp) {
        (OpKind::NetGet, Response::Tid(tid)) => *checksum = checksum.wrapping_add(*tid),
        (OpKind::NetGet, Response::None) => {}
        (OpKind::NetPut, Response::Tid(_) | Response::None) => {}
        (OpKind::NetScan, Response::Scan { tids, .. }) => {
            *checksum = checksum.wrapping_add(tids.len() as u64);
        }
        (_, Response::Error { code, msg }) => {
            return Err(std::io::Error::other(format!("server error {code}: {msg}")));
        }
        (_, other) => {
            return Err(std::io::Error::new(
                ErrorKind::InvalidData,
                format!("response {other:?} does not answer a {} request", kind.label()),
            ));
        }
    }
    Ok(())
}

fn percentile_report(
    workload: Workload,
    ops: usize,
    secs: f64,
    checksum: u64,
    delta: &OpSnapshot,
) -> NetRunReport {
    NetRunReport {
        workload,
        ops,
        mops: if secs > 0.0 { ops as f64 / secs / 1e6 } else { 0.0 },
        checksum,
        p50_us: delta.p50_ns() as f64 / 1_000.0,
        p99_us: delta.p99_ns() as f64 / 1_000.0,
        p999_us: delta.quantile_ns(0.999) as f64 / 1_000.0,
    }
}

/// Run one workload phase over `conn`, paced by `pacing`, recording
/// per-op latency into `registry` (under the op's kind and `NetOp`).
pub fn run_workload(
    conn: &mut Connection,
    data: &NetData,
    run: &WorkloadRun,
    workload: Workload,
    pacing: Pacing,
    registry: &Registry,
) -> std::io::Result<NetRunReport> {
    match pacing {
        Pacing::ClosedLoop { window } => {
            run_closed_loop(conn, data, run, workload, window, registry)
        }
        Pacing::OpenLoop { rate } => run_open_loop(conn, data, run, workload, rate, registry),
    }
}

/// Closed-loop pipelined execution: up to `window` requests in flight;
/// the window is flushed when full and one response is drained per
/// subsequent send. `window == 1` degenerates to strict request–response.
pub fn run_closed_loop(
    conn: &mut Connection,
    data: &NetData,
    run: &WorkloadRun,
    workload: Workload,
    window: usize,
    registry: &Registry,
) -> std::io::Result<NetRunReport> {
    let window = window.max(1);
    let ops: Vec<Operation> = run.operations().collect();
    let mut inflight: VecDeque<(OpKind, Instant)> = VecDeque::with_capacity(window);
    let mut checksum = 0u64;
    let before = registry.ops_snapshot();
    let start = Instant::now();
    for op in &ops {
        let (req, kind) = to_request(op, data);
        conn.send(&req);
        inflight.push_back((kind, Instant::now()));
        if inflight.len() >= window {
            conn.flush()?;
            let (kind, sent) = inflight.pop_front().expect("window is full");
            let resp = conn.recv()?;
            let ns = sent.elapsed().as_nanos() as u64;
            registry.record_ns(kind, ns);
            registry.record_ns(OpKind::NetOp, ns);
            settle(kind, &resp, &mut checksum)?;
        }
    }
    conn.flush()?;
    while let Some((kind, sent)) = inflight.pop_front() {
        let resp = conn.recv()?;
        let ns = sent.elapsed().as_nanos() as u64;
        registry.record_ns(kind, ns);
        registry.record_ns(OpKind::NetOp, ns);
        settle(kind, &resp, &mut checksum)?;
    }
    let secs = start.elapsed().as_secs_f64();
    let delta = registry.ops_snapshot().op(OpKind::NetOp).since(before.op(OpKind::NetOp));
    Ok(percentile_report(workload, ops.len(), secs, checksum, &delta))
}

/// Open-loop execution: a sender thread writes requests on a fixed
/// schedule (`rate` per second) while this thread receives and pairs
/// responses FIFO. Latency is `receive time − scheduled send time`, so a
/// stall penalizes every queued request behind it instead of silently
/// pausing the clock (coordinated omission).
pub fn run_open_loop(
    conn: &mut Connection,
    data: &NetData,
    run: &WorkloadRun,
    workload: Workload,
    rate: u64,
    registry: &Registry,
) -> std::io::Result<NetRunReport> {
    let rate = rate.max(1);
    let ops: Vec<Operation> = run.operations().collect();
    let total = ops.len();
    let mut sender_stream = conn.try_clone_stream()?;
    let (tx, rx) = mpsc::sync_channel::<(OpKind, Instant)>(1 << 16);
    let before = registry.ops_snapshot();
    let start = Instant::now();
    let interval = Duration::from_nanos(1_000_000_000 / rate);

    let mut checksum = 0u64;
    let mut received = 0usize;
    let (send_result, recv_result) = std::thread::scope(|scope| {
        let sender = scope.spawn(|| -> std::io::Result<()> {
            let mut wire = Vec::with_capacity(4 << 10);
            for (i, op) in ops.iter().enumerate() {
                let scheduled = start + interval * i as u32;
                if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
                    std::thread::sleep(wait);
                }
                let (req, kind) = to_request(op, data);
                wire.clear();
                req.encode(&mut wire);
                sender_stream.write_all(&wire)?;
                if tx.send((kind, scheduled)).is_err() {
                    break;
                }
            }
            drop(tx);
            Ok(())
        });

        let mut recv_result = Ok(());
        while received < total {
            let (kind, scheduled) = match rx.recv() {
                Ok(pair) => pair,
                Err(_) => break,
            };
            let resp = match conn.recv() {
                Ok(r) => r,
                Err(e) => {
                    recv_result = Err(e);
                    break;
                }
            };
            let ns = scheduled.elapsed().as_nanos() as u64;
            registry.record_ns(kind, ns);
            registry.record_ns(OpKind::NetOp, ns);
            if let Err(e) = settle(kind, &resp, &mut checksum) {
                recv_result = Err(e);
                break;
            }
            received += 1;
        }
        drop(rx);
        let send_result = sender
            .join()
            .unwrap_or_else(|_| Err(std::io::Error::other("open-loop sender thread panicked")));
        (send_result, recv_result)
    });
    recv_result.and(send_result)?;
    let secs = start.elapsed().as_secs_f64();
    let delta = registry.ops_snapshot().op(OpKind::NetOp).since(before.op(OpKind::NetOp));
    Ok(percentile_report(workload, received, secs, checksum, &delta))
}

/// The in-process ground truth: execute the same workload sequence over a
/// [`ShardedHot`] built from the same corpus, returning one checksum per
/// phase. Phases share one index instance — exactly like the phases of a
/// network session share one server — so insert-bearing workloads (D/E)
/// leave their keys behind for later phases on both sides.
pub fn expected_checksums(
    data: &NetData,
    workloads: &[Workload],
    dist: RequestDistribution,
    ops: usize,
    seed: u64,
    shards: usize,
) -> Vec<u64> {
    let index = ShardedHot::inline_router(Arc::clone(&data.arena), shards);
    let entries = data.sorted_entries();
    index.bulk_load(&entries).expect("sorted distinct entries");
    let keys = &data.dataset.keys;
    let tids = &data.tids;
    let mut out = Vec::with_capacity(workloads.len());
    let mut scan_buf = Vec::new();
    for &workload in workloads {
        let run = WorkloadRun::new(workload, dist, data.loaded, ops, seed);
        let mut checksum = 0u64;
        for op in run.operations() {
            match op {
                Operation::Read(idx) => {
                    if let Some(tid) = index.get(&keys[idx]) {
                        checksum = checksum.wrapping_add(tid);
                    }
                }
                Operation::Update(idx) | Operation::Insert(idx) => {
                    index.insert(&keys[idx], tids[idx]);
                }
                Operation::Scan(idx, len) => {
                    index.scan_into(&keys[idx], len, &mut scan_buf);
                    checksum = checksum.wrapping_add(scan_buf.len() as u64);
                }
                Operation::ReadModifyWrite(idx) => {
                    if let Some(tid) = index.get(&keys[idx]) {
                        checksum = checksum.wrapping_add(tid);
                        index.insert(&keys[idx], tid);
                    }
                }
            }
        }
        out.push(checksum);
    }
    out
}
