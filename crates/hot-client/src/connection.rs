//! The client connection handle: buffered writes, incremental reads.

use hot_server::protocol::{FrameDecoder, Request, Response};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One TCP connection to a hot-server, with a write buffer for pipelining
/// and an incremental frame decoder for the response stream.
pub struct Connection {
    stream: TcpStream,
    decoder: FrameDecoder,
    wbuf: Vec<u8>,
    rbuf: Vec<u8>,
}

impl Connection {
    /// Connect and disable Nagle (pipelined request windows are flushed
    /// explicitly; delaying them only adds latency).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Connection> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Connection {
            stream,
            decoder: FrameDecoder::new(),
            wbuf: Vec::with_capacity(16 << 10),
            rbuf: vec![0u8; 64 << 10],
        })
    }

    /// Queue a request in the write buffer (nothing hits the socket until
    /// [`flush`](Self::flush)).
    pub fn send(&mut self, req: &Request) {
        req.encode(&mut self.wbuf);
    }

    /// Write every queued request to the socket.
    pub fn flush(&mut self) -> std::io::Result<()> {
        if !self.wbuf.is_empty() {
            self.stream.write_all(&self.wbuf)?;
            self.wbuf.clear();
        }
        Ok(())
    }

    /// Block for the next response frame.
    pub fn recv(&mut self) -> std::io::Result<Response> {
        loop {
            match self.decoder.next_frame() {
                Ok(Some(body)) => {
                    return Response::decode(&body)
                        .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e));
                }
                Ok(None) => {}
                Err(e) => return Err(std::io::Error::new(ErrorKind::InvalidData, e)),
            }
            let n = self.stream.read(&mut self.rbuf)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            let fed = &self.rbuf[..n];
            self.decoder.feed(fed);
        }
    }

    /// Strict request–response: send, flush, wait for the answer.
    pub fn call(&mut self, req: &Request) -> std::io::Result<Response> {
        self.send(req);
        self.flush()?;
        self.recv()
    }

    /// Clone the underlying stream (open-loop driving splits send and
    /// receive across threads).
    pub fn try_clone_stream(&self) -> std::io::Result<TcpStream> {
        self.stream.try_clone()
    }

    /// Ask the server to shut down cleanly.
    pub fn shutdown_server(&mut self) -> std::io::Result<Response> {
        self.call(&Request::Shutdown)
    }
}
