//! Hot-path allocation freedom.
//!
//! PRs 4 and 6 established "zero steady-state allocations" on the descent
//! paths (`get*`, `scan_with`/`scan_into`, the `*_batch*` pipelines, the
//! `MlpScheduler` loop); this pass keeps later edits honest. The
//! functions under the rule are named in `lint/hot_paths.toml`
//! (`[[hot]] file = …, functions = […]`); inside their bodies the
//! allocating constructs below are denied. A documented cold edge (an
//! empty placeholder buffer, a once-per-trie setup) gets an
//! `[[allow]] file/function/construct/why` entry — per function and per
//! construct, so the allowance cannot silently widen.
//!
//! Stale manifest rows (a listed function that no longer exists, an
//! allow that matches nothing) are errors too: the manifest must track
//! the code.

use super::{Diag, SourceFile};
use crate::toml::Table;

const PASS: &str = "hot-path";

/// The denied constructs: textual tokens whose presence on a hot path
/// means a steady-state allocation (or an O(n) copy that implies one).
const DENIED: &[&str] = &[
    "Vec::new",
    "vec!",
    "Box::new",
    "format!",
    ".to_vec()",
    ".collect",
    "String::",
    ".to_string()",
    ".to_owned()",
    "with_capacity",
];

struct Allow {
    file: String,
    function: String,
    construct: String,
    line: usize,
    used: bool,
}

/// Run the pass.
pub fn run(sources: &[SourceFile], manifest: &[Table], diags: &mut Vec<Diag>) -> Result<(), String> {
    let mut hot: Vec<(String, Vec<String>, usize)> = Vec::new();
    let mut allows: Vec<Allow> = Vec::new();
    for table in manifest {
        match table.name.as_str() {
            "hot" => hot.push((
                table.str_field("file")?.to_string(),
                table.arr_field("functions")?.to_vec(),
                table.line,
            )),
            "allow" => {
                table.str_field("why")?; // required, content free-form
                let construct = table.str_field("construct")?;
                if !DENIED.contains(&construct) {
                    return Err(format!(
                        "lint/hot_paths.toml: [[allow]] at line {} names unknown construct \
                         {construct:?} (denied set: {DENIED:?})",
                        table.line
                    ));
                }
                allows.push(Allow {
                    file: table.str_field("file")?.to_string(),
                    function: table.str_field("function")?.to_string(),
                    construct: construct.to_string(),
                    line: table.line,
                    used: false,
                });
            }
            other => {
                return Err(format!(
                    "lint/hot_paths.toml: unknown table [[{other}]] at line {} \
                     (only [[hot]] and [[allow]])",
                    table.line
                ));
            }
        }
    }

    for (file, functions, manifest_line) in &hot {
        let Some(sf) = sources.iter().find(|s| &s.rel == file) else {
            diags.push(Diag {
                file: "lint/hot_paths.toml".into(),
                line: *manifest_line,
                pass: PASS,
                msg: format!("[[hot]] names missing file `{file}` — stale manifest entry"),
            });
            continue;
        };
        for function in functions {
            let spans: Vec<_> = sf
                .file
                .fns
                .iter()
                .filter(|f| &f.name == function && !sf.is_test_line(f.sig_start))
                .collect();
            if spans.is_empty() {
                diags.push(Diag {
                    file: "lint/hot_paths.toml".into(),
                    line: *manifest_line,
                    pass: PASS,
                    msg: format!(
                        "[[hot]] {file} lists function `{function}` which does not exist — \
                         stale manifest entry"
                    ),
                });
                continue;
            }
            for span in spans {
                for l in span.body_start..=span.body_end {
                    if sf.is_test_line(l) {
                        continue;
                    }
                    let code = &sf.file.lines[l].code;
                    for construct in DENIED {
                        if !code.contains(construct) {
                            continue;
                        }
                        if let Some(allow) = allows.iter_mut().find(|a| {
                            &a.file == file && &a.function == function && a.construct == *construct
                        }) {
                            allow.used = true;
                            continue;
                        }
                        diags.push(Diag {
                            file: file.clone(),
                            line: l + 1,
                            pass: PASS,
                            msg: format!(
                                "allocating construct `{construct}` on hot path `{function}` — \
                                 hoist it out of the descent loop or add a justified [[allow]] \
                                 entry to lint/hot_paths.toml"
                            ),
                        });
                    }
                }
            }
        }
    }

    for allow in &allows {
        if !allow.used {
            diags.push(Diag {
                file: "lint/hot_paths.toml".into(),
                line: allow.line,
                pass: PASS,
                msg: format!(
                    "[[allow]] {} `{}` `{}` matches nothing — stale allowance, delete it",
                    allow.file, allow.function, allow.construct
                ),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::tests::fixture;

    fn manifest(text: &str) -> Vec<Table> {
        crate::toml::parse(text).expect("manifest parses")
    }

    const REL: &str = "crates/hot-core/src/scan.rs";
    const HOT: &str = "[[hot]]\nfile = \"crates/hot-core/src/scan.rs\"\nfunctions = [\"scan_with\"]\n";

    fn run_on(src: &str, manifest_text: &str) -> Vec<String> {
        let sources = vec![fixture(REL, src)];
        let mut diags = Vec::new();
        run(&sources, &manifest(manifest_text), &mut diags).expect("pass runs");
        diags.iter().map(|d| d.render()).collect()
    }

    #[test]
    fn seeded_vec_new_in_scan_with_is_flagged() {
        let diags = run_on(
            "fn scan_with(&mut self) {\n    let mut out = Vec::new();\n    out.push(1);\n}\n",
            HOT,
        );
        assert_eq!(diags.len(), 1);
        assert_eq!(
            diags[0],
            "crates/hot-core/src/scan.rs:2: [hot-path] allocating construct `Vec::new` on hot \
             path `scan_with` — hoist it out of the descent loop or add a justified [[allow]] \
             entry to lint/hot_paths.toml"
        );
    }

    #[test]
    fn every_denied_construct_fires() {
        for construct in DENIED {
            let stmt = match *construct {
                "vec!" => "let x = vec![0u8; 4];".to_string(),
                "format!" => "let x = format!(\"{}\", 1);".to_string(),
                ".to_vec()" => "let x = s.to_vec();".to_string(),
                ".collect" => "let x: Vec<u8> = it.collect();".to_string(),
                "String::" => "let x = String::new();".to_string(),
                ".to_string()" => "let x = v.to_string();".to_string(),
                ".to_owned()" => "let x = v.to_owned();".to_string(),
                "with_capacity" => "let x = Vec::with_capacity(8);".to_string(),
                c => format!("let x = {c}(0);"),
            };
            let src = format!("fn scan_with(&mut self) {{\n    {stmt}\n}}\n");
            let diags = run_on(&src, HOT);
            assert_eq!(diags.len(), 1, "construct {construct} did not fire: {diags:?}");
            assert!(diags[0].contains(construct), "wrong construct named: {}", diags[0]);
        }
    }

    #[test]
    fn allow_entry_silences_exactly_its_construct() {
        let with_allow = format!(
            "{HOT}\n[[allow]]\nfile = \"{REL}\"\nfunction = \"scan_with\"\nconstruct = \"Vec::new\"\nwhy = \"empty placeholder, never grows\"\n"
        );
        let src = "fn scan_with(&mut self) {\n    let a = Vec::new();\n    let b = vec![1];\n}\n";
        let diags = run_on(src, &with_allow);
        assert_eq!(diags.len(), 1, "only the un-allowed construct fires: {diags:?}");
        assert!(diags[0].contains("`vec!`"));
    }

    #[test]
    fn clean_hot_path_and_cold_functions_pass() {
        let src = "fn scan_with(&mut self) {\n    self.frames.push(1);\n}\n\nfn setup() -> Vec<u8> {\n    Vec::new()\n}\n";
        assert!(run_on(src, HOT).is_empty());
    }

    #[test]
    fn stale_function_and_stale_allow_are_flagged() {
        let with_allow = format!(
            "[[hot]]\nfile = \"{REL}\"\nfunctions = [\"gone\"]\n\n[[allow]]\nfile = \"{REL}\"\nfunction = \"gone\"\nconstruct = \"Vec::new\"\nwhy = \"stale\"\n"
        );
        let diags = run_on("fn scan_with(&mut self) {}\n", &with_allow);
        assert_eq!(diags.len(), 2, "got: {diags:?}");
        assert!(diags.iter().any(|d| d.contains("`gone` which does not exist")));
        assert!(diags.iter().any(|d| d.contains("matches nothing")));
    }

    #[test]
    fn test_mod_code_is_not_scanned() {
        let src = "fn scan_with(&mut self) {\n    self.frames.push(1);\n}\n\n#[cfg(test)]\nmod tests {\n    fn scan_with() {\n        let x = Vec::new();\n    }\n}\n";
        assert!(run_on(src, HOT).is_empty());
    }
}
