//! Atomics-protocol conformance (DESIGN.md §10 made machine-checked).
//!
//! Every `Ordering::<variant>` call site in library code must either live
//! in the **sync layer** — `sync.rs`, `sync_shim.rs`, or the
//! `hot-metrics` crate — or be listed in `lint/atomics.toml` with its
//! file, enclosing function, ordering and a one-line `why`. On top of
//! placement:
//!
//! * `Ordering::SeqCst` is banned outright, everywhere (the protocol is
//!   all explicit acquire/release pairs; a SeqCst site is either a
//!   misunderstanding or an undocumented protocol change);
//! * every **non-Relaxed** site must be covered by a
//!   `// pairs-with: <group>[, <group>]` annotation, and every group must
//!   be *symmetric*: at least two sites, at least one acquire side
//!   (`Acquire`/`AcqRel`) and at least one release side
//!   (`Release`/`AcqRel`). A single-member group is a dangling reference
//!   — its counterpart was deleted or never written.
//!
//! An annotation covers its own line plus the remainder of the statement
//! it opens (up to and including the first following line whose code
//! contains `;` or `{`), so one comment covers a multi-line
//! `compare_exchange(…, AcqRel, Acquire)` call.
//!
//! Test scaffolding (`tests/`/`benches/`/`examples/` dirs, `#[cfg(test)]`
//! mods) is exempt from placement and annotation — but not from the
//! SeqCst ban. `std::cmp::Ordering` never matches: only the five atomic
//! variants are recognized.

use super::{Diag, SourceFile};
use crate::lexer::is_ident_char;
use crate::toml::Table;

const PASS: &str = "atomics";

/// The five atomic orderings (`cmp::Ordering`'s variants are not these).
const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Does this path belong to the sync layer?
fn in_sync_layer(rel: &str) -> bool {
    rel.ends_with("/sync.rs") || rel.ends_with("/sync_shim.rs") || rel.starts_with("crates/hot-metrics/")
}

/// One detected `Ordering::<variant>` occurrence.
struct Site<'a> {
    file: &'a SourceFile,
    /// 0-based line index.
    line: usize,
    ordering: &'static str,
}

/// One parsed manifest entry with its match counter.
struct ManifestEntry {
    file: String,
    function: String,
    ordering: String,
    count: i64,
    line: usize,
    matched: i64,
}

/// Run the pass.
pub fn run(sources: &[SourceFile], manifest: &[Table], diags: &mut Vec<Diag>) -> Result<(), String> {
    let mut entries = Vec::new();
    for table in manifest {
        if table.name != "site" {
            return Err(format!(
                "lint/atomics.toml: unknown table [[{}]] at line {} (only [[site]])",
                table.name, table.line
            ));
        }
        table.str_field("why")?; // required, content free-form
        entries.push(ManifestEntry {
            file: table.str_field("file")?.to_string(),
            function: table.str_field("function")?.to_string(),
            ordering: table.str_field("ordering")?.to_string(),
            count: table.int_field_or("count", 1)?,
            line: table.line,
            matched: 0,
        });
    }

    let mut sites = Vec::new();
    for sf in sources {
        for (idx, line) in sf.file.lines.iter().enumerate() {
            for ordering in find_orderings(&line.code) {
                sites.push(Site { file: sf, line: idx, ordering });
            }
        }
    }

    // Group membership: group name -> [(file rel, line, ordering)].
    type Member = (String, usize, &'static str);
    let mut groups: Vec<(String, Vec<Member>)> = Vec::new();

    for site in &sites {
        let sf = site.file;
        let lineno = site.line + 1;
        // Rule 1: no SeqCst, anywhere, test code included.
        if site.ordering == "SeqCst" {
            diags.push(Diag {
                file: sf.rel.clone(),
                line: lineno,
                pass: PASS,
                msg: "Ordering::SeqCst is banned: the ROWEX protocol is explicit acquire/release \
                      pairs — pick the weakest correct ordering and annotate its pairing"
                    .into(),
            });
            continue;
        }
        if sf.is_test_line(site.line) {
            continue; // test scaffolding: placement/annotation exempt
        }
        // Rule 2: placement — sync layer or manifested.
        if !in_sync_layer(&sf.rel) {
            let function = sf
                .file
                .enclosing_fn(site.line)
                .map(|f| f.name.clone())
                .unwrap_or_else(|| "<module>".into());
            match entries.iter_mut().find(|e| {
                e.file == sf.rel && e.function == function && e.ordering == site.ordering
            }) {
                Some(entry) => entry.matched += 1,
                None => {
                    diags.push(Diag {
                        file: sf.rel.clone(),
                        line: lineno,
                        pass: PASS,
                        msg: format!(
                            "atomic Ordering::{} in `{function}` outside the sync layer and not \
                             in lint/atomics.toml — move it behind sync.rs/sync_shim.rs or add a \
                             manifested [[site]] entry with a why",
                            site.ordering
                        ),
                    });
                    continue;
                }
            }
        }
        // Rule 3: non-Relaxed sites must carry a pairs-with group.
        if site.ordering != "Relaxed" {
            let site_groups = covering_groups(sf, site.line);
            if site_groups.is_empty() {
                diags.push(Diag {
                    file: sf.rel.clone(),
                    line: lineno,
                    pass: PASS,
                    msg: format!(
                        "non-Relaxed atomic (Ordering::{}) without a `// pairs-with: <group>` \
                         annotation naming its acquire/release counterpart",
                        site.ordering
                    ),
                });
            }
            for g in site_groups {
                let gi = match groups.iter().position(|(name, _)| *name == g) {
                    Some(i) => i,
                    None => {
                        groups.push((g, Vec::new()));
                        groups.len() - 1
                    }
                };
                groups[gi].1.push((sf.rel.clone(), lineno, site.ordering));
            }
        }
    }

    // Rule 4: group symmetry.
    for (name, members) in &groups {
        let first = &members[0];
        if members.len() < 2 {
            diags.push(Diag {
                file: first.0.clone(),
                line: first.1,
                pass: PASS,
                msg: format!(
                    "dangling pairs-with group `{name}`: only one annotated site — its \
                     counterpart was deleted, renamed, or never annotated"
                ),
            });
            continue;
        }
        let acquire = members.iter().any(|m| matches!(m.2, "Acquire" | "AcqRel"));
        let release = members.iter().any(|m| matches!(m.2, "Release" | "AcqRel"));
        if !acquire || !release {
            let missing = if acquire { "release" } else { "acquire" };
            let roster: Vec<String> = members
                .iter()
                .map(|(f, l, o)| format!("{f}:{l} ({o})"))
                .collect();
            diags.push(Diag {
                file: first.0.clone(),
                line: first.1,
                pass: PASS,
                msg: format!(
                    "asymmetric pairs-with group `{name}`: no {missing} side among [{}]",
                    roster.join(", ")
                ),
            });
        }
    }

    // Rule 5: manifest hygiene — every entry must match exactly `count`.
    for entry in &entries {
        if entry.matched != entry.count {
            diags.push(Diag {
                file: "lint/atomics.toml".into(),
                line: entry.line,
                pass: PASS,
                msg: format!(
                    "[[site]] {} `{}` Ordering::{}: manifest says count = {}, found {} — \
                     update the manifest to match the code (or delete the stale entry)",
                    entry.file, entry.function, entry.ordering, entry.count, entry.matched
                ),
            });
        }
    }
    Ok(())
}

/// All atomic-ordering variants referenced on one code line.
fn find_orderings(code: &str) -> Vec<&'static str> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = code[from..].find("Ordering::") {
        let at = from + p;
        from = at + "Ordering::".len();
        // `Ordering` must itself be word-bounded on the left (it always is:
        // preceded by `::`, `(`, space, …) — guard anyway.
        if at > 0 && is_ident_char(code.as_bytes()[at - 1]) {
            continue;
        }
        let rest = &code[from..];
        for variant in ORDERINGS {
            if rest.starts_with(variant)
                && !rest[variant.len()..].starts_with(|c: char| is_ident_char(c as u8))
            {
                out.push(variant);
                break;
            }
        }
    }
    out
}

/// The pairs-with groups covering `line` (0-based): an annotation covers
/// its own line plus the rest of the statement it opens.
fn covering_groups(sf: &SourceFile, line: usize) -> Vec<String> {
    let mut out = Vec::new();
    // Walk up from the site: the annotation may sit on the site line or on
    // an earlier line of the same statement. A line starts a new statement
    // region when the *previous* line's code ended a statement (`;` or
    // brace) or was blank-with-no-annotation.
    let mut l = line;
    loop {
        for g in parse_annotation(&sf.file.lines[l].comment) {
            if !out.contains(&g) {
                out.push(g);
            }
        }
        if l == 0 {
            break;
        }
        let prev = &sf.file.lines[l - 1];
        let prev_code = prev.code.trim();
        let prev_ends_stmt = prev_code.ends_with(';')
            || prev_code.ends_with('{')
            || prev_code.ends_with('}');
        let prev_is_comment_only = prev_code.is_empty() && !prev.comment.trim().is_empty();
        if prev_code.is_empty() && !prev_is_comment_only {
            break; // blank line: statement run ended
        }
        if prev_ends_stmt && !prev_is_comment_only {
            break; // previous line closed a statement: annotation out of range
        }
        l -= 1;
    }
    out
}

/// Parse `pairs-with: a, b` out of a comment; group names are
/// `[a-z0-9-]+` tokens, the list ends at the first non-group token.
fn parse_annotation(comment: &str) -> Vec<String> {
    let Some(at) = comment.find("pairs-with:") else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let rest = &comment[at + "pairs-with:".len()..];
    for piece in rest.split(',') {
        let token = piece.split_whitespace().next().unwrap_or("");
        let clean = token.trim_end_matches([')', '.', ';']);
        if !clean.is_empty()
            && clean
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-')
        {
            out.push(clean.to_string());
            // Only continue to the next comma-piece if this piece was
            // exactly the group token (otherwise prose follows).
            if piece.trim() != clean {
                break;
            }
        } else {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::tests::fixture;

    fn run_on(rel: &str, src: &str) -> Vec<String> {
        let sources = vec![fixture(rel, src)];
        let mut diags = Vec::new();
        run(&sources, &[], &mut diags).expect("pass runs");
        diags.iter().map(|d| d.render()).collect()
    }

    #[test]
    fn seeded_seqcst_is_flagged_even_in_sync_layer() {
        let diags = run_on(
            "crates/hot-core/src/sync.rs",
            "fn f(x: &AtomicU32) -> u32 {\n    x.load(Ordering::SeqCst)\n}\n",
        );
        assert_eq!(diags.len(), 1);
        assert!(
            diags[0].starts_with("crates/hot-core/src/sync.rs:2: [atomics] Ordering::SeqCst is banned"),
            "unexpected diagnostic: {}",
            diags[0]
        );
    }

    #[test]
    fn seeded_unmanifested_site_outside_sync_layer_is_flagged() {
        let diags = run_on(
            "crates/hot-core/src/trie.rs",
            "fn probe(x: &AtomicU32) -> u32 {\n    x.load(Ordering::Relaxed)\n}\n",
        );
        assert_eq!(diags.len(), 1);
        assert!(
            diags[0].contains("atomic Ordering::Relaxed in `probe` outside the sync layer"),
            "unexpected diagnostic: {}",
            diags[0]
        );
    }

    #[test]
    fn seeded_unannotated_release_is_flagged() {
        let diags = run_on(
            "crates/hot-core/src/sync.rs",
            "fn publish(x: &AtomicU64, v: u64) {\n    x.store(v, Ordering::Release);\n}\n",
        );
        assert_eq!(diags.len(), 1);
        assert!(
            diags[0].contains("without a `// pairs-with: <group>` annotation"),
            "unexpected diagnostic: {}",
            diags[0]
        );
    }

    #[test]
    fn seeded_dangling_group_is_flagged() {
        let diags = run_on(
            "crates/hot-core/src/sync.rs",
            "fn publish(x: &AtomicU64, v: u64) {\n    // pairs-with: lonely-group\n    x.store(v, Ordering::Release);\n}\n",
        );
        assert_eq!(diags.len(), 1);
        assert!(
            diags[0].contains("dangling pairs-with group `lonely-group`"),
            "unexpected diagnostic: {}",
            diags[0]
        );
    }

    #[test]
    fn seeded_asymmetric_group_is_flagged() {
        let src = "fn a(x: &AtomicU64, v: u64) {\n    // pairs-with: one-sided\n    x.store(v, Ordering::Release);\n}\nfn b(x: &AtomicU64, v: u64) {\n    // pairs-with: one-sided\n    x.store(v, Ordering::Release);\n}\n";
        let diags = run_on("crates/hot-core/src/sync.rs", src);
        assert_eq!(diags.len(), 1);
        assert!(
            diags[0].contains("asymmetric pairs-with group `one-sided`: no acquire side"),
            "unexpected diagnostic: {}",
            diags[0]
        );
    }

    #[test]
    fn symmetric_group_across_files_is_clean() {
        let store = fixture(
            "crates/hot-core/src/sync.rs",
            "fn publish(x: &AtomicU64, v: u64) {\n    // pairs-with: root-publish\n    x.store(v, Ordering::Release);\n}\n",
        );
        let load = fixture(
            "crates/hot-core/src/sync_shim.rs",
            "fn read(x: &AtomicU64) -> u64 {\n    // pairs-with: root-publish\n    x.load(Ordering::Acquire)\n}\n",
        );
        let mut diags = Vec::new();
        run(&[store, load], &[], &mut diags).expect("pass runs");
        assert!(diags.is_empty(), "expected clean, got: {}", diags[0].render());
    }

    #[test]
    fn annotation_covers_a_multiline_statement() {
        let src = "fn cas(x: &AtomicU64) {\n    // pairs-with: root-publish\n    x.compare_exchange(\n        0,\n        1,\n        Ordering::AcqRel,\n        Ordering::Acquire,\n    ).ok();\n}\n";
        let diags = run_on("crates/hot-core/src/sync.rs", src);
        // AcqRel covers both sides, two members (AcqRel + failure Acquire):
        // the group is symmetric and covered — no findings.
        assert!(diags.is_empty(), "expected clean, got: {}", diags[0]);
    }

    #[test]
    fn annotation_does_not_leak_past_its_statement() {
        let src = "fn f(x: &AtomicU64, v: u64) {\n    // pairs-with: g\n    x.store(v, Ordering::Release);\n    x.load(Ordering::Acquire);\n}\n";
        let diags = run_on("crates/hot-core/src/sync.rs", src);
        // The load on line 4 is NOT covered (the annotation's statement
        // ended at the store): one unannotated finding + `g` dangling.
        assert_eq!(diags.len(), 2, "got: {diags:?}");
        assert!(diags.iter().any(|d| d.contains("without a `// pairs-with:")));
        assert!(diags.iter().any(|d| d.contains("dangling pairs-with group `g`")));
    }

    #[test]
    fn manifest_covers_placement_and_counts_are_checked() {
        let src = "fn bytes(x: &AtomicUsize) -> usize {\n    x.load(Ordering::Relaxed)\n}\n";
        let manifest = crate::toml::parse(
            "[[site]]\nfile = \"crates/hot-core/src/node/mod.rs\"\nfunction = \"bytes\"\nordering = \"Relaxed\"\ncount = 2\nwhy = \"allocation counter\"\n",
        )
        .expect("manifest parses");
        let sources = vec![fixture("crates/hot-core/src/node/mod.rs", src)];
        let mut diags = Vec::new();
        run(&sources, &manifest, &mut diags).expect("pass runs");
        // One site matched but the manifest claims two: count mismatch.
        assert_eq!(diags.len(), 1);
        assert!(diags[0].msg.contains("manifest says count = 2, found 1"), "{}", diags[0].msg);
    }

    #[test]
    fn cmp_ordering_and_test_code_do_not_fire() {
        let src = "fn f(a: u8, b: u8) -> std::cmp::Ordering {\n    match a.cmp(&b) {\n        std::cmp::Ordering::Less => std::cmp::Ordering::Less,\n        o => o,\n    }\n}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t(x: &AtomicU32) {\n        x.load(Ordering::Relaxed);\n    }\n}\n";
        let diags = run_on("crates/hot-core/src/trie.rs", src);
        assert!(diags.is_empty(), "expected clean, got: {}", diags[0]);
    }
}
