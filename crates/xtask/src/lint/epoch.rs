//! Epoch-pin discipline in `hot-core`.
//!
//! A node freed by the ROWEX writer is only reclaimed after every epoch
//! pinned at the free has been released — so *dereferencing* an
//! epoch-protected pointer is only sound while some pin covers the
//! access. The deref surface in this codebase is `NodePtr::as_raw()`
//! (every `&RawNode` flows from it), so the rule is textual: any
//! `hot-core` function whose body calls `.as_raw(` must visibly hold the
//! protection, one of:
//!
//! * a `Guard` in its signature (the caller's pin flows through),
//! * a `pin(` call in its body (it pins itself),
//! * a function-level `// epoch-exempt: <reason>` comment (signature or
//!   the contiguous comment/attribute block above it),
//! * a file-level `//! epoch-exempt: <reason>` doc line (whole files
//!   whose access is single-threaded by construction — the `HotTrie`
//!   paths that take `&mut self` or own the tree).
//!
//! `#[cfg(test)]` mods and `tests/`-dir files are not scanned.

use super::{Diag, SourceFile};
use crate::lexer::find_word;

const PASS: &str = "epoch";

/// Run the pass.
pub fn run(sources: &[SourceFile], diags: &mut Vec<Diag>) {
    for sf in sources {
        if !sf.rel.starts_with("crates/hot-core/src/") || sf.is_test_context {
            continue;
        }
        // File-level exemption: an inner doc line carrying the marker.
        let file_exempt = sf.file.lines.iter().any(|l| {
            let c = l.comment.trim_start();
            c.starts_with("//!") && c.contains("epoch-exempt:")
        });
        if file_exempt {
            continue;
        }
        for f in &sf.file.fns {
            if sf.is_test_line(f.sig_start) {
                continue;
            }
            let derefs = (f.body_start..=f.body_end)
                .filter(|&l| !sf.is_test_line(l))
                .any(|l| sf.file.lines[l].code.contains(".as_raw("));
            if !derefs {
                continue;
            }
            let sig_has_guard = (f.sig_start..=f.body_start)
                .any(|l| !find_word(&sf.file.lines[l].code, "Guard").is_empty());
            if sig_has_guard {
                continue;
            }
            let pins = (f.body_start..=f.body_end).any(|l| calls_pin(&sf.file.lines[l].code));
            if pins {
                continue;
            }
            if fn_exempt(sf, f.sig_start, f.body_start) {
                continue;
            }
            diags.push(Diag {
                file: sf.rel.clone(),
                line: f.sig_start + 1,
                pass: PASS,
                msg: format!(
                    "`{}` dereferences epoch-protected pointers (.as_raw) but neither takes a \
                     &Guard, pins an epoch itself, nor carries an `// epoch-exempt:` \
                     justification",
                    f.name
                ),
            });
        }
    }
}

/// A word-bounded `pin(` call on this code line (`spin(` or `unpin(`
/// must not satisfy the rule).
fn calls_pin(code: &str) -> bool {
    find_word(code, "pin")
        .iter()
        .any(|&at| code[at + "pin".len()..].starts_with('('))
}

/// Function-level exemption: `epoch-exempt:` in a comment anywhere in the
/// signature lines, or in the contiguous comment/attribute/blank run
/// directly above the declaration (the item's doc block).
fn fn_exempt(sf: &SourceFile, sig_start: usize, body_start: usize) -> bool {
    let marked = |l: usize| sf.file.lines[l].comment.contains("epoch-exempt:");
    if (sig_start..=body_start).any(marked) {
        return true;
    }
    let mut i = sig_start;
    while i > 0 {
        i -= 1;
        if marked(i) {
            return true;
        }
        let l = &sf.file.lines[i];
        let code = l.code.trim();
        let is_attr_or_blank = code.is_empty() || code.starts_with("#[") || code.starts_with("#![");
        let has_comment = !l.comment.trim().is_empty();
        if !is_attr_or_blank && !has_comment {
            return false;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::tests::fixture;

    fn run_on(rel: &str, src: &str) -> Vec<String> {
        let sources = vec![fixture(rel, src)];
        let mut diags = Vec::new();
        run(&sources, &mut diags);
        diags.iter().map(|d| d.render()).collect()
    }

    const REL: &str = "crates/hot-core/src/sync.rs";

    #[test]
    fn seeded_unguarded_deref_is_flagged() {
        let diags = run_on(
            REL,
            "fn walk(p: NodePtr) -> u8 {\n    let raw = p.as_raw();\n    raw.height()\n}\n",
        );
        assert_eq!(diags.len(), 1);
        assert_eq!(
            diags[0],
            "crates/hot-core/src/sync.rs:1: [epoch] `walk` dereferences epoch-protected \
             pointers (.as_raw) but neither takes a &Guard, pins an epoch itself, nor \
             carries an `// epoch-exempt:` justification"
        );
    }

    #[test]
    fn guard_parameter_satisfies_the_rule() {
        let diags = run_on(
            REL,
            "fn walk(p: NodePtr, _guard: &epoch::Guard) -> u8 {\n    p.as_raw().height()\n}\n",
        );
        assert!(diags.is_empty(), "got: {}", diags[0]);
    }

    #[test]
    fn pinning_inside_the_body_satisfies_the_rule() {
        let diags = run_on(
            REL,
            "fn walk(p: NodePtr) -> u8 {\n    let guard = epoch::pin();\n    p.as_raw().height()\n}\n",
        );
        assert!(diags.is_empty(), "got: {}", diags[0]);
    }

    #[test]
    fn function_level_exemption_satisfies_the_rule() {
        let diags = run_on(
            REL,
            "/// Docs.\n// epoch-exempt: quiesced-only diagnostic walk\nfn depth_stats(p: NodePtr) -> u8 {\n    p.as_raw().height()\n}\n",
        );
        assert!(diags.is_empty(), "got: {}", diags[0]);
    }

    #[test]
    fn file_level_exemption_covers_every_fn() {
        let diags = run_on(
            "crates/hot-core/src/trie.rs",
            "//! Single-threaded trie.\n//! epoch-exempt: &mut self — no concurrent reclamation\nfn walk(p: NodePtr) -> u8 {\n    p.as_raw().height()\n}\n",
        );
        assert!(diags.is_empty(), "got: {}", diags[0]);
    }

    #[test]
    fn only_hot_core_src_is_scanned() {
        let diags = run_on(
            "crates/hot-bench/src/lib.rs",
            "fn walk(p: NodePtr) -> u8 {\n    p.as_raw().height()\n}\n",
        );
        assert!(diags.is_empty());
    }
}
