//! `cargo xtask lint` — the workspace static-analysis suite.
//!
//! Four project-specific passes, all running on the shared
//! [`lexer`](crate::lexer) (pure text analysis, no build, a few hundred
//! milliseconds for the whole workspace):
//!
//! * [`atomics`] — the atomics-protocol conformance pass: every
//!   `Ordering::*` call site must live in the sync layer or be manifested
//!   in `lint/atomics.toml`; non-Relaxed sites need a machine-readable
//!   `// pairs-with: <group>` annotation and every group must be
//!   symmetric (an acquire side and a release side); `SeqCst` is banned
//!   everywhere.
//! * [`hot_paths`] — allocation freedom on the descent paths named in
//!   `lint/hot_paths.toml` (allocating constructs are denied, with a
//!   per-function allowlist for documented cold setup edges).
//! * [`epoch`] — epoch-pin discipline in `hot-core`: a function that
//!   dereferences an epoch-protected pointer must take a `&Guard`, pin
//!   itself, or carry an `// epoch-exempt:` justification.
//! * [`budget`] — the per-crate `unsafe` site budget pinned in
//!   `lint/unsafe_budget.toml`: new unsafe must be consciously budgeted.
//!
//! Diagnostics print as `file:line: [pass] message` (the format the CI
//! problem matcher consumes); `--json` emits the same findings as a
//! machine-readable object.
//!
//! `third_party/` is deliberately **outside** the scan: it is vendored
//! stand-in code (the loom shim runs everything at `SeqCst` internally by
//! design) and is held to the audit-unsafe bar instead. The budget pass
//! is the exception — its per-crate counts cover the vendored crates too,
//! because their unsafe surface is part of the build.

pub mod atomics;
pub mod budget;
pub mod epoch;
pub mod hot_paths;

use crate::lexer::LexedFile;
use std::path::Path;
use std::process::ExitCode;

/// One lint finding.
pub struct Diag {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line number (0 for file/manifest-level findings).
    pub line: usize,
    /// Which pass produced it.
    pub pass: &'static str,
    /// What went wrong and how to fix it.
    pub msg: String,
}

impl Diag {
    fn render(&self) -> String {
        format!("{}:{}: [{}] {}", self.file, self.line, self.pass, self.msg)
    }
}

/// One scanned workspace source file.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// The lexed file with its structural passes.
    pub file: LexedFile,
    /// Whether the file lives under a `tests/`, `benches/` or `examples/`
    /// directory (held to a looser bar than library code).
    pub is_test_context: bool,
}

impl SourceFile {
    /// Whether `line` (0-based) is test scaffolding — either the whole
    /// file is test context or the line sits in a `#[cfg(test)] mod`.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.is_test_context || self.file.in_test.get(line).copied().unwrap_or(false)
    }
}

/// Load and lex the lintable workspace sources: everything under
/// `crates/` plus the umbrella crate's root `src/`, `tests/` and
/// `examples/`. `third_party/` is excluded by design (see module docs).
pub fn load_sources(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut paths = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        crate::lexer::collect_rs(&root.join(top), &mut paths);
    }
    paths.sort();
    let mut out = Vec::new();
    for path in paths {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let is_test_context = rel
            .split('/')
            .any(|seg| matches!(seg, "tests" | "benches" | "examples"));
        out.push(SourceFile { rel, file: LexedFile::new(&text), is_test_context });
    }
    Ok(out)
}

/// Read one manifest under `lint/`, tolerating a missing file only when
/// `required` is false.
fn load_manifest(root: &Path, name: &str) -> Result<Vec<crate::toml::Table>, String> {
    let path = root.join("lint").join(name);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("lint/{name}: cannot read: {e}"))?;
    crate::toml::parse(&text).map_err(|e| format!("lint/{name}: {e}"))
}

/// Run all four passes over the workspace; returns the findings.
pub fn run_all(root: &Path) -> Result<Vec<Diag>, String> {
    let sources = load_sources(root)?;
    let mut diags = Vec::new();

    let atomics_manifest = load_manifest(root, "atomics.toml")?;
    atomics::run(&sources, &atomics_manifest, &mut diags)?;

    let hot_manifest = load_manifest(root, "hot_paths.toml")?;
    hot_paths::run(&sources, &hot_manifest, &mut diags)?;

    epoch::run(&sources, &mut diags);

    let budget_manifest = load_manifest(root, "unsafe_budget.toml")?;
    budget::run(root, &budget_manifest, &mut diags)?;

    // Stable presentation order: by file, then line, then pass.
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.pass).cmp(&(b.file.as_str(), b.line, b.pass))
    });
    Ok(diags)
}

/// The `cargo xtask lint [--json]` entry point.
pub fn lint(json: bool) -> ExitCode {
    let root = crate::workspace_root();
    let diags = match run_all(&root) {
        Ok(d) => d,
        Err(e) => {
            // Infrastructure errors (unreadable file, malformed manifest)
            // fail the run with a single synthetic finding so CI still
            // gets the machine-readable shape.
            if json {
                println!(
                    "{{\"findings\": [{{\"file\": \"{}\", \"line\": 0, \"pass\": \"driver\", \"message\": \"{}\"}}], \"count\": 1}}",
                    crate::json::escape("lint"),
                    crate::json::escape(&e)
                );
            } else {
                eprintln!("lint: {e}");
            }
            return ExitCode::FAILURE;
        }
    };
    if json {
        let mut out = String::from("{\"findings\": [");
        for (i, d) in diags.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"file\": \"{}\", \"line\": {}, \"pass\": \"{}\", \"message\": \"{}\"}}",
                crate::json::escape(&d.file),
                d.line,
                d.pass,
                crate::json::escape(&d.msg)
            ));
        }
        out.push_str(&format!("], \"count\": {}}}", diags.len()));
        println!("{out}");
    }
    if diags.is_empty() {
        if !json {
            println!("lint: all four passes clean (atomics, hot-path, epoch, unsafe-budget)");
        }
        ExitCode::SUCCESS
    } else {
        for d in &diags {
            eprintln!("{}", d.render());
        }
        eprintln!("\nlint: {} finding(s). See DESIGN.md §15 for the protocol rules, the manifest formats and the annotation grammar.", diags.len());
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a single-file fixture workspace source in-memory.
    pub(crate) fn fixture(rel: &str, src: &str) -> SourceFile {
        SourceFile {
            rel: rel.to_string(),
            file: LexedFile::new(src),
            is_test_context: false,
        }
    }

    #[test]
    fn diags_render_in_problem_matcher_shape() {
        let d = Diag {
            file: "crates/hot-core/src/sync.rs".into(),
            line: 42,
            pass: "atomics",
            msg: "naked SeqCst".into(),
        };
        assert_eq!(
            d.render(),
            "crates/hot-core/src/sync.rs:42: [atomics] naked SeqCst"
        );
    }

    #[test]
    fn the_workspace_itself_lints_clean() {
        // The clean-workspace smoke: the real tree, all four passes.
        let root = crate::workspace_root();
        let diags = run_all(&root).expect("lint infrastructure runs");
        let rendered: Vec<String> = diags.iter().map(Diag::render).collect();
        assert!(rendered.is_empty(), "workspace has lint findings:\n{}", rendered.join("\n"));
    }
}
