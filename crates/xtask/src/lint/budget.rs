//! Per-crate `unsafe` budget.
//!
//! `cargo xtask audit-unsafe` proves every `unsafe` site carries a
//! written justification; this pass adds the *quantity* dimension: the
//! checked-in `lint/unsafe_budget.toml` pins how many sites each crate is
//! allowed to hold (`[[budget]] crate = "hot-core", sites = N`). A new
//! `unsafe` block no longer slips in on the back of a plausible SAFETY
//! comment — the author must also bump the budget in the same diff, which
//! makes the growth visible in review.
//!
//! Counts cover a crate's whole tree (src, tests, benches, examples) and
//! include the vendored `third_party/` crates — their unsafe surface is
//! part of the build. Mismatches fail in either direction: a count above
//! budget is unbudgeted growth, a count below is a stale manifest that
//! would mask the next growth.

use super::Diag;
use std::path::Path;

const PASS: &str = "unsafe-budget";

/// Count `unsafe` sites per crate. The crate key is the directory name
/// under `crates/` or `third_party/`; the umbrella crate's root
/// `src`/`tests`/`examples` count as `hot`.
pub fn count_by_crate(root: &Path) -> Result<Vec<(String, usize)>, String> {
    let mut files = Vec::new();
    for top in ["crates", "third_party", "tests", "examples", "src"] {
        crate::lexer::collect_rs(&root.join(top), &mut files);
    }
    files.sort();
    let mut counts: Vec<(String, usize)> = Vec::new();
    for file in &files {
        let rel = file.strip_prefix(root).unwrap_or(file);
        let mut components = rel.components().map(|c| c.as_os_str().to_string_lossy());
        let first = components.next().unwrap_or_default();
        let key = match first.as_ref() {
            "crates" | "third_party" => components.next().unwrap_or_default().into_owned(),
            _ => "hot".to_string(), // umbrella crate at the workspace root
        };
        let text = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        let n = crate::audit::count_sites(&text);
        match counts.iter_mut().find(|(k, _)| *k == key) {
            Some((_, total)) => *total += n,
            None => counts.push((key, n)),
        }
    }
    Ok(counts)
}

/// Run the pass.
pub fn run(root: &Path, manifest: &[crate::toml::Table], diags: &mut Vec<Diag>) -> Result<(), String> {
    let mut budgets = Vec::new();
    for table in manifest {
        if table.name != "budget" {
            return Err(format!(
                "lint/unsafe_budget.toml: unknown table [[{}]] at line {} (only [[budget]])",
                table.name, table.line
            ));
        }
        budgets.push((
            table.str_field("crate")?.to_string(),
            table.int_field("sites")?,
            table.line,
        ));
    }
    let counts = count_by_crate(root)?;
    check(&counts, &budgets, diags);
    Ok(())
}

/// Compare actual per-crate counts against the budget table.
fn check(counts: &[(String, usize)], budgets: &[(String, i64, usize)], diags: &mut Vec<Diag>) {
    for (krate, actual) in counts {
        let budget = budgets.iter().find(|(k, _, _)| k == krate);
        match budget {
            Some((_, sites, line)) if *sites != *actual as i64 => diags.push(Diag {
                file: "lint/unsafe_budget.toml".into(),
                line: *line,
                pass: PASS,
                msg: format!(
                    "crate `{krate}`: budget says {sites} unsafe site(s), found {actual} — \
                     unsafe growth must be budgeted consciously (adjust the manifest in the \
                     same change, with review)"
                ),
            }),
            Some(_) => {}
            None if *actual > 0 => diags.push(Diag {
                file: "lint/unsafe_budget.toml".into(),
                line: 0,
                pass: PASS,
                msg: format!(
                    "crate `{krate}` holds {actual} unsafe site(s) but has no [[budget]] entry"
                ),
            }),
            None => {}
        }
    }
    for (krate, _, line) in budgets {
        if !counts.iter().any(|(k, _)| k == krate) {
            diags.push(Diag {
                file: "lint/unsafe_budget.toml".into(),
                line: *line,
                pass: PASS,
                msg: format!("[[budget]] names unknown crate `{krate}` — stale manifest entry"),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rendered(counts: &[(&str, usize)], manifest: &str) -> Vec<String> {
        let tables = crate::toml::parse(manifest).expect("manifest parses");
        let mut budgets = Vec::new();
        for t in &tables {
            budgets.push((
                t.str_field("crate").unwrap().to_string(),
                t.int_field("sites").unwrap(),
                t.line,
            ));
        }
        let counts: Vec<(String, usize)> =
            counts.iter().map(|(k, n)| (k.to_string(), *n)).collect();
        let mut diags = Vec::new();
        check(&counts, &budgets, &mut diags);
        diags.iter().map(|d| d.render()).collect()
    }

    #[test]
    fn seeded_overspend_is_flagged() {
        let diags = rendered(
            &[("hot-core", 99)],
            "[[budget]]\ncrate = \"hot-core\"\nsites = 98\n",
        );
        assert_eq!(diags.len(), 1);
        assert!(
            diags[0].contains("budget says 98 unsafe site(s), found 99"),
            "unexpected: {}",
            diags[0]
        );
    }

    #[test]
    fn unbudgeted_and_stale_crates_are_flagged() {
        let diags = rendered(
            &[("hot-core", 5)],
            "[[budget]]\ncrate = \"gone-crate\"\nsites = 1\n",
        );
        assert_eq!(diags.len(), 2, "got: {diags:?}");
        assert!(diags.iter().any(|d| d.contains("has no [[budget]] entry")));
        assert!(diags.iter().any(|d| d.contains("unknown crate `gone-crate`")));
    }

    #[test]
    fn exact_match_and_zero_unsafe_crates_pass() {
        let diags = rendered(
            &[("hot-core", 98), ("hot-keys", 0)],
            "[[budget]]\ncrate = \"hot-core\"\nsites = 98\n",
        );
        assert!(diags.is_empty(), "got: {diags:?}");
    }
}
