//! `cargo xtask verify-no-metrics` — proves the `metrics` feature is
//! zero-cost when disabled, structurally: builds the fig8 binary *with*
//! the feature and asserts the `hot_metrics` crate name is present in the
//! binary (sanity-checking the probe), then builds it *without* and
//! asserts the name is absent — the instrumentation crate never even
//! links into a default build.

use std::path::Path;
use std::process::{Command, ExitCode};

/// Run the structural zero-cost proof.
pub fn verify_no_metrics() -> ExitCode {
    let root = crate::workspace_root();
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let binary = root
        .join("target")
        .join("release")
        .join(format!("fig8_throughput{}", std::env::consts::EXE_SUFFIX));
    let probe = b"hot_metrics";

    // First, with the feature: the crate name must show up (paths/symbols
    // in the binary), or the probe itself is broken and the second check
    // would pass vacuously.
    let with = Command::new(&cargo)
        .args(["build", "--release", "-p", "hot-bench", "--features", "metrics", "--bin", "fig8_throughput"])
        .current_dir(&root)
        .status();
    if !matches!(with, Ok(s) if s.success()) {
        eprintln!("verify-no-metrics: instrumented build failed");
        return ExitCode::FAILURE;
    }
    match contains_bytes(&binary, probe) {
        Ok(true) => println!("verify-no-metrics: probe ok (hot_metrics present in instrumented binary)"),
        Ok(false) => {
            eprintln!(
                "verify-no-metrics: probe broken: `hot_metrics` not found even in the \
                 --features metrics binary; the byte scan proves nothing"
            );
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("verify-no-metrics: cannot read {}: {e}", binary.display());
            return ExitCode::FAILURE;
        }
    }

    // Then the default build: not a single mention may survive.
    let without = Command::new(&cargo)
        .args(["build", "--release", "-p", "hot-bench", "--bin", "fig8_throughput"])
        .current_dir(&root)
        .status();
    if !matches!(without, Ok(s) if s.success()) {
        eprintln!("verify-no-metrics: default build failed");
        return ExitCode::FAILURE;
    }
    match contains_bytes(&binary, probe) {
        Ok(false) => {
            println!(
                "verify-no-metrics: ok — default fig8 binary contains no hot_metrics \
                 code (the instrumentation crate is not even linked)"
            );
            ExitCode::SUCCESS
        }
        Ok(true) => {
            eprintln!(
                "verify-no-metrics: FAIL — `hot_metrics` found in the default build; \
                 the metrics feature leaks into uninstrumented binaries"
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("verify-no-metrics: cannot read {}: {e}", binary.display());
            ExitCode::FAILURE
        }
    }
}

/// Whether `needle` occurs anywhere in the file's bytes.
fn contains_bytes(path: &Path, needle: &[u8]) -> std::io::Result<bool> {
    let haystack = std::fs::read(path)?;
    Ok(haystack
        .windows(needle.len())
        .any(|window| window == needle))
}
