//! Minimal TOML reader for the checked-in lint manifests (`lint/*.toml`).
//!
//! Same ethos as the mini JSON reader: the workspace vendors no external
//! parsers, and the manifests only need a small, line-oriented subset —
//! `[[name]]` array-of-tables headers, `key = "string"`, `key = 123`,
//! `key = ["a", "b"]` single-line string arrays, and `#` comments.
//! Anything else (dotted keys, inline tables, multi-line values, plain
//! `[table]` headers) is a parse error, on purpose: a manifest that needs
//! more than this should grow the parser consciously.

/// One `key = value` binding inside a table.
pub enum Value {
    /// A `"quoted"` string (supports `\"` and `\\` escapes only).
    Str(String),
    /// An integer.
    Int(i64),
    /// A single-line array of strings.
    Arr(Vec<String>),
}

/// One `[[name]]` table: its name and bindings, in file order.
pub struct Table {
    /// The array-of-tables name (the text between `[[` and `]]`).
    pub name: String,
    /// The line (1-based) of the `[[name]]` header, for diagnostics.
    pub line: usize,
    /// The table's bindings, in file order.
    pub entries: Vec<(String, Value)>,
}

impl Table {
    /// Look up a binding by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// A required string binding, or an error naming the table.
    pub fn str_field(&self, key: &str) -> Result<&str, String> {
        match self.get(key) {
            Some(Value::Str(s)) => Ok(s),
            _ => Err(format!(
                "[[{}]] at line {}: missing string field `{key}`",
                self.name, self.line
            )),
        }
    }

    /// An optional integer binding with a default.
    pub fn int_field_or(&self, key: &str, default: i64) -> Result<i64, String> {
        match self.get(key) {
            Some(Value::Int(n)) => Ok(*n),
            None => Ok(default),
            Some(_) => Err(format!(
                "[[{}]] at line {}: field `{key}` must be an integer",
                self.name, self.line
            )),
        }
    }

    /// A required integer binding.
    pub fn int_field(&self, key: &str) -> Result<i64, String> {
        match self.get(key) {
            Some(Value::Int(n)) => Ok(*n),
            _ => Err(format!(
                "[[{}]] at line {}: missing integer field `{key}`",
                self.name, self.line
            )),
        }
    }

    /// A required string-array binding.
    pub fn arr_field(&self, key: &str) -> Result<&[String], String> {
        match self.get(key) {
            Some(Value::Arr(items)) => Ok(items),
            _ => Err(format!(
                "[[{}]] at line {}: missing string-array field `{key}`",
                self.name, self.line
            )),
        }
    }
}

/// Parse a manifest into its `[[table]]` list.
pub fn parse(text: &str) -> Result<Vec<Table>, String> {
    let mut tables: Vec<Table> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("[[") {
            let name = rest
                .strip_suffix("]]")
                .ok_or_else(|| format!("line {lineno}: malformed [[table]] header"))?
                .trim();
            if name.is_empty() {
                return Err(format!("line {lineno}: empty [[table]] name"));
            }
            tables.push(Table { name: name.to_string(), line: lineno, entries: Vec::new() });
            continue;
        }
        if line.starts_with('[') {
            return Err(format!(
                "line {lineno}: plain [table] headers are not supported; use [[array-of-tables]]"
            ));
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {lineno}: expected `key = value`"))?;
        let key = key.trim();
        if key.is_empty() || !key.bytes().all(|b| crate::lexer::is_ident_char(b) || b == b'-') {
            return Err(format!("line {lineno}: bad key {key:?}"));
        }
        let value = parse_value(value.trim()).map_err(|e| format!("line {lineno}: {e}"))?;
        let table = tables
            .last_mut()
            .ok_or_else(|| format!("line {lineno}: `key = value` before any [[table]] header"))?;
        if table.entries.iter().any(|(k, _)| k == key) {
            return Err(format!("line {lineno}: duplicate key {key:?}"));
        }
        table.entries.push((key.to_string(), value));
    }
    Ok(tables)
}

/// Strip a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1,
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

fn parse_value(text: &str) -> Result<Value, String> {
    if let Some(rest) = text.strip_prefix('"') {
        return Ok(Value::Str(parse_str(rest)?.0));
    }
    if let Some(rest) = text.strip_prefix('[') {
        let inner = rest
            .strip_suffix(']')
            .ok_or("arrays must open and close on one line")?;
        let mut items = Vec::new();
        let mut rest = inner.trim();
        while !rest.is_empty() {
            let body = rest
                .strip_prefix('"')
                .ok_or("arrays may only hold strings")?;
            let (item, consumed) = parse_str(body)?;
            items.push(item);
            rest = rest[1 + consumed..].trim_start();
            if let Some(r) = rest.strip_prefix(',') {
                rest = r.trim_start();
            } else if !rest.is_empty() {
                return Err("expected `,` between array items".into());
            }
        }
        return Ok(Value::Arr(items));
    }
    text.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| format!("unsupported value {text:?} (string, integer or [\"array\"] only)"))
}

/// Parse a string body (after the opening quote); returns the unescaped
/// text and the number of bytes consumed *including* the closing quote.
fn parse_str(body: &str) -> Result<(String, usize), String> {
    let bytes = body.as_bytes();
    let mut out = String::new();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Ok((out, i + 1)),
            b'\\' => {
                let esc = bytes.get(i + 1).ok_or("dangling escape")?;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    _ => return Err(format!("unsupported escape \\{}", *esc as char)),
                }
                i += 2;
            }
            _ => {
                out.push(body[i..].chars().next().expect("in bounds"));
                i += crate::lexer::utf8_len(bytes[i]);
            }
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_manifest_subset() {
        let doc = r##"
# comment
[[site]]
file = "crates/hot-core/src/node/mod.rs"   # trailing comment
function = "value"
ordering = "Acquire"
count = 2

[[hot]]
file = "crates/hot-core/src/trie.rs"
functions = ["get", "scan_with", "run_group"]
"##;
        let tables = parse(doc).expect("parses");
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].name, "site");
        assert_eq!(tables[0].str_field("file").unwrap(), "crates/hot-core/src/node/mod.rs");
        assert_eq!(tables[0].int_field_or("count", 1).unwrap(), 2);
        assert_eq!(tables[1].arr_field("functions").unwrap().len(), 3);
    }

    #[test]
    fn hash_inside_strings_is_not_a_comment() {
        let tables = parse("[[a]]\nwhy = \"issue #42\"\n").expect("parses");
        assert_eq!(tables[0].str_field("why").unwrap(), "issue #42");
    }

    #[test]
    fn rejects_what_it_does_not_support() {
        assert!(parse("[plain]\n").is_err());
        assert!(parse("key = 1\n").is_err(), "binding before any table");
        assert!(parse("[[a]]\nk = 1.5\n").is_err(), "floats unsupported");
        assert!(parse("[[a]]\nk = [1, 2]\n").is_err(), "non-string arrays");
        assert!(parse("[[a]]\nk = \"x\"\nk = \"y\"\n").is_err(), "duplicate keys");
    }
}
