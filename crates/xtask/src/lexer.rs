//! The shared hand-rolled Rust token scanner every xtask lint builds on.
//!
//! This is a *lexer*, not a parser: it splits each source line into the
//! code text (with string/char literal contents blanked) and the comment
//! text (preserved, so `SAFETY:` / `pairs-with:` / `epoch-exempt:`
//! annotations stay scannable), understands nested block comments, raw
//! strings (`r#"…"#`, `br##"…"##`), byte strings and char/byte literals
//! (`b'"'`), and then layers two line-oriented structural passes on top:
//!
//! * [`fn_spans`] — every function item's name plus its signature and
//!   body line ranges, recovered by brace-depth tracking (closures and
//!   nested items are handled; `fn`-pointer *types* are skipped because
//!   no identifier follows the keyword);
//! * [`test_regions`] — the line ranges of `#[cfg(test)] mod … { … }`
//!   blocks, so lints can hold test scaffolding to a different bar than
//!   library code.
//!
//! [`LexedFile`] bundles all three so a file is scanned once per lint run.

/// One source line split into code and comment text.
#[derive(Default)]
pub struct Line {
    /// The line's code with literal contents blanked (`"…"` → `""`,
    /// `'x'` → `' '`).
    pub code: String,
    /// The line's comment text (line, doc and block comments).
    pub comment: String,
}

/// One `fn` item with its line extent (all indices 0-based).
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Line of the `fn` keyword (the signature may span several lines).
    pub sig_start: usize,
    /// Line of the body's opening `{`.
    pub body_start: usize,
    /// Line of the body's closing `}`.
    pub body_end: usize,
}

impl FnSpan {
    /// Whether `line` falls anywhere in this item (signature or body).
    pub fn contains(&self, line: usize) -> bool {
        self.sig_start <= line && line <= self.body_end
    }
}

/// A fully scanned source file: lexed lines plus the structural passes.
pub struct LexedFile {
    /// Per-line code/comment split.
    pub lines: Vec<Line>,
    /// Every function item, in source order (nested fns close first).
    pub fns: Vec<FnSpan>,
    /// Per-line flag: inside a `#[cfg(test)] mod` region.
    pub in_test: Vec<bool>,
}

impl LexedFile {
    /// Lex `text` and run both structural passes.
    pub fn new(text: &str) -> LexedFile {
        let lines = lex(text);
        let fns = fn_spans(&lines);
        let in_test = test_regions(&lines);
        LexedFile { lines, fns, in_test }
    }

    /// The innermost function item containing `line`, if any.
    pub fn enclosing_fn(&self, line: usize) -> Option<&FnSpan> {
        // Innermost = smallest span among those containing the line.
        self.fns
            .iter()
            .filter(|f| f.contains(line))
            .min_by_key(|f| f.body_end - f.sig_start)
    }
}

/// Strip strings and split comments from code, line by line. Understands
/// `//`, `/* */` (nested), string/char/byte literals and raw strings; the
/// contents of strings are blanked so `"unsafe"` in a string is not a
/// site, while comment text is preserved for the annotation scans.
pub fn lex(text: &str) -> Vec<Line> {
    let mut lines = vec![Line::default()];
    let bytes = text.as_bytes();
    let mut i = 0;
    let mut block_comment_depth = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            lines.push(Line::default());
            i += 1;
            continue;
        }
        let cur = lines.last_mut().expect("at least one line");
        if block_comment_depth > 0 {
            if bytes[i..].starts_with(b"*/") {
                block_comment_depth -= 1;
                i += 2;
            } else if bytes[i..].starts_with(b"/*") {
                block_comment_depth += 1;
                i += 2;
            } else {
                cur.comment.push(c);
                i += 1;
            }
            continue;
        }
        if bytes[i..].starts_with(b"//") {
            // Line comment (incl. doc comments): consume to end of line.
            let end = bytes[i..]
                .iter()
                .position(|&b| b == b'\n')
                .map_or(bytes.len(), |p| i + p);
            cur.comment.push_str(&text[i..end]);
            i = end;
            continue;
        }
        if bytes[i..].starts_with(b"/*") {
            block_comment_depth += 1;
            i += 2;
            continue;
        }
        if c == '"'
            || (c == 'r' && is_raw_string_start(&bytes[i..]))
            || bytes[i..].starts_with(b"b\"")
            || (bytes[i..].starts_with(b"br") && is_raw_string_start(&bytes[i + 1..]))
        {
            i = skip_string(text, i);
            cur.code.push_str("\"\"");
            continue;
        }
        if bytes[i..].starts_with(b"b'") {
            // Byte literal: same shape as a char literal after the `b`.
            if let Some(end) = char_literal_end(bytes, i + 1) {
                cur.code.push_str("' '");
                i = end;
                continue;
            }
            cur.code.push(c);
            i += 1;
            continue;
        }
        if c == '\'' {
            // Char literal or lifetime. A lifetime is `'` + ident not
            // followed by a closing quote.
            if let Some(end) = char_literal_end(bytes, i) {
                cur.code.push_str("' '");
                i = end;
                continue;
            }
            cur.code.push(c);
            i += 1;
            continue;
        }
        cur.code.push(c);
        i += 1;
    }
    lines
}

fn is_raw_string_start(rest: &[u8]) -> bool {
    // r", r#", r##"…
    let mut j = 1;
    while j < rest.len() && rest[j] == b'#' {
        j += 1;
    }
    j < rest.len() && rest[j] == b'"'
}

/// Byte index just past the string literal starting at `start`.
fn skip_string(text: &str, start: usize) -> usize {
    let bytes = text.as_bytes();
    let mut i = start;
    if bytes[i] == b'b' {
        i += 1;
    }
    if bytes[i] == b'r' {
        i += 1;
        let mut hashes = 0;
        while bytes[i] == b'#' {
            hashes += 1;
            i += 1;
        }
        debug_assert_eq!(bytes[i], b'"');
        i += 1;
        let closer = format!("\"{}", "#".repeat(hashes));
        return text[i..]
            .find(&closer)
            .map_or(text.len(), |p| i + p + closer.len());
    }
    debug_assert_eq!(bytes[i], b'"');
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    text.len()
}

/// Byte index just past a char literal at `start`, or `None` if this is a
/// lifetime.
fn char_literal_end(bytes: &[u8], start: usize) -> Option<usize> {
    let mut i = start + 1;
    if i >= bytes.len() {
        return None;
    }
    if bytes[i] == b'\\' {
        i += 2;
        while i < bytes.len() && bytes[i] != b'\'' {
            i += 1; // \u{...}
        }
        return (i < bytes.len()).then_some(i + 1);
    }
    // `'x'` is a char; `'x` (no closing quote right after one char-ish
    // token) is a lifetime.
    let ch_len = utf8_len(bytes[i]);
    i += ch_len;
    (i < bytes.len() && bytes[i] == b'\'').then_some(i + 1)
}

/// Byte length of the UTF-8 sequence starting with `first`.
pub fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

/// Whether `b` can appear in an identifier.
pub fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Column offsets of `word` (word-bounded) in a code line.
pub fn find_word(code: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(p) = code[from..].find(word) {
        let at = from + p;
        let before_ok = at == 0 || !is_ident_char(bytes[at - 1]);
        let after = at + word.len();
        let after_ok = after >= bytes.len() || !is_ident_char(bytes[after]);
        if before_ok && after_ok {
            out.push(at);
        }
        from = after;
    }
    out
}

/// Recover every `fn` item's line extent by brace-depth tracking over the
/// lexed code text. A `fn` keyword only opens a pending item when an
/// identifier follows (so `fn(f64) -> f64` *types* never match); the
/// pending item binds to the next `{` at signature level, and closes when
/// the brace depth returns to its opening value. A `;` at signature level
/// (outside parens/brackets, so `[u8; 4]` params survive) is a bodyless
/// declaration and drops the pending item.
pub fn fn_spans(lines: &[Line]) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    let mut depth = 0usize;
    // A fn whose signature we are inside, awaiting the body's `{`:
    // (name, sig_start, paren/bracket nesting inside the signature).
    let mut pending: Option<(String, usize, usize)> = None;
    // Open bodies: (name, sig_start, body_start, depth at `{`).
    let mut open: Vec<(String, usize, usize, usize)> = Vec::new();
    for (ln, line) in lines.iter().enumerate() {
        let code = &line.code;
        let bytes = code.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] == b'f'
                && code[i..].starts_with("fn")
                && (i == 0 || !is_ident_char(bytes[i - 1]))
                && !code[i + 2..].starts_with(|c: char| is_ident_char(c as u8))
            {
                let rest = code[i + 2..].trim_start();
                let name: String = rest
                    .bytes()
                    .take_while(|&b| is_ident_char(b))
                    .map(char::from)
                    .collect();
                if !name.is_empty() && !name.as_bytes()[0].is_ascii_digit() {
                    pending = Some((name, ln, 0));
                }
                i += 2;
                continue;
            }
            match bytes[i] {
                b'(' | b'[' => {
                    if let Some((_, _, nest)) = pending.as_mut() {
                        *nest += 1;
                    }
                }
                b')' | b']' => {
                    if let Some((_, _, nest)) = pending.as_mut() {
                        *nest = nest.saturating_sub(1);
                    }
                }
                b';' => {
                    if matches!(pending, Some((_, _, 0))) {
                        pending = None; // bodyless declaration
                    }
                }
                b'{' => {
                    if let Some((name, sig_start, 0)) = pending.take() {
                        open.push((name, sig_start, ln, depth));
                    }
                    depth += 1;
                }
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if open.last().is_some_and(|&(_, _, _, d)| d == depth) {
                        let (name, sig_start, body_start, _) =
                            open.pop().expect("checked non-empty");
                        spans.push(FnSpan { name, sig_start, body_start, body_end: ln });
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    spans
}

/// Per-line flag: inside a `#[cfg(test)] mod … { … }` region. The
/// attribute arms a pending marker; the next `mod` keyword (attributes
/// and blank lines may intervene) binds it to that module's brace span.
/// A `#[cfg(test)]` that gates anything other than an inline `mod` (a
/// lone fn, a `mod foo;` file module) is dropped, not tracked.
pub fn test_regions(lines: &[Line]) -> Vec<bool> {
    let mut in_test = vec![false; lines.len()];
    let mut depth = 0usize;
    let mut cfg_pending = false;
    let mut mod_pending = false;
    // Depths at which test mods opened (nested test mods stack).
    let mut regions: Vec<usize> = Vec::new();
    for (ln, line) in lines.iter().enumerate() {
        let code = &line.code;
        let test_at_start = !regions.is_empty();
        if code.contains("#[cfg(test)]") {
            cfg_pending = true;
        }
        if cfg_pending && !find_word(code, "mod").is_empty() {
            mod_pending = true;
        }
        for &b in code.as_bytes() {
            match b {
                b'{' => {
                    if mod_pending {
                        regions.push(depth);
                        mod_pending = false;
                        cfg_pending = false;
                    }
                    depth += 1;
                }
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if regions.last() == Some(&depth) {
                        regions.pop();
                    }
                }
                b';' if mod_pending => {
                    // `#[cfg(test)] mod foo;` — an out-of-line module;
                    // nothing to bracket here.
                    mod_pending = false;
                    cfg_pending = false;
                }
                _ => {}
            }
        }
        // The attribute only reaches across attribute/blank/comment lines.
        let trimmed = code.trim();
        if cfg_pending
            && !mod_pending
            && !trimmed.is_empty()
            && !trimmed.starts_with("#[")
            && !code.contains("#[cfg(test)]")
        {
            cfg_pending = false;
        }
        in_test[ln] = test_at_start || !regions.is_empty();
    }
    in_test
}

/// Recursively collect `.rs` files under `dir` (skipping `target/`).
pub fn collect_rs(dir: &std::path::Path, out: &mut Vec<std::path::PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            // `target` is build output; nothing else is excluded.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_blanked_and_comments_preserved() {
        let lines = lex("let s = \"unsafe { }\"; // SAFETY: note\n");
        assert_eq!(lines[0].code, "let s = \"\"; ");
        assert!(lines[0].comment.contains("SAFETY: note"));
    }

    #[test]
    fn raw_and_byte_strings_do_not_desync() {
        // A quote inside a raw string, a byte-string, a raw byte-string and
        // a byte literal holding a quote must all be blanked without the
        // scanner losing track of what is code.
        for src in [
            "let a = r#\"one \" two\"#; let x = 1;",
            "let a = b\"bytes \\\" q\"; let x = 1;",
            "let a = br##\"raw \"# bytes\"##; let x = 1;",
            "let a = b'\"'; let x = 1;",
            "let a = b'\\''; let x = 1;",
        ] {
            let lines = lex(src);
            assert!(lines[0].code.contains("let x = 1;"), "desync on {src:?}");
            assert!(!lines[0].code.contains("bytes"), "literal leaked on {src:?}");
        }
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let lines = lex("/* outer /* inner */ still comment */ let x = 1;\n");
        assert_eq!(lines[0].code.trim(), "let x = 1;");
        assert!(lines[0].comment.contains("inner"));
    }

    #[test]
    fn fn_spans_track_names_and_bodies() {
        let src = "fn outer(x: [u8; 4]) -> u8 {\n    let f = |y: u8| { y };\n    f(x[0])\n}\n\nimpl T {\n    fn method(&self) {}\n}\n";
        let lines = lex(src);
        let spans = fn_spans(&lines);
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"outer"));
        assert!(names.contains(&"method"));
        let outer = spans.iter().find(|s| s.name == "outer").expect("outer");
        assert_eq!((outer.sig_start, outer.body_start, outer.body_end), (0, 0, 3));
    }

    #[test]
    fn fn_pointer_types_and_declarations_are_not_items() {
        let src = "fn real(pick: fn(f64, f64) -> f64) {\n    pick(1.0, 2.0);\n}\ntrait T {\n    fn decl(&self);\n}\n";
        let spans = fn_spans(&lex(src));
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "real");
    }

    #[test]
    fn multiline_signatures_resolve() {
        let src = "pub fn long(\n    a: u32,\n    b: u32,\n) -> u32 {\n    a + b\n}\n";
        let spans = fn_spans(&lex(src));
        assert_eq!(spans.len(), 1);
        assert_eq!((spans[0].sig_start, spans[0].body_start, spans[0].body_end), (0, 3, 5));
    }

    #[test]
    fn test_mod_regions_are_marked() {
        let src = "fn lib() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {}\n}\nfn after() {}\n";
        let lines = lex(src);
        let in_test = test_regions(&lines);
        assert!(!in_test[0], "library fn is not test code");
        assert!(in_test[3] && in_test[5], "mod body is test code");
        assert!(!in_test[7], "code after the mod is not test code");
    }

    #[test]
    fn cfg_test_on_a_lone_fn_does_not_open_a_region() {
        let src = "#[cfg(test)]\nfn helper() {\n    body();\n}\nfn lib() {}\n";
        let in_test = test_regions(&lex(src));
        assert!(in_test.iter().all(|&t| !t));
    }

    #[test]
    fn find_word_is_word_bounded() {
        assert_eq!(find_word("mod tests { mod_helper(); }", "mod"), vec![0]);
        assert!(find_word("unmodified", "mod").is_empty());
    }

    #[test]
    fn enclosing_fn_picks_the_innermost() {
        let src = "fn outer() {\n    fn inner() {\n        x();\n    }\n}\n";
        let file = LexedFile::new(src);
        assert_eq!(file.enclosing_fn(2).expect("inner").name, "inner");
        assert_eq!(file.enclosing_fn(4).expect("outer").name, "outer");
    }
}
