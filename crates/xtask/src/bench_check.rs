//! `cargo xtask bench-check` — the CI perf-regression gate.
//!
//! Runs the fig8 smoke benchmark (`--keys 50000 --ops 50000 --batch 8
//! --bulk --ooo`), the fig9 arena-footprint smoke (`--keys 50000
//! --arena`), the fig10 sharded-router smoke (`--shards 2,4`), and the
//! fig_net loopback-serving smoke (`--check`) in a
//! scratch working directory (`target/bench-check/`, so
//! the checked-in `results/` files are never clobbered). Because a
//! 50 k-op smoke cell is noisy on shared hosts, the smoke runs
//! `BENCH_CHECK_RUNS` times (default 3) and the two sides of the
//! comparison take opposite extremes: `bench-check --update` records each
//! field's WORST observation as the committed baseline under
//! `results/baselines/` — a floor the build demonstrably clears even on a
//! bad scheduling day — while a check judges each field by its BEST
//! observation. A field fails only when every fresh pass lands on the bad
//! side of the floor by more than the tolerance — 25% by default,
//! overridable via the `BENCH_CHECK_TOLERANCE` env var (e.g. `0.40`);
//! only bad-direction deviations fail, improvements are fine. Real code
//! regressions are persistent across passes, so they fall through the
//! floor; scheduler hiccups do not survive the extreme fold.
//!
//! Three field families are gated: `*_mops` throughputs (higher is
//! better), `*_bpk` bytes-per-key memory footprints from
//! `BENCH_arena.json`, and `*_us` latency percentiles from
//! `BENCH_net.json` (both lower is better — "worst" is the maximum, a
//! regression is growth past the baseline ceiling).

use crate::json::{self, Json};
use std::path::Path;
use std::process::{Command, ExitCode};

/// The smoke parameters: small enough for CI, large enough that the trie
/// leaves its root-only regime on every data set.
const SMOKE_ARGS: &[&str] = &[
    "--keys", "50000", "--ops", "50000", "--batch", "8", "--bulk", "--threads", "1,2", "--ooo",
];

/// The fig9 arena-footprint smoke: memory accounting is deterministic at
/// fixed keys/seed, so this side of the gate is noise-free. `--bulk` makes
/// the arena fill append in key order — the front-coded layout the space
/// claim is about.
const ARENA_SMOKE_ARGS: &[&str] = &["--keys", "50000", "--arena", "--bulk"];

/// The fig10 sharded-router smoke: an explicit `--keys` keeps the shard
/// section at smoke scale (it otherwise floors itself at 4 M keys), and
/// `--threads 1` skips the multi-thread sweep of the main section. Gates
/// the `shard*` rows' `lookup_mops`/`ycsb_c_mops` in `BENCH_shard.json`.
/// The op count is deliberately larger than fig8's: the YCSB cells time
/// windowed passes whose sub-millisecond spans would otherwise be pure
/// scheduler-noise measurements.
const SHARD_SMOKE_ARGS: &[&str] = &[
    "--keys", "20000", "--ops", "200000", "--threads", "1", "--shards", "2,4",
];

/// The fig_net serving smoke: the full dataset × shard matrix at 50 k
/// keys/ops over loopback, with every phase's checksum verified against
/// the in-process driver (`--check` turns a mismatch into a non-zero
/// exit, which fails the gate outright before any threshold comparison).
/// Gates the `net*` rows' `*_mops` throughputs and `*_us` latency
/// percentiles in `BENCH_net.json`.
const NET_SMOKE_ARGS: &[&str] = &["--keys", "50000", "--ops", "50000", "--check"];

/// The JSON reports the smokes produce and gate on.
const BENCH_FILES: &[&str] = &[
    "BENCH_batch.json",
    "BENCH_scan.json",
    "BENCH_bulk.json",
    "BENCH_ooo.json",
    "BENCH_arena.json",
    "BENCH_shard.json",
    "BENCH_net.json",
];

/// Fields gated with inverted polarity relative to `*_mops`: `*_bpk`
/// bytes-per-key footprints and `*_us` latency percentiles — for both,
/// "worst" is the maximum and a regression is growth past the baseline
/// ceiling.
fn lower_is_better(field: &str) -> bool {
    field.ends_with("_bpk") || field.ends_with("_us")
}

/// Run the gate (or refresh the committed baselines with `--update`).
pub fn bench_check(update: bool) -> ExitCode {
    let root = crate::workspace_root();
    let scratch = root.join("target").join("bench-check");
    let fresh_dir = scratch.join("results");
    let baseline_dir = root.join("results").join("baselines");
    if let Err(e) = std::fs::create_dir_all(&scratch) {
        eprintln!("bench-check: cannot create {}: {e}", scratch.display());
        return ExitCode::FAILURE;
    }

    // A single 50 k-op smoke cell times a few tens of milliseconds — on a
    // busy/shared host that is 25–35% noisy run-to-run, which would flake a
    // 25% gate on a single draw. So the smoke runs N times and the two
    // sides of the comparison take opposite extremes: the committed
    // baseline (`--update`) keeps each field's WORST observation — a floor
    // the build demonstrably clears even on a bad scheduling day — while a
    // check judges each field by its BEST observation. Real code
    // regressions are persistent: they drag every pass down and fall
    // through the floor; scheduler hiccups do not survive the max.
    let runs = std::env::var("BENCH_CHECK_RUNS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(3);

    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    // (file name, [(row key, [(field, value)])]) under max / min folds.
    let mut best: BestTable = Vec::new();
    let mut floor: BestTable = Vec::new();
    for run in 1..=runs {
        let _ = std::fs::remove_dir_all(&fresh_dir);
        let smokes: [(&str, &[&str]); 4] = [
            ("fig8_throughput", SMOKE_ARGS),
            ("fig9_memory", ARENA_SMOKE_ARGS),
            ("fig10_scalability", SHARD_SMOKE_ARGS),
            ("fig_net", NET_SMOKE_ARGS),
        ];
        for (bin, args) in smokes {
            eprintln!(
                "bench-check: {bin} smoke run {run}/{runs} ({})",
                args.join(" ")
            );
            let status = Command::new(&cargo)
                .args(["run", "--release", "-p", "hot-bench", "--bin", bin, "--"])
                .args(args)
                .current_dir(&scratch)
                .status();
            match status {
                Ok(s) if s.success() => {}
                Ok(s) => {
                    eprintln!("bench-check: {bin} smoke failed with {s}");
                    return ExitCode::FAILURE;
                }
                Err(e) => {
                    eprintln!("bench-check: cannot spawn cargo: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        for name in BENCH_FILES {
            let rows = match load_rows(&fresh_dir.join(name)) {
                Ok(rows) => rows,
                Err(e) => {
                    eprintln!("bench-check: smoke run produced no {name}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            merge_fold(&mut best, name, rows.clone(), Fold::Best);
            merge_fold(&mut floor, name, rows, Fold::Floor);
        }
    }

    if update {
        if let Err(e) = std::fs::create_dir_all(&baseline_dir) {
            eprintln!("bench-check: cannot create {}: {e}", baseline_dir.display());
            return ExitCode::FAILURE;
        }
        for name in BENCH_FILES {
            let rows = floor
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, rows)| rows.as_slice())
                .unwrap_or(&[]);
            if let Err(e) = write_baseline(&baseline_dir.join(name), runs, rows) {
                eprintln!("bench-check: cannot update baseline {name}: {e}");
                return ExitCode::FAILURE;
            }
            println!("bench-check: baseline updated: results/baselines/{name} (per-field floor of {runs} passes)");
        }
        return ExitCode::SUCCESS;
    }

    let tolerance = match std::env::var("BENCH_CHECK_TOLERANCE") {
        Ok(v) => match v.parse::<f64>() {
            Ok(t) if t > 0.0 && t < 1.0 => t,
            _ => {
                eprintln!("bench-check: BENCH_CHECK_TOLERANCE must be a fraction in (0, 1), got {v:?}");
                return ExitCode::FAILURE;
            }
        },
        Err(_) => 0.25,
    };

    let mut failures = Vec::new();
    let mut checked = 0usize;
    for name in BENCH_FILES {
        let baseline = match load_rows(&baseline_dir.join(name)) {
            Ok(rows) => rows,
            Err(e) => {
                eprintln!(
                    "bench-check: no baseline results/baselines/{name} ({e}); run `cargo xtask bench-check --update` and commit"
                );
                return ExitCode::FAILURE;
            }
        };
        let fresh = best
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, rows)| rows.clone())
            .unwrap_or_default();
        for (key, base_fields) in &baseline {
            let Some(new_fields) = fresh.iter().find(|(k, _)| k == key).map(|(_, f)| f) else {
                failures.push(format!("{name}: row {key} missing from fresh run"));
                continue;
            };
            for (field, base) in base_fields {
                let Some((_, new)) = new_fields.iter().find(|(f, _)| f == field) else {
                    failures.push(format!("{name}: {key}.{field} missing from fresh run"));
                    continue;
                };
                checked += 1;
                let ratio = if *base > 0.0 { new / base } else { 1.0 };
                if lower_is_better(field) {
                    // Lower is better (B/key footprints, latency µs): the
                    // baseline is a ceiling; growth past it by more than
                    // the tolerance fails.
                    let ceiling = base * (1.0 + tolerance);
                    if *new > ceiling {
                        failures.push(format!(
                            "{name}: {key}.{field} regressed: baseline {base:.3} -> {new:.3} ({:.0}% of baseline ceiling, allowed {:.0}%)",
                            ratio * 100.0,
                            (1.0 + tolerance) * 100.0
                        ));
                    } else {
                        println!(
                            "bench-check: ok {key}.{field}: {base:.3} -> {new:.3} ({:.0}% of ceiling baseline)",
                            ratio * 100.0
                        );
                    }
                } else {
                    let floor = base * (1.0 - tolerance);
                    if *new < floor {
                        failures.push(format!(
                            "{name}: {key}.{field} regressed: baseline {base:.3} -> {new:.3} Mops ({:.0}% of baseline, floor {:.0}%)",
                            ratio * 100.0,
                            (1.0 - tolerance) * 100.0
                        ));
                    } else {
                        println!(
                            "bench-check: ok {key}.{field}: {base:.3} -> {new:.3} Mops ({:.0}%)",
                            ratio * 100.0
                        );
                    }
                }
            }
        }
    }

    if failures.is_empty() {
        println!(
            "bench-check: {checked} throughput field(s) within {:.0}% of baseline",
            tolerance * 100.0
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("bench-check: FAIL {f}");
        }
        eprintln!(
            "\nbench-check: {} regression(s) beyond the {:.0}% tolerance. If the change \
             is an accepted trade-off, refresh with `cargo xtask bench-check --update` \
             (or raise BENCH_CHECK_TOLERANCE for a noisy runner).",
            failures.len(),
            tolerance * 100.0
        );
        ExitCode::FAILURE
    }
}

/// One BENCH_*.json as `(row key, [(field, value)])` pairs.
type RowTable = Vec<(String, Vec<(String, f64)>)>;

/// Per-field best-of-N accumulator: `(file name, rows)`.
type BestTable = Vec<(String, RowTable)>;

/// Which extreme a fold keeps per field. The check side keeps each
/// field's most favorable observation, the baseline side its least
/// favorable — and "favorable" flips for [`lower_is_better`] fields.
#[derive(Clone, Copy)]
enum Fold {
    /// Check side: max for `*_mops`, min for `*_bpk`.
    Best,
    /// Baseline side: min for `*_mops`, max for `*_bpk`.
    Floor,
}

impl Fold {
    fn pick(self, field: &str, old: f64, new: f64) -> f64 {
        let keep_max = matches!(self, Fold::Best) != lower_is_better(field);
        if keep_max {
            old.max(new)
        } else {
            old.min(new)
        }
    }
}

/// Fold one run's rows into a per-field accumulator, keeping the `side`'s
/// extreme per field.
fn merge_fold(table: &mut BestTable, name: &str, rows: RowTable, side: Fold) {
    let fi = table.iter().position(|(n, _)| n == name).unwrap_or_else(|| {
        table.push((name.to_string(), Vec::new()));
        table.len() - 1
    });
    let file = &mut table[fi].1;
    for (key, fields) in rows {
        let ri = file.iter().position(|(k, _)| *k == key).unwrap_or_else(|| {
            file.push((key.clone(), Vec::new()));
            file.len() - 1
        });
        let row = &mut file[ri].1;
        for (field, value) in fields {
            match row.iter_mut().find(|(f, _)| *f == field) {
                Some((_, old)) => *old = side.pick(&field, *old, value),
                None => row.push((field, value)),
            }
        }
    }
}

/// Write a baseline file in the same shape `load_rows` reads back: a
/// `rows` array of `{dataset, structure, <field>_mops...}` objects. The
/// row key is split back into its `dataset`/`structure` halves.
fn write_baseline(path: &Path, runs: usize, rows: &[(String, Vec<(String, f64)>)]) -> Result<(), String> {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"note\": \"bench-check baseline: per-field worst observation across {runs} smoke passes (min for *_mops, max for *_bpk)\",\n"
    ));
    out.push_str("  \"rows\": [\n");
    for (i, (key, fields)) in rows.iter().enumerate() {
        let (dataset, structure) = key.split_once('/').unwrap_or((key.as_str(), "?"));
        out.push_str(&format!(
            "    {{\"dataset\": \"{dataset}\", \"structure\": \"{structure}\""
        ));
        for (field, value) in fields {
            out.push_str(&format!(", \"{field}\": {value:.6}"));
        }
        out.push_str(if i + 1 < rows.len() { "},\n" } else { "}\n" });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).map_err(|e| e.to_string())
}

/// Parse one BENCH_*.json into `(row key, [(field, value)])` pairs: the row
/// key is `dataset/structure`, the fields are every numeric `*_mops` entry.
fn load_rows(path: &Path) -> Result<RowTable, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let value = json::parse(&text)?;
    let rows = value
        .get("rows")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{}: no \"rows\" array", path.display()))?;
    let mut out = Vec::new();
    for row in rows {
        let dataset = row.get("dataset").and_then(Json::as_str).unwrap_or("?");
        let structure = row.get("structure").and_then(Json::as_str).unwrap_or("?");
        let key = format!("{dataset}/{structure}");
        let fields: Vec<(String, f64)> = row
            .entries()
            .iter()
            // p999 on a shared host is dominated by scheduler-preemption
            // spikes (single ops landing 3-4ms late) that survive even the
            // best-of-N/worst-of-N extreme folds; it is recorded in the
            // JSON for inspection but excluded from the gate — p50/p99 are
            // the stable latency gates.
            .filter(|(name, _)| {
                (name.ends_with("_mops") || lower_is_better(name)) && !name.contains("p999")
            })
            .filter_map(|(name, v)| v.as_f64().map(|x| (name.clone(), x)))
            .collect();
        if fields.is_empty() {
            return Err(format!(
                "{}: row {key} has no *_mops/*_bpk fields",
                path.display()
            ));
        }
        out.push((key, fields));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrips_a_bench_report() {
        let doc = r#"{
          "bench": "fig8_workload_C_batched",
          "keys": 50000, "ops": 50000, "seed": 42, "batch": 8,
          "rows": [
            {"dataset": "url", "structure": "hot", "scalar_mops": 1.234, "batched_mops": 2.5},
            {"dataset": "int", "structure": "art", "scalar_mops": 3.0, "batched_mops": 4.75}
          ]
        }"#;
        let v = json::parse(doc).expect("parses");
        let rows = v.get("rows").and_then(Json::as_array).expect("rows");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("dataset").and_then(Json::as_str), Some("url"));
        assert_eq!(rows[1].get("batched_mops").and_then(Json::as_f64), Some(4.75));
        assert_eq!(v.get("keys").and_then(Json::as_f64), Some(50000.0));
        let mops: Vec<_> = rows[0]
            .entries()
            .iter()
            .filter(|(k, _)| k.ends_with("_mops"))
            .collect();
        assert_eq!(mops.len(), 2);
    }

    #[test]
    fn merge_fold_takes_the_extreme_per_field() {
        let run1 = vec![("url/HOT".to_string(), vec![("scalar_mops".to_string(), 2.0)])];
        let run2 = vec![("url/HOT".to_string(), vec![("scalar_mops".to_string(), 3.0)])];
        let mut best: BestTable = Vec::new();
        let mut floor: BestTable = Vec::new();
        for rows in [run1, run2] {
            merge_fold(&mut best, "BENCH_batch.json", rows.clone(), Fold::Best);
            merge_fold(&mut floor, "BENCH_batch.json", rows, Fold::Floor);
        }
        assert_eq!(best[0].1[0].1[0].1, 3.0);
        assert_eq!(floor[0].1[0].1[0].1, 2.0);
    }

    #[test]
    fn bpk_fields_fold_with_inverted_polarity() {
        let run1 = vec![(
            "url/HOT-arena".to_string(),
            vec![("arena_bpk".to_string(), 44.0)],
        )];
        let run2 = vec![(
            "url/HOT-arena".to_string(),
            vec![("arena_bpk".to_string(), 46.0)],
        )];
        let mut best: BestTable = Vec::new();
        let mut floor: BestTable = Vec::new();
        for rows in [run1, run2] {
            merge_fold(&mut best, "BENCH_arena.json", rows.clone(), Fold::Best);
            merge_fold(&mut floor, "BENCH_arena.json", rows, Fold::Floor);
        }
        // Lower is better: the check side keeps the minimum, the baseline
        // the maximum (a ceiling the build demonstrably stays under).
        assert_eq!(best[0].1[0].1[0].1, 44.0);
        assert_eq!(floor[0].1[0].1[0].1, 46.0);
        assert!(lower_is_better("arena_bpk"));
        assert!(!lower_is_better("scalar_mops"));
    }

    #[test]
    fn baseline_roundtrips_through_load_rows() {
        let rows = vec![
            (
                "url/HOT".to_string(),
                vec![("scalar_mops".to_string(), 1.5), ("batched_mops".to_string(), 2.25)],
            ),
            ("integer/BT".to_string(), vec![("alloc_mops".to_string(), 0.75)]),
        ];
        let dir = std::env::temp_dir().join("xtask-baseline-roundtrip");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("BENCH_test.json");
        write_baseline(&path, 3, &rows).expect("writes");
        let back = load_rows(&path).expect("parses back");
        assert_eq!(back, rows);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(json::parse("{\"a\": }").is_err());
        assert!(json::parse("[1, 2").is_err());
        assert!(json::parse("{} trailing").is_err());
    }
}
