//! Minimal JSON reader (no serde in the workspace): just enough to read
//! the workspace's own hand-rolled BENCH_*.json reports back — objects,
//! arrays, strings (no escapes beyond `\"` and `\\`), numbers, booleans,
//! null.

/// A parsed JSON value.
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    #[allow(dead_code, reason = "BENCH reports carry no booleans; kept for JSON completeness")]
    Bool(bool),
    /// Any number (read as f64 — throughput fields are all small).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field by name (None for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// All object entries (empty for non-objects).
    pub fn entries(&self) -> &[(String, Json)] {
        match self {
            Json::Obj(entries) => entries,
            _ => &[],
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }
}

/// Escape a string for embedding in emitted JSON output.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parse a complete JSON document.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, b"true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, b"false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, b"null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &[u8], value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut entries = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(entries));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        entries.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(entries));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let start = *pos;
    let mut out = String::new();
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                out.push_str(
                    std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?,
                );
                *pos += 1;
                return Ok(out.replace("\\\"", "\"").replace("\\\\", "\\"));
            }
            b'\\' => *pos += 2,
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while let Some(&b) = bytes.get(*pos) {
        if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        } else {
            break;
        }
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}
