//! Workspace automation, invoked as `cargo xtask <command>` (the alias
//! lives in `.cargo/config.toml`). Everything here is dependency-free on
//! purpose — the build environment has no crates.io access, so the
//! commands are built from a shared hand-rolled Rust lexer
//! ([`lexer`]), a mini JSON reader ([`json`]) and a mini TOML reader
//! ([`toml`]) instead of syn/serde.
//!
//! * [`lint`] (`cargo xtask lint [--json]`) — the four-pass workspace
//!   static-analysis suite: atomics-protocol conformance, hot-path
//!   allocation freedom, epoch-pin discipline, per-crate unsafe budgets.
//! * [`audit`] (`cargo xtask audit-unsafe [--json]`) — every `unsafe`
//!   site must carry a written justification.
//! * [`bench_check`] (`cargo xtask bench-check [--update]`) — the CI
//!   perf-regression gate over the fig8 smoke's BENCH_*.json reports.
//! * [`no_metrics`] (`cargo xtask verify-no-metrics`) — structural proof
//!   that the `metrics` feature is zero-cost when disabled.
//! * [`server_smoke`] (`cargo xtask server-smoke`) — end-to-end network
//!   gate: real hot-server processes driven by the net_ycsb client with
//!   checksum verification and clean-shutdown assertions.

mod audit;
mod bench_check;
mod json;
mod lexer;
mod lint;
mod no_metrics;
mod server_smoke;
mod toml;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo xtask <command>\n\navailable commands:\n  \
         lint [--json]           run the workspace lint suite (atomics / hot-path / epoch / unsafe-budget)\n  \
         audit-unsafe [--json]   check every unsafe site for a SAFETY justification\n  \
         bench-check [--update]  run the fig8 smoke bench and gate on results/baselines/\n  \
         verify-no-metrics       assert the default build links no hot_metrics code\n  \
         server-smoke            spawn hot-server per dataset/shard count and verify network YCSB checksums"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint::lint(args.next().as_deref() == Some("--json")),
        Some("audit-unsafe") => audit::audit_unsafe(args.next().as_deref() == Some("--json")),
        Some("bench-check") => bench_check::bench_check(args.next().as_deref() == Some("--update")),
        Some("verify-no-metrics") => no_metrics::verify_no_metrics(),
        Some("server-smoke") => server_smoke::server_smoke(),
        Some(other) => {
            eprintln!("unknown xtask command: {other}\n");
            usage()
        }
        None => usage(),
    }
}

/// Workspace root: xtask always runs from the workspace (cargo sets the
/// manifest dir of this crate at `<root>/crates/xtask`).
pub fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask has a workspace root two levels up")
        .to_path_buf()
}
