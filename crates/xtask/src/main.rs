//! Workspace automation, invoked as `cargo xtask <command>` (the alias
//! lives in `.cargo/config.toml`).
//!
//! ## `audit-unsafe`
//!
//! A custom lint backing the CI `unsafe-audit` job: every `unsafe` site in
//! the workspace's own sources must carry a written justification.
//!
//! * `unsafe { ... }` blocks and `unsafe impl`s need a `// SAFETY:`
//!   comment — on the same line or in the comment/attribute lines
//!   immediately above.
//! * `unsafe fn` declarations need their contract documented: a
//!   `# Safety` doc section (or a `SAFETY:` comment) above the
//!   declaration.
//!
//! This is deliberately stricter than clippy's
//! `undocumented_unsafe_blocks` (which the workspace also enables): it
//! covers `unsafe fn` contracts, runs in a second's time without a full
//! build, and fails with a file:line listing. The scanner is a small
//! lexer, not a parser: it strips comments/strings/lifetimes, then
//! classifies each remaining `unsafe` keyword by the next token.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("audit-unsafe") => audit_unsafe(),
        Some(other) => {
            eprintln!("unknown xtask command: {other}\n\navailable commands:\n  audit-unsafe   check every unsafe site for a SAFETY justification");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask <command>\n\navailable commands:\n  audit-unsafe   check every unsafe site for a SAFETY justification");
            ExitCode::FAILURE
        }
    }
}

/// Workspace root: xtask always runs from the workspace (cargo sets the
/// manifest dir of this crate at `<root>/crates/xtask`).
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask has a workspace root two levels up")
        .to_path_buf()
}

fn audit_unsafe() -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    // The workspace's own code. `third_party/` is vendored stand-in code we
    // still hold to the same bar — its unsafe surface is part of the build.
    for top in ["crates", "third_party", "tests", "examples", "src"] {
        collect_rs(&root.join(top), &mut files);
    }
    files.sort();
    let mut findings = Vec::new();
    let mut sites = 0usize;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("audit-unsafe: cannot read {}: {e}", file.display());
                return ExitCode::FAILURE;
            }
        };
        let rel = file.strip_prefix(&root).unwrap_or(file).to_path_buf();
        sites += audit_file(&rel, &text, &mut findings);
    }
    if findings.is_empty() {
        println!(
            "audit-unsafe: {} unsafe site(s) across {} file(s), all justified",
            sites,
            files.len()
        );
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            eprintln!("{f}");
        }
        eprintln!(
            "\naudit-unsafe: {} unjustified unsafe site(s) (of {} total). \
             Add a `// SAFETY:` comment (blocks, impls) or a `# Safety` doc \
             section (unsafe fns) explaining why the contract holds.",
            findings.len(),
            sites
        );
        ExitCode::FAILURE
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            // `target` is build output; nothing else is excluded.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// One source line split into code and comment text.
#[derive(Default)]
struct Line {
    code: String,
    comment: String,
}

/// Strip strings and split comments from code, line by line. Understands
/// `//`, `/* */` (nested), string/char/byte literals and raw strings; the
/// contents of strings are blanked so `"unsafe"` in a string is not a
/// site, while comment text is preserved for the SAFETY scan.
fn lex(text: &str) -> Vec<Line> {
    let mut lines = vec![Line::default()];
    let bytes = text.as_bytes();
    let mut i = 0;
    let mut block_comment_depth = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            lines.push(Line::default());
            i += 1;
            continue;
        }
        let cur = lines.last_mut().expect("at least one line");
        if block_comment_depth > 0 {
            if bytes[i..].starts_with(b"*/") {
                block_comment_depth -= 1;
                i += 2;
            } else if bytes[i..].starts_with(b"/*") {
                block_comment_depth += 1;
                i += 2;
            } else {
                cur.comment.push(c);
                i += 1;
            }
            continue;
        }
        if bytes[i..].starts_with(b"//") {
            // Line comment (incl. doc comments): consume to end of line.
            let end = bytes[i..]
                .iter()
                .position(|&b| b == b'\n')
                .map_or(bytes.len(), |p| i + p);
            cur.comment.push_str(&text[i..end]);
            i = end;
            continue;
        }
        if bytes[i..].starts_with(b"/*") {
            block_comment_depth += 1;
            i += 2;
            continue;
        }
        if c == '"' || (c == 'r' && is_raw_string_start(&bytes[i..])) || bytes[i..].starts_with(b"b\"") {
            i = skip_string(text, i);
            cur.code.push_str("\"\"");
            continue;
        }
        if c == '\'' {
            // Char literal or lifetime. A lifetime is `'` + ident not
            // followed by a closing quote.
            if let Some(end) = char_literal_end(bytes, i) {
                cur.code.push_str("' '");
                i = end;
                continue;
            }
            cur.code.push(c);
            i += 1;
            continue;
        }
        cur.code.push(c);
        i += 1;
    }
    lines
}

fn is_raw_string_start(rest: &[u8]) -> bool {
    // r", r#", r##"… (also br" via the b branch falling through here is
    // fine: `b` lands in code, `r"` is matched).
    let mut j = 1;
    while j < rest.len() && rest[j] == b'#' {
        j += 1;
    }
    j < rest.len() && rest[j] == b'"'
}

/// Byte index just past the string literal starting at `start`.
fn skip_string(text: &str, start: usize) -> usize {
    let bytes = text.as_bytes();
    let mut i = start;
    if bytes[i] == b'b' {
        i += 1;
    }
    if bytes[i] == b'r' {
        i += 1;
        let mut hashes = 0;
        while bytes[i] == b'#' {
            hashes += 1;
            i += 1;
        }
        debug_assert_eq!(bytes[i], b'"');
        i += 1;
        let closer = format!("\"{}", "#".repeat(hashes));
        return text[i..]
            .find(&closer)
            .map_or(text.len(), |p| i + p + closer.len());
    }
    debug_assert_eq!(bytes[i], b'"');
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    text.len()
}

/// Byte index just past a char literal at `start`, or `None` if this is a
/// lifetime.
fn char_literal_end(bytes: &[u8], start: usize) -> Option<usize> {
    let mut i = start + 1;
    if i >= bytes.len() {
        return None;
    }
    if bytes[i] == b'\\' {
        i += 2;
        while i < bytes.len() && bytes[i] != b'\'' {
            i += 1; // \u{...}
        }
        return (i < bytes.len()).then_some(i + 1);
    }
    // `'x'` is a char; `'x` (no closing quote right after one char-ish
    // token) is a lifetime.
    let ch_len = utf8_len(bytes[i]);
    i += ch_len;
    (i < bytes.len() && bytes[i] == b'\'').then_some(i + 1)
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

/// What an `unsafe` keyword introduces.
#[derive(Clone, Copy, PartialEq)]
enum Site {
    Block,
    Impl,
    Fn,
}

/// Scan one lexed file; push findings, return the number of sites.
fn audit_file(rel: &Path, text: &str, findings: &mut Vec<String>) -> usize {
    let lines = lex(text);
    let mut sites = 0;
    for (idx, line) in lines.iter().enumerate() {
        for site_col in find_unsafe_keywords(&line.code) {
            let Some(site) = classify(&lines, idx, site_col) else {
                continue; // `unsafe` in e.g. `unsafe_code` never matches; skip trait bounds like `unsafe trait` forward decls
            };
            sites += 1;
            if !justified(&lines, idx, site_col, site) {
                let what = match site {
                    Site::Block => "unsafe block without a `// SAFETY:` comment",
                    Site::Impl => "unsafe impl without a `// SAFETY:` comment",
                    Site::Fn => {
                        "unsafe fn without a `# Safety` doc section (or SAFETY comment)"
                    }
                };
                let mut f = String::new();
                let _ = write!(f, "{}:{}: {what}", rel.display(), idx + 1);
                findings.push(f);
            }
        }
    }
    sites
}

/// Column offsets of `unsafe` keywords (word-bounded) in a code line.
fn find_unsafe_keywords(code: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(p) = code[from..].find("unsafe") {
        let at = from + p;
        let before_ok = at == 0 || !is_ident_char(bytes[at - 1]);
        let after = at + "unsafe".len();
        let after_ok = after >= bytes.len() || !is_ident_char(bytes[after]);
        if before_ok && after_ok {
            out.push(at);
        }
        from = after;
    }
    out
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Look at the token after `unsafe` (possibly on a later line) and decide
/// what kind of site this is. `unsafe trait` declarations are contracts on
/// implementors, not sites, and are skipped.
fn classify(lines: &[Line], line: usize, col: usize) -> Option<Site> {
    let mut rest = lines[line].code[col + "unsafe".len()..].to_string();
    let mut next_line = line + 1;
    loop {
        let trimmed = rest.trim_start();
        if !trimmed.is_empty() {
            return if trimmed.starts_with('{') {
                Some(Site::Block)
            } else if trimmed.starts_with("impl") {
                Some(Site::Impl)
            } else if trimmed.starts_with("fn") || trimmed.starts_with("extern") {
                Some(Site::Fn)
            } else {
                None // `unsafe trait`, attribute fragments, macro text
            };
        }
        if next_line >= lines.len() {
            return None;
        }
        rest = lines[next_line].code.clone();
        next_line += 1;
    }
}

/// A site is justified by `SAFETY:` (any site) or `# Safety` (fns) — on
/// the same line, or in the contiguous run of comment/attribute/blank
/// lines directly above the site (i.e. above the item's attributes and
/// doc block, nothing else in between).
fn justified(lines: &[Line], line: usize, _col: usize, site: Site) -> bool {
    let accept = |l: &Line| {
        l.comment.contains("SAFETY:")
            || (site == Site::Fn && l.comment.contains("# Safety"))
    };
    if accept(&lines[line]) {
        return true;
    }
    let mut i = line;
    while i > 0 {
        i -= 1;
        let l = &lines[i];
        if accept(l) {
            return true;
        }
        let code = l.code.trim();
        let is_attr_or_blank = code.is_empty() || code.starts_with("#[") || code.starts_with("#![");
        let has_comment = !l.comment.trim().is_empty();
        if !is_attr_or_blank && !has_comment {
            return false; // hit a real code line: the run above ended
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> usize {
        let mut f = Vec::new();
        audit_file(Path::new("t.rs"), src, &mut f);
        f.len()
    }

    #[test]
    fn flags_bare_block() {
        assert_eq!(findings("fn f() { unsafe { g() } }"), 1);
    }

    #[test]
    fn accepts_same_line_and_preceding_comment() {
        assert_eq!(findings("// SAFETY: fine\nlet x = unsafe { g() };"), 0);
        assert_eq!(findings("let x = unsafe { g() }; // SAFETY: fine"), 0);
    }

    #[test]
    fn comment_must_be_adjacent() {
        assert_eq!(findings("// SAFETY: stale\nlet y = 1;\nlet x = unsafe { g() };"), 1);
    }

    #[test]
    fn unsafe_fn_needs_safety_docs() {
        assert_eq!(findings("unsafe fn f() {}"), 1);
        assert_eq!(findings("/// # Safety\n/// caller checks\nunsafe fn f() {}"), 0);
        // Attributes between docs and fn are fine.
        assert_eq!(
            findings("/// # Safety\n/// caller checks\n#[inline]\npub unsafe fn f() {}"),
            0
        );
    }

    #[test]
    fn unsafe_impl_needs_comment() {
        assert_eq!(findings("unsafe impl Send for T {}"), 1);
        assert_eq!(findings("// SAFETY: T owns its data\nunsafe impl Send for T {}"), 0);
    }

    #[test]
    fn strings_and_comments_are_not_sites() {
        assert_eq!(findings("let s = \"unsafe { }\";"), 0);
        assert_eq!(findings("// unsafe { } in a comment\nlet s = 1;"), 0);
        assert_eq!(findings("let s = r#\"unsafe { }\"#;"), 0);
    }

    #[test]
    fn unsafe_trait_is_not_a_site() {
        assert_eq!(findings("unsafe trait Zeroable {}"), 0);
    }

    #[test]
    fn lifetimes_do_not_confuse_the_lexer() {
        assert_eq!(
            findings("fn f<'a>(x: &'a u8) -> &'a u8 { x }\n// SAFETY: ok\nlet y = unsafe { g() };"),
            0
        );
    }
}
