//! Workspace automation, invoked as `cargo xtask <command>` (the alias
//! lives in `.cargo/config.toml`).
//!
//! ## `audit-unsafe`
//!
//! A custom lint backing the CI `unsafe-audit` job: every `unsafe` site in
//! the workspace's own sources must carry a written justification.
//!
//! * `unsafe { ... }` blocks and `unsafe impl`s need a `// SAFETY:`
//!   comment — on the same line or in the comment/attribute lines
//!   immediately above.
//! * `unsafe fn` declarations need their contract documented: a
//!   `# Safety` doc section (or a `SAFETY:` comment) above the
//!   declaration.
//!
//! This is deliberately stricter than clippy's
//! `undocumented_unsafe_blocks` (which the workspace also enables): it
//! covers `unsafe fn` contracts, runs in a second's time without a full
//! build, and fails with a file:line listing. The scanner is a small
//! lexer, not a parser: it strips comments/strings/lifetimes, then
//! classifies each remaining `unsafe` keyword by the next token.
//! With `--json`, the summary is a machine-readable object
//! (`{"unsafe_sites": N, "files_scanned": M, "unjustified": K}`) so docs
//! and CI never hard-code a site count that drifts.
//!
//! ## `bench-check`
//!
//! The CI perf-regression gate. Runs the fig8 smoke benchmark
//! (`--keys 50000 --ops 50000 --batch 8 --bulk --ooo`) in a scratch working
//! directory (`target/bench-check/`, so the checked-in `results/` files
//! are never clobbered). Because a 50 k-op smoke cell is noisy on shared
//! hosts, the smoke runs `BENCH_CHECK_RUNS` times (default 3) and the two
//! sides of the comparison take opposite extremes: `bench-check --update`
//! records each `*_mops` field's WORST observation as the committed
//! baseline under `results/baselines/` — a floor the build demonstrably
//! clears even on a bad scheduling day — while a check judges each field
//! by its BEST observation. A field fails only when every fresh pass
//! lands below the floor by more than the tolerance — 25% by default,
//! overridable via the `BENCH_CHECK_TOLERANCE` env var (e.g. `0.40`);
//! only downside deviations fail, speedups are fine. Real code
//! regressions are persistent across passes, so they fall through the
//! floor; scheduler hiccups do not survive the max.
//!
//! ## `verify-no-metrics`
//!
//! Proves the `metrics` feature is zero-cost when disabled, structurally:
//! builds the fig8 binary *with* the feature and asserts the
//! `hot_metrics` crate name is present in the binary (sanity-checking the
//! probe), then builds it *without* and asserts the name is absent — the
//! instrumentation crate never even links into a default build.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo xtask <command>\n\navailable commands:\n  \
         audit-unsafe [--json]   check every unsafe site for a SAFETY justification\n  \
         bench-check [--update]  run the fig8 smoke bench and gate on results/baselines/\n  \
         verify-no-metrics       assert the default build links no hot_metrics code"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("audit-unsafe") => audit_unsafe(args.next().as_deref() == Some("--json")),
        Some("bench-check") => bench_check(args.next().as_deref() == Some("--update")),
        Some("verify-no-metrics") => verify_no_metrics(),
        Some(other) => {
            eprintln!("unknown xtask command: {other}\n");
            usage()
        }
        None => usage(),
    }
}

/// Workspace root: xtask always runs from the workspace (cargo sets the
/// manifest dir of this crate at `<root>/crates/xtask`).
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask has a workspace root two levels up")
        .to_path_buf()
}

fn audit_unsafe(json: bool) -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    // The workspace's own code. `third_party/` is vendored stand-in code we
    // still hold to the same bar — its unsafe surface is part of the build.
    for top in ["crates", "third_party", "tests", "examples", "src"] {
        collect_rs(&root.join(top), &mut files);
    }
    files.sort();
    let mut findings = Vec::new();
    let mut sites = 0usize;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("audit-unsafe: cannot read {}: {e}", file.display());
                return ExitCode::FAILURE;
            }
        };
        let rel = file.strip_prefix(&root).unwrap_or(file).to_path_buf();
        sites += audit_file(&rel, &text, &mut findings);
    }
    if json {
        // Machine-readable summary: consumed by CI and referenced from the
        // docs instead of a hand-frozen site count.
        println!(
            "{{\"unsafe_sites\": {}, \"files_scanned\": {}, \"unjustified\": {}}}",
            sites,
            files.len(),
            findings.len()
        );
    }
    if findings.is_empty() {
        if !json {
            println!(
                "audit-unsafe: {} unsafe site(s) across {} file(s), all justified",
                sites,
                files.len()
            );
        }
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            eprintln!("{f}");
        }
        eprintln!(
            "\naudit-unsafe: {} unjustified unsafe site(s) (of {} total). \
             Add a `// SAFETY:` comment (blocks, impls) or a `# Safety` doc \
             section (unsafe fns) explaining why the contract holds.",
            findings.len(),
            sites
        );
        ExitCode::FAILURE
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            // `target` is build output; nothing else is excluded.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// One source line split into code and comment text.
#[derive(Default)]
struct Line {
    code: String,
    comment: String,
}

/// Strip strings and split comments from code, line by line. Understands
/// `//`, `/* */` (nested), string/char/byte literals and raw strings; the
/// contents of strings are blanked so `"unsafe"` in a string is not a
/// site, while comment text is preserved for the SAFETY scan.
fn lex(text: &str) -> Vec<Line> {
    let mut lines = vec![Line::default()];
    let bytes = text.as_bytes();
    let mut i = 0;
    let mut block_comment_depth = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            lines.push(Line::default());
            i += 1;
            continue;
        }
        let cur = lines.last_mut().expect("at least one line");
        if block_comment_depth > 0 {
            if bytes[i..].starts_with(b"*/") {
                block_comment_depth -= 1;
                i += 2;
            } else if bytes[i..].starts_with(b"/*") {
                block_comment_depth += 1;
                i += 2;
            } else {
                cur.comment.push(c);
                i += 1;
            }
            continue;
        }
        if bytes[i..].starts_with(b"//") {
            // Line comment (incl. doc comments): consume to end of line.
            let end = bytes[i..]
                .iter()
                .position(|&b| b == b'\n')
                .map_or(bytes.len(), |p| i + p);
            cur.comment.push_str(&text[i..end]);
            i = end;
            continue;
        }
        if bytes[i..].starts_with(b"/*") {
            block_comment_depth += 1;
            i += 2;
            continue;
        }
        if c == '"' || (c == 'r' && is_raw_string_start(&bytes[i..])) || bytes[i..].starts_with(b"b\"") {
            i = skip_string(text, i);
            cur.code.push_str("\"\"");
            continue;
        }
        if c == '\'' {
            // Char literal or lifetime. A lifetime is `'` + ident not
            // followed by a closing quote.
            if let Some(end) = char_literal_end(bytes, i) {
                cur.code.push_str("' '");
                i = end;
                continue;
            }
            cur.code.push(c);
            i += 1;
            continue;
        }
        cur.code.push(c);
        i += 1;
    }
    lines
}

fn is_raw_string_start(rest: &[u8]) -> bool {
    // r", r#", r##"… (also br" via the b branch falling through here is
    // fine: `b` lands in code, `r"` is matched).
    let mut j = 1;
    while j < rest.len() && rest[j] == b'#' {
        j += 1;
    }
    j < rest.len() && rest[j] == b'"'
}

/// Byte index just past the string literal starting at `start`.
fn skip_string(text: &str, start: usize) -> usize {
    let bytes = text.as_bytes();
    let mut i = start;
    if bytes[i] == b'b' {
        i += 1;
    }
    if bytes[i] == b'r' {
        i += 1;
        let mut hashes = 0;
        while bytes[i] == b'#' {
            hashes += 1;
            i += 1;
        }
        debug_assert_eq!(bytes[i], b'"');
        i += 1;
        let closer = format!("\"{}", "#".repeat(hashes));
        return text[i..]
            .find(&closer)
            .map_or(text.len(), |p| i + p + closer.len());
    }
    debug_assert_eq!(bytes[i], b'"');
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    text.len()
}

/// Byte index just past a char literal at `start`, or `None` if this is a
/// lifetime.
fn char_literal_end(bytes: &[u8], start: usize) -> Option<usize> {
    let mut i = start + 1;
    if i >= bytes.len() {
        return None;
    }
    if bytes[i] == b'\\' {
        i += 2;
        while i < bytes.len() && bytes[i] != b'\'' {
            i += 1; // \u{...}
        }
        return (i < bytes.len()).then_some(i + 1);
    }
    // `'x'` is a char; `'x` (no closing quote right after one char-ish
    // token) is a lifetime.
    let ch_len = utf8_len(bytes[i]);
    i += ch_len;
    (i < bytes.len() && bytes[i] == b'\'').then_some(i + 1)
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

/// What an `unsafe` keyword introduces.
#[derive(Clone, Copy, PartialEq)]
enum Site {
    Block,
    Impl,
    Fn,
}

/// Scan one lexed file; push findings, return the number of sites.
fn audit_file(rel: &Path, text: &str, findings: &mut Vec<String>) -> usize {
    let lines = lex(text);
    let mut sites = 0;
    for (idx, line) in lines.iter().enumerate() {
        for site_col in find_unsafe_keywords(&line.code) {
            let Some(site) = classify(&lines, idx, site_col) else {
                continue; // `unsafe` in e.g. `unsafe_code` never matches; skip trait bounds like `unsafe trait` forward decls
            };
            sites += 1;
            if !justified(&lines, idx, site_col, site) {
                let what = match site {
                    Site::Block => "unsafe block without a `// SAFETY:` comment",
                    Site::Impl => "unsafe impl without a `// SAFETY:` comment",
                    Site::Fn => {
                        "unsafe fn without a `# Safety` doc section (or SAFETY comment)"
                    }
                };
                let mut f = String::new();
                let _ = write!(f, "{}:{}: {what}", rel.display(), idx + 1);
                findings.push(f);
            }
        }
    }
    sites
}

/// Column offsets of `unsafe` keywords (word-bounded) in a code line.
fn find_unsafe_keywords(code: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(p) = code[from..].find("unsafe") {
        let at = from + p;
        let before_ok = at == 0 || !is_ident_char(bytes[at - 1]);
        let after = at + "unsafe".len();
        let after_ok = after >= bytes.len() || !is_ident_char(bytes[after]);
        if before_ok && after_ok {
            out.push(at);
        }
        from = after;
    }
    out
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Look at the token after `unsafe` (possibly on a later line) and decide
/// what kind of site this is. `unsafe trait` declarations are contracts on
/// implementors, not sites, and are skipped.
fn classify(lines: &[Line], line: usize, col: usize) -> Option<Site> {
    let mut rest = lines[line].code[col + "unsafe".len()..].to_string();
    let mut next_line = line + 1;
    loop {
        let trimmed = rest.trim_start();
        if !trimmed.is_empty() {
            return if trimmed.starts_with('{') {
                Some(Site::Block)
            } else if trimmed.starts_with("impl") {
                Some(Site::Impl)
            } else if trimmed.starts_with("fn") || trimmed.starts_with("extern") {
                Some(Site::Fn)
            } else {
                None // `unsafe trait`, attribute fragments, macro text
            };
        }
        if next_line >= lines.len() {
            return None;
        }
        rest = lines[next_line].code.clone();
        next_line += 1;
    }
}

/// A site is justified by `SAFETY:` (any site) or `# Safety` (fns) — on
/// the same line, or in the contiguous run of comment/attribute/blank
/// lines directly above the site (i.e. above the item's attributes and
/// doc block, nothing else in between).
fn justified(lines: &[Line], line: usize, _col: usize, site: Site) -> bool {
    let accept = |l: &Line| {
        l.comment.contains("SAFETY:")
            || (site == Site::Fn && l.comment.contains("# Safety"))
    };
    if accept(&lines[line]) {
        return true;
    }
    let mut i = line;
    while i > 0 {
        i -= 1;
        let l = &lines[i];
        if accept(l) {
            return true;
        }
        let code = l.code.trim();
        let is_attr_or_blank = code.is_empty() || code.starts_with("#[") || code.starts_with("#![");
        let has_comment = !l.comment.trim().is_empty();
        if !is_attr_or_blank && !has_comment {
            return false; // hit a real code line: the run above ended
        }
    }
    false
}

// ---------------------------------------------------------------------------
// bench-check: the perf-regression gate over BENCH_*.json
// ---------------------------------------------------------------------------

/// The smoke parameters: small enough for CI, large enough that the trie
/// leaves its root-only regime on every data set.
const SMOKE_ARGS: &[&str] = &[
    "--keys", "50000", "--ops", "50000", "--batch", "8", "--bulk", "--threads", "1,2", "--ooo",
];

/// The JSON reports the fig8 smoke produces and gates on.
const BENCH_FILES: &[&str] = &[
    "BENCH_batch.json",
    "BENCH_scan.json",
    "BENCH_bulk.json",
    "BENCH_ooo.json",
];

fn bench_check(update: bool) -> ExitCode {
    let root = workspace_root();
    let scratch = root.join("target").join("bench-check");
    let fresh_dir = scratch.join("results");
    let baseline_dir = root.join("results").join("baselines");
    if let Err(e) = std::fs::create_dir_all(&scratch) {
        eprintln!("bench-check: cannot create {}: {e}", scratch.display());
        return ExitCode::FAILURE;
    }

    // A single 50 k-op smoke cell times a few tens of milliseconds — on a
    // busy/shared host that is 25–35% noisy run-to-run, which would flake a
    // 25% gate on a single draw. So the smoke runs N times and the two
    // sides of the comparison take opposite extremes: the committed
    // baseline (`--update`) keeps each field's WORST observation — a floor
    // the build demonstrably clears even on a bad scheduling day — while a
    // check judges each field by its BEST observation. Real code
    // regressions are persistent: they drag every pass down and fall
    // through the floor; scheduler hiccups do not survive the max.
    let runs = std::env::var("BENCH_CHECK_RUNS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(3);

    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    // (file name, [(row key, [(field, value)])]) under max / min folds.
    let mut best: BestTable = Vec::new();
    let mut floor: BestTable = Vec::new();
    for run in 1..=runs {
        let _ = std::fs::remove_dir_all(&fresh_dir);
        eprintln!(
            "bench-check: fig8 smoke run {run}/{runs} ({})",
            SMOKE_ARGS.join(" ")
        );
        let status = Command::new(&cargo)
            .args(["run", "--release", "-p", "hot-bench", "--bin", "fig8_throughput", "--"])
            .args(SMOKE_ARGS)
            .current_dir(&scratch)
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("bench-check: fig8 smoke failed with {s}");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("bench-check: cannot spawn cargo: {e}");
                return ExitCode::FAILURE;
            }
        }
        for name in BENCH_FILES {
            let rows = match load_rows(&fresh_dir.join(name)) {
                Ok(rows) => rows,
                Err(e) => {
                    eprintln!("bench-check: smoke run produced no {name}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            merge_fold(&mut best, name, rows.clone(), f64::max);
            merge_fold(&mut floor, name, rows, f64::min);
        }
    }

    if update {
        if let Err(e) = std::fs::create_dir_all(&baseline_dir) {
            eprintln!("bench-check: cannot create {}: {e}", baseline_dir.display());
            return ExitCode::FAILURE;
        }
        for name in BENCH_FILES {
            let rows = floor
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, rows)| rows.as_slice())
                .unwrap_or(&[]);
            if let Err(e) = write_baseline(&baseline_dir.join(name), runs, rows) {
                eprintln!("bench-check: cannot update baseline {name}: {e}");
                return ExitCode::FAILURE;
            }
            println!("bench-check: baseline updated: results/baselines/{name} (per-field floor of {runs} passes)");
        }
        return ExitCode::SUCCESS;
    }

    let tolerance = match std::env::var("BENCH_CHECK_TOLERANCE") {
        Ok(v) => match v.parse::<f64>() {
            Ok(t) if t > 0.0 && t < 1.0 => t,
            _ => {
                eprintln!("bench-check: BENCH_CHECK_TOLERANCE must be a fraction in (0, 1), got {v:?}");
                return ExitCode::FAILURE;
            }
        },
        Err(_) => 0.25,
    };

    let mut failures = Vec::new();
    let mut checked = 0usize;
    for name in BENCH_FILES {
        let baseline = match load_rows(&baseline_dir.join(name)) {
            Ok(rows) => rows,
            Err(e) => {
                eprintln!(
                    "bench-check: no baseline results/baselines/{name} ({e}); run `cargo xtask bench-check --update` and commit"
                );
                return ExitCode::FAILURE;
            }
        };
        let fresh = best
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, rows)| rows.clone())
            .unwrap_or_default();
        for (key, base_fields) in &baseline {
            let Some(new_fields) = fresh.iter().find(|(k, _)| k == key).map(|(_, f)| f) else {
                failures.push(format!("{name}: row {key} missing from fresh run"));
                continue;
            };
            for (field, base) in base_fields {
                let Some((_, new)) = new_fields.iter().find(|(f, _)| f == field) else {
                    failures.push(format!("{name}: {key}.{field} missing from fresh run"));
                    continue;
                };
                checked += 1;
                let floor = base * (1.0 - tolerance);
                let ratio = if *base > 0.0 { new / base } else { 1.0 };
                if *new < floor {
                    failures.push(format!(
                        "{name}: {key}.{field} regressed: baseline {base:.3} -> {new:.3} Mops ({:.0}% of baseline, floor {:.0}%)",
                        ratio * 100.0,
                        (1.0 - tolerance) * 100.0
                    ));
                } else {
                    println!(
                        "bench-check: ok {key}.{field}: {base:.3} -> {new:.3} Mops ({:.0}%)",
                        ratio * 100.0
                    );
                }
            }
        }
    }

    if failures.is_empty() {
        println!(
            "bench-check: {checked} throughput field(s) within {:.0}% of baseline",
            tolerance * 100.0
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("bench-check: FAIL {f}");
        }
        eprintln!(
            "\nbench-check: {} regression(s) beyond the {:.0}% tolerance. If the change \
             is an accepted trade-off, refresh with `cargo xtask bench-check --update` \
             (or raise BENCH_CHECK_TOLERANCE for a noisy runner).",
            failures.len(),
            tolerance * 100.0
        );
        ExitCode::FAILURE
    }
}

/// One BENCH_*.json as `(row key, [(field, value)])` pairs.
type RowTable = Vec<(String, Vec<(String, f64)>)>;

/// Per-field best-of-N accumulator: `(file name, rows)`.
type BestTable = Vec<(String, RowTable)>;

/// Fold one run's rows into a per-field accumulator with `pick`
/// (`f64::max` for the check side, `f64::min` for the baseline floor).
fn merge_fold(table: &mut BestTable, name: &str, rows: RowTable, pick: fn(f64, f64) -> f64) {
    let fi = table.iter().position(|(n, _)| n == name).unwrap_or_else(|| {
        table.push((name.to_string(), Vec::new()));
        table.len() - 1
    });
    let file = &mut table[fi].1;
    for (key, fields) in rows {
        let ri = file.iter().position(|(k, _)| *k == key).unwrap_or_else(|| {
            file.push((key.clone(), Vec::new()));
            file.len() - 1
        });
        let row = &mut file[ri].1;
        for (field, value) in fields {
            match row.iter_mut().find(|(f, _)| *f == field) {
                Some((_, old)) => *old = pick(*old, value),
                None => row.push((field, value)),
            }
        }
    }
}

/// Write a baseline file in the same shape `load_rows` reads back: a
/// `rows` array of `{dataset, structure, <field>_mops...}` objects. The
/// row key is split back into its `dataset`/`structure` halves.
fn write_baseline(path: &Path, runs: usize, rows: &[(String, Vec<(String, f64)>)]) -> Result<(), String> {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"note\": \"bench-check floor: per-field minimum across {runs} fig8 smoke passes\",\n"
    ));
    out.push_str("  \"rows\": [\n");
    for (i, (key, fields)) in rows.iter().enumerate() {
        let (dataset, structure) = key.split_once('/').unwrap_or((key.as_str(), "?"));
        out.push_str(&format!(
            "    {{\"dataset\": \"{dataset}\", \"structure\": \"{structure}\""
        ));
        for (field, value) in fields {
            out.push_str(&format!(", \"{field}\": {value:.6}"));
        }
        out.push_str(if i + 1 < rows.len() { "},\n" } else { "}\n" });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).map_err(|e| e.to_string())
}

/// Parse one BENCH_*.json into `(row key, [(field, value)])` pairs: the row
/// key is `dataset/structure`, the fields are every numeric `*_mops` entry.
fn load_rows(path: &Path) -> Result<RowTable, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let value = json::parse(&text)?;
    let rows = value
        .get("rows")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{}: no \"rows\" array", path.display()))?;
    let mut out = Vec::new();
    for row in rows {
        let dataset = row.get("dataset").and_then(Json::as_str).unwrap_or("?");
        let structure = row.get("structure").and_then(Json::as_str).unwrap_or("?");
        let key = format!("{dataset}/{structure}");
        let fields: Vec<(String, f64)> = row
            .entries()
            .iter()
            .filter(|(name, _)| name.ends_with("_mops"))
            .filter_map(|(name, v)| v.as_f64().map(|x| (name.clone(), x)))
            .collect();
        if fields.is_empty() {
            return Err(format!("{}: row {key} has no *_mops fields", path.display()));
        }
        out.push((key, fields));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// verify-no-metrics: the zero-cost-when-disabled structural proof
// ---------------------------------------------------------------------------

fn verify_no_metrics() -> ExitCode {
    let root = workspace_root();
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let binary = root
        .join("target")
        .join("release")
        .join(format!("fig8_throughput{}", std::env::consts::EXE_SUFFIX));
    let probe = b"hot_metrics";

    // First, with the feature: the crate name must show up (paths/symbols
    // in the binary), or the probe itself is broken and the second check
    // would pass vacuously.
    let with = Command::new(&cargo)
        .args(["build", "--release", "-p", "hot-bench", "--features", "metrics", "--bin", "fig8_throughput"])
        .current_dir(&root)
        .status();
    if !matches!(with, Ok(s) if s.success()) {
        eprintln!("verify-no-metrics: instrumented build failed");
        return ExitCode::FAILURE;
    }
    match contains_bytes(&binary, probe) {
        Ok(true) => println!("verify-no-metrics: probe ok (hot_metrics present in instrumented binary)"),
        Ok(false) => {
            eprintln!(
                "verify-no-metrics: probe broken: `hot_metrics` not found even in the \
                 --features metrics binary; the byte scan proves nothing"
            );
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("verify-no-metrics: cannot read {}: {e}", binary.display());
            return ExitCode::FAILURE;
        }
    }

    // Then the default build: not a single mention may survive.
    let without = Command::new(&cargo)
        .args(["build", "--release", "-p", "hot-bench", "--bin", "fig8_throughput"])
        .current_dir(&root)
        .status();
    if !matches!(without, Ok(s) if s.success()) {
        eprintln!("verify-no-metrics: default build failed");
        return ExitCode::FAILURE;
    }
    match contains_bytes(&binary, probe) {
        Ok(false) => {
            println!(
                "verify-no-metrics: ok — default fig8 binary contains no hot_metrics \
                 code (the instrumentation crate is not even linked)"
            );
            ExitCode::SUCCESS
        }
        Ok(true) => {
            eprintln!(
                "verify-no-metrics: FAIL — `hot_metrics` found in the default build; \
                 the metrics feature leaks into uninstrumented binaries"
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("verify-no-metrics: cannot read {}: {e}", binary.display());
            ExitCode::FAILURE
        }
    }
}

/// Whether `needle` occurs anywhere in the file's bytes.
fn contains_bytes(path: &Path, needle: &[u8]) -> std::io::Result<bool> {
    let haystack = std::fs::read(path)?;
    Ok(haystack
        .windows(needle.len())
        .any(|window| window == needle))
}

// ---------------------------------------------------------------------------
// Minimal JSON reader (no serde in the workspace)
// ---------------------------------------------------------------------------

use json::Json;

/// Just enough JSON to read the workspace's own hand-rolled BENCH_*.json
/// reports back: objects, arrays, strings (no escapes beyond `\"` and
/// `\\`), numbers, booleans, null.
mod json {
    /// A parsed JSON value.
    pub enum Json {
        /// `null`
        Null,
        /// `true` / `false`
        #[allow(dead_code, reason = "BENCH reports carry no booleans; kept for JSON completeness")]
        Bool(bool),
        /// Any number (read as f64 — throughput fields are all small).
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Json>),
        /// An object, insertion-ordered.
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        /// Object field by name (None for non-objects/missing keys).
        pub fn get(&self, key: &str) -> Option<&Json> {
            match self {
                Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// All object entries (empty for non-objects).
        pub fn entries(&self) -> &[(String, Json)] {
            match self {
                Json::Obj(entries) => entries,
                _ => &[],
            }
        }

        /// The array items, if this is an array.
        pub fn as_array(&self) -> Option<&[Json]> {
            match self {
                Json::Arr(items) => Some(items),
                _ => None,
            }
        }

        /// The string value, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Json::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The numeric value, if this is a number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Json::Num(x) => Some(*x),
                _ => None,
            }
        }
    }

    /// Parse a complete JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&c) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, *pos))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => parse_object(bytes, pos),
            Some(b'[') => parse_array(bytes, pos),
            Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
            Some(b't') => parse_literal(bytes, pos, b"true", Json::Bool(true)),
            Some(b'f') => parse_literal(bytes, pos, b"false", Json::Bool(false)),
            Some(b'n') => parse_literal(bytes, pos, b"null", Json::Null),
            Some(_) => parse_number(bytes, pos),
            None => Err("unexpected end of input".into()),
        }
    }

    fn parse_literal(bytes: &[u8], pos: &mut usize, word: &[u8], value: Json) -> Result<Json, String> {
        if bytes[*pos..].starts_with(word) {
            *pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", *pos))
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
        expect(bytes, pos, b'{')?;
        let mut entries = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            expect(bytes, pos, b':')?;
            let value = parse_value(bytes, pos)?;
            entries.push((key, value));
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
            }
        }
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
        expect(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
            }
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at byte {}", *pos));
        }
        *pos += 1;
        let start = *pos;
        let mut out = String::new();
        while let Some(&b) = bytes.get(*pos) {
            match b {
                b'"' => {
                    out.push_str(
                        std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?,
                    );
                    *pos += 1;
                    return Ok(out.replace("\\\"", "\"").replace("\\\\", "\\"));
                }
                b'\\' => *pos += 2,
                _ => *pos += 1,
            }
        }
        Err("unterminated string".into())
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
        let start = *pos;
        while let Some(&b) = bytes.get(*pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                *pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&bytes[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrips_a_bench_report() {
        let doc = r#"{
          "bench": "fig8_workload_C_batched",
          "keys": 50000, "ops": 50000, "seed": 42, "batch": 8,
          "rows": [
            {"dataset": "url", "structure": "hot", "scalar_mops": 1.234, "batched_mops": 2.5},
            {"dataset": "int", "structure": "art", "scalar_mops": 3.0, "batched_mops": 4.75}
          ]
        }"#;
        let v = json::parse(doc).expect("parses");
        let rows = v.get("rows").and_then(Json::as_array).expect("rows");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("dataset").and_then(Json::as_str), Some("url"));
        assert_eq!(rows[1].get("batched_mops").and_then(Json::as_f64), Some(4.75));
        assert_eq!(v.get("keys").and_then(Json::as_f64), Some(50000.0));
        let mops: Vec<_> = rows[0]
            .entries()
            .iter()
            .filter(|(k, _)| k.ends_with("_mops"))
            .collect();
        assert_eq!(mops.len(), 2);
    }

    #[test]
    fn merge_fold_takes_the_extreme_per_field() {
        let run1 = vec![("url/HOT".to_string(), vec![("scalar_mops".to_string(), 2.0)])];
        let run2 = vec![("url/HOT".to_string(), vec![("scalar_mops".to_string(), 3.0)])];
        let mut best: BestTable = Vec::new();
        let mut floor: BestTable = Vec::new();
        for rows in [run1, run2] {
            merge_fold(&mut best, "BENCH_batch.json", rows.clone(), f64::max);
            merge_fold(&mut floor, "BENCH_batch.json", rows, f64::min);
        }
        assert_eq!(best[0].1[0].1[0].1, 3.0);
        assert_eq!(floor[0].1[0].1[0].1, 2.0);
    }

    #[test]
    fn baseline_roundtrips_through_load_rows() {
        let rows = vec![
            (
                "url/HOT".to_string(),
                vec![("scalar_mops".to_string(), 1.5), ("batched_mops".to_string(), 2.25)],
            ),
            ("integer/BT".to_string(), vec![("alloc_mops".to_string(), 0.75)]),
        ];
        let dir = std::env::temp_dir().join("xtask-baseline-roundtrip");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("BENCH_test.json");
        write_baseline(&path, 3, &rows).expect("writes");
        let back = load_rows(&path).expect("parses back");
        assert_eq!(back, rows);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(json::parse("{\"a\": }").is_err());
        assert!(json::parse("[1, 2").is_err());
        assert!(json::parse("{} trailing").is_err());
    }

    fn findings(src: &str) -> usize {
        let mut f = Vec::new();
        audit_file(Path::new("t.rs"), src, &mut f);
        f.len()
    }

    #[test]
    fn flags_bare_block() {
        assert_eq!(findings("fn f() { unsafe { g() } }"), 1);
    }

    #[test]
    fn accepts_same_line_and_preceding_comment() {
        assert_eq!(findings("// SAFETY: fine\nlet x = unsafe { g() };"), 0);
        assert_eq!(findings("let x = unsafe { g() }; // SAFETY: fine"), 0);
    }

    #[test]
    fn comment_must_be_adjacent() {
        assert_eq!(findings("// SAFETY: stale\nlet y = 1;\nlet x = unsafe { g() };"), 1);
    }

    #[test]
    fn unsafe_fn_needs_safety_docs() {
        assert_eq!(findings("unsafe fn f() {}"), 1);
        assert_eq!(findings("/// # Safety\n/// caller checks\nunsafe fn f() {}"), 0);
        // Attributes between docs and fn are fine.
        assert_eq!(
            findings("/// # Safety\n/// caller checks\n#[inline]\npub unsafe fn f() {}"),
            0
        );
    }

    #[test]
    fn unsafe_impl_needs_comment() {
        assert_eq!(findings("unsafe impl Send for T {}"), 1);
        assert_eq!(findings("// SAFETY: T owns its data\nunsafe impl Send for T {}"), 0);
    }

    #[test]
    fn strings_and_comments_are_not_sites() {
        assert_eq!(findings("let s = \"unsafe { }\";"), 0);
        assert_eq!(findings("// unsafe { } in a comment\nlet s = 1;"), 0);
        assert_eq!(findings("let s = r#\"unsafe { }\"#;"), 0);
    }

    #[test]
    fn unsafe_trait_is_not_a_site() {
        assert_eq!(findings("unsafe trait Zeroable {}"), 0);
    }

    #[test]
    fn lifetimes_do_not_confuse_the_lexer() {
        assert_eq!(
            findings("fn f<'a>(x: &'a u8) -> &'a u8 { x }\n// SAFETY: ok\nlet y = unsafe { g() };"),
            0
        );
    }
}
