//! `cargo xtask server-smoke` — the network CI lane's end-to-end gate.
//!
//! Builds the release `hot-server` and `net_ycsb` binaries, then for
//! every data set × shard count {1, 4}: spawns a real server process on
//! an ephemeral loopback port, parses the `LISTENING <addr>` line it
//! prints, and runs the network YCSB client against it with `--check`
//! (every workload A/C/E checksum must match the in-process driver
//! byte-for-byte) and `--shutdown` (the client's final frame stops the
//! server). Both processes must exit 0 — a wedged shutdown shows up as
//! the server process never exiting, which the wait-with-deadline below
//! turns into a failure rather than a hung CI job.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, ExitCode, Stdio};
use std::time::{Duration, Instant};

/// Smoke scale: small enough for CI, large enough that windows refill
/// many times and every shard sees real traffic.
const KEYS: &str = "20000";
const OPS: &str = "20000";
const SEED: &str = "42";
const DATASETS: [&str; 4] = ["url", "email", "yago", "integer"];
const SHARD_COUNTS: [&str; 2] = ["1", "4"];

/// How long a server process may take to wind down after the client's
/// SHUTDOWN frame before the smoke declares it wedged.
const SHUTDOWN_DEADLINE: Duration = Duration::from_secs(60);

/// Run the full matrix.
pub fn server_smoke() -> ExitCode {
    let root = crate::workspace_root();
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());

    let build = Command::new(&cargo)
        .args(["build", "--release", "-p", "hot-server", "-p", "hot-client"])
        .current_dir(&root)
        .status();
    if !matches!(build, Ok(s) if s.success()) {
        eprintln!("server-smoke: release build failed");
        return ExitCode::FAILURE;
    }
    let exe = std::env::consts::EXE_SUFFIX;
    let server_bin = root.join("target").join("release").join(format!("hot-server{exe}"));
    let client_bin = root.join("target").join("release").join(format!("net_ycsb{exe}"));

    for dataset in DATASETS {
        for shards in SHARD_COUNTS {
            eprintln!("server-smoke: dataset={dataset} shards={shards} keys={KEYS} ops={OPS}");
            let mut server = match Command::new(&server_bin)
                .args([
                    "--addr", "127.0.0.1:0",
                    "--dataset", dataset,
                    "--keys", KEYS,
                    "--ops", OPS,
                    "--seed", SEED,
                    "--shards", shards,
                ])
                .stdout(Stdio::piped())
                .current_dir(&root)
                .spawn()
            {
                Ok(child) => child,
                Err(e) => {
                    eprintln!("server-smoke: cannot spawn hot-server: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let addr = match read_listening_line(&mut server) {
                Ok(addr) => addr,
                Err(e) => {
                    eprintln!("server-smoke: no LISTENING line from hot-server: {e}");
                    let _ = server.kill();
                    return ExitCode::FAILURE;
                }
            };

            let client = Command::new(&client_bin)
                .args([
                    "--addr", &addr,
                    "--dataset", dataset,
                    "--keys", KEYS,
                    "--ops", OPS,
                    "--seed", SEED,
                    "--shards", shards,
                    "--workloads", "A,C,E",
                    "--check",
                    "--shutdown",
                ])
                .current_dir(&root)
                .status();
            match client {
                Ok(s) if s.success() => {}
                Ok(s) => {
                    eprintln!(
                        "server-smoke: net_ycsb failed with {s} (dataset={dataset} shards={shards})"
                    );
                    let _ = server.kill();
                    return ExitCode::FAILURE;
                }
                Err(e) => {
                    eprintln!("server-smoke: cannot spawn net_ycsb: {e}");
                    let _ = server.kill();
                    return ExitCode::FAILURE;
                }
            }

            // The client's SHUTDOWN frame must wind the whole server
            // down: every connection thread joined, exit code 0.
            match wait_with_deadline(&mut server, SHUTDOWN_DEADLINE) {
                Some(status) if status.success() => {
                    eprintln!("server-smoke: ok dataset={dataset} shards={shards} (clean shutdown)");
                }
                Some(status) => {
                    eprintln!("server-smoke: hot-server exited with {status}");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!(
                        "server-smoke: hot-server still running {}s after SHUTDOWN — wedged",
                        SHUTDOWN_DEADLINE.as_secs()
                    );
                    let _ = server.kill();
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    println!(
        "server-smoke: ok — {} dataset(s) x {} shard count(s): network checksums match in-process, clean shutdowns",
        DATASETS.len(),
        SHARD_COUNTS.len()
    );
    ExitCode::SUCCESS
}

/// Read stdout lines until the `LISTENING <addr>` announcement.
fn read_listening_line(server: &mut Child) -> Result<String, String> {
    let stdout = server.stdout.take().ok_or("stdout not captured")?;
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Err("server closed stdout before announcing its address".into()),
            Ok(_) => {
                if let Some(addr) = line.trim().strip_prefix("LISTENING ") {
                    // Keep draining stdout in the background so the server
                    // never blocks on a full pipe.
                    std::thread::spawn(move || {
                        let mut sink = String::new();
                        while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
                            sink.clear();
                        }
                    });
                    return Ok(addr.to_string());
                }
            }
            Err(e) => return Err(e.to_string()),
        }
    }
}

/// Poll-wait for the child with a deadline; `None` if it never exits.
fn wait_with_deadline(child: &mut Child, deadline: Duration) -> Option<std::process::ExitStatus> {
    let start = Instant::now();
    loop {
        match child.try_wait() {
            Ok(Some(status)) => return Some(status),
            Ok(None) if start.elapsed() < deadline => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Ok(None) => return None,
            Err(_) => return None,
        }
    }
}
