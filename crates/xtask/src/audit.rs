//! `cargo xtask audit-unsafe` — every `unsafe` site needs a written
//! justification.
//!
//! * `unsafe { ... }` blocks and `unsafe impl`s need a `// SAFETY:`
//!   comment — on the same line or in the comment/attribute lines
//!   immediately above.
//! * `unsafe fn` declarations need their contract documented: a
//!   `# Safety` doc section (or a `SAFETY:` comment) above the
//!   declaration.
//!
//! This is deliberately stricter than clippy's
//! `undocumented_unsafe_blocks` (which the workspace also enables): it
//! covers `unsafe fn` contracts, runs in a second's time without a full
//! build, and fails with a file:line listing. The scan runs on the shared
//! [`lexer`](crate::lexer), so `unsafe` inside raw strings, byte literals
//! or nested block comments never registers as a site.
//!
//! The per-file site counts also feed the `unsafe-budget` lint pass (see
//! [`crate::lint::budget`]): [`count_sites`] reports how many sites a
//! file holds so `lint/unsafe_budget.toml` can pin a per-crate total.

use crate::lexer::{find_word, lex, Line};
use std::fmt::Write as _;
use std::path::Path;
use std::process::ExitCode;

/// Run the audit over the whole workspace.
pub fn audit_unsafe(json: bool) -> ExitCode {
    let root = crate::workspace_root();
    let mut files = Vec::new();
    // The workspace's own code. `third_party/` is vendored stand-in code we
    // still hold to the same bar — its unsafe surface is part of the build.
    for top in ["crates", "third_party", "tests", "examples", "src"] {
        crate::lexer::collect_rs(&root.join(top), &mut files);
    }
    files.sort();
    let mut findings = Vec::new();
    let mut sites = 0usize;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("audit-unsafe: cannot read {}: {e}", file.display());
                return ExitCode::FAILURE;
            }
        };
        let rel = file.strip_prefix(&root).unwrap_or(file).to_path_buf();
        sites += audit_file(&rel, &text, &mut findings);
    }
    if json {
        // Machine-readable summary: consumed by CI and referenced from the
        // docs instead of a hand-frozen site count.
        println!(
            "{{\"unsafe_sites\": {}, \"files_scanned\": {}, \"unjustified\": {}}}",
            sites,
            files.len(),
            findings.len()
        );
    }
    if findings.is_empty() {
        if !json {
            println!(
                "audit-unsafe: {} unsafe site(s) across {} file(s), all justified",
                sites,
                files.len()
            );
        }
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            eprintln!("{f}");
        }
        eprintln!(
            "\naudit-unsafe: {} unjustified unsafe site(s) (of {} total). \
             Add a `// SAFETY:` comment (blocks, impls) or a `# Safety` doc \
             section (unsafe fns) explaining why the contract holds.",
            findings.len(),
            sites
        );
        ExitCode::FAILURE
    }
}

/// What an `unsafe` keyword introduces.
#[derive(Clone, Copy, PartialEq)]
enum Site {
    Block,
    Impl,
    Fn,
}

/// Scan one lexed file; push findings, return the number of sites.
pub fn audit_file(rel: &Path, text: &str, findings: &mut Vec<String>) -> usize {
    let lines = lex(text);
    let mut sites = 0;
    for (idx, line) in lines.iter().enumerate() {
        for site_col in find_word(&line.code, "unsafe") {
            let Some(site) = classify(&lines, idx, site_col) else {
                continue; // `unsafe` in e.g. `unsafe_code` never matches; skip trait bounds like `unsafe trait` forward decls
            };
            sites += 1;
            if !justified(&lines, idx, site) {
                let what = match site {
                    Site::Block => "unsafe block without a `// SAFETY:` comment",
                    Site::Impl => "unsafe impl without a `// SAFETY:` comment",
                    Site::Fn => {
                        "unsafe fn without a `# Safety` doc section (or SAFETY comment)"
                    }
                };
                let mut f = String::new();
                let _ = write!(f, "{}:{}: {what}", rel.display(), idx + 1);
                findings.push(f);
            }
        }
    }
    sites
}

/// Number of `unsafe` sites in `text` (the budget pass's currency).
pub fn count_sites(text: &str) -> usize {
    let lines = lex(text);
    let mut sites = 0;
    for (idx, line) in lines.iter().enumerate() {
        for site_col in find_word(&line.code, "unsafe") {
            if classify(&lines, idx, site_col).is_some() {
                sites += 1;
            }
        }
    }
    sites
}

/// Look at the token after `unsafe` (possibly on a later line) and decide
/// what kind of site this is. `unsafe trait` declarations are contracts on
/// implementors, not sites, and are skipped.
fn classify(lines: &[Line], line: usize, col: usize) -> Option<Site> {
    let mut rest = lines[line].code[col + "unsafe".len()..].to_string();
    let mut next_line = line + 1;
    loop {
        let trimmed = rest.trim_start();
        if !trimmed.is_empty() {
            return if trimmed.starts_with('{') {
                Some(Site::Block)
            } else if trimmed.starts_with("impl") {
                Some(Site::Impl)
            } else if trimmed.starts_with("fn") || trimmed.starts_with("extern") {
                Some(Site::Fn)
            } else {
                None // `unsafe trait`, attribute fragments, macro text
            };
        }
        if next_line >= lines.len() {
            return None;
        }
        rest = lines[next_line].code.clone();
        next_line += 1;
    }
}

/// A site is justified by `SAFETY:` (any site) or `# Safety` (fns) — on
/// the same line, or in the contiguous run of comment/attribute/blank
/// lines directly above the site (i.e. above the item's attributes and
/// doc block, nothing else in between).
fn justified(lines: &[Line], line: usize, site: Site) -> bool {
    let accept = |l: &Line| {
        l.comment.contains("SAFETY:")
            || (site == Site::Fn && l.comment.contains("# Safety"))
    };
    if accept(&lines[line]) {
        return true;
    }
    let mut i = line;
    while i > 0 {
        i -= 1;
        let l = &lines[i];
        if accept(l) {
            return true;
        }
        let code = l.code.trim();
        let is_attr_or_blank = code.is_empty() || code.starts_with("#[") || code.starts_with("#![");
        let has_comment = !l.comment.trim().is_empty();
        if !is_attr_or_blank && !has_comment {
            return false; // hit a real code line: the run above ended
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> usize {
        let mut f = Vec::new();
        audit_file(Path::new("t.rs"), src, &mut f);
        f.len()
    }

    #[test]
    fn flags_bare_block() {
        assert_eq!(findings("fn f() { unsafe { g() } }"), 1);
    }

    #[test]
    fn accepts_same_line_and_preceding_comment() {
        assert_eq!(findings("// SAFETY: fine\nlet x = unsafe { g() };"), 0);
        assert_eq!(findings("let x = unsafe { g() }; // SAFETY: fine"), 0);
    }

    #[test]
    fn comment_must_be_adjacent() {
        assert_eq!(findings("// SAFETY: stale\nlet y = 1;\nlet x = unsafe { g() };"), 1);
    }

    #[test]
    fn unsafe_fn_needs_safety_docs() {
        assert_eq!(findings("unsafe fn f() {}"), 1);
        assert_eq!(findings("/// # Safety\n/// caller checks\nunsafe fn f() {}"), 0);
        // Attributes between docs and fn are fine.
        assert_eq!(
            findings("/// # Safety\n/// caller checks\n#[inline]\npub unsafe fn f() {}"),
            0
        );
    }

    #[test]
    fn unsafe_impl_needs_comment() {
        assert_eq!(findings("unsafe impl Send for T {}"), 1);
        assert_eq!(findings("// SAFETY: T owns its data\nunsafe impl Send for T {}"), 0);
    }

    #[test]
    fn strings_and_comments_are_not_sites() {
        assert_eq!(findings("let s = \"unsafe { }\";"), 0);
        assert_eq!(findings("// unsafe { } in a comment\nlet s = 1;"), 0);
        assert_eq!(findings("let s = r#\"unsafe { }\"#;"), 0);
    }

    // The blind-spot regression suite: every tricky literal form that can
    // desync a naive byte scanner, each hiding an `unsafe { ... }` inside
    // the literal (never a site) and followed by a real, unjustified
    // `unsafe` block on the next statement (always exactly one finding —
    // proving the scanner is still synchronized *after* the literal).
    #[test]
    fn raw_string_does_not_hide_or_invent_sites() {
        assert_eq!(findings("let s = r#\"unsafe { x }\"#;\nlet y = unsafe { g() };"), 1);
        assert_eq!(findings("let s = r##\"quote \"# unsafe\"##;\nlet y = unsafe { g() };"), 1);
    }

    #[test]
    fn byte_and_raw_byte_strings_stay_synchronized() {
        assert_eq!(findings("let s = b\"unsafe { x }\";\nlet y = unsafe { g() };"), 1);
        assert_eq!(findings("let s = br#\"unsafe \" x\"#;\nlet y = unsafe { g() };"), 1);
    }

    #[test]
    fn quote_byte_literals_stay_synchronized() {
        // `b'"'` — a naive scanner takes the quote as a string opener and
        // swallows the rest of the file.
        assert_eq!(findings("let q = b'\"';\nlet y = unsafe { g() };"), 1);
        assert_eq!(findings("let q = b'\\'';\nlet y = unsafe { g() };"), 1);
        assert_eq!(findings("let q = '\"';\nlet y = unsafe { g() };"), 1);
    }

    #[test]
    fn nested_block_comments_stay_synchronized() {
        assert_eq!(
            findings("/* outer /* unsafe { x } */ still */\nlet y = unsafe { g() };"),
            1
        );
    }

    #[test]
    fn unsafe_trait_is_not_a_site() {
        assert_eq!(findings("unsafe trait Zeroable {}"), 0);
    }

    #[test]
    fn lifetimes_do_not_confuse_the_lexer() {
        assert_eq!(
            findings("fn f<'a>(x: &'a u8) -> &'a u8 { x }\n// SAFETY: ok\nlet y = unsafe { g() };"),
            0
        );
    }

    #[test]
    fn count_sites_counts_justified_and_not() {
        let src = "// SAFETY: ok\nlet a = unsafe { g() };\nlet b = unsafe { h() };\n";
        assert_eq!(count_sites(src), 2);
    }
}
