//! Property tests: hardware-accelerated primitives are bit-for-bit
//! equivalent to the portable scalar implementations, for arbitrary inputs.

use hot_bits::pext::{pdep64_scalar, pext64_scalar};
use hot_bits::search::{
    search_subset_u16_scalar, search_subset_u32_scalar, search_subset_u8_scalar,
};
use hot_bits::{pdep64, pext64};
use proptest::prelude::*;

proptest! {
    #[test]
    fn pext_dispatch_equals_scalar(x in any::<u64>(), mask in any::<u64>()) {
        prop_assert_eq!(pext64(x, mask), pext64_scalar(x, mask));
    }

    #[test]
    fn pdep_dispatch_equals_scalar(x in any::<u64>(), mask in any::<u64>()) {
        prop_assert_eq!(pdep64(x, mask), pdep64_scalar(x, mask));
    }

    #[test]
    fn pext_then_pdep_recovers_masked_bits(x in any::<u64>(), mask in any::<u64>()) {
        prop_assert_eq!(pdep64(pext64(x, mask), mask), x & mask);
    }

    #[test]
    fn pdep_then_pext_is_identity_on_low_bits(x in any::<u64>(), mask in any::<u64>()) {
        let width = mask.count_ones();
        let low = if width == 64 { x } else { x & ((1u64 << width) - 1) };
        prop_assert_eq!(pext64(pdep64(low, mask), mask), low);
    }

    #[test]
    fn simd_search_u8_equals_scalar(
        pkeys in prop::collection::vec(any::<u8>(), 1..=32),
        dense in any::<u8>(),
    ) {
        let n = pkeys.len();
        let mut padded = [0xCCu8; 32];
        padded[..n].copy_from_slice(&pkeys);
        // SAFETY: `padded` is a 32-entry array and `n <= 32`.
        let simd = unsafe { hot_bits::search_subset_u8(padded.as_ptr(), n, dense) };
        prop_assert_eq!(simd, search_subset_u8_scalar(&pkeys, n, dense));
    }

    #[test]
    fn simd_search_u16_equals_scalar(
        pkeys in prop::collection::vec(any::<u16>(), 1..=32),
        dense in any::<u16>(),
    ) {
        let n = pkeys.len();
        let mut padded = [0xCCCCu16; 32];
        padded[..n].copy_from_slice(&pkeys);
        // SAFETY: `padded` is a 32-entry array and `n <= 32`.
        let simd = unsafe { hot_bits::search_subset_u16(padded.as_ptr(), n, dense) };
        prop_assert_eq!(simd, search_subset_u16_scalar(&pkeys, n, dense));
    }

    #[test]
    fn simd_search_u32_equals_scalar(
        pkeys in prop::collection::vec(any::<u32>(), 1..=32),
        dense in any::<u32>(),
    ) {
        let n = pkeys.len();
        let mut padded = [0xCCCC_CCCCu32; 32];
        padded[..n].copy_from_slice(&pkeys);
        // SAFETY: `padded` is a 32-entry array and `n <= 32`.
        let simd = unsafe { hot_bits::search_subset_u32(padded.as_ptr(), n, dense) };
        prop_assert_eq!(simd, search_subset_u32_scalar(&pkeys, n, dense));
    }

    #[test]
    fn mismatch_bit_agrees_with_lexicographic_order(
        a in prop::collection::vec(any::<u8>(), 0..40),
        b in prop::collection::vec(any::<u8>(), 0..40),
    ) {
        match hot_bits::first_mismatch_bit(&a, &b) {
            None => {
                // Equal up to zero padding.
                let max = a.len().max(b.len());
                let pad = |v: &[u8]| {
                    let mut p = v.to_vec();
                    p.resize(max, 0);
                    p
                };
                prop_assert_eq!(pad(&a), pad(&b));
            }
            Some(pos) => {
                let (ba, bb) = (hot_bits::bit_at(&a, pos), hot_bits::bit_at(&b, pos));
                prop_assert_ne!(ba, bb);
                // All earlier positions agree.
                for p in (0..pos).rev().take(64) {
                    prop_assert_eq!(hot_bits::bit_at(&a, p), hot_bits::bit_at(&b, p));
                }
            }
        }
    }
}
