//! MSB-first bit addressing over byte-string keys.
//!
//! All trie structures in this workspace agree on one convention: bit
//! position `p` of a key denotes bit `7 - (p % 8)` of byte `p / 8`. Position
//! 0 is the most significant bit of the first byte; positions increase toward
//! less significant key material, so "smaller position" means "discriminates
//! earlier in lexicographic comparison".

/// Return the bit of `key` at MSB-first position `pos`.
///
/// Positions past the end of the key read as 0, which matches the behaviour
/// of the zero-padded key buffers used throughout the workspace and makes
/// shorter keys sort before their extensions.
#[inline(always)]
pub fn bit_at(key: &[u8], pos: usize) -> u8 {
    let byte = pos / 8;
    if byte >= key.len() {
        return 0;
    }
    (key[byte] >> (7 - (pos % 8))) & 1
}

/// Find the first (most significant) bit position at which `a` and `b`
/// differ, treating both as zero-padded to infinite length.
///
/// Returns `None` when one key is a prefix of the other up to zero padding —
/// i.e. when they are equal after padding. For the prefix-free keys the index
/// structures require, `None` implies the keys are identical.
#[inline]
pub fn first_mismatch_bit(a: &[u8], b: &[u8]) -> Option<usize> {
    let common = a.len().min(b.len());
    for i in 0..common {
        let diff = a[i] ^ b[i];
        if diff != 0 {
            return Some(i * 8 + diff.leading_zeros() as usize);
        }
    }
    let (longer, start) = if a.len() > b.len() {
        (a, common)
    } else {
        (b, common)
    };
    for (i, &byte) in longer.iter().enumerate().skip(start) {
        if byte != 0 {
            return Some(i * 8 + byte.leading_zeros() as usize);
        }
    }
    None
}

/// Load 8 bytes of `key` starting at byte `offset` as a **big-endian** 64-bit
/// window word.
///
/// In the window word, key byte `offset` occupies bits 56–63, so increasing
/// key-bit position maps to decreasing window-bit index. The caller must
/// guarantee `offset + 8 <= key.len()`; the index structures achieve this by
/// operating on fixed-size zero-padded key buffers.
#[inline(always)]
pub fn load_be_u64(key: &[u8], offset: usize) -> u64 {
    debug_assert!(offset + 8 <= key.len());
    let mut bytes = [0u8; 8];
    bytes.copy_from_slice(&key[offset..offset + 8]);
    u64::from_be_bytes(bytes)
}

/// Window-word bit index (for [`load_be_u64`] windows) of the key bit at
/// MSB-first position `pos`, given the window starts at byte `offset`.
///
/// The caller must guarantee the position falls inside the window
/// (`offset * 8 <= pos < offset * 8 + 64`).
#[inline(always)]
pub fn window_bit_index(pos: usize, offset: usize) -> u32 {
    debug_assert!(pos >= offset * 8 && pos < offset * 8 + 64);
    let rel = pos - offset * 8;
    63 - rel as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_at_msb_first() {
        let key = [0b1000_0001u8, 0b0100_0000];
        assert_eq!(bit_at(&key, 0), 1);
        assert_eq!(bit_at(&key, 1), 0);
        assert_eq!(bit_at(&key, 7), 1);
        assert_eq!(bit_at(&key, 8), 0);
        assert_eq!(bit_at(&key, 9), 1);
        assert_eq!(bit_at(&key, 15), 0);
        // Past the end reads as zero.
        assert_eq!(bit_at(&key, 16), 0);
        assert_eq!(bit_at(&key, 1000), 0);
    }

    #[test]
    fn mismatch_basic() {
        assert_eq!(first_mismatch_bit(b"a", b"a"), None);
        assert_eq!(first_mismatch_bit(b"", b""), None);
        // 'a' = 0x61, 'b' = 0x62: differ first at bit 6 of byte 0.
        assert_eq!(first_mismatch_bit(b"a", b"b"), Some(6));
        // Same first byte, differ in second byte's MSB region.
        assert_eq!(first_mismatch_bit(b"aa", b"a\xFF"), Some(8));
    }

    #[test]
    fn mismatch_with_zero_padding() {
        // "a" zero-padded vs "a\0" are equal.
        assert_eq!(first_mismatch_bit(b"a", b"a\0"), None);
        // "a" vs "a\x80": the extension's first bit is the mismatch.
        assert_eq!(first_mismatch_bit(b"a", b"a\x80"), Some(8));
        assert_eq!(first_mismatch_bit(b"a\x01", b"a"), Some(15));
    }

    #[test]
    fn mismatch_is_symmetric() {
        let pairs: &[(&[u8], &[u8])] = &[
            (b"hello", b"help"),
            (b"", b"\x01"),
            (b"abc", b"abcd"),
            (b"\xFF\xFF", b"\xFF\x7F"),
        ];
        for (a, b) in pairs {
            assert_eq!(first_mismatch_bit(a, b), first_mismatch_bit(b, a));
        }
    }

    #[test]
    fn mismatch_identifies_order() {
        // For prefix-free keys, the bit at the mismatch position decides
        // lexicographic order: whichever key has bit 1 there is larger.
        let a = b"apple\0";
        let b = b"apply\0";
        let pos = first_mismatch_bit(a, b).unwrap();
        let (small, large) = if bit_at(a, pos) == 0 { (a, b) } else { (b, a) };
        assert!(small < large);
    }

    #[test]
    fn be_window_and_bit_index_agree_with_bit_at() {
        let key: Vec<u8> = (0u8..16).map(|i| i.wrapping_mul(37) ^ 0x5A).collect();
        for offset in 0..8 {
            let window = load_be_u64(&key, offset);
            for pos in offset * 8..offset * 8 + 64 {
                let from_window = (window >> window_bit_index(pos, offset)) & 1;
                assert_eq!(from_window as u8, bit_at(&key, pos), "pos {pos} offset {offset}");
            }
        }
    }
}
