//! Runtime CPU feature detection, cached process-wide.
//!
//! The hot paths dispatch between hardware-accelerated (BMI2 `PEXT`/`PDEP`,
//! AVX2 comparisons) and portable scalar implementations. Detection runs once
//! and is cached in a static, so the per-call cost is a single predictable
//! load-and-branch.

use std::sync::OnceLock;

/// Detected CPU features relevant to the HOT node primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Features {
    /// BMI2 instruction set (`PEXT`, `PDEP`) is available.
    pub bmi2: bool,
    /// AVX2 256-bit integer SIMD is available.
    pub avx2: bool,
}

impl Features {
    /// Features with all hardware acceleration disabled (scalar paths only).
    pub const SCALAR_ONLY: Features = Features {
        bmi2: false,
        avx2: false,
    };
}

static FEATURES: OnceLock<Features> = OnceLock::new();

/// Return the cached, process-wide CPU feature set.
///
/// Respects the `HOT_FORCE_SCALAR` environment variable (any non-empty
/// value disables hardware acceleration), which the test suite uses to
/// exercise the portable fallbacks on machines that do support BMI2/AVX2.
#[inline]
pub fn features() -> Features {
    *FEATURES.get_or_init(detect)
}

fn detect() -> Features {
    if std::env::var_os("HOT_FORCE_SCALAR").is_some_and(|v| !v.is_empty()) {
        return Features::SCALAR_ONLY;
    }
    #[cfg(target_arch = "x86_64")]
    {
        Features {
            bmi2: std::arch::is_x86_feature_detected!("bmi2"),
            avx2: std::arch::is_x86_feature_detected!("avx2"),
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        Features::SCALAR_ONLY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn features_are_cached_and_consistent() {
        let a = features();
        let b = features();
        assert_eq!(a, b);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn detection_matches_std_macros_unless_forced() {
        if std::env::var_os("HOT_FORCE_SCALAR").is_none() {
            let f = features();
            assert_eq!(f.bmi2, std::arch::is_x86_feature_detected!("bmi2"));
            assert_eq!(f.avx2, std::arch::is_x86_feature_detected!("avx2"));
        }
    }
}
