//! Parallel bit extract (`PEXT`) and deposit (`PDEP`) with scalar fallbacks.
//!
//! HOT uses `PEXT` to turn a search key into a *dense partial key* — the
//! key's bits at the node's discriminative positions, packed together — in a
//! single instruction per 64-bit window (Section 4.1 of the paper), and
//! `PDEP` to recode all stored *sparse partial keys* of a node when an insert
//! introduces a new discriminative bit position (Section 4.4).

/// Scalar (portable) implementation of `PEXT`: for every set bit of `mask`
/// from least to most significant, copy the corresponding bit of `x` into the
/// next least-significant result bit.
#[inline]
pub fn pext64_scalar(x: u64, mut mask: u64) -> u64 {
    let mut result = 0u64;
    let mut out_bit = 0u32;
    while mask != 0 {
        let lowest = mask & mask.wrapping_neg();
        if x & lowest != 0 {
            result |= 1u64 << out_bit;
        }
        out_bit += 1;
        mask &= mask - 1;
    }
    result
}

/// Scalar (portable) implementation of `PDEP`: scatter the low bits of `x`
/// into the set-bit positions of `mask`, from least to most significant.
#[inline]
pub fn pdep64_scalar(mut x: u64, mut mask: u64) -> u64 {
    let mut result = 0u64;
    while mask != 0 {
        let lowest = mask & mask.wrapping_neg();
        if x & 1 != 0 {
            result |= lowest;
        }
        x >>= 1;
        mask &= mask - 1;
    }
    result
}

/// # Safety
/// Caller must have verified BMI2 support (`is_x86_feature_detected!`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "bmi2")]
unsafe fn pext64_bmi2(x: u64, mask: u64) -> u64 {
    core::arch::x86_64::_pext_u64(x, mask)
}

/// # Safety
/// Caller must have verified BMI2 support (`is_x86_feature_detected!`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "bmi2")]
unsafe fn pdep64_bmi2(x: u64, mask: u64) -> u64 {
    core::arch::x86_64::_pdep_u64(x, mask)
}

/// Parallel bit extract. Uses the BMI2 `PEXT` instruction when available,
/// otherwise the portable scalar equivalent.
#[inline]
pub fn pext64(x: u64, mask: u64) -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        if crate::features().bmi2 {
            // SAFETY: feature detection confirmed BMI2 support.
            return unsafe { pext64_bmi2(x, mask) };
        }
    }
    pext64_scalar(x, mask)
}

/// Parallel bit deposit. Uses the BMI2 `PDEP` instruction when available,
/// otherwise the portable scalar equivalent.
#[inline]
pub fn pdep64(x: u64, mask: u64) -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        if crate::features().bmi2 {
            // SAFETY: feature detection confirmed BMI2 support.
            return unsafe { pdep64_bmi2(x, mask) };
        }
    }
    pdep64_scalar(x, mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pext_scalar_known_values() {
        assert_eq!(pext64_scalar(0, 0), 0);
        assert_eq!(pext64_scalar(u64::MAX, 0), 0);
        assert_eq!(pext64_scalar(u64::MAX, u64::MAX), u64::MAX);
        // Example from the Intel manual style: extract nibble-striped bits.
        assert_eq!(pext64_scalar(0b1010_1010, 0b1111_0000), 0b1010);
        assert_eq!(pext64_scalar(0b1010_1010, 0b0000_1111), 0b1010);
        assert_eq!(pext64_scalar(0b1000_0001, 0b1000_0001), 0b11);
        assert_eq!(pext64_scalar(0b1000_0000, 0b1000_0001), 0b10);
    }

    #[test]
    fn pdep_scalar_known_values() {
        assert_eq!(pdep64_scalar(0, 0), 0);
        assert_eq!(pdep64_scalar(u64::MAX, u64::MAX), u64::MAX);
        assert_eq!(pdep64_scalar(0b1010, 0b1111_0000), 0b1010_0000);
        assert_eq!(pdep64_scalar(0b11, 0b1000_0001), 0b1000_0001);
        assert_eq!(pdep64_scalar(0b10, 0b1000_0001), 0b1000_0000);
    }

    #[test]
    fn pext_pdep_are_inverse_on_mask() {
        let mask = 0x0F0F_00FF_F0F0_1234u64;
        for x in [0u64, 1, 0xFFFF, 0xDEAD_BEEF_CAFE_BABE, u64::MAX] {
            let packed = pext64_scalar(x, mask);
            assert_eq!(pdep64_scalar(packed, mask), x & mask);
            assert_eq!(pext64_scalar(pdep64_scalar(packed, mask), mask), packed);
        }
    }

    #[test]
    fn dispatch_matches_scalar() {
        // On BMI2 machines this cross-checks the hardware instruction against
        // the portable implementation; on others it is trivially true.
        let cases = [
            (0u64, 0u64),
            (u64::MAX, u64::MAX),
            (0x1234_5678_9ABC_DEF0, 0x00FF_00FF_00FF_00FF),
            (0xFFFF_0000_FFFF_0000, 0x8000_0000_0000_0001),
            (0xA5A5_A5A5_5A5A_5A5A, 0xFFFF_FFFF_0000_0000),
        ];
        for (x, mask) in cases {
            assert_eq!(pext64(x, mask), pext64_scalar(x, mask), "pext {x:#x} {mask:#x}");
            assert_eq!(pdep64(x, mask), pdep64_scalar(x, mask), "pdep {x:#x} {mask:#x}");
        }
    }

    #[test]
    fn pext_result_width_is_popcount() {
        let mask = 0x8421_8421_8421_8421u64; // 16 set bits
        let extracted = pext64_scalar(u64::MAX, mask);
        assert_eq!(extracted, (1u64 << 16) - 1);
    }
}
