//! Data-parallel sparse-partial-key search (Section 4.3, Listing 2).
//!
//! Given a node's array of *sparse* partial keys and the *dense* partial key
//! extracted from the search key, the result candidate is the entry with the
//! **highest index** whose sparse partial key is a bit-subset of the dense
//! key (`sparse & dense == sparse`). Entries are stored in trie (key) order
//! and the leftmost entry's sparse partial key is always 0, so a match always
//! exists.
//!
//! The AVX2 implementations mirror the paper's `searchPartialKeys*`
//! primitives: one `VPAND` + `VPCMPEQ` + `VPMOVMSKB` sequence per 256-bit
//! chunk, followed by a bit-scan-reverse over the used-entry mask.
//!
//! # Safety contract for the raw-pointer entry points
//!
//! The SIMD paths read full 256-bit vectors. Callers must guarantee that at
//! least [`PADDED_BYTES_U8`] / [`PADDED_BYTES_U16`] / [`PADDED_BYTES_U32`]
//! bytes are readable from the partial-key base pointer, even when fewer
//! entries are used (HOT nodes reserve this padding inside the node
//! allocation; the bytes beyond the used entries may hold arbitrary data —
//! they are masked off before the bit scan).

/// Bytes that must be readable from the base pointer for 8-bit partial keys.
pub const PADDED_BYTES_U8: usize = 32;
/// Bytes that must be readable from the base pointer for 16-bit partial keys.
pub const PADDED_BYTES_U16: usize = 64;
/// Bytes that must be readable from the base pointer for 32-bit partial keys.
pub const PADDED_BYTES_U32: usize = 128;

/// Maximum number of entries (= maximum node fanout `k`).
pub const MAX_ENTRIES: usize = 32;

#[inline(always)]
fn used_mask(n: usize) -> u32 {
    debug_assert!((1..=MAX_ENTRIES).contains(&n));
    if n == MAX_ENTRIES {
        u32::MAX
    } else {
        (1u32 << n) - 1
    }
}

/// Portable search over 8-bit sparse partial keys (see module docs).
#[inline]
pub fn search_subset_u8_scalar(pkeys: &[u8], n: usize, dense: u8) -> usize {
    debug_assert!(n <= pkeys.len());
    for i in (0..n).rev() {
        if pkeys[i] & dense == pkeys[i] {
            return i;
        }
    }
    0
}

/// Portable search over 16-bit sparse partial keys.
#[inline]
pub fn search_subset_u16_scalar(pkeys: &[u16], n: usize, dense: u16) -> usize {
    debug_assert!(n <= pkeys.len());
    for i in (0..n).rev() {
        if pkeys[i] & dense == pkeys[i] {
            return i;
        }
    }
    0
}

/// Portable search over 32-bit sparse partial keys.
#[inline]
pub fn search_subset_u32_scalar(pkeys: &[u32], n: usize, dense: u32) -> usize {
    debug_assert!(n <= pkeys.len());
    for i in (0..n).rev() {
        if pkeys[i] & dense == pkeys[i] {
            return i;
        }
    }
    0
}

/// Portable prefix match over 8-bit sparse partial keys: bit `i` of the
/// result is set iff `pkeys[i] & mask == prefix` (see module docs on the
/// range-scan seek).
#[inline]
pub fn match_prefix_u8_scalar(pkeys: &[u8], n: usize, mask: u8, prefix: u8) -> u32 {
    debug_assert!(n <= pkeys.len());
    let mut matches = 0u32;
    for (i, &k) in pkeys.iter().enumerate().take(n) {
        matches |= u32::from(k & mask == prefix) << i;
    }
    matches
}

/// Portable prefix match over 16-bit sparse partial keys.
#[inline]
pub fn match_prefix_u16_scalar(pkeys: &[u16], n: usize, mask: u16, prefix: u16) -> u32 {
    debug_assert!(n <= pkeys.len());
    let mut matches = 0u32;
    for (i, &k) in pkeys.iter().enumerate().take(n) {
        matches |= u32::from(k & mask == prefix) << i;
    }
    matches
}

/// Portable prefix match over 32-bit sparse partial keys.
#[inline]
pub fn match_prefix_u32_scalar(pkeys: &[u32], n: usize, mask: u32, prefix: u32) -> u32 {
    debug_assert!(n <= pkeys.len());
    let mut matches = 0u32;
    for (i, &k) in pkeys.iter().enumerate().take(n) {
        matches |= u32::from(k & mask == prefix) << i;
    }
    matches
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use core::arch::x86_64::*;

    /// # Safety
    /// AVX2 must be available and 32 bytes must be readable from `pkeys`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn search_u8(pkeys: *const u8, n: usize, dense: u8) -> usize {
        // SAFETY: caller guarantees 32 readable bytes; loadu has no
        // alignment requirement.
        let v = unsafe { _mm256_loadu_si256(pkeys as *const __m256i) };
        let d = _mm256_set1_epi8(dense as i8);
        let selected = _mm256_and_si256(v, d);
        let eq = _mm256_cmpeq_epi8(selected, v);
        let mm = _mm256_movemask_epi8(eq) as u32;
        let matches = mm & super::used_mask(n);
        if matches == 0 {
            return 0;
        }
        31 - matches.leading_zeros() as usize
    }

    /// # Safety
    /// AVX2 must be available and 64 bytes must be readable from `pkeys`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn search_u16(pkeys: *const u16, n: usize, dense: u16) -> usize {
        let d = _mm256_set1_epi16(dense as i16);
        // SAFETY: caller guarantees 64 readable bytes; loadu has no
        // alignment requirement.
        let lo = unsafe { _mm256_loadu_si256(pkeys as *const __m256i) };
        // SAFETY: as above — the second 32-byte half of the same buffer.
        let hi = unsafe { _mm256_loadu_si256((pkeys as *const __m256i).add(1)) };
        let eq_lo = _mm256_cmpeq_epi16(_mm256_and_si256(lo, d), lo);
        let eq_hi = _mm256_cmpeq_epi16(_mm256_and_si256(hi, d), hi);
        // movemask_epi8 yields two identical bits per 16-bit lane.
        let mm = (_mm256_movemask_epi8(eq_lo) as u32 as u64)
            | ((_mm256_movemask_epi8(eq_hi) as u32 as u64) << 32);
        let used = if n == 32 {
            u64::MAX
        } else {
            (1u64 << (2 * n)) - 1
        };
        let matches = mm & used;
        if matches == 0 {
            return 0;
        }
        (63 - matches.leading_zeros() as usize) / 2
    }

    /// # Safety
    /// AVX2 must be available and 128 bytes must be readable from `pkeys`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn search_u32(pkeys: *const u32, n: usize, dense: u32) -> usize {
        let d = _mm256_set1_epi32(dense as i32);
        let mut matches = 0u32;
        for chunk in 0..4 {
            // SAFETY: caller guarantees 128 readable bytes: four 32-byte
            // chunks; loadu has no alignment requirement.
            let v = unsafe { _mm256_loadu_si256((pkeys as *const __m256i).add(chunk)) };
            let eq = _mm256_cmpeq_epi32(_mm256_and_si256(v, d), v);
            let mm = _mm256_movemask_ps(_mm256_castsi256_ps(eq)) as u32;
            matches |= mm << (chunk * 8);
        }
        matches &= super::used_mask(n);
        if matches == 0 {
            return 0;
        }
        31 - matches.leading_zeros() as usize
    }

    /// # Safety
    /// AVX2 must be available and 32 bytes must be readable from `pkeys`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn match_prefix_u8(pkeys: *const u8, n: usize, mask: u8, prefix: u8) -> u32 {
        // SAFETY: caller guarantees 32 readable bytes; loadu has no
        // alignment requirement.
        let v = unsafe { _mm256_loadu_si256(pkeys as *const __m256i) };
        let m = _mm256_set1_epi8(mask as i8);
        let p = _mm256_set1_epi8(prefix as i8);
        let eq = _mm256_cmpeq_epi8(_mm256_and_si256(v, m), p);
        (_mm256_movemask_epi8(eq) as u32) & super::used_mask(n)
    }

    /// # Safety
    /// AVX2 must be available and 64 bytes must be readable from `pkeys`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn match_prefix_u16(pkeys: *const u16, n: usize, mask: u16, prefix: u16) -> u32 {
        let m = _mm256_set1_epi16(mask as i16);
        let p = _mm256_set1_epi16(prefix as i16);
        // SAFETY: caller guarantees 64 readable bytes; loadu has no
        // alignment requirement.
        let lo = unsafe { _mm256_loadu_si256(pkeys as *const __m256i) };
        // SAFETY: as above — the second 32-byte half of the same buffer.
        let hi = unsafe { _mm256_loadu_si256((pkeys as *const __m256i).add(1)) };
        let eq_lo = _mm256_cmpeq_epi16(_mm256_and_si256(lo, m), p);
        let eq_hi = _mm256_cmpeq_epi16(_mm256_and_si256(hi, m), p);
        // Pack the two 16-bit compare masks (0 / -1 lanes) down to bytes.
        // packs works per 128-bit half, interleaving the sources as
        // [lo₀₋₇, hi₀₋₇, lo₈₋₁₅, hi₈₋₁₅]; the 64-bit permute restores entry
        // order so one movemask yields bit i = entry i.
        let packed = _mm256_packs_epi16(eq_lo, eq_hi);
        let ordered = _mm256_permute4x64_epi64::<0b11_01_10_00>(packed);
        (_mm256_movemask_epi8(ordered) as u32) & super::used_mask(n)
    }

    /// # Safety
    /// AVX2 must be available and 128 bytes must be readable from `pkeys`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn match_prefix_u32(pkeys: *const u32, n: usize, mask: u32, prefix: u32) -> u32 {
        let m = _mm256_set1_epi32(mask as i32);
        let p = _mm256_set1_epi32(prefix as i32);
        let mut matches = 0u32;
        for chunk in 0..4 {
            // SAFETY: caller guarantees 128 readable bytes: four 32-byte
            // chunks; loadu has no alignment requirement.
            let v = unsafe { _mm256_loadu_si256((pkeys as *const __m256i).add(chunk)) };
            let eq = _mm256_cmpeq_epi32(_mm256_and_si256(v, m), p);
            let mm = _mm256_movemask_ps(_mm256_castsi256_ps(eq)) as u32;
            matches |= mm << (chunk * 8);
        }
        matches & super::used_mask(n)
    }
}

/// Search 8-bit sparse partial keys for the highest-index subset match.
///
/// # Safety
/// `n` must be in `1..=32` and [`PADDED_BYTES_U8`] bytes must be readable
/// from `pkeys`.
#[inline]
pub unsafe fn search_subset_u8(pkeys: *const u8, n: usize, dense: u8) -> usize {
    #[cfg(target_arch = "x86_64")]
    {
        if crate::features().avx2 {
            // SAFETY: AVX2 verified at runtime; the caller's readable-bytes
            // contract ([`PADDED_BYTES_U8`]) covers the vector loads.
            return unsafe { avx2::search_u8(pkeys, n, dense) };
        }
    }
    // SAFETY: caller guarantees at least `n` elements are readable.
    search_subset_u8_scalar(unsafe { core::slice::from_raw_parts(pkeys, n) }, n, dense)
}

/// Search 16-bit sparse partial keys for the highest-index subset match.
///
/// # Safety
/// `n` must be in `1..=32` and [`PADDED_BYTES_U16`] bytes must be readable
/// from `pkeys`. `pkeys` must be 2-byte aligned.
#[inline]
pub unsafe fn search_subset_u16(pkeys: *const u16, n: usize, dense: u16) -> usize {
    #[cfg(target_arch = "x86_64")]
    {
        if crate::features().avx2 {
            // SAFETY: AVX2 verified at runtime; the caller's readable-bytes
            // contract ([`PADDED_BYTES_U16`]) covers the vector loads.
            return unsafe { avx2::search_u16(pkeys, n, dense) };
        }
    }
    // SAFETY: caller guarantees at least `n` elements are readable.
    search_subset_u16_scalar(unsafe { core::slice::from_raw_parts(pkeys, n) }, n, dense)
}

/// Search 32-bit sparse partial keys for the highest-index subset match.
///
/// # Safety
/// `n` must be in `1..=32` and [`PADDED_BYTES_U32`] bytes must be readable
/// from `pkeys`. `pkeys` must be 4-byte aligned.
#[inline]
pub unsafe fn search_subset_u32(pkeys: *const u32, n: usize, dense: u32) -> usize {
    #[cfg(target_arch = "x86_64")]
    {
        if crate::features().avx2 {
            // SAFETY: AVX2 verified at runtime; the caller's readable-bytes
            // contract ([`PADDED_BYTES_U32`]) covers the vector loads.
            return unsafe { avx2::search_u32(pkeys, n, dense) };
        }
    }
    // SAFETY: caller guarantees at least `n` elements are readable.
    search_subset_u32_scalar(unsafe { core::slice::from_raw_parts(pkeys, n) }, n, dense)
}

/// Bitmask of the 8-bit sparse partial keys equal to `prefix` under `mask`
/// (bit `i` set iff `pkeys[i] & mask == prefix`).
///
/// The range-scan seek uses this to find the contiguous run of entries
/// sharing a path prefix with one vector compare instead of a scalar walk
/// in both directions (`RawNode::affected_range`).
///
/// # Safety
/// `n` must be in `1..=32` and [`PADDED_BYTES_U8`] bytes must be readable
/// from `pkeys`.
#[inline]
pub unsafe fn match_prefix_u8(pkeys: *const u8, n: usize, mask: u8, prefix: u8) -> u32 {
    #[cfg(target_arch = "x86_64")]
    {
        if crate::features().avx2 {
            // SAFETY: AVX2 verified at runtime; the caller's readable-bytes
            // contract ([`PADDED_BYTES_U8`]) covers the vector loads.
            return unsafe { avx2::match_prefix_u8(pkeys, n, mask, prefix) };
        }
    }
    // SAFETY: caller guarantees at least `n` elements are readable.
    match_prefix_u8_scalar(unsafe { core::slice::from_raw_parts(pkeys, n) }, n, mask, prefix)
}

/// Bitmask of the 16-bit sparse partial keys equal to `prefix` under `mask`.
///
/// # Safety
/// `n` must be in `1..=32` and [`PADDED_BYTES_U16`] bytes must be readable
/// from `pkeys`. `pkeys` must be 2-byte aligned.
#[inline]
pub unsafe fn match_prefix_u16(pkeys: *const u16, n: usize, mask: u16, prefix: u16) -> u32 {
    #[cfg(target_arch = "x86_64")]
    {
        if crate::features().avx2 {
            // SAFETY: AVX2 verified at runtime; the caller's readable-bytes
            // contract ([`PADDED_BYTES_U16`]) covers the vector loads.
            return unsafe { avx2::match_prefix_u16(pkeys, n, mask, prefix) };
        }
    }
    // SAFETY: caller guarantees at least `n` elements are readable.
    match_prefix_u16_scalar(unsafe { core::slice::from_raw_parts(pkeys, n) }, n, mask, prefix)
}

/// Bitmask of the 32-bit sparse partial keys equal to `prefix` under `mask`.
///
/// # Safety
/// `n` must be in `1..=32` and [`PADDED_BYTES_U32`] bytes must be readable
/// from `pkeys`. `pkeys` must be 4-byte aligned.
#[inline]
pub unsafe fn match_prefix_u32(pkeys: *const u32, n: usize, mask: u32, prefix: u32) -> u32 {
    #[cfg(target_arch = "x86_64")]
    {
        if crate::features().avx2 {
            // SAFETY: AVX2 verified at runtime; the caller's readable-bytes
            // contract ([`PADDED_BYTES_U32`]) covers the vector loads.
            return unsafe { avx2::match_prefix_u32(pkeys, n, mask, prefix) };
        }
    }
    // SAFETY: caller guarantees at least `n` elements are readable.
    match_prefix_u32_scalar(unsafe { core::slice::from_raw_parts(pkeys, n) }, n, mask, prefix)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn padded_u8(pkeys: &[u8]) -> [u8; 32] {
        let mut buf = [0xAAu8; 32]; // garbage padding, must be masked off
        buf[..pkeys.len()].copy_from_slice(pkeys);
        buf
    }

    fn padded_u16(pkeys: &[u16]) -> [u16; 32] {
        let mut buf = [0xAAAAu16; 32];
        buf[..pkeys.len()].copy_from_slice(pkeys);
        buf
    }

    fn padded_u32(pkeys: &[u32]) -> [u32; 32] {
        let mut buf = [0xAAAA_AAAAu32; 32];
        buf[..pkeys.len()].copy_from_slice(pkeys);
        buf
    }

    #[test]
    fn first_entry_always_matches() {
        // Entry 0 has sparse key 0 in real nodes; an all-ones dense key must
        // pick the highest entry, an all-zeros dense key entry 0.
        let pkeys = padded_u8(&[0, 1, 2, 3]);
        // SAFETY: the padded arrays are 32 entries, the layout the SIMD
        // searchers require; `n` never exceeds the live prefix.
        unsafe {
            assert_eq!(search_subset_u8(pkeys.as_ptr(), 4, 0xFF), 3);
            assert_eq!(search_subset_u8(pkeys.as_ptr(), 4, 0x00), 0);
        }
    }

    #[test]
    fn subset_semantics_u8() {
        // sparse: 0b000, 0b001, 0b010, 0b110
        let pkeys = padded_u8(&[0b000, 0b001, 0b010, 0b110]);
        // SAFETY: the padded arrays are 32 entries, the layout the SIMD
        // searchers require; `n` never exceeds the live prefix.
        unsafe {
            // dense 0b011 matches 0b000, 0b001, 0b010 -> highest is index 2
            assert_eq!(search_subset_u8(pkeys.as_ptr(), 4, 0b011), 2);
            // dense 0b111 matches all -> 3
            assert_eq!(search_subset_u8(pkeys.as_ptr(), 4, 0b111), 3);
            // dense 0b100 matches only 0b000 -> 0
            assert_eq!(search_subset_u8(pkeys.as_ptr(), 4, 0b100), 0);
        }
    }

    #[test]
    fn padding_is_ignored() {
        // Garbage in the padding area (0xAA = matches dense 0xAA) must never
        // be selected because it is past `n`.
        let pkeys = padded_u8(&[0x00, 0x02]);
        // SAFETY: the padded arrays are 32 entries, the layout the SIMD
        // searchers require; `n` never exceeds the live prefix.
        unsafe {
            assert_eq!(search_subset_u8(pkeys.as_ptr(), 2, 0xAA), 1);
        }
    }

    #[test]
    fn full_node_u8() {
        let mut raw = [0u8; 32];
        for (i, slot) in raw.iter_mut().enumerate() {
            *slot = i as u8; // sparse key i for entry i
        }
        // SAFETY: the padded arrays are 32 entries, the layout the SIMD
        // searchers require; `n` never exceeds the live prefix.
        unsafe {
            assert_eq!(search_subset_u8(raw.as_ptr(), 32, 0xFF), 31);
            assert_eq!(search_subset_u8(raw.as_ptr(), 32, 0x1F), 31);
            assert_eq!(search_subset_u8(raw.as_ptr(), 32, 0x10), 16);
        }
    }

    #[test]
    fn match_prefix_agrees_with_scalar() {
        // Pseudo-random sparse keys; every (mask, prefix) pair drawn from
        // actual entries so matches are non-trivial.
        let mut raw8 = [0u8; 32];
        let mut raw16 = [0u16; 32];
        let mut raw32 = [0u32; 32];
        let mut x = 0x9E37_79B9u32;
        for i in 0..32 {
            x = x.wrapping_mul(0x85EB_CA6B).rotate_left(13) ^ i as u32;
            raw8[i] = x as u8;
            raw16[i] = x as u16;
            raw32[i] = x;
        }
        for n in [1usize, 2, 5, 16, 31, 32] {
            for mask in [0u32, 0x1, 0x80, 0xF0, 0xFF, 0xFFFF, 0xFFFF_0000, u32::MAX] {
                for through in [0usize, n / 2, n - 1] {
                    let p8 = raw8[through] as u32 & mask;
                    let p16 = raw16[through] as u32 & mask;
                    let p32 = raw32[through] & mask;
                    // SAFETY: the arrays are 32 entries — the full SIMD
                    // padding; `n` never exceeds the live prefix.
                    unsafe {
                        assert_eq!(
                            match_prefix_u8(raw8.as_ptr(), n, mask as u8, p8 as u8),
                            match_prefix_u8_scalar(&raw8, n, mask as u8, p8 as u8),
                            "u8 n={n} mask={mask:x}"
                        );
                        assert_eq!(
                            match_prefix_u16(raw16.as_ptr(), n, mask as u16, p16 as u16),
                            match_prefix_u16_scalar(&raw16, n, mask as u16, p16 as u16),
                            "u16 n={n} mask={mask:x}"
                        );
                        assert_eq!(
                            match_prefix_u32(raw32.as_ptr(), n, mask, p32),
                            match_prefix_u32_scalar(&raw32, n, mask, p32),
                            "u32 n={n} mask={mask:x}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn match_prefix_masks_padding_and_sets_member_bit() {
        // Entries beyond `n` hold 0xAA… which matches (mask=0, prefix=0);
        // they must be masked off. The member entry's own bit is always set.
        let pkeys = padded_u8(&[0b0000, 0b0001, 0b0100, 0b0101]);
        // SAFETY: padded to 32 entries as the contract requires.
        unsafe {
            // mask selects the high nibble; entries 0,1 share prefix 0b0000,
            // entries 2,3 share 0b0100.
            assert_eq!(match_prefix_u8(pkeys.as_ptr(), 4, 0xFC, 0b0000), 0b0011);
            assert_eq!(match_prefix_u8(pkeys.as_ptr(), 4, 0xFC, 0b0100), 0b1100);
            // mask = 0: every live entry matches prefix 0, none of the
            // padding leaks in.
            assert_eq!(match_prefix_u8(pkeys.as_ptr(), 4, 0, 0), 0b1111);
        }
    }

    #[test]
    fn u16_and_u32_match_scalar_on_examples() {
        let pkeys16 = padded_u16(&[0, 0x0001, 0x0100, 0x0101, 0x8000]);
        let pkeys32 = padded_u32(&[0, 0x1, 0x0001_0000, 0x0001_0001, 0x8000_0000]);
        for dense in [0u32, 1, 0x0101, 0x8000, 0xFFFF, 0x0001_0001, 0xFFFF_FFFF] {
            // SAFETY: the padded arrays are 32 entries, the layout the SIMD
            // searchers require; `n` never exceeds the live prefix.
            unsafe {
                assert_eq!(
                    search_subset_u16(pkeys16.as_ptr(), 5, dense as u16),
                    search_subset_u16_scalar(&pkeys16, 5, dense as u16),
                );
                assert_eq!(
                    search_subset_u32(pkeys32.as_ptr(), 5, dense),
                    search_subset_u32_scalar(&pkeys32, 5, dense),
                );
            }
        }
    }
}
