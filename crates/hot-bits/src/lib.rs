//! Bit-manipulation and SIMD primitives for the Height Optimized Trie.
//!
//! This crate isolates every piece of "bit wizardry" the HOT node layout
//! (Section 4 of the paper) relies on:
//!
//! * [`pext64`] / [`pdep64`] — the BMI2 parallel bit extract/deposit
//!   instructions used for dense-partial-key extraction and sparse-partial-key
//!   recoding, with portable scalar fallbacks that are bit-for-bit equivalent
//!   (verified by property tests);
//! * [`bitpos`] — MSB-first bit addressing over byte-string keys (position 0
//!   is the most significant bit of the first byte), mismatch detection, and
//!   the mapping between *key bit positions* and *extracted partial-key bit
//!   indices*;
//! * [`search`] — the data-parallel "find the highest-index sparse partial
//!   key that is a subset of the dense search key" primitive for 8-, 16- and
//!   32-bit partial keys (AVX2 with scalar fallback).
//!
//! # Bit-order convention
//!
//! Keys are byte strings compared lexicographically. Bit position `p` refers
//! to bit `7 - (p % 8)` of byte `p / 8`, so positions increase from the most
//! significant bit onward and the natural integer order of *dense* partial
//! keys equals the lexicographic order of the underlying keys restricted to
//! the discriminative positions. Concretely, for a node with `m`
//! discriminative positions `p_0 < p_1 < … < p_{m-1}`, the bit of position
//! `p_r` lives at partial-key bit index `m - 1 - r` (the earliest — most
//! significant — key position occupies the most significant partial-key bit).
//!
//! To make `PEXT` produce exactly this layout, 8-byte key windows are loaded
//! **big-endian** ([`load_be_u64`]): byte `o` of the key occupies bits 56–63
//! of the window word, so increasing key-bit position corresponds to
//! decreasing window-bit index, and `PEXT` (which packs from the mask's least
//! significant end) emits the *latest* position into bit 0 — precisely the
//! `m - 1 - r` mapping.

#![deny(missing_docs)]

pub mod bitpos;
pub mod features;
pub mod pext;
pub mod search;

pub use bitpos::{bit_at, first_mismatch_bit, load_be_u64};
pub use features::{features, Features};
pub use pext::{pdep64, pext64};
pub use search::{
    match_prefix_u16, match_prefix_u32, match_prefix_u8, search_subset_u16, search_subset_u32,
    search_subset_u8,
};

/// Prefetch the cache line containing `ptr` (and the following ones) into all
/// cache levels.
///
/// HOT prefetches the first four cache lines of a node before dispatching on
/// the node type (Section 4.5) so that the memory access overlaps the branch
/// resolution. On non-x86 targets this is a no-op.
#[inline(always)]
pub fn prefetch_node(ptr: *const u8, lines: usize) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: _mm_prefetch is architecturally a hint and cannot fault, and
    // wrapping_add avoids pointer-arithmetic UB for out-of-object lines.
    unsafe {
        for i in 0..lines {
            core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
                ptr.wrapping_add(i * 64) as *const i8,
            );
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (ptr, lines);
    }
}

/// Prefetch the single cache line containing `ptr` into all cache levels.
///
/// Used by the batched-lookup engine to overlap the *next* dependent load of
/// every in-flight descent (node headers, tuple key records) while other
/// group members execute; see `hot_core::batch`. On non-x86 targets this is
/// a no-op.
#[inline(always)]
pub fn prefetch_read(ptr: *const u8) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: _mm_prefetch is architecturally a hint and cannot fault.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(ptr as *const i8);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = ptr;
    }
}

#[cfg(test)]
mod prefetch_tests {
    use super::{prefetch_node, prefetch_read};

    #[test]
    fn prefetch_is_a_pure_hint() {
        // Prefetching must never fault or mutate — including on dangling,
        // null, and unaligned addresses (descents prefetch speculatively).
        let data = [0xA5u8; 256];
        prefetch_read(data.as_ptr());
        prefetch_read(data.as_ptr().wrapping_add(3));
        prefetch_read(std::ptr::null());
        prefetch_read(usize::MAX as *const u8);
        prefetch_node(data.as_ptr(), 4);
        prefetch_node(std::ptr::null(), 4);
        assert!(data.iter().all(|&b| b == 0xA5));
    }

    #[test]
    fn prefetch_zero_lines_is_noop() {
        prefetch_node([1u8].as_ptr(), 0);
    }
}
