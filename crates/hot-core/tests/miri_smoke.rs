//! Undefined-behavior smoke test sized for `cargo miri test`.
//!
//! Miri interprets every load/store, so it is ~3-4 orders of magnitude
//! slower than native execution; under `cfg(miri)` the sizes shrink until
//! the test finishes in CI minutes while still crossing every unsafe
//! frontier at least once: raw node allocation/recycling, all nine
//! `NodeTag` layouts' mask/partial-key/value sections, the tagged-pointer
//! round trips, copy-on-write splits, removal collapses, the batched
//! descent, and the ROWEX protocol (locking, obsolete marking, epoch
//! deferral) under real threads.
//!
//! Run with the SIMD/BMI2 paths forced off — Miri has no PEXT/SSE
//! shims — exactly like the scalar-fallback CI job:
//!
//! ```text
//! HOT_FORCE_SCALAR=1 cargo +nightly miri test -p hot-core --test miri_smoke
//! ```

use hot_core::sync::ConcurrentHot;
use hot_core::HotTrie;
use hot_keys::{encode_u64, EmbeddedKeySource};
use std::sync::Arc;

/// Enough keys to grow past one node (> 32) and split repeatedly, small
/// enough for Miri; natively the test runs at 100x that.
const N: u64 = if cfg!(miri) { 160 } else { 16_000 };

/// Scrambled 63-bit value (TIDs lose bit 63 to the leaf tag); spreading
/// keys over the bit space makes several node layouts appear.
fn val(i: u64) -> u64 {
    i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left((i % 7) as u32 * 8) >> 1
}

/// The embedded-source key for [`val`]`(i)`.
fn key(i: u64) -> [u8; 8] {
    encode_u64(val(i))
}

#[test]
fn single_threaded_lifecycle() {
    let mut trie = HotTrie::new(EmbeddedKeySource);
    for i in 0..N {
        let k = val(i);
        assert_eq!(trie.insert(&key(i), k), None);
    }
    assert_eq!(trie.len(), N as usize);
    // Scalar and batched lookups agree.
    let keys: Vec<[u8; 8]> = (0..N).map(key).collect();
    let mut out = vec![None; keys.len()];
    trie.get_batch(&keys, &mut out);
    for (i, (k, got)) in keys.iter().zip(&out).enumerate() {
        let want = Some(val(i as u64));
        assert_eq!(trie.get(k), want);
        assert_eq!(*got, want);
    }
    // Ordered iteration and removal of every other key (collapse paths).
    let in_order: Vec<u64> = trie.iter().collect();
    assert_eq!(in_order.len(), N as usize);
    assert!(in_order.windows(2).all(|w| w[0] < w[1]));
    for i in (0..N).step_by(2) {
        let k = val(i);
        assert_eq!(trie.remove(&key(i)), Some(k));
    }
    assert_eq!(trie.len(), (N / 2) as usize);
    trie.check_invariants();
}

#[test]
fn concurrent_lifecycle() {
    // Threads under Miri are genuinely interleaved (and checked by its
    // data-race detector), so this exercises locking, copy-on-write
    // publication and epoch-deferred frees for real.
    let trie = Arc::new(ConcurrentHot::new(EmbeddedKeySource));
    let threads: u64 = if cfg!(miri) { 2 } else { 4 };
    let per = N / threads;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let trie = Arc::clone(&trie);
            std::thread::spawn(move || {
                for i in (t * per)..((t + 1) * per) {
                    let k = val(i);
                    trie.insert(&key(i), k);
                    assert_eq!(trie.get(&key(i)), Some(k));
                }
                for i in (t * per..(t + 1) * per).step_by(3) {
                    let k = val(i);
                    assert_eq!(trie.remove(&key(i)), Some(k));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let expect: u64 = per * threads - threads * per.div_ceil(3);
    assert_eq!(trie.len() as u64, expect);
    trie.check_invariants();
}
