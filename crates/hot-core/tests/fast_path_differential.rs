//! Differential test: the fused insert fast path must produce *identical*
//! trees to the general builder path, for every data set shape.

use hot_core::sync_shim::set_disable_insert_fast_path;
use hot_core::HotTrie;
use hot_keys::ArenaKeySource;
use hot_ycsb::{Dataset, DatasetKind};
use proptest::prelude::*;

fn build(keys: &[Vec<u8>], arena: &ArenaKeySource, tids: &[u64], fast: bool) -> u64 {
    set_disable_insert_fast_path(!fast);
    let mut t = HotTrie::new(arena);
    for (k, &tid) in keys.iter().zip(tids) {
        t.insert(k, tid);
    }
    t.validate();
    let digest = t.structure_digest();
    set_disable_insert_fast_path(false);
    digest
}

#[test]
fn fast_and_slow_paths_build_identical_trees() {
    for kind in DatasetKind::ALL {
        let data = Dataset::generate(kind, 20_000, 61);
        let mut arena = ArenaKeySource::new();
        let tids: Vec<u64> = data.keys.iter().map(|k| arena.push(k)).collect();
        let fast = build(&data.keys, &arena, &tids, true);
        let slow = build(&data.keys, &arena, &tids, false);
        assert_eq!(fast, slow, "paths diverge on {kind:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn differential_random_integers(keys in prop::collection::btree_set(0u64..1_000_000, 2..400)) {
        let encoded: Vec<Vec<u8>> = keys.iter().map(|&k| hot_keys::encode_u64(k).to_vec()).collect();
        let mut arena = ArenaKeySource::new();
        let tids: Vec<u64> = encoded.iter().map(|k| arena.push(k)).collect();
        prop_assert_eq!(
            build(&encoded, &arena, &tids, true),
            build(&encoded, &arena, &tids, false)
        );
    }

    #[test]
    fn differential_random_strings(words in prop::collection::btree_set("[a-d]{1,20}", 2..200)) {
        let encoded: Vec<Vec<u8>> = words
            .iter()
            .map(|w| hot_keys::str_key(w.as_bytes()).unwrap())
            .collect();
        let mut arena = ArenaKeySource::new();
        let tids: Vec<u64> = encoded.iter().map(|k| arena.push(k)).collect();
        prop_assert_eq!(
            build(&encoded, &arena, &tids, true),
            build(&encoded, &arena, &tids, false)
        );
    }
}
