//! Differential tests for the bottom-up bulk loader (DESIGN.md §11): a
//! bulk-loaded trie must be observationally identical to one built by
//! incremental COW inserts over the same key set — same `get` hits and
//! misses, same `iter`/`scan` sequences — and both must pass the whole-tree
//! invariant walk. Runs on integer-, email- and url-shaped keys, on the
//! single-threaded trie, the parallel builder and the ROWEX-synchronized
//! variant.

use hot_core::sync::ConcurrentHot;
use hot_core::{BulkLoadError, HotTrie};
use hot_keys::{encode_u64, ArenaKeySource, EmbeddedKeySource};
use proptest::prelude::*;
use std::sync::Arc;

/// Sorted, deduplicated `(key, tid)` pairs for embedded integer keys.
fn int_entries(keys: &[u64]) -> Vec<([u8; 8], u64)> {
    let mut sorted: Vec<u64> = keys.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.iter().map(|&k| (encode_u64(k), k)).collect()
}

/// Assert the two tries answer identically on hits, misses, iteration and
/// scans, and that both pass the invariant walk.
fn assert_equivalent<S: hot_keys::KeySource>(
    bulk: &HotTrie<S>,
    incr: &HotTrie<S>,
    probe_keys: &[Vec<u8>],
) {
    assert_eq!(bulk.len(), incr.len());
    for key in probe_keys {
        assert_eq!(bulk.get(key), incr.get(key), "get {key:?}");
    }
    let a: Vec<u64> = bulk.iter().collect();
    let b: Vec<u64> = incr.iter().collect();
    assert_eq!(a, b, "in-order iteration");
    for key in probe_keys.iter().step_by(7) {
        assert_eq!(bulk.scan(key, 20), incr.scan(key, 20), "scan from {key:?}");
    }
    let br = bulk.check_invariants();
    let ir = incr.check_invariants();
    assert_eq!(br.leaves, ir.leaves);
    // The bulk loader packs maximal nodes: its trie is never taller and its
    // nodes never emptier than the incremental build's.
    assert!(br.height <= ir.height, "bulk height {} > incremental {}", br.height, ir.height);
    assert!(
        br.avg_fill() >= ir.avg_fill() - f64::EPSILON,
        "bulk fill {} < incremental {}",
        br.avg_fill(),
        ir.avg_fill()
    );
}

proptest! {
    #[test]
    fn integer_bulk_equals_incremental(
        keys in proptest::collection::vec(any::<u64>().prop_map(|k| k % 200_000), 1..400),
        misses in proptest::collection::vec(200_000u64..210_000, 0..40),
        threads in 1usize..5,
    ) {
        let entries = int_entries(&keys);
        let mut bulk = HotTrie::new(EmbeddedKeySource);
        bulk.bulk_load_parallel(&entries, threads).unwrap();
        let mut incr = HotTrie::new(EmbeddedKeySource);
        for &k in &keys {
            incr.insert(&encode_u64(k), k);
        }
        let probes: Vec<Vec<u8>> = keys
            .iter()
            .chain(misses.iter())
            .map(|&k| encode_u64(k).to_vec())
            .collect();
        assert_equivalent(&bulk, &incr, &probes);
    }

    #[test]
    fn duplicate_keys_last_write_wins(
        picks in proptest::collection::vec((0u64..50, 0u64..1_000), 1..200),
    ) {
        // Sorted input with runs of duplicate keys and *distinct* TIDs: the
        // bulk result must match upserting in the same order. TIDs carry a
        // version in their low bits (see `VersionedSource`), so duplicate
        // keys map to different TIDs without breaking the KeySource
        // contract that `load_key(tid)` reproduces the inserted key.
        let mut entries: Vec<([u8; 8], u64)> = picks
            .iter()
            .map(|&(k, v)| (encode_u64(k), (k << 10) | v))
            .collect();
        entries.sort();
        let mut bulk = HotTrie::new(VersionedSource);
        bulk.bulk_load(&entries).unwrap();
        let mut incr = HotTrie::new(VersionedSource);
        for (key, tid) in &entries {
            incr.insert(key, *tid);
        }
        prop_assert_eq!(bulk.len(), incr.len());
        for (key, _) in &entries {
            prop_assert_eq!(bulk.get(key), incr.get(key));
        }
        bulk.check_invariants();
    }
}

/// Key source where the key is the TID's high bits: `tid = (key << 10) |
/// version`. Lets a test store the *same* key bytes under many distinct
/// TIDs while honoring the contract that `load_key(tid)` returns the key
/// that was inserted with `tid`.
struct VersionedSource;

impl hot_keys::KeySource for VersionedSource {
    fn load_key<'a>(
        &'a self,
        tid: u64,
        scratch: &'a mut [u8; hot_keys::KEY_SCRATCH_LEN],
    ) -> &'a [u8] {
        scratch[..8].copy_from_slice(&encode_u64(tid >> 10));
        &scratch[..8]
    }
}

/// String-shaped key generators: synthetic email- and url-like keys with
/// the shared-prefix structure the string data sets stress (Zipf-ish hosts
/// and names are irrelevant here; prefix sharing and varied lengths are
/// what the discriminative-bit machinery reacts to).
fn string_keys(shape: &str, n: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut state = seed | 1;
    let mut next = move |m: usize| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state as usize) % m
    };
    let names = ["alice", "bob", "carol", "dave", "erin", "frank"];
    let hosts = ["example.com", "mail.net", "db.org", "hot.io"];
    let dirs = ["papers", "idx", "trie", "sigmod", "x"];
    let mut keys: Vec<Vec<u8>> = (0..n * 2)
        .map(|_| {
            let mut s = String::new();
            match shape {
                "email" => {
                    s.push_str(names[next(names.len())]);
                    s.push('.');
                    s.push_str(names[next(names.len())]);
                    s.push_str(&next(1000).to_string());
                    s.push('@');
                    s.push_str(hosts[next(hosts.len())]);
                }
                _ => {
                    s.push_str("http://");
                    s.push_str(hosts[next(hosts.len())]);
                    for _ in 0..=next(4) {
                        s.push('/');
                        s.push_str(dirs[next(dirs.len())]);
                    }
                    s.push('/');
                    s.push_str(&next(10_000).to_string());
                }
            }
            let mut k = s.into_bytes();
            k.push(0); // prefix-free terminator
            k
        })
        .collect();
    keys.sort();
    keys.dedup();
    keys.truncate(n);
    keys
}

fn string_differential(shape: &str, threads: usize) {
    let keys = string_keys(shape, 3000, 0xB0B5 + threads as u64);
    let mut arena = ArenaKeySource::with_capacity(keys.len(), 32);
    let entries: Vec<(&[u8], u64)> = keys
        .iter()
        .map(|k| (k.as_slice(), 0))
        .zip(keys.iter().map(|k| arena.push(k)))
        .map(|((k, _), tid)| (k, tid))
        .collect();
    let arena = Arc::new(arena);

    let mut bulk = HotTrie::new(Arc::clone(&arena));
    bulk.bulk_load_parallel(&entries, threads).unwrap();
    let mut incr = HotTrie::new(Arc::clone(&arena));
    // Insert in a scrambled order: the comparison must hold regardless of
    // the incremental build's insertion history.
    let mut order: Vec<usize> = (0..entries.len()).collect();
    order.sort_by_key(|&i| (i.wrapping_mul(0x9E37_79B9)) % entries.len());
    for &i in &order {
        incr.insert(entries[i].0, entries[i].1);
    }
    let probes: Vec<Vec<u8>> = keys.clone();
    assert_equivalent(&bulk, &incr, &probes);
}

#[test]
fn email_bulk_equals_incremental() {
    string_differential("email", 1);
}

#[test]
fn email_bulk_parallel_equals_incremental() {
    string_differential("email", 4);
}

#[test]
fn url_bulk_equals_incremental() {
    string_differential("url", 1);
}

#[test]
fn url_bulk_parallel_equals_incremental() {
    string_differential("url", 4);
}

#[test]
fn parallel_build_is_structurally_identical_to_sequential() {
    // The parallel path builds the same parts the sequential expansion
    // would — the partition-fence root is byte-identical, so the whole
    // structure digest must match.
    let keys: Vec<u64> = (0..20_000u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 1)
        .collect();
    let entries = int_entries(&keys);
    let mut seq = HotTrie::new(EmbeddedKeySource);
    seq.bulk_load(&entries).unwrap();
    for threads in [2usize, 4, 8] {
        let mut par = HotTrie::new(EmbeddedKeySource);
        par.bulk_load_parallel(&entries, threads).unwrap();
        assert_eq!(par.structure_digest(), seq.structure_digest(), "threads={threads}");
        assert_eq!(
            par.memory_stats().node_bytes,
            seq.memory_stats().node_bytes,
            "threads={threads}"
        );
    }
}

#[test]
fn unsorted_input_is_rejected_without_building() {
    let mut trie = HotTrie::new(EmbeddedKeySource);
    let entries = vec![
        (encode_u64(10), 10),
        (encode_u64(5), 5),
        (encode_u64(20), 20),
    ];
    assert_eq!(
        trie.bulk_load(&entries),
        Err(BulkLoadError::Unsorted { index: 1 })
    );
    assert_eq!(trie.len(), 0);
    assert_eq!(trie.get(&encode_u64(10)), None);
    assert_eq!(trie.memory_stats().node_bytes, 0, "nothing leaked");
    // The trie is still usable for a correct bulk load afterwards.
    trie.bulk_load(&int_entries(&[5, 10, 20])).unwrap();
    assert_eq!(trie.len(), 3);
    trie.check_invariants();
}

#[test]
fn non_empty_trie_is_rejected() {
    let mut trie = HotTrie::new(EmbeddedKeySource);
    trie.insert(&encode_u64(1), 1);
    assert_eq!(
        trie.bulk_load(&int_entries(&[2, 3])),
        Err(BulkLoadError::NotEmpty)
    );
    assert_eq!(trie.len(), 1);
}

#[test]
fn empty_and_tiny_inputs() {
    let mut trie = HotTrie::new(EmbeddedKeySource);
    assert_eq!(trie.bulk_load(&int_entries(&[])), Ok(0));
    assert!(trie.is_empty());
    assert_eq!(trie.bulk_load(&int_entries(&[77])), Ok(1));
    assert_eq!(trie.get(&encode_u64(77)), Some(77));
    trie.check_invariants();

    let mut two = HotTrie::new(EmbeddedKeySource);
    assert_eq!(two.bulk_load(&int_entries(&[1, 2])), Ok(2));
    assert_eq!(two.iter().collect::<Vec<_>>(), vec![1, 2]);
    two.check_invariants();
}

#[test]
fn concurrent_bulk_load_single_publish() {
    let entries = int_entries(&(0..5_000u64).map(|i| i * 3).collect::<Vec<_>>());
    let trie = ConcurrentHot::new(EmbeddedKeySource);
    assert_eq!(trie.bulk_load_parallel(&entries, 4), Ok(entries.len()));
    assert_eq!(trie.len(), entries.len());
    for (key, tid) in &entries {
        assert_eq!(trie.get(key), Some(*tid));
    }
    assert_eq!(trie.scan(&encode_u64(0), 10).len(), 10);
    trie.check_invariants();
    // Second bulk load must refuse: the root is already published.
    assert_eq!(trie.bulk_load(&entries), Err(BulkLoadError::NotEmpty));
    // And so must a bulk load racing an earlier insert.
    let busy = ConcurrentHot::new(EmbeddedKeySource);
    busy.insert(&encode_u64(9), 9);
    assert_eq!(busy.bulk_load(&entries), Err(BulkLoadError::NotEmpty));
}

/// Satellite: bulk-loaded footprint is never larger than the incremental
/// build's at 100 k keys (`MemCounter` accounting must cover every node the
/// bulk path allocates — and only those).
#[test]
fn bulk_footprint_at_100k_is_at_most_incremental() {
    let keys: Vec<u64> = (0..100_000u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 1)
        .collect();
    let entries = int_entries(&keys);

    let mut bulk = HotTrie::new(EmbeddedKeySource);
    bulk.bulk_load(&entries).unwrap();
    let mut incr = HotTrie::new(EmbeddedKeySource);
    for &k in &keys {
        incr.insert(&encode_u64(k), k);
    }

    let b = bulk.memory_stats();
    let i = incr.memory_stats();
    assert_eq!(b.key_count, i.key_count);
    assert!(
        b.node_bytes <= i.node_bytes,
        "bulk footprint {} exceeds incremental {}",
        b.node_bytes,
        i.node_bytes
    );
    assert!(
        b.node_count <= i.node_count,
        "bulk node count {} exceeds incremental {}",
        b.node_count,
        i.node_count
    );
    // And the counter is exact: freeing the trie returns it to zero
    // (checked by HotTrie::drop's debug assertion), while the invariant
    // walk re-counts live nodes against it.
    let report = bulk.check_invariants();
    assert_eq!(report.nodes, b.node_count);
}
