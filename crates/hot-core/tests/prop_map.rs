//! Property tests: `HotMap` behaves exactly like `BTreeMap<Vec<u8>, V>` for
//! arbitrary operation sequences (including value ownership semantics), and
//! its bounded ranges match the model's.

use hot_core::HotMap;
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(String, u32),
    Remove(String),
    Get(String),
    GetMutAdd(String, u32),
    Range(String, String),
}

fn key_strategy() -> impl Strategy<Value = String> {
    // Small alphabet: heavy prefix sharing and collisions.
    "[abc]{1,10}"
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (key_strategy(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v)),
        2 => key_strategy().prop_map(Op::Remove),
        2 => key_strategy().prop_map(Op::Get),
        1 => (key_strategy(), any::<u32>()).prop_map(|(k, v)| Op::GetMutAdd(k, v)),
        1 => (key_strategy(), key_strategy()).prop_map(|(a, b)| Op::Range(a, b)),
    ]
}

fn enc(s: &str) -> Vec<u8> {
    hot_keys::str_key(s.as_bytes()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matches_btreemap(ops in prop::collection::vec(op_strategy(), 1..300)) {
        let mut map: HotMap<u32> = HotMap::new();
        let mut model: BTreeMap<Vec<u8>, u32> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(map.insert(&enc(&k), v), model.insert(enc(&k), v));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(map.remove(&enc(&k)), model.remove(&enc(&k)));
                }
                Op::Get(k) => {
                    prop_assert_eq!(map.get(&enc(&k)), model.get(&enc(&k)));
                }
                Op::GetMutAdd(k, delta) => {
                    let a = map.get_mut(&enc(&k)).map(|v| {
                        *v = v.wrapping_add(delta);
                        *v
                    });
                    let b = model.get_mut(&enc(&k)).map(|v| {
                        *v = v.wrapping_add(delta);
                        *v
                    });
                    prop_assert_eq!(a, b);
                }
                Op::Range(a, b) => {
                    let (lo, hi) = if enc(&a) <= enc(&b) { (enc(&a), enc(&b)) } else { (enc(&b), enc(&a)) };
                    let got: Vec<(Vec<u8>, u32)> = map
                        .range(&lo, &hi)
                        .map(|(k, &v)| (k.to_vec(), v))
                        .collect();
                    let want: Vec<(Vec<u8>, u32)> = model
                        .range(lo..hi)
                        .map(|(k, &v)| (k.clone(), v))
                        .collect();
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(map.len(), model.len());
        }
        map.validate();
        let got: Vec<(Vec<u8>, u32)> = map.iter().map(|(k, &v)| (k.to_vec(), v)).collect();
        let want: Vec<(Vec<u8>, u32)> = model.iter().map(|(k, &v)| (k.clone(), v)).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn drop_semantics_under_churn(
        keys in prop::collection::vec(key_strategy(), 1..100),
    ) {
        // Every inserted Rc must be released exactly once across upserts,
        // removals and the final drop.
        use std::rc::Rc;
        let probe = Rc::new(());
        {
            let mut map: HotMap<Rc<()>> = HotMap::new();
            let mut live = std::collections::BTreeSet::new();
            for (i, k) in keys.iter().enumerate() {
                if i % 3 == 2 {
                    map.remove(&enc(k));
                    live.remove(&enc(k));
                } else {
                    map.insert(&enc(k), Rc::clone(&probe));
                    live.insert(enc(k));
                }
                prop_assert_eq!(Rc::strong_count(&probe), live.len() + 1);
            }
        }
        prop_assert_eq!(Rc::strong_count(&probe), 1);
    }
}
