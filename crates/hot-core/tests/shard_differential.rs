//! Differential tests for the sharded execution layer (DESIGN.md §17):
//! every batch routed through [`ShardedHot`] must be **byte-identical**
//! — same hits, same misses, same TIDs in the same order, same scan
//! bounds — to a single [`ConcurrentHot`] holding the same keys, across
//! four key distributions (URL, email, YAGO-triple, integer), shard
//! counts {1, 2, 4, 8}, both load paths (sorted bulk load and routed
//! inserts), scans whose ranges cross shard boundaries, the pooled
//! worker configuration, and concurrent churn. The whole file is also
//! exercised in the `HOT_FORCE_SCALAR` and `HOT_ARENA=1` CI lanes:
//! routing answers must not depend on either override.

use hot_core::shard::ShardedHot;
use hot_core::sync::ConcurrentHot;
use hot_core::{splitters_from_sample, BatchRequest, RouterScratch};
use hot_keys::{encode_u64, ArenaKeySource};
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Shard counts spanning the interesting range: 1 is the degenerate
/// single-trie configuration (classification must be a no-op), 8 gives
/// thin shards where boundary effects dominate.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// FNV-1a over a result stream — the "checksums identical" acceptance
/// criterion reduced to one word per batch.
fn fnv1a(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn checksum_out(out: &[Option<u64>]) -> u64 {
    fnv1a(out.iter().map(|s| s.map_or(u64::MAX, |t| t.wrapping_add(1))))
}

/// The four key distributions of the paper's evaluation, miniaturized:
/// URLs share long common prefixes (the classifier's worst case — long
/// splitter ties), emails discriminate mid-key, YAGO triples are short
/// and dense, integers are fixed-width binary.
fn datasets() -> Vec<(&'static str, Vec<Vec<u8>>)> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x0007_D15C);
    let hosts = ["cs.uni-example.org", "db.example.com", "example.net"];
    let url: Vec<Vec<u8>> = (0..2_500u32)
        .map(|i| {
            let mut k = format!(
                "https://{}/path/{:02}/item-{:06}?v={}",
                hosts[(i % 3) as usize],
                i % 17,
                i,
                rng.gen_range(0..100u32)
            )
            .into_bytes();
            k.push(0);
            k
        })
        .collect();
    let email: Vec<Vec<u8>> = (0..2_500u32)
        .map(|i| {
            let mut k = format!("user{:05}@dept{}.example.org", i, i % 23).into_bytes();
            k.push(0);
            k
        })
        .collect();
    let yago: Vec<Vec<u8>> = (0..2_500u32)
        .map(|i| {
            let mut k = format!("e{:06}\trel{:02}", i * 7 % 100_000, i % 40).into_bytes();
            k.push(0);
            k.push((i / 4_000) as u8 + 1);
            k.push(0);
            k
        })
        .collect();
    let integer: Vec<Vec<u8>> = (0..2_500u64).map(|i| encode_u64(i * 3).to_vec()).collect();
    vec![("url", url), ("email", email), ("yago", yago), ("integer", integer)]
}

/// Probe set: every inserted key, plus mutated misses, shuffled so the
/// router's per-shard queues fill in interleaved (not run-length) order.
fn probes_for(keys: &[Vec<u8>], rng: &mut impl Rng) -> Vec<Vec<u8>> {
    let mut probes: Vec<Vec<u8>> = keys.to_vec();
    probes.extend(keys.iter().step_by(5).map(|k| {
        let mut m = k.clone();
        let mid = m.len() / 2;
        m[mid] ^= 0x15;
        m
    }));
    for i in (1..probes.len()).rev() {
        probes.swap(i, rng.gen_range(0..=i));
    }
    probes
}

struct Fixture {
    name: &'static str,
    keys: Vec<Vec<u8>>,
    single: ConcurrentHot<Arc<ArenaKeySource>>,
    arena: Arc<ArenaKeySource>,
    tids: Vec<u64>,
    probes: Vec<Vec<u8>>,
}

impl Fixture {
    /// Sorted `(key, tid)` view for bulk loading.
    fn entries(&self) -> Vec<(&[u8], u64)> {
        let mut entries: Vec<(&[u8], u64)> = self
            .keys
            .iter()
            .map(|k| k.as_slice())
            .zip(self.tids.iter().copied())
            .collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        entries
    }
}

fn fixtures() -> Vec<Fixture> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xBEE5);
    datasets()
        .into_iter()
        .map(|(name, keys)| {
            let mut arena = ArenaKeySource::new();
            let tids: Vec<u64> = keys.iter().map(|k| arena.push(k)).collect();
            let arena = Arc::new(arena);
            let single = ConcurrentHot::new(Arc::clone(&arena));
            for (k, &tid) in keys.iter().zip(&tids) {
                single.insert(k, tid);
            }
            let probes = probes_for(&keys, &mut rng);
            Fixture { name, keys, single, arena, tids, probes }
        })
        .collect()
}

#[test]
fn routed_lookups_byte_identical_across_shard_counts_and_load_paths() {
    for fx in fixtures() {
        let expected: Vec<Option<u64>> = fx.probes.iter().map(|k| fx.single.get(k)).collect();
        let want = checksum_out(&expected);
        let entries = fx.entries();

        for shards in SHARD_COUNTS {
            // Bulk-loaded: splitters derived from the full population.
            let bulk = ShardedHot::inline_router(Arc::clone(&fx.arena), shards);
            assert_eq!(bulk.bulk_load(&entries).unwrap(), entries.len());
            assert_eq!(bulk.len(), fx.single.len(), "{}: bulk load count", fx.name);

            // Insert-loaded: same splitters installed up front, every key
            // routed through the scalar insert path.
            let sample: Vec<&[u8]> = entries.iter().map(|&(k, _)| k).collect();
            let routed = ShardedHot::with_splitters(
                Arc::clone(&fx.arena),
                splitters_from_sample(&sample, shards),
            );
            for (k, &tid) in fx.keys.iter().zip(&fx.tids) {
                assert_eq!(routed.insert(k, tid), None, "{}: fresh insert", fx.name);
            }

            let probe_refs: Vec<&[u8]> = fx.probes.iter().map(|k| k.as_slice()).collect();
            let mut scratch = RouterScratch::new();
            for sharded in [&bulk, &routed] {
                // Scalar gets agree key by key.
                for (k, slot) in fx.probes.iter().zip(&expected).step_by(97) {
                    assert_eq!(sharded.get(k), *slot, "{}: scalar get s={shards}", fx.name);
                }
                // Batched gets are byte-identical, twice (scratch reuse
                // must not leak state between batches).
                for _ in 0..2 {
                    let mut out = vec![None; fx.probes.len()];
                    sharded.get_batch_with(&probe_refs, &mut out, &mut scratch);
                    assert_eq!(checksum_out(&out), want, "{}: routed s={shards}", fx.name);
                    assert_eq!(out, expected, "{}: routed results s={shards}", fx.name);
                }
            }
            // Both load paths place the same keys in the same shards.
            for s in 0..shards {
                assert_eq!(
                    bulk.shard(s).len(),
                    routed.shard(s).len(),
                    "{}: load paths agree on shard {s}/{shards} population",
                    fx.name
                );
            }
        }
    }
}

#[test]
fn scans_cross_shard_boundaries_byte_identical() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5CA7);
    for fx in fixtures() {
        let entries = fx.entries();
        for shards in SHARD_COUNTS {
            let sharded = ShardedHot::inline_router(Arc::clone(&fx.arena), shards);
            sharded.bulk_load(&entries).unwrap();

            // Seed scans at shuffled probes AND directly below each
            // splitter, with limits long enough that a span starting near
            // a boundary must continue into the next shard(s). The last
            // shard's keys also get limits overshooting the key space.
            let mut requests: Vec<(Vec<u8>, usize)> = fx
                .probes
                .iter()
                .step_by(3)
                .map(|k| (k.clone(), rng.gen_range(0..48usize)))
                .collect();
            for sp in sharded.splitters() {
                let mut just_below = sp.clone();
                just_below.pop();
                requests.push((just_below, 64));
                requests.push((sp.clone(), entries.len() / shards + 7));
            }

            // Scalar ground truth from the single trie.
            let mut want_tids = Vec::new();
            let mut want_bounds = vec![0usize];
            let mut buf = Vec::new();
            for (k, limit) in &requests {
                fx.single.scan_into(k, *limit, &mut buf);
                want_tids.extend_from_slice(&buf);
                want_bounds.push(want_tids.len());
            }

            // Scalar sharded scans continue across boundaries.
            for ((k, limit), span) in requests.iter().zip(want_bounds.windows(2)) {
                fx.single.scan_into(k, *limit, &mut buf);
                let mut got = Vec::new();
                sharded.scan_into(k, *limit, &mut got);
                assert_eq!(got, buf, "{}: scalar scan s={shards}", fx.name);
                assert_eq!(got.len(), span[1] - span[0]);
            }

            // Batched sharded scans are byte-identical in request order.
            let reqs: Vec<(&[u8], usize)> =
                requests.iter().map(|(k, l)| (k.as_slice(), *l)).collect();
            let mut scratch = RouterScratch::new();
            let (mut tids, mut bounds) = (Vec::new(), Vec::new());
            sharded.scan_batch(&reqs, &mut tids, &mut bounds, &mut scratch);
            assert_eq!(tids, want_tids, "{}: scan tids s={shards}", fx.name);
            assert_eq!(bounds, want_bounds, "{}: scan bounds s={shards}", fx.name);
        }
    }
}

#[test]
fn mixed_batches_and_removals_match_the_single_trie() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x111D);
    for fx in fixtures() {
        let entries = fx.entries();
        for shards in [2usize, 8] {
            let sharded = ShardedHot::inline_router(Arc::clone(&fx.arena), shards);
            sharded.bulk_load(&entries).unwrap();

            // Alternating get/scan stream, scalar ground truth in order.
            let limits: Vec<usize> = fx.probes.iter().map(|_| rng.gen_range(0..9)).collect();
            let reqs: Vec<BatchRequest> = fx
                .probes
                .iter()
                .zip(&limits)
                .enumerate()
                .map(|(i, (k, &limit))| {
                    if i % 2 == 0 {
                        BatchRequest::Get(k.as_slice())
                    } else {
                        BatchRequest::Scan(k.as_slice(), limit)
                    }
                })
                .collect();
            let mut want_out: Vec<Option<u64>> = vec![None; reqs.len()];
            let mut want_tids = Vec::new();
            let mut want_bounds = vec![0usize];
            let mut buf = Vec::new();
            for (i, req) in reqs.iter().enumerate() {
                match req {
                    BatchRequest::Get(k) => want_out[i] = fx.single.get(k),
                    BatchRequest::Scan(k, limit) => {
                        fx.single.scan_into(k, *limit, &mut buf);
                        want_tids.extend_from_slice(&buf);
                        want_bounds.push(want_tids.len());
                    }
                }
            }
            let mut scratch = RouterScratch::new();
            let mut out = vec![None; reqs.len()];
            let (mut tids, mut bounds) = (Vec::new(), Vec::new());
            sharded.mixed_batch(&reqs, &mut out, &mut tids, &mut bounds, &mut scratch);
            assert_eq!(out, want_out, "{}: mixed gets s={shards}", fx.name);
            assert_eq!(tids, want_tids, "{}: mixed scan tids s={shards}", fx.name);
            assert_eq!(bounds, want_bounds, "{}: mixed scan bounds s={shards}", fx.name);

            // Removals (hits, misses, and an in-batch duplicate) answer
            // exactly like sequential removes on a single trie, and the
            // post-state agrees key by key.
            let oracle = ConcurrentHot::new(Arc::clone(&fx.arena));
            for (k, &tid) in fx.keys.iter().zip(&fx.tids) {
                oracle.insert(k, tid);
            }
            let mut victims: Vec<Vec<u8>> = fx.probes.iter().step_by(4).cloned().collect();
            let dup = victims[0].clone();
            victims.push(dup);
            let expected: Vec<Option<u64>> = victims.iter().map(|k| oracle.remove(k)).collect();
            let victim_refs: Vec<&[u8]> = victims.iter().map(|k| k.as_slice()).collect();
            let mut removed = vec![None; victims.len()];
            sharded.remove_batch(&victim_refs, &mut removed, &mut scratch);
            assert_eq!(removed, expected, "{}: remove_batch s={shards}", fx.name);
            for k in &victims {
                assert_eq!(sharded.get(k), oracle.get(k), "{}: post-remove", fx.name);
            }
            assert_eq!(sharded.len(), oracle.len(), "{}: post-remove sizes", fx.name);
        }
    }
}

#[test]
fn pooled_workers_agree_with_the_inline_router() {
    // Same data, same shard count: the worker-pool configuration (pin
    // disabled for CI determinism) and the inline router must produce
    // identical batches — they share the partition, not the drive path.
    for fx in fixtures().into_iter().take(2) {
        let entries = fx.entries();
        let shards = 4;
        let inline = ShardedHot::inline_router(Arc::clone(&fx.arena), shards);
        inline.bulk_load(&entries).unwrap();
        let pooled = ShardedHot::with_config(Arc::clone(&fx.arena), shards, true, false);
        pooled.bulk_load(&entries).unwrap();
        assert_eq!(pooled.worker_cores().len(), shards, "{}: one worker per shard", fx.name);

        let probe_refs: Vec<&[u8]> = fx.probes.iter().map(|k| k.as_slice()).collect();
        let mut scratch_a = RouterScratch::new();
        let mut scratch_b = RouterScratch::new();
        let mut out_a = vec![None; probe_refs.len()];
        let mut out_b = vec![None; probe_refs.len()];
        inline.get_batch_with(&probe_refs, &mut out_a, &mut scratch_a);
        pooled.get_batch_with(&probe_refs, &mut out_b, &mut scratch_b);
        assert_eq!(out_a, out_b, "{}: pooled vs inline gets", fx.name);

        let reqs: Vec<(&[u8], usize)> =
            probe_refs.iter().step_by(5).map(|&k| (k, 17usize)).collect();
        let (mut tids_a, mut bounds_a) = (Vec::new(), Vec::new());
        let (mut tids_b, mut bounds_b) = (Vec::new(), Vec::new());
        inline.scan_batch(&reqs, &mut tids_a, &mut bounds_a, &mut scratch_a);
        pooled.scan_batch(&reqs, &mut tids_b, &mut bounds_b, &mut scratch_b);
        assert_eq!(tids_a, tids_b, "{}: pooled vs inline scan tids", fx.name);
        assert_eq!(bounds_a, bounds_b, "{}: pooled vs inline scan bounds", fx.name);
    }
}

#[test]
fn concurrent_churn_preserves_stable_keys_and_quiesced_equality() {
    // Writers churn odd keys through routed scalar inserts/removes while
    // a reader batches lookups over even (stable) keys: stable lookups
    // must always hit with their exact TID regardless of which shard a
    // churned key lands in. Splitters are installed up front so routing
    // never changes mid-churn.
    const STABLE: u64 = 4_000;
    const CHURN_ROUNDS: usize = 40;

    let stable_keys: Vec<[u8; 8]> = (0..STABLE).map(|k| encode_u64(k * 2)).collect();
    let sample: Vec<&[u8]> = stable_keys.iter().map(|k| k.as_slice()).collect();
    let sharded = Arc::new(ShardedHot::with_splitters(
        hot_keys::EmbeddedKeySource,
        splitters_from_sample(&sample, 4),
    ));
    for k in 0..STABLE {
        sharded.insert(&encode_u64(k * 2), k * 2);
    }

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    std::thread::scope(|scope| {
        for t in 0..2u64 {
            let sharded = Arc::clone(&sharded);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut rng = rand::rngs::StdRng::seed_from_u64(77 + t);
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let k = rng.gen_range(0..STABLE) * 2 + 1;
                    if rng.gen_bool(0.5) {
                        sharded.insert(&encode_u64(k), k);
                    } else {
                        sharded.remove(&encode_u64(k));
                    }
                }
            });
        }

        let mut rng = rand::rngs::StdRng::seed_from_u64(0xABBA);
        let mut scratch = RouterScratch::new();
        for _ in 0..CHURN_ROUNDS {
            let probes: Vec<[u8; 8]> = (0..512)
                .map(|_| encode_u64(rng.gen_range(0..STABLE) * 2))
                .collect();
            let probe_refs: Vec<&[u8]> = probes.iter().map(|p| p.as_slice()).collect();
            let mut out = vec![None; probes.len()];
            sharded.get_batch_with(&probe_refs, &mut out, &mut scratch);
            for (p, got) in probes.iter().zip(&out) {
                let want = u64::from_be_bytes(*p);
                assert_eq!(*got, Some(want), "stable key lost under churn");
            }
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });

    // Quiesced: routed batches and per-shard scalar gets agree over the
    // whole key space, and every present key lives in the shard the
    // partition names.
    let probes: Vec<[u8; 8]> = (0..STABLE * 2 + 64).map(encode_u64).collect();
    let probe_refs: Vec<&[u8]> = probes.iter().map(|p| p.as_slice()).collect();
    let expected: Vec<Option<u64>> = probes.iter().map(|k| sharded.get(k)).collect();
    let mut out = vec![None; probes.len()];
    let mut scratch = RouterScratch::new();
    sharded.get_batch_with(&probe_refs, &mut out, &mut scratch);
    assert_eq!(checksum_out(&out), checksum_out(&expected));
    assert_eq!(out, expected);
    for (p, slot) in probes.iter().zip(&expected) {
        if slot.is_some() {
            let s = sharded.shard_of(p);
            assert_eq!(sharded.shard(s).get(p), *slot, "key lives in its shard");
        }
    }
}
