//! Model-checked interleavings of the ROWEX synchronization protocol
//! (paper Section 5), run under the vendored loom stand-in.
//!
//! Build with either switch (they are equivalent):
//!
//! ```text
//! cargo test -p hot-core --features loom-model --release --test loom_rowex
//! RUSTFLAGS="--cfg loom" cargo test -p hot-core --release --test loom_rowex
//! ```
//!
//! Each scenario re-executes its closure under every schedule the bounded
//! DFS explores (CHESS-style preemption bounding, default bound 2 —
//! empirically the bound that finds almost all real concurrency bugs).
//! Every atomic operation on the protocol's words (root, lock words, value
//! slots, len) is a scheduler decision point, so these tests exhaustively
//! cover, up to the bound, the interleavings the paper's Section 5
//! arguments are about:
//!
//! * `insert_insert_same_affected_set` — two writers mutating one node:
//!   "updating a single ... pointer by a single CAS operation is not
//!   sufficient", both writers must serialize through the lock word;
//! * `reader_descends_obsolete_node` — a wait-free reader racing a writer
//!   that replaces (and marks obsolete) the node the reader is in;
//! * `lock_ordering_multi_level` — writers whose affected sets span
//!   parent+leaf levels in a height-2 trie, exercising the bottom-up
//!   acquisition / top-down release order and obsolete revalidation;
//! * `root_cas_growth` — two writers racing the root CAS on an empty
//!   trie (leaf root → first compound node);
//! * `insert_vs_remove` — structure modification racing structure
//!   shrinkage over the same node.
//!
//! Each closure ends (on every explored schedule) by asserting lookups
//! and, where the trie is quiesced, whole-trie
//! [`check_invariants`](hot_core::sync::ConcurrentHot::check_invariants).
//! The stand-in explores sequentially-consistent interleavings only;
//! weak-memory-order bugs are covered by the Miri and TSan CI jobs
//! (DESIGN.md §10).

#![cfg(any(loom, feature = "loom-model"))]

use hot_core::sync::ConcurrentHot;
use hot_keys::{encode_u64, EmbeddedKeySource};
use loom::sync::Arc;
use loom::thread;

/// A model `Builder` sized for trie scenarios: the default preemption
/// bound, but a schedule cap so heavyweight scenarios stay in CI budget
/// (the cap is reported on stderr when hit).
fn builder(max_iterations: u64) -> loom::Builder {
    let mut b = loom::Builder::new();
    if b.max_iterations == 0 || b.max_iterations > max_iterations {
        b.max_iterations = max_iterations;
    }
    b
}

fn trie_with(keys: &[u64]) -> Arc<ConcurrentHot<EmbeddedKeySource>> {
    let trie = ConcurrentHot::new(EmbeddedKeySource);
    for &k in keys {
        trie.insert(&encode_u64(k), k);
    }
    Arc::new(trie)
}

fn assert_contains(trie: &ConcurrentHot<EmbeddedKeySource>, keys: &[u64]) {
    for &k in keys {
        assert_eq!(
            trie.get(&encode_u64(k)),
            Some(k),
            "key {k} must be present"
        );
    }
}

/// Two writers insert keys that land in the same compound node (the whole
/// trie is one root node), so their affected sets are identical. One must
/// win the lock word; the other must back off, re-analyze against the
/// already-modified node and still insert correctly.
#[test]
fn insert_insert_same_affected_set() {
    builder(40_000).check(|| {
        let trie = trie_with(&[0, 3]);
        let a = Arc::clone(&trie);
        let b = Arc::clone(&trie);
        let ta = thread::spawn(move || {
            a.insert(&encode_u64(1), 1);
        });
        let tb = thread::spawn(move || {
            b.insert(&encode_u64(2), 2);
        });
        ta.join().unwrap();
        tb.join().unwrap();
        assert_eq!(trie.len(), 4);
        assert_contains(&trie, &[0, 1, 2, 3]);
        trie.check_invariants();
    });
}

/// A wait-free reader races a writer whose copy-on-write replaces the node
/// the reader may currently be descending (the old node is marked obsolete
/// and retired). The reader must find its key on every schedule — either
/// through the old node (kept alive by its epoch pin) or the new one.
#[test]
fn reader_descends_obsolete_node() {
    builder(40_000).check(|| {
        let trie = trie_with(&[10, 20, 30]);
        let writer = Arc::clone(&trie);
        let reader = Arc::clone(&trie);
        let tw = thread::spawn(move || {
            writer.insert(&encode_u64(25), 25);
        });
        let tr = thread::spawn(move || {
            assert_eq!(reader.get(&encode_u64(10)), Some(10));
            assert_eq!(reader.get(&encode_u64(30)), Some(30));
            // 25 is being inserted concurrently: either outcome is
            // linearizable, but a wrong value never is.
            let racing = reader.get(&encode_u64(25));
            assert!(racing.is_none() || racing == Some(25));
        });
        tw.join().unwrap();
        tr.join().unwrap();
        assert_contains(&trie, &[10, 20, 25, 30]);
        trie.check_invariants();
    });
}

/// Writers in a height-2 trie (a root over two leaf-level compound nodes,
/// built by overflowing a 32-entry root) whose affected sets span levels.
/// Exercises `lock_levels`' bottom-up acquisition, the obsolete
/// revalidation between analyze and apply, and top-down release.
#[test]
fn lock_ordering_multi_level() {
    // The pre-population (33 single-threaded inserts) makes each schedule
    // expensive; a tighter schedule cap keeps the test inside CI budget
    // while still exploring thousands of interleavings of the two writers.
    builder(6_000).check(|| {
        let keys: Vec<u64> = (0..33).map(|i| i * 2).collect();
        let trie = trie_with(&keys);
        let a = Arc::clone(&trie);
        let b = Arc::clone(&trie);
        // Both keys land in the same leaf-level node of the grown trie, so
        // the writers' multi-level affected sets overlap.
        let ta = thread::spawn(move || {
            a.insert(&encode_u64(1), 1);
        });
        let tb = thread::spawn(move || {
            b.insert(&encode_u64(3), 3);
        });
        ta.join().unwrap();
        tb.join().unwrap();
        assert_eq!(trie.len(), 35);
        assert_contains(&trie, &[0, 1, 2, 3, 4, 64]);
        trie.check_invariants();
    });
}

/// Two writers race the root word itself on an empty trie: NULL → leaf
/// (first insert) and leaf → compound node (second insert) are both plain
/// CAS transitions with no lock to take. Exactly one CAS wins each step;
/// the loser must retry against the new root without losing its key.
#[test]
fn root_cas_growth() {
    builder(40_000).check(|| {
        let trie = Arc::new(ConcurrentHot::new(EmbeddedKeySource));
        let a = Arc::clone(&trie);
        let b = Arc::clone(&trie);
        let ta = thread::spawn(move || {
            a.insert(&encode_u64(7), 7);
        });
        let tb = thread::spawn(move || {
            b.insert(&encode_u64(9), 9);
        });
        ta.join().unwrap();
        tb.join().unwrap();
        assert_eq!(trie.len(), 2);
        assert_contains(&trie, &[7, 9]);
        trie.check_invariants();
    });
}

/// An insert races a remove on the same node: the remove's collapse path
/// (2-entry node → surviving child) and the insert's copy-on-write must
/// serialize through the lock words without losing either update.
#[test]
fn insert_vs_remove() {
    builder(40_000).check(|| {
        let trie = trie_with(&[5, 6, 7]);
        let ins = Arc::clone(&trie);
        let del = Arc::clone(&trie);
        let ti = thread::spawn(move || {
            ins.insert(&encode_u64(4), 4);
        });
        let td = thread::spawn(move || {
            assert_eq!(del.remove(&encode_u64(6)), Some(6));
        });
        ti.join().unwrap();
        td.join().unwrap();
        assert_eq!(trie.len(), 3);
        assert_contains(&trie, &[4, 5, 7]);
        assert_eq!(trie.get(&encode_u64(6)), None);
        trie.check_invariants();
    });
}
