//! Delete-heavy differential property tests with whole-trie invariant
//! checking.
//!
//! The existing `prop_model.rs` checks *behavioral* equivalence with a
//! `BTreeMap` and validates once at the end; these tests target the
//! *structural* claims instead. Removal is the trickiest structure
//! modification (entry removal, 2-entry node collapse, leaf-root
//! shrinkage, stale ancestor heights), so operations here are weighted
//! delete-heavy and the whole-tree
//! [`try_check_invariants`](hot_core::HotTrie::try_check_invariants) walk
//! runs after **every mutation batch**, turning any structural corruption
//! into a shrinkable counterexample at the batch that introduced it.

use hot_core::sync::ConcurrentHot;
use hot_core::HotTrie;
use hot_keys::{encode_u64, EmbeddedKeySource};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64),
    Remove(u64),
}

/// Delete-heavy mix over a small domain: plenty of hits, repeated
/// remove/re-insert of the same keys, frequent node collapses.
fn op(domain: u64) -> impl Strategy<Value = Op> {
    let key = 0..domain;
    prop_oneof![
        2 => key.clone().prop_map(Op::Insert),
        3 => key.prop_map(Op::Remove),
    ]
}

/// Batches of mutations; the invariant walk runs between batches.
fn batches(domain: u64) -> impl Strategy<Value = Vec<Vec<Op>>> {
    prop::collection::vec(prop::collection::vec(op(domain), 1..24), 1..24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn trie_invariants_hold_under_deletions(batches in batches(512)) {
        let mut hot = HotTrie::new(EmbeddedKeySource);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        // Start from a populated tree so early batches delete from real
        // structure instead of no-opping on an empty one.
        for k in (0..512).step_by(3) {
            hot.insert(&encode_u64(k), k);
            model.insert(k, k);
        }
        for batch in batches {
            for op in batch {
                match op {
                    Op::Insert(k) => {
                        prop_assert_eq!(hot.insert(&encode_u64(k), k), model.insert(k, k));
                    }
                    Op::Remove(k) => {
                        prop_assert_eq!(hot.remove(&encode_u64(k)), model.remove(&k));
                    }
                }
            }
            if let Err(msg) = hot.try_check_invariants() {
                return Err(TestCaseError::fail(format!("invariant violated: {msg}")));
            }
            prop_assert_eq!(hot.len(), model.len());
        }
        prop_assert_eq!(
            hot.iter().collect::<Vec<_>>(),
            model.values().copied().collect::<Vec<_>>()
        );
    }

    #[test]
    fn concurrent_trie_invariants_hold_under_deletions(batches in batches(512)) {
        // Single-threaded driver over the concurrent index: exercises the
        // ROWEX insert/remove code paths (copy-on-write, retire, root CAS)
        // and checks the lock-word invariant (all words unlocked,
        // non-obsolete) that the single-threaded trie doesn't have.
        let hot = ConcurrentHot::new(EmbeddedKeySource);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for k in (0..512).step_by(3) {
            hot.insert(&encode_u64(k), k);
            model.insert(k, k);
        }
        for batch in batches {
            for op in batch {
                match op {
                    Op::Insert(k) => {
                        prop_assert_eq!(hot.insert(&encode_u64(k), k), model.insert(k, k));
                    }
                    Op::Remove(k) => {
                        prop_assert_eq!(hot.remove(&encode_u64(k)), model.remove(&k));
                    }
                }
            }
            if let Err(msg) = hot.try_check_invariants() {
                return Err(TestCaseError::fail(format!("invariant violated: {msg}")));
            }
            prop_assert_eq!(hot.len(), model.len());
        }
    }
}
