//! Edge cases: extreme key shapes, boundary lengths, adversarial bit
//! patterns, and layout-coverage checks (all nine physical node layouts
//! must be reachable and correct).

use hot_core::{HotTrie, NodeTag};
use hot_keys::{encode_u64, ArenaKeySource, EmbeddedKeySource, MAX_KEY_LEN};

#[test]
fn empty_key_is_a_valid_smallest_key() {
    let mut arena = ArenaKeySource::new();
    let empty = arena.push(b"");
    let others: Vec<u64> = [&b"\x01"[..], b"a", b"zz"]
        .iter()
        .map(|k| arena.push(k))
        .collect();
    let mut t = HotTrie::new(&arena);
    t.insert(b"", empty);
    t.insert(b"\x01", others[0]);
    t.insert(b"a", others[1]);
    t.insert(b"zz", others[2]);
    t.validate();
    assert_eq!(t.get(b""), Some(empty));
    // The empty key is the global minimum.
    assert_eq!(t.iter().next(), Some(empty));
    assert_eq!(t.scan(b"", 10).len(), 4);
    assert_eq!(t.remove(b""), Some(empty));
    assert_eq!(t.get(b""), None);
    t.validate();
}

#[test]
fn keys_at_maximum_length() {
    let mut arena = ArenaKeySource::new();
    // Keys differing only in the very last byte of a 255-byte key: the
    // discriminative positions sit at bit ~2039.
    let mut keys = Vec::new();
    for last in 0..40u8 {
        let mut k = vec![0xA5u8; MAX_KEY_LEN - 1];
        k.push(last + 1); // avoid trailing 0 (prefix-free vs zero-padding)
        keys.push(k);
    }
    let tids: Vec<u64> = keys.iter().map(|k| arena.push(k)).collect();
    let mut t = HotTrie::new(&arena);
    for (k, &tid) in keys.iter().zip(&tids) {
        t.insert(k, tid);
    }
    t.validate();
    for (k, &tid) in keys.iter().zip(&tids) {
        assert_eq!(t.get(k), Some(tid));
    }
    assert_eq!(t.iter().collect::<Vec<_>>(), tids);
}

#[test]
fn first_and_last_bit_discrimination() {
    // Keys differing in bit 0 (MSB of byte 0) and bit 63 of an 8-byte key.
    let keys = [0u64, 1, 1 << 62, (1 << 62) | 1, u64::MAX >> 1];
    let mut t = HotTrie::new(EmbeddedKeySource);
    for &k in &keys {
        t.insert(&encode_u64(k), k);
    }
    t.validate();
    for &k in &keys {
        assert_eq!(t.get(&encode_u64(k)), Some(k));
    }
    let mut sorted = keys.to_vec();
    sorted.sort_unstable();
    assert_eq!(t.iter().collect::<Vec<_>>(), sorted);
}

#[test]
fn all_nine_node_layouts_occur_and_work() {
    // Engineer key sets that force each (mask kind × key width) combination
    // and verify lookups through each. The census API reports which
    // physical layouts the tree actually uses.
    let mut arena = ArenaKeySource::new();
    let mut keys: Vec<Vec<u8>> = Vec::new();

    // (a) Dense low bits -> single-mask 8/16/32-bit partial keys.
    for v in 0..32u64 {
        keys.push(encode_u64(v).to_vec()); // 5 bits in one byte
    }
    // 9+ bits within an 8-byte window: random 16-bit tails.
    for v in [3u64, 259, 515, 771, 1027, 1283, 1539, 1795, 2051, 2307, 40_000, 50_000] {
        keys.push(encode_u64(v << 3).to_vec());
    }
    // (b) Positions spread over <= 8 distinct bytes but a > 8-byte window
    // -> multi-8 (8-byte keys always fit a single window, so use strings).
    for i in 0..7usize {
        let mut k = vec![b'm'; 80];
        k[i * 12] = b'n';
        k.push(0);
        keys.push(k);
    }
    // (c) Long strings with one-hot byte flips: key i differs from the
    // others first at byte 7*i, giving one discriminative bit per distinct
    // byte -> multi-16 / multi-32 layouts with wide partial keys.
    for i in 0..28usize {
        let mut k = vec![b'x'; 200];
        k[i * 7] = b'y';
        k.push(0);
        keys.push(k);
    }
    // A 12-key one-hot family under a different prefix -> multi-16.
    for i in 0..12usize {
        let mut k = vec![b'w'; 120];
        k[i * 9 + 3] = b'v';
        k.push(0);
        keys.push(k);
    }
    keys.sort();
    keys.dedup();

    let tids: Vec<u64> = keys.iter().map(|k| arena.push(k)).collect();
    let mut t = HotTrie::new(&arena);
    for (k, &tid) in keys.iter().zip(&tids) {
        t.insert(k, tid);
    }
    t.validate();
    for (k, &tid) in keys.iter().zip(&tids) {
        assert_eq!(t.get(k), Some(tid));
    }

    let census = t.layout_census();
    let used: Vec<NodeTag> = NodeTag::ALL
        .into_iter()
        .filter(|tag| census[*tag as usize] > 0)
        .collect();
    // At minimum the single-mask family and a multi-mask layout must occur
    // in this engineered tree.
    assert!(
        used.contains(&NodeTag::Single8),
        "census {census:?} lacks Single8"
    );
    assert!(
        used.iter()
            .any(|t| matches!(t, NodeTag::Multi8x8 | NodeTag::Multi8x16 | NodeTag::Multi8x32)),
        "census {census:?} lacks a multi-8 layout"
    );
    assert!(
        used.iter().any(|t| matches!(
            t,
            NodeTag::Multi16x16 | NodeTag::Multi16x32 | NodeTag::Multi32x32
        )),
        "census {census:?} lacks a wide multi layout"
    );
}

#[test]
fn url_dataset_exercises_wide_layouts() {
    // Real-ish workloads must reach the wide layouts too.
    let data = hot_ycsb::Dataset::generate(hot_ycsb::DatasetKind::Url, 30_000, 3);
    let mut arena = ArenaKeySource::new();
    let tids: Vec<u64> = data.keys.iter().map(|k| arena.push(k)).collect();
    let mut t = HotTrie::new(&arena);
    for (k, &tid) in data.keys.iter().zip(&tids) {
        t.insert(k, tid);
    }
    t.validate();
    let census = t.layout_census();
    let total: usize = census.iter().sum();
    assert_eq!(total, t.memory_stats().node_count);
    assert!(
        census[NodeTag::Multi8x8 as usize]
            + census[NodeTag::Multi8x16 as usize]
            + census[NodeTag::Multi8x32 as usize]
            > 0,
        "urls span multiple key bytes: {census:?}"
    );
}

#[test]
fn alternating_bit_patterns() {
    // Keys that differ at every second bit stress the recode path (every
    // insert adds a new discriminative position).
    let mut t = HotTrie::new(EmbeddedKeySource);
    let mut keys = Vec::new();
    for i in 0..64u64 {
        let mut v = 0u64;
        for b in 0..6 {
            if i & (1 << b) != 0 {
                v |= 1 << (b * 9 + 3);
            }
        }
        keys.push(v);
        t.insert(&encode_u64(v), v);
    }
    t.validate();
    keys.sort_unstable();
    keys.dedup();
    assert_eq!(t.iter().collect::<Vec<_>>(), keys);
}

#[test]
fn duplicate_heavy_upserts() {
    let mut arena = ArenaKeySource::new();
    let key = hot_keys::str_key(b"the-one-key").unwrap();
    let tids: Vec<u64> = (0..100).map(|_| arena.push(&key)).collect();
    let mut t = HotTrie::new(&arena);
    assert_eq!(t.insert(&key, tids[0]), None);
    for w in tids.windows(2) {
        assert_eq!(t.insert(&key, w[1]), Some(w[0]));
    }
    assert_eq!(t.len(), 1);
    assert_eq!(t.get(&key), Some(*tids.last().unwrap()));
}

#[test]
fn removal_down_to_each_shape() {
    // Remove keys one by one, validating at every step, so every underflow
    // shape (collapse to leaf, collapse to node, root shrink) is covered.
    let mut t = HotTrie::new(EmbeddedKeySource);
    let keys: Vec<u64> = (0..200).map(|i| i * 37 % 1024).collect();
    let mut distinct: Vec<u64> = keys.clone();
    distinct.sort_unstable();
    distinct.dedup();
    for &k in &keys {
        t.insert(&encode_u64(k), k);
    }
    for (i, &k) in distinct.iter().enumerate() {
        assert_eq!(t.remove(&encode_u64(k)), Some(k));
        if i % 3 == 0 {
            t.validate();
        }
    }
    assert!(t.is_empty());
    assert_eq!(t.memory_stats().node_bytes, 0);
}
