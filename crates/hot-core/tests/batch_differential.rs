//! Differential tests for the batched lookup engine: `get_batch` must be
//! observationally identical to scalar `get` — same hits, same misses, same
//! TIDs — for every batch shape (empty, singleton, exactly one group,
//! non-multiples of the group size, duplicate keys within a batch) on both
//! the single-threaded trie and the ROWEX-synchronized variant.

use hot_core::sync::ConcurrentHot;
use hot_core::{BatchCursor, HotTrie, DEFAULT_GROUP};
use hot_keys::{encode_u64, ArenaKeySource, EmbeddedKeySource};
use proptest::prelude::*;
use std::sync::Arc;

/// Scalar reference results for `probes`, via `get`.
fn scalar<F: Fn(&[u8]) -> Option<u64>>(get: F, probes: &[[u8; 8]]) -> Vec<Option<u64>> {
    probes.iter().map(|k| get(k)).collect()
}

proptest! {
    #[test]
    fn batched_equals_scalar_for_any_group_size(
        keys in proptest::collection::vec(0u64..50_000, 0..300),
        probes in proptest::collection::vec(0u64..50_000, 0..133),
        group in 1usize..33,
    ) {
        let mut trie = HotTrie::new(EmbeddedKeySource);
        let sync = ConcurrentHot::new(EmbeddedKeySource);
        for &k in &keys {
            trie.insert(&encode_u64(k), k);
            sync.insert(&encode_u64(k), k);
        }
        let probes: Vec<[u8; 8]> = probes.iter().map(|&p| encode_u64(p)).collect();
        let expected = scalar(|k| trie.get(k), &probes);
        prop_assert_eq!(&expected, &scalar(|k| sync.get(k), &probes));

        let mut cursor = BatchCursor::with_group(group);
        let mut out = vec![None; probes.len()];
        trie.get_batch_with(&probes, &mut out, &mut cursor);
        prop_assert_eq!(&expected, &out);

        let mut out = vec![None; probes.len()];
        sync.get_batch_with(&probes, &mut out, &mut cursor);
        prop_assert_eq!(&expected, &out);
    }

    #[test]
    fn duplicate_probes_in_one_batch(
        keys in proptest::collection::vec(0u64..1_000, 1..200),
        picks in proptest::collection::vec(0usize..1_000, 1..80),
    ) {
        let mut trie = HotTrie::new(EmbeddedKeySource);
        for &k in &keys {
            trie.insert(&encode_u64(k), k);
        }
        // Probe keys drawn *from the inserted set* with replacement, so the
        // same key routinely appears in several lanes of one group.
        let probes: Vec<[u8; 8]> = picks
            .iter()
            .map(|&i| encode_u64(keys[i % keys.len()]))
            .collect();
        let mut out = vec![None; probes.len()];
        trie.get_batch(&probes, &mut out);
        for (probe, got) in probes.iter().zip(&out) {
            prop_assert_eq!(*got, trie.get(probe));
            prop_assert!(got.is_some(), "probes were all inserted");
        }
    }
}

#[test]
fn batch_shapes_empty_one_group_and_ragged() {
    let mut trie = HotTrie::new(EmbeddedKeySource);
    for k in 0..10_000u64 {
        trie.insert(&encode_u64(k * 2), k * 2);
    }
    // Hits (even) and misses (odd) interleaved.
    let probes: Vec<[u8; 8]> = (0..=DEFAULT_GROUP as u64 * 3 + 5).map(encode_u64).collect();
    let expected = scalar(|k| trie.get(k), &probes);

    for len in [0, 1, DEFAULT_GROUP, DEFAULT_GROUP + 3, probes.len()] {
        let mut out = vec![None; len];
        trie.get_batch(&probes[..len], &mut out);
        assert_eq!(out, expected[..len], "batch of {len}");
    }
}

#[test]
#[should_panic(expected = "one output slot per key")]
fn mismatched_output_length_rejected() {
    let mut trie = HotTrie::new(EmbeddedKeySource);
    trie.insert(&encode_u64(1), 1);
    let probes = [encode_u64(1), encode_u64(2)];
    let mut out = [None];
    trie.get_batch(&probes, &mut out);
}

#[test]
fn batched_equals_scalar_on_string_arena() {
    // Variable-length string keys through the arena source: the verification
    // pass resolves keys from arena memory, exactly the main-memory-DBMS
    // configuration the prefetch pipeline targets.
    let words: Vec<Vec<u8>> = (0..4_000u32)
        .map(|i| {
            let mut w = format!("key/{:05}/", i % 997).into_bytes();
            w.extend(std::iter::repeat_n(b'x', (i % 13) as usize));
            w.push(0); // terminator keeps the set prefix-free
            w
        })
        .collect();
    let mut arena = ArenaKeySource::new();
    let tids: Vec<u64> = words.iter().map(|w| arena.push(w)).collect();
    let arena = Arc::new(arena);

    let mut trie = HotTrie::new(Arc::clone(&arena));
    let sync = ConcurrentHot::new(Arc::clone(&arena));
    for (w, &tid) in words.iter().zip(&tids) {
        trie.insert(w, tid);
        sync.insert(w, tid);
    }

    // Probes: all inserted keys, plus mutated misses.
    let mut probes: Vec<Vec<u8>> = words.clone();
    probes.extend(words.iter().step_by(7).map(|w| {
        let mut m = w.clone();
        let last = m.len() - 2;
        m[last] ^= 0x40;
        m
    }));

    let expected: Vec<Option<u64>> = probes.iter().map(|k| trie.get(k)).collect();
    let hits = expected.iter().flatten().count();
    assert_eq!(hits, words.len(), "every inserted key resolves");

    let mut out = vec![None; probes.len()];
    trie.get_batch(&probes, &mut out);
    assert_eq!(out, expected);

    let mut out = vec![None; probes.len()];
    sync.get_batch(&probes, &mut out);
    assert_eq!(out, expected);
}
