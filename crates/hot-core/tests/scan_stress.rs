//! Scan-under-churn stress test for the ROWEX-synchronized trie: reader
//! threads drive the cursor-amortized `scan_with` path and the single-pin
//! `scan_batch_with` path while writer threads insert and remove churn keys.
//!
//! Concurrent scans are not atomic snapshots, so the assertions are the ones
//! ROWEX actually guarantees: every returned TID names a key that was live
//! at some point (it belongs to the key universe), results are strictly
//! ascending, and every result is `>= start`. After the writers quiesce the
//! structure must pass `check_invariants()` and scans must agree exactly
//! with a `BTreeMap` model rebuilt from point lookups.

use hot_core::sync::ConcurrentHot;
use hot_core::{ScanBatchCursor, ScanCursor};
use hot_keys::{decode_u64, encode_u64, EmbeddedKeySource};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Backbone keys (odd, always present) interleave with churn keys (even,
/// inserted/removed concurrently), so every scan crosses both populations.
const BACKBONE: u64 = 8_192;
const CHURN: u64 = 8_192;
const UNIVERSE_MAX: u64 = 2 * BACKBONE;

fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

/// Checks the mid-churn guarantees for one scan result.
fn check_scan_result(tids: &[u64], start: u64, limit: usize) {
    assert!(tids.len() <= limit, "scan returned more than `limit` entries");
    let mut prev: Option<u64> = None;
    for &tid in tids {
        assert!(tid >= start, "scan from {start} returned smaller key {tid}");
        assert!(tid < UNIVERSE_MAX, "TID {tid} was never inserted");
        if let Some(p) = prev {
            assert!(tid > p, "scan order violated: {p} then {tid}");
        }
        prev = Some(tid);
    }
}

#[test]
fn scans_stay_ordered_and_live_under_churn() {
    let trie = Arc::new(ConcurrentHot::new(EmbeddedKeySource));
    for k in 0..BACKBONE {
        trie.insert(&encode_u64(2 * k + 1), 2 * k + 1);
    }
    let done = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..3)
        .map(|t| {
            let trie = Arc::clone(&trie);
            std::thread::spawn(move || {
                let mut x = 0x9E37_79B9u64 + t as u64;
                for _ in 0..30_000 {
                    let k = 2 * (xorshift(&mut x) % CHURN);
                    if x & 4 == 0 {
                        trie.remove(&encode_u64(k));
                    } else {
                        trie.insert(&encode_u64(k), k);
                    }
                }
            })
        })
        .collect();

    // Two scalar readers with reused cursors plus one batched reader.
    let readers: Vec<_> = (0..2)
        .map(|t| {
            let trie = Arc::clone(&trie);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut cursor = ScanCursor::new();
                let mut out = Vec::new();
                let mut x = 0xC0FFEEu64 + t as u64;
                while !done.load(Ordering::Relaxed) {
                    let start = xorshift(&mut x) % UNIVERSE_MAX;
                    let limit = (x % 64) as usize + 1;
                    trie.scan_with(&encode_u64(start), limit, &mut out, &mut cursor);
                    check_scan_result(&out, start, limit);
                }
            })
        })
        .collect();
    let batch_reader = {
        let trie = Arc::clone(&trie);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut cursor = ScanBatchCursor::new();
            let mut tids = Vec::new();
            let mut bounds = Vec::new();
            let mut x = 0xBA7C4u64;
            while !done.load(Ordering::Relaxed) {
                let requests: Vec<([u8; 8], usize)> = (0..13)
                    .map(|_| {
                        let start = xorshift(&mut x) % UNIVERSE_MAX;
                        (encode_u64(start), (x % 32) as usize + 1)
                    })
                    .collect();
                trie.scan_batch_with(&requests, &mut tids, &mut bounds, &mut cursor);
                assert_eq!(bounds.len(), requests.len() + 1);
                for (i, (key, limit)) in requests.iter().enumerate() {
                    check_scan_result(&tids[bounds[i]..bounds[i + 1]], decode_u64(key), *limit);
                }
            }
        })
    };

    for w in writers {
        w.join().unwrap();
    }
    done.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }
    batch_reader.join().unwrap();

    trie.check_invariants();

    // Quiesced: scans must now agree exactly with the point-lookup model.
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for k in 0..UNIVERSE_MAX {
        if let Some(tid) = trie.get(&encode_u64(k)) {
            model.insert(k, tid);
        }
    }
    assert!(model.len() >= BACKBONE as usize, "backbone keys must survive");
    for k in 0..BACKBONE {
        assert_eq!(model.get(&(2 * k + 1)), Some(&(2 * k + 1)), "backbone key lost");
    }

    let mut cursor = ScanCursor::new();
    let mut out = Vec::new();
    let mut x = 0xDEADBEEFu64;
    for _ in 0..400 {
        let start = xorshift(&mut x) % (UNIVERSE_MAX + 7);
        let limit = (x % 150) as usize;
        let want: Vec<u64> = model.range(start..).take(limit).map(|(_, &v)| v).collect();
        trie.scan_with(&encode_u64(start), limit, &mut out, &mut cursor);
        assert_eq!(out, want, "quiesced scan from {start}");
    }
    let full = trie.scan(&[], usize::MAX);
    assert_eq!(full, model.values().copied().collect::<Vec<_>>());
}
