//! Integration tests for the single-threaded HOT trie: all four insertion
//! cases, deletion, scans, structural invariants, and the paper's
//! qualitative claims at small scale.

use hot_core::HotTrie;
use hot_keys::{encode_u64, ArenaKeySource, EmbeddedKeySource};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

fn int_trie(keys: &[u64]) -> HotTrie<EmbeddedKeySource> {
    let mut t = HotTrie::new(EmbeddedKeySource);
    for &k in keys {
        t.insert(&encode_u64(k), k);
    }
    t
}

#[test]
fn empty_and_singleton() {
    let mut t = HotTrie::new(EmbeddedKeySource);
    assert!(t.is_empty());
    assert_eq!(t.get(&encode_u64(1)), None);
    assert_eq!(t.iter().count(), 0);
    assert_eq!(t.height(), 0);

    t.insert(&encode_u64(7), 7);
    assert_eq!(t.len(), 1);
    assert_eq!(t.get(&encode_u64(7)), Some(7));
    assert_eq!(t.get(&encode_u64(8)), None);
    assert_eq!(t.height(), 0, "single leaf root has no compound node");
    assert_eq!(t.iter().collect::<Vec<_>>(), vec![7]);
}

#[test]
fn two_keys_make_one_node() {
    let t = int_trie(&[5, 9]);
    assert_eq!(t.height(), 1);
    assert_eq!(t.get(&encode_u64(5)), Some(5));
    assert_eq!(t.get(&encode_u64(9)), Some(9));
    assert_eq!(t.get(&encode_u64(7)), None);
    assert_eq!(t.memory_stats().node_count, 1);
    t.validate();
}

#[test]
fn upsert_returns_previous_tid() {
    let mut arena = ArenaKeySource::new();
    let t1 = arena.push(b"key");
    let t2 = arena.push(b"key");
    let mut t = HotTrie::new(&arena);
    assert_eq!(t.insert(b"key", t1), None);
    assert_eq!(t.insert(b"key", t2), Some(t1));
    assert_eq!(t.len(), 1);
    assert_eq!(t.get(b"key"), Some(t2));
}

#[test]
fn fill_one_node_to_capacity_then_split() {
    // 32 keys fit one node; the 33rd forces the first split, creating a
    // new root (the only way the tree height grows).
    let keys: Vec<u64> = (0..33).collect();
    let mut t = HotTrie::new(EmbeddedKeySource);
    for &k in &keys[..32] {
        t.insert(&encode_u64(k), k);
    }
    assert_eq!(t.height(), 1);
    assert_eq!(t.memory_stats().node_count, 1);
    t.insert(&encode_u64(32), 32);
    assert_eq!(t.height(), 2);
    t.validate();
    for &k in &keys {
        assert_eq!(t.get(&encode_u64(k)), Some(k));
    }
}

#[test]
fn monotonic_inserts_dense_domain() {
    let keys: Vec<u64> = (0..10_000).collect();
    let t = int_trie(&keys);
    assert_eq!(t.len(), keys.len());
    t.validate();
    for &k in keys.iter().step_by(97) {
        assert_eq!(t.get(&encode_u64(k)), Some(k));
    }
    assert_eq!(t.get(&encode_u64(10_000)), None);
    // Dense 64-bit integers give near-optimal fanout: tree stays shallow.
    let depth = t.depth_stats();
    assert!(depth.max_depth().unwrap() <= 4, "depth {depth}");
    // Iteration yields sorted order.
    let iterated: Vec<u64> = t.iter().collect();
    assert_eq!(iterated, keys);
}

#[test]
fn random_64bit_integers() {
    let mut rng = StdRng::seed_from_u64(42);
    let keys: Vec<u64> = (0..20_000).map(|_| rng.gen::<u64>() >> 1).collect();
    let t = int_trie(&keys);
    t.validate();
    for &k in keys.iter().step_by(131) {
        assert_eq!(t.get(&encode_u64(k)), Some(k));
    }
    let mut sorted: Vec<u64> = keys.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(t.len(), sorted.len());
    assert_eq!(t.iter().collect::<Vec<_>>(), sorted);
}

#[test]
fn string_keys_with_shared_prefixes() {
    let mut arena = ArenaKeySource::new();
    let mut keys = Vec::new();
    // Deliberately prefix-heavy: URLs-in-miniature.
    for host in ["alpha", "beta", "gamma"] {
        for path in 0..200 {
            let url = format!("https://www.{host}.example.com/page/{path:04}");
            keys.push(hot_keys::str_key(url.as_bytes()).unwrap());
        }
    }
    let tids: Vec<u64> = keys.iter().map(|k| arena.push(k)).collect();
    let mut t = HotTrie::new(&arena);
    for (k, &tid) in keys.iter().zip(&tids) {
        t.insert(k, tid);
    }
    t.validate();
    for (k, &tid) in keys.iter().zip(&tids) {
        assert_eq!(t.get(k), Some(tid));
    }
    assert_eq!(
        t.get(&hot_keys::str_key(b"https://www.delta.example.com/").unwrap()),
        None
    );
}

#[test]
fn range_scans_match_sorted_order() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut keys: Vec<u64> = (0..5_000).map(|_| rng.gen_range(0..1_000_000)).collect();
    keys.sort_unstable();
    keys.dedup();
    let t = int_trie(&keys);

    // The reused output buffer exercises the allocation-free `scan_into`
    // path that the allocating `scan` wrapper delegates to.
    let mut got = Vec::new();
    for _ in 0..200 {
        let start = rng.gen_range(0..1_000_100);
        let want: Vec<u64> = keys.iter().copied().filter(|&k| k >= start).take(100).collect();
        t.scan_into(&encode_u64(start), 100, &mut got);
        assert_eq!(got, want, "scan from {start}");
    }
    // Scan from before the smallest and past the largest key.
    assert_eq!(t.scan(&encode_u64(0), 5)[..], keys[..5.min(keys.len())]);
    assert!(t.scan(&encode_u64(u64::MAX >> 1), 5).is_empty());
}

#[test]
fn deletion_mirrors_insertion() {
    let mut rng = StdRng::seed_from_u64(99);
    let mut keys: Vec<u64> = (0..4_000).map(|_| rng.gen::<u64>() >> 1).collect();
    keys.sort_unstable();
    keys.dedup();
    let mut t = int_trie(&keys);

    let mut to_remove = keys.clone();
    to_remove.shuffle(&mut rng);
    let (removed, kept) = to_remove.split_at(keys.len() / 2);
    for &k in removed {
        assert_eq!(t.remove(&encode_u64(k)), Some(k));
        assert_eq!(t.remove(&encode_u64(k)), None, "double remove");
    }
    t.validate();
    assert_eq!(t.len(), kept.len());
    for &k in kept {
        assert_eq!(t.get(&encode_u64(k)), Some(k));
    }
    for &k in removed {
        assert_eq!(t.get(&encode_u64(k)), None);
    }
    // Remove the rest; the tree must return to empty with zero node bytes.
    for &k in kept {
        assert_eq!(t.remove(&encode_u64(k)), Some(k));
    }
    assert!(t.is_empty());
    assert_eq!(t.memory_stats().node_bytes, 0);
}

#[test]
fn determinism_conjecture_insertion_order_independence() {
    // Section 3.3: "any given set of keys results in the same structure,
    // regardless of the insertion order."
    let mut rng = StdRng::seed_from_u64(1234);
    let mut keys: Vec<u64> = (0..3_000).map(|_| rng.gen::<u64>() >> 1).collect();
    keys.sort_unstable();
    keys.dedup();

    let sorted = int_trie(&keys);
    let digest = sorted.structure_digest();

    for round in 0..3 {
        let mut shuffled = keys.clone();
        shuffled.shuffle(&mut rng);
        let t = int_trie(&shuffled);
        assert_eq!(
            t.structure_digest(),
            digest,
            "structure differs for insertion order {round}"
        );
    }
}

#[test]
fn k_constraint_and_height_invariants_hold_during_growth() {
    let mut rng = StdRng::seed_from_u64(5);
    let mut t = HotTrie::new(EmbeddedKeySource);
    for i in 0..2_000u64 {
        let k = rng.gen::<u64>() >> 1;
        t.insert(&encode_u64(k), k);
        if i % 257 == 0 {
            t.validate();
        }
    }
    t.validate();
}

#[test]
fn memory_footprint_is_paper_scale() {
    // The paper reports 11.4–14.4 bytes/key across all data sets. At small
    // scale we allow a looser band but must stay in the same regime.
    let mut rng = StdRng::seed_from_u64(17);
    let keys: Vec<u64> = (0..100_000).map(|_| rng.gen::<u64>() >> 1).collect();
    let t = int_trie(&keys);
    let stats = t.memory_stats();
    let bpk = stats.bytes_per_key();
    assert!(
        bpk > 8.0 && bpk < 25.0,
        "bytes/key {bpk} outside the plausible HOT range"
    );
}

#[test]
fn mean_depth_beats_binary_patricia() {
    // Figure 11's shape: HOT's mean leaf depth is far below the binary
    // Patricia trie's for every distribution.
    let mut rng = StdRng::seed_from_u64(3);
    let keys: Vec<u64> = (0..50_000).map(|_| rng.gen::<u64>() >> 1).collect();
    let hot = int_trie(&keys);
    let mut bin = hot_patricia::PatriciaTree::new(EmbeddedKeySource);
    for &k in &keys {
        bin.insert(&encode_u64(k), k);
    }
    let hot_mean = hot.depth_stats().mean_depth();
    let bin_mean = bin.depth_stats().mean_depth();
    assert!(
        hot_mean * 3.0 < bin_mean,
        "HOT mean depth {hot_mean:.2} not well below Patricia {bin_mean:.2}"
    );
}

#[test]
fn discriminative_bits_match_patricia_reference() {
    // HOT partitions exactly the binary Patricia trie: the union of all
    // nodes' discriminative bit positions must equal Patricia's.
    let mut rng = StdRng::seed_from_u64(11);
    let keys: Vec<u64> = (0..512).map(|_| rng.gen::<u64>() >> 1).collect();
    let hot = int_trie(&keys);
    let mut bin = hot_patricia::PatriciaTree::new(EmbeddedKeySource);
    for &k in &keys {
        bin.insert(&encode_u64(k), k);
    }
    // Compare leaf orders (same keys, same order) as a structural proxy.
    assert_eq!(
        hot.iter().collect::<Vec<_>>(),
        bin.iter().collect::<Vec<_>>()
    );
}

#[test]
fn long_keys_up_to_the_limit() {
    let mut arena = ArenaKeySource::new();
    let mut keys = Vec::new();
    let mut rng = StdRng::seed_from_u64(23);
    for _ in 0..300 {
        let len = rng.gen_range(1..=hot_keys::MAX_KEY_LEN - 1);
        let mut k: Vec<u8> = (0..len).map(|_| rng.gen_range(1..=255u8)).collect();
        k.push(0); // terminator keeps the set prefix-free
        keys.push(k);
    }
    keys.sort();
    keys.dedup();
    let tids: Vec<u64> = keys.iter().map(|k| arena.push(k)).collect();
    let mut t = HotTrie::new(&arena);
    for (k, &tid) in keys.iter().zip(&tids) {
        t.insert(k, tid);
    }
    t.validate();
    for (k, &tid) in keys.iter().zip(&tids) {
        assert_eq!(t.get(k), Some(tid));
    }
    // Iteration respects byte-lexicographic order even at max length.
    let iterated: Vec<u64> = t.iter().collect();
    assert_eq!(iterated, tids);
}

#[test]
fn sparse_genome_alphabet_keys() {
    // The paper calls out genome data (A, C, G, T) as an extreme sparse
    // distribution; HOT must still stay shallow.
    let mut arena = ArenaKeySource::new();
    let mut rng = StdRng::seed_from_u64(29);
    let alphabet = [b'A', b'C', b'G', b'T'];
    let mut keys: Vec<Vec<u8>> = (0..2_000)
        .map(|_| {
            let mut k: Vec<u8> = (0..20).map(|_| alphabet[rng.gen_range(0..4usize)]).collect();
            k.push(0);
            k
        })
        .collect();
    keys.sort();
    keys.dedup();
    let tids: Vec<u64> = keys.iter().map(|k| arena.push(k)).collect();
    let mut t = HotTrie::new(&arena);
    for (k, &tid) in keys.iter().zip(&tids) {
        t.insert(k, tid);
    }
    t.validate();
    let depth = t.depth_stats();
    // log_32-ish depth for 2000 keys is ~2-3; binary Patricia would be ~11+.
    assert!(depth.mean_depth() < 4.0, "genome keys too deep: {depth}");
    for (k, &tid) in keys.iter().zip(&tids) {
        assert_eq!(t.get(k), Some(tid));
    }
}

#[test]
fn interleaved_insert_remove_stress() {
    let mut rng = StdRng::seed_from_u64(31);
    let mut t = HotTrie::new(EmbeddedKeySource);
    let mut model = std::collections::BTreeMap::new();
    for _ in 0..30_000 {
        let k = rng.gen_range(0..3_000u64);
        if rng.gen_bool(0.6) {
            assert_eq!(t.insert(&encode_u64(k), k), model.insert(k, k));
        } else {
            assert_eq!(t.remove(&encode_u64(k)), model.remove(&k));
        }
    }
    assert_eq!(t.len(), model.len());
    t.validate();
    assert_eq!(
        t.iter().collect::<Vec<_>>(),
        model.values().copied().collect::<Vec<_>>()
    );
}
