//! Property tests: HOT behaves exactly like an ordered map (`BTreeMap`
//! model) and preserves its structural invariants under arbitrary operation
//! sequences; its leaf order always equals the binary Patricia reference.

use hot_core::HotTrie;
use hot_keys::{encode_u64, ArenaKeySource, EmbeddedKeySource};
use hot_patricia::PatriciaTree;
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64),
    Remove(u64),
    Get(u64),
    Scan(u64, usize),
}

fn ops(domain: u64) -> impl Strategy<Value = Op> {
    let key = 0..domain;
    prop_oneof![
        5 => key.clone().prop_map(Op::Insert),
        2 => key.clone().prop_map(Op::Remove),
        2 => key.clone().prop_map(Op::Get),
        1 => (key, 0usize..50).prop_map(|(k, n)| Op::Scan(k, n)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matches_btreemap_model(ops in prop::collection::vec(ops(10_000), 1..500)) {
        let mut hot = HotTrie::new(EmbeddedKeySource);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut got = Vec::new();
        for op in ops {
            match op {
                Op::Insert(k) => {
                    prop_assert_eq!(hot.insert(&encode_u64(k), k), model.insert(k, k));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(hot.remove(&encode_u64(k)), model.remove(&k));
                }
                Op::Get(k) => {
                    prop_assert_eq!(hot.get(&encode_u64(k)), model.get(&k).copied());
                }
                Op::Scan(k, n) => {
                    hot.scan_into(&encode_u64(k), n, &mut got);
                    let want: Vec<u64> = model.range(k..).take(n).map(|(_, &v)| v).collect();
                    prop_assert_eq!(&got, &want);
                }
            }
            prop_assert_eq!(hot.len(), model.len());
        }
        hot.validate();
        prop_assert_eq!(
            hot.iter().collect::<Vec<_>>(),
            model.values().copied().collect::<Vec<_>>()
        );
    }

    #[test]
    fn small_clustered_domain(ops in prop::collection::vec(ops(64), 1..600)) {
        // A tiny domain maximizes node-level churn: every entry lives in one
        // or two nodes, so splits, pull-ups and collapses fire constantly.
        let mut hot = HotTrie::new(EmbeddedKeySource);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut got = Vec::new();
        for op in ops {
            match op {
                Op::Insert(k) => {
                    prop_assert_eq!(hot.insert(&encode_u64(k), k), model.insert(k, k));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(hot.remove(&encode_u64(k)), model.remove(&k));
                }
                Op::Get(k) => {
                    prop_assert_eq!(hot.get(&encode_u64(k)), model.get(&k).copied());
                }
                Op::Scan(k, n) => {
                    hot.scan_into(&encode_u64(k), n, &mut got);
                    let want: Vec<u64> = model.range(k..).take(n).map(|(_, &v)| v).collect();
                    prop_assert_eq!(&got, &want);
                }
            }
        }
        hot.validate();
    }

    #[test]
    fn string_keys_match_model(
        words in prop::collection::vec("[a-c]{1,16}", 1..120),
        probe in "[a-c]{1,16}",
    ) {
        // Alphabet {a,b,c} forces deep shared prefixes — the sparse key
        // distribution HOT exists for.
        let mut arena = ArenaKeySource::new();
        let encoded: Vec<Vec<u8>> = words
            .iter()
            .map(|w| hot_keys::str_key(w.as_bytes()).unwrap())
            .collect();
        let tids: Vec<u64> = encoded.iter().map(|k| arena.push(k)).collect();
        let mut hot = HotTrie::new(&arena);
        let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        for (k, &tid) in encoded.iter().zip(&tids) {
            hot.insert(k, tid);
            model.insert(k.clone(), tid);
        }
        hot.validate();
        prop_assert_eq!(hot.len(), model.len());
        for (k, &tid) in &model {
            prop_assert_eq!(hot.get(k), Some(tid));
        }
        let probe_key = hot_keys::str_key(probe.as_bytes()).unwrap();
        prop_assert_eq!(hot.get(&probe_key), model.get(&probe_key).copied());
        let got: Vec<u64> = hot.range_from(&probe_key).collect();
        let want: Vec<u64> = model.range(probe_key..).map(|(_, &v)| v).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn leaf_order_equals_patricia_reference(
        keys in prop::collection::btree_set(0u64..100_000, 2..300)
    ) {
        let mut hot = HotTrie::new(EmbeddedKeySource);
        let mut bin = PatriciaTree::new(EmbeddedKeySource);
        for &k in &keys {
            hot.insert(&encode_u64(k), k);
            bin.insert(&encode_u64(k), k);
        }
        prop_assert_eq!(hot.iter().collect::<Vec<_>>(), bin.iter().collect::<Vec<_>>());
        // The k-constraint bounds HOT's depth by Patricia's.
        let hot_max = hot.depth_stats().max_depth().unwrap();
        let bin_max = bin.depth_stats().max_depth().unwrap();
        prop_assert!(hot_max <= bin_max.max(1));
    }

    #[test]
    fn determinism_under_permutation(
        keys in prop::collection::btree_set(0u64..1_000_000, 2..200),
        seed in any::<u64>(),
    ) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let ordered: Vec<u64> = keys.iter().copied().collect();
        let mut shuffled = ordered.clone();
        shuffled.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));

        let mut a = HotTrie::new(EmbeddedKeySource);
        for &k in &ordered {
            a.insert(&encode_u64(k), k);
        }
        let mut b = HotTrie::new(EmbeddedKeySource);
        for &k in &shuffled {
            b.insert(&encode_u64(k), k);
        }
        prop_assert_eq!(a.structure_digest(), b.structure_digest());
    }

    #[test]
    fn mixed_length_string_sets(
        stems in prop::collection::btree_set("[a-z]{1,6}", 1..40),
    ) {
        // Nested prefixes made prefix-free by the terminator: "ab", "abc",
        // "abcd", … all coexist.
        let mut arena = ArenaKeySource::new();
        let mut keys: Vec<Vec<u8>> = Vec::new();
        for stem in &stems {
            for ext in ["", "x", "xy", "xyz"] {
                let mut s = stem.clone();
                s.push_str(ext);
                keys.push(hot_keys::str_key(s.as_bytes()).unwrap());
            }
        }
        keys.sort();
        keys.dedup();
        let tids: Vec<u64> = keys.iter().map(|k| arena.push(k)).collect();
        let mut hot = HotTrie::new(&arena);
        for (k, &tid) in keys.iter().zip(&tids) {
            hot.insert(k, tid);
        }
        hot.validate();
        for (k, &tid) in keys.iter().zip(&tids) {
            prop_assert_eq!(hot.get(k), Some(tid));
        }
        prop_assert_eq!(hot.iter().collect::<Vec<_>>(), tids);
    }
}
