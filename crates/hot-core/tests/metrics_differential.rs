//! Metrics differential test (DESIGN.md §13): with `--features metrics`,
//! the operation counters must match a shadow count of every public call
//! *exactly* — not approximately — and every latency histogram must hold
//! exactly as many samples as its operation counter. Run with:
//!
//! ```text
//! cargo test -p hot-core --features metrics --test metrics_differential
//! ```
//!
//! Without the feature the whole file compiles away (there is nothing to
//! test: the no-feature CI lane instead proves the symbols are absent via
//! `cargo xtask verify-no-metrics`).
#![cfg(feature = "metrics")]

use hot_core::hot_metrics::{OpKind, RowexCounter, SchedCounter};
use hot_core::sync::ConcurrentHot;
use hot_core::{BatchRequest, HotTrie, MlpScheduler};
use hot_keys::{encode_u64, EmbeddedKeySource};
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Shadow tally of public calls, maintained by the test next to the real
/// calls. One field per instrumented dimension.
#[derive(Default)]
struct Shadow {
    gets: u64,
    inserts: u64,
    removes: u64,
    scans: u64,
    scan_items: u64,
    get_batches: u64,
    get_batch_items: u64,
    scan_batches: u64,
    scan_batch_items: u64,
    remove_batches: u64,
    remove_batch_items: u64,
    bulk_loads: u64,
    bulk_items: u64,
    /// Requests the out-of-order scheduler was handed (every one must show
    /// up as exactly one refill and one completion).
    sched_requests: u64,
}

fn assert_counters_match(snap: &hot_core::hot_metrics::MetricsSnapshot, shadow: &Shadow) {
    let cases = [
        (OpKind::Get, shadow.gets, None),
        (OpKind::Insert, shadow.inserts, None),
        (OpKind::Remove, shadow.removes, None),
        (OpKind::Scan, shadow.scans, Some(shadow.scan_items)),
        (OpKind::GetBatch, shadow.get_batches, Some(shadow.get_batch_items)),
        (OpKind::ScanBatch, shadow.scan_batches, Some(shadow.scan_batch_items)),
        (
            OpKind::RemoveBatch,
            shadow.remove_batches,
            Some(shadow.remove_batch_items),
        ),
        (OpKind::BulkLoad, shadow.bulk_loads, Some(shadow.bulk_items)),
    ];
    for (kind, expected, expected_items) in cases {
        let op = snap.op(kind);
        assert_eq!(op.count, expected, "{} count", kind.label());
        assert_eq!(
            op.hist_total(),
            op.count,
            "{} histogram total must equal its counter",
            kind.label()
        );
        if let Some(items) = expected_items {
            assert_eq!(op.items, items, "{} items", kind.label());
        }
    }

    // Scheduler health: every request handed to the out-of-order ring is
    // refilled into a lane exactly once and completes exactly once — no
    // request is dropped, duplicated, or left in flight.
    assert_eq!(
        snap.sched.get(SchedCounter::Refill),
        shadow.sched_requests,
        "scheduler refills == requests"
    );
    assert_eq!(
        snap.sched.completions(),
        shadow.sched_requests,
        "scheduler completions == requests"
    );
}

#[test]
fn single_threaded_counters_are_exact() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0FFEE);
    let mut trie = HotTrie::new(EmbeddedKeySource);
    let mut shadow = Shadow::default();

    // Seed via bulk load so that path is covered too.
    let seed: Vec<(Vec<u8>, u64)> = (0..1_000u64)
        .map(|i| (encode_u64(i * 3).to_vec(), i * 3))
        .collect();
    let n = trie.bulk_load(&seed).unwrap();
    shadow.bulk_loads += 1;
    shadow.bulk_items += n as u64;

    let mut scan_buf = Vec::new();
    let mut scan_cursor = hot_core::ScanCursor::new();
    for _ in 0..5_000 {
        let k = rng.gen_range(0..4_000u64);
        let key = encode_u64(k);
        match rng.gen_range(0..5u32) {
            0 => {
                trie.insert(&key, k);
                shadow.inserts += 1;
            }
            1 => {
                trie.remove(&key);
                shadow.removes += 1;
            }
            2 => {
                let limit = rng.gen_range(1..20usize);
                trie.scan_with(&key, limit, &mut scan_buf, &mut scan_cursor);
                shadow.scans += 1;
                shadow.scan_items += scan_buf.len() as u64;
            }
            _ => {
                trie.get(&key);
                shadow.gets += 1;
            }
        }
    }

    // Batched flavours.
    let keys: Vec<[u8; 8]> = (0..256u64).map(|i| encode_u64(i * 7)).collect();
    let mut out = vec![None; keys.len()];
    trie.get_batch(&keys, &mut out);
    shadow.get_batches += 1;
    shadow.get_batch_items += keys.len() as u64;

    let requests: Vec<([u8; 8], usize)> = (0..64u64).map(|i| (encode_u64(i * 11), 5)).collect();
    let mut tids = Vec::new();
    let mut bounds = Vec::new();
    trie.scan_batch(&requests, &mut tids, &mut bounds);
    shadow.scan_batches += 1;
    shadow.scan_batch_items += tids.len() as u64;

    if !hot_core::mlp::force_round_robin() {
        // The two convenience calls above routed through the scheduler.
        shadow.sched_requests += keys.len() as u64 + requests.len() as u64;
    }

    // Explicit out-of-order entry points (scheduled regardless of the
    // HOT_FORCE_ROUND_ROBIN routing override).
    let mut sched = MlpScheduler::new();
    trie.get_batch_ooo(&keys, &mut out, &mut sched);
    shadow.get_batches += 1;
    shadow.get_batch_items += keys.len() as u64;
    shadow.sched_requests += keys.len() as u64;

    trie.scan_batch_ooo(&requests, &mut tids, &mut bounds, &mut sched);
    shadow.scan_batches += 1;
    shadow.scan_batch_items += tids.len() as u64;
    shadow.sched_requests += requests.len() as u64;

    // A mixed get/scan stream records one sample of each batch kind.
    let mixed: Vec<BatchRequest> = keys[..32]
        .iter()
        .enumerate()
        .map(|(i, k)| {
            if i % 3 == 0 {
                BatchRequest::Scan(k.as_ref(), 4)
            } else {
                BatchRequest::Get(k.as_ref())
            }
        })
        .collect();
    let mut mixed_out = vec![None; mixed.len()];
    trie.mixed_batch_ooo(&mixed, &mut mixed_out, &mut tids, &mut bounds, &mut sched);
    let mixed_gets = mixed
        .iter()
        .filter(|r| matches!(r, BatchRequest::Get(_)))
        .count() as u64;
    shadow.get_batches += 1;
    shadow.get_batch_items += mixed_gets;
    shadow.scan_batches += 1;
    shadow.scan_batch_items += tids.len() as u64;
    shadow.sched_requests += mixed.len() as u64;

    // Batched removal: one RemoveBatch sample; the apply phase runs the
    // *uninstrumented* structural remove, so OpKind::Remove must not move.
    let removes_before = trie.metrics_snapshot().op(OpKind::Remove).count;
    let rm_keys: Vec<[u8; 8]> = (0..48u64).map(|i| encode_u64(i * 6)).collect();
    let mut rm_out = vec![None; rm_keys.len()];
    trie.remove_batch(&rm_keys, &mut rm_out);
    shadow.remove_batches += 1;
    shadow.remove_batch_items += rm_keys.len() as u64;
    shadow.sched_requests += rm_keys.len() as u64;
    assert_eq!(
        trie.metrics_snapshot().op(OpKind::Remove).count,
        removes_before,
        "remove_batch must not inflate scalar remove counters"
    );

    // The invariant walk re-looks up every key; it must NOT move the
    // operation counters (it uses the uninstrumented internal path).
    let before = trie.metrics_snapshot();
    trie.check_invariants();
    let after = trie.metrics_snapshot();
    assert_eq!(
        before.op(OpKind::Get).count,
        after.op(OpKind::Get).count,
        "invariant walk must not inflate get counters"
    );

    assert_counters_match(&after, &shadow);

    // Scheduler-health details beyond the request/completion balance: the
    // single-threaded trie never publishes torn slots, so no descent ever
    // restarts, and every sweep round sampled a non-empty occupancy.
    assert_eq!(
        after.sched.get(SchedCounter::Redescent),
        0,
        "single-threaded trie never re-descends"
    );
    assert!(after.sched.occupancy_samples() > 0, "occupancy was sampled");
    let mean = after.sched.mean_occupancy();
    assert!(
        mean > 0.0 && mean <= hot_core::hot_metrics::MAX_OCCUPANCY as f64,
        "mean lane occupancy {mean} in range"
    );
    // Completions split by descent kind: lookups (get + mixed gets),
    // scan seeks (scans + mixed scans), remove probes.
    assert_eq!(
        after.sched.get(SchedCounter::ProbeDone),
        shadow.remove_batch_items,
        "probe completions"
    );

    // Structural gauges agree with the index's own accounting.
    let s = after.structure.as_ref().expect("quiesced walk succeeds");
    assert_eq!(s.leaves, trie.len() as u64);
    assert_eq!(s.layout_census.iter().sum::<u64>(), s.nodes);
    assert_eq!(s.leaf_depths.iter().sum::<u64>(), s.leaves);
    assert!(s.avg_fill() > 2.0 && s.avg_fill() <= 32.0);

    // A single-threaded trie never touches the ROWEX counters.
    assert_eq!(after.rowex.counts, [0u64; 6]);

    // JSON output carries the live ops.
    let json = after.to_json();
    assert!(json.contains("\"get\"") && json.contains("\"bulk_load\""));
    assert!(
        json.contains("\"sched\"") && json.contains("\"mean_occupancy\""),
        "scheduler health block present once the ring has run"
    );
}

#[test]
fn concurrent_counters_are_exact_across_threads() {
    const THREADS: u64 = 4;
    const OPS_PER_THREAD: u64 = 4_000;

    let trie = Arc::new(ConcurrentHot::new(EmbeddedKeySource));
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let trie = Arc::clone(&trie);
            scope.spawn(move || {
                let mut rng = rand::rngs::StdRng::seed_from_u64(100 + t);
                for _ in 0..OPS_PER_THREAD {
                    let k = rng.gen_range(0..2_000u64);
                    let key = encode_u64(k);
                    match rng.gen_range(0..4u32) {
                        0 => drop(trie.remove(&key)),
                        1 => drop(trie.get(&key)),
                        2 => drop(trie.scan(&key, 3)),
                        _ => drop(trie.insert(&key, k)),
                    }
                }
            });
        }
    });

    let snap = trie.metrics_snapshot();

    // Every public call one of the 4 threads made is attributed to exactly
    // one OpKind, so the counts must add up to the grand total.
    let total: u64 = [OpKind::Get, OpKind::Insert, OpKind::Remove, OpKind::Scan]
        .iter()
        .map(|&k| snap.op(k).count)
        .sum();
    assert_eq!(total, THREADS * OPS_PER_THREAD);
    for kind in [OpKind::Get, OpKind::Insert, OpKind::Remove, OpKind::Scan] {
        let op = snap.op(kind);
        assert!(op.count > 0, "{} exercised", kind.label());
        assert_eq!(op.hist_total(), op.count, "{} histogram total", kind.label());
    }

    // ROWEX bookkeeping: every public entry pins exactly one epoch, plus
    // one extra pin per optimistic restart.
    let pins = snap.rowex.get(RowexCounter::EpochPin);
    let restarts = snap.rowex.get(RowexCounter::Restart);
    assert_eq!(
        pins,
        total + restarts,
        "epoch pins == public entries + restarts"
    );
    // A restart is caused by contention or re-analysis; lock failures and
    // obsolete sightings can never exceed total restarts.
    assert!(snap.rowex.get(RowexCounter::LockFail) <= restarts);
    assert!(snap.rowex.get(RowexCounter::ObsoleteSeen) <= restarts);
    // Reclamation backlog is queued minus freed, never negative.
    assert!(
        snap.rowex.get(RowexCounter::DeferredFreed)
            <= snap.rowex.get(RowexCounter::DeferredQueued)
    );

    // Quiesced: the structural walk attaches gauges and does not disturb
    // the counter half.
    let snap2 = trie.metrics_snapshot();
    assert_eq!(snap2.op(OpKind::Get).count, snap.op(OpKind::Get).count);
    assert_eq!(snap2.rowex.get(RowexCounter::EpochPin), pins);
    let s = snap2.structure.expect("quiesced walk succeeds");
    assert_eq!(s.leaves, trie.len() as u64);
    assert_eq!(s.layout_census.iter().sum::<u64>(), s.nodes);

    // Per-phase diffing: a pure-read phase shows only gets.
    let phase_start = trie.metrics_snapshot();
    for k in 0..500u64 {
        trie.get(&encode_u64(k));
    }
    let phase = trie.metrics_snapshot().since(&phase_start);
    assert_eq!(phase.op(OpKind::Get).count, 500);
    assert_eq!(phase.op(OpKind::Get).hist_total(), 500);
    assert_eq!(phase.op(OpKind::Insert).count, 0);
    assert_eq!(phase.rowex.get(RowexCounter::Restart), 0);

    // Quiesced out-of-order batch: refills and completions both equal the
    // request count (no writer is racing, so no torn-slot re-descents
    // either), and the whole batch pins exactly one epoch.
    let sched_start = trie.metrics_snapshot();
    let keys: Vec<[u8; 8]> = (0..300u64).map(encode_u64).collect();
    let mut out = vec![None; keys.len()];
    let mut sched = MlpScheduler::new();
    trie.get_batch_ooo(&keys, &mut out, &mut sched);
    let d = trie.metrics_snapshot().since(&sched_start);
    assert_eq!(d.sched.get(SchedCounter::Refill), keys.len() as u64);
    assert_eq!(d.sched.completions(), keys.len() as u64);
    assert_eq!(d.sched.get(SchedCounter::Redescent), 0, "quiesced: no torn slots");
    assert_eq!(d.rowex.get(RowexCounter::EpochPin), 1, "one pin per batch");
    assert_eq!(d.op(OpKind::GetBatch).count, 1);
}

/// `HOT_ARENA=1` shadow lane: under the `metrics` build the compact arena
/// backend (which carries no instrumentation by design) must still agree
/// with the instrumented heap trie answer-for-answer, and exercising it
/// must not tick the heap trie's counters. A no-op unless the environment
/// opts in — CI runs this lane once more with `HOT_ARENA=1`.
#[test]
fn arena_shadow_agrees_under_metrics_build() {
    if std::env::var_os("HOT_ARENA").is_none() {
        return;
    }
    use hot_core::CompactHot;

    let mut trie = HotTrie::new(EmbeddedKeySource);
    let mut compact = CompactHot::new();
    for v in 0..4_000u64 {
        // EmbeddedKeySource resolves keys from TIDs, so the TID must be
        // the encoded value itself.
        let tid = v.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 1;
        let k = encode_u64(tid);
        assert_eq!(trie.insert(&k, tid), compact.insert(&k, tid));
    }
    assert_eq!(trie.structure_digest(), compact.structure_digest());

    let baseline = trie.metrics_snapshot();
    let mut hits = 0usize;
    for v in 0..4_000u64 {
        let k = encode_u64(v.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 1);
        hits += usize::from(compact.get(&k).is_some());
        compact.scan(&k, 3);
    }
    assert_eq!(hits, 4_000);
    let after = trie.metrics_snapshot().since(&baseline);
    assert_eq!(after.op(OpKind::Get).count, 0, "compact ops must not tick heap counters");
    assert_eq!(after.op(OpKind::Scan).count, 0);

    // And the instrumented heap results still match the compact ones.
    for v in (0..4_000u64).step_by(11) {
        let k = encode_u64(v.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 1);
        assert_eq!(trie.get(&k), compact.get(&k));
        assert_eq!(trie.scan(&k, 9), compact.scan(&k, 9));
    }
}
