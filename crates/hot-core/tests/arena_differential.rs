//! Differential tests for the arena-backed compact layout: [`CompactHot`]
//! must be **structurally identical** to the heap [`HotTrie`] oracle —
//! equal `structure_digest`, equal get/iter/scan/remove result checksums —
//! on all four data sets of the paper's evaluation (url, email, yago,
//! integer), for incremental insert, bulk load, and interleaved removal.
//!
//! Also here: a proptest driving the front-coded leaf encoding across
//! prefix-boundary key sets (a stored key that is a strict prefix of its
//! neighbor is the hardest case for `[shared][suffix]` reconstruction),
//! and typed [`ArenaFull`] exhaustion of the 32-bit offset space under
//! artificially small arena ceilings.

use hot_core::{ArenaFull, ArenaKind, CompactBatchCursor, CompactHot, CompactScanCursor, HotTrie};
use hot_keys::{ArenaKeySource, KeySource};
use hot_ycsb::{Dataset, DatasetKind};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

/// FNV-1a over a result stream.
fn fnv1a(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn opt(v: Option<u64>) -> u64 {
    v.map_or(u64::MAX, |t| t.wrapping_add(1))
}

/// Build the heap oracle and the compact trie over the same keys, in the
/// same (shuffled) insert order.
fn build_pair(keys: &[Vec<u8>]) -> (HotTrie<Arc<ArenaKeySource>>, CompactHot, Vec<u64>) {
    let mut arena = ArenaKeySource::new();
    let tids: Vec<u64> = keys.iter().map(|k| arena.push(k)).collect();
    let arena = Arc::new(arena);
    let mut heap = HotTrie::new(Arc::clone(&arena));
    let mut compact = CompactHot::new();
    for (k, &tid) in keys.iter().zip(&tids) {
        assert_eq!(
            heap.insert(k, tid),
            compact.insert(k, tid),
            "insert disagreement on {k:?}"
        );
    }
    (heap, compact, tids)
}

/// One full differential pass: digest, point gets (hit + miss), batched
/// gets, in-order iteration, and sampled scans, all reduced to checksums
/// that must match the oracle exactly.
fn assert_backends_agree<S: KeySource>(
    heap: &HotTrie<S>,
    compact: &CompactHot,
    keys: &[Vec<u8>],
    label: &str,
) {
    assert_eq!(heap.len(), compact.len(), "{label}: len");
    assert_eq!(
        heap.structure_digest(),
        compact.structure_digest(),
        "{label}: structure digest"
    );

    // Point lookups: every stored key plus a mutated (mostly absent) probe.
    let mut heap_sum = Vec::with_capacity(keys.len() * 2);
    let mut compact_sum = Vec::with_capacity(keys.len() * 2);
    let mut probe = Vec::new();
    for k in keys {
        heap_sum.push(opt(heap.get(k)));
        compact_sum.push(opt(compact.get(k)));
        probe.clear();
        probe.extend_from_slice(k);
        let last = probe.len() - 1;
        probe[last] ^= 0x01;
        heap_sum.push(opt(heap.get(&probe)));
        compact_sum.push(opt(compact.get(&probe)));
    }
    assert_eq!(fnv1a(heap_sum), fnv1a(compact_sum), "{label}: get checksum");

    // Batched lookups through the pipelined cursor.
    let mut cursor = CompactBatchCursor::new();
    let mut heap_out = vec![None; keys.len()];
    let mut compact_out = vec![None; keys.len()];
    heap.get_batch(keys, &mut heap_out);
    compact.get_batch_with(&mut cursor, keys, &mut compact_out);
    assert_eq!(heap_out, compact_out, "{label}: get_batch");

    // Full in-order iteration.
    assert_eq!(
        fnv1a(heap.iter()),
        fnv1a(compact.iter()),
        "{label}: iter checksum"
    );

    // Sampled scans (every 37th key as start, plus its absent mutation).
    let mut scan_cursor = CompactScanCursor::new();
    let mut heap_hits = Vec::new();
    let mut compact_hits = Vec::new();
    for (i, k) in keys.iter().enumerate().step_by(37) {
        for limit in [1usize, 17, 100] {
            heap_hits.clear();
            heap.scan_into(k, limit, &mut heap_hits);
            compact_hits.clear();
            compact.scan_with(&mut scan_cursor, k, limit, &mut compact_hits);
            assert_eq!(heap_hits, compact_hits, "{label}: scan from key {i}");
        }
        probe.clear();
        probe.extend_from_slice(&k[..k.len() / 2]);
        heap_hits.clear();
        heap.scan_into(&probe, 50, &mut heap_hits);
        compact_hits.clear();
        compact.scan_with(&mut scan_cursor, &probe, 50, &mut compact_hits);
        assert_eq!(heap_hits, compact_hits, "{label}: scan from prefix of key {i}");
    }

    compact.check_invariants();
}

fn run_dataset(kind: DatasetKind) {
    let data = Dataset::generate(kind, 6_000, 0xA2E7_0008);
    let label = kind.label();
    let (mut heap, mut compact, tids) = build_pair(&data.keys);
    assert_backends_agree(&heap, &compact, &data.keys, label);

    // Bulk load must reproduce the incremental structure bit-for-bit.
    let order = data.sorted_order();
    let sorted: Vec<(&[u8], u64)> = order
        .iter()
        .map(|&i| (data.keys[i].as_slice(), tids[i]))
        .collect();
    let mut bulk = CompactHot::new();
    assert_eq!(bulk.bulk_load(&sorted).expect("bulk load"), data.keys.len());
    assert_eq!(
        bulk.structure_digest(),
        compact.structure_digest(),
        "{label}: bulk vs incremental digest"
    );

    // Remove ~half (every other key in insert order) from both backends;
    // returned TIDs and the surviving structure must stay in lockstep.
    let mut removed = Vec::new();
    for (i, k) in data.keys.iter().enumerate() {
        if i % 2 == 0 {
            removed.push((opt(heap.remove(k)), opt(compact.remove(k))));
        }
    }
    let (h, c): (Vec<u64>, Vec<u64>) = removed.into_iter().unzip();
    assert_eq!(fnv1a(h), fnv1a(c), "{label}: remove checksum");
    let survivors: Vec<Vec<u8>> = data
        .keys
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 2 == 1)
        .map(|(_, k)| k.clone())
        .collect();
    assert_backends_agree(&heap, &compact, &survivors, &format!("{label}/after-remove"));
}

#[test]
fn url_backends_agree() {
    run_dataset(DatasetKind::Url);
}

#[test]
fn email_backends_agree() {
    run_dataset(DatasetKind::Email);
}

#[test]
fn yago_backends_agree() {
    run_dataset(DatasetKind::Yago);
}

#[test]
fn integer_backends_agree() {
    run_dataset(DatasetKind::Integer);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Front-coding round-trip at prefix boundaries: tiny-alphabet words
    /// give maximal shared prefixes and many stored-key/extension pairs.
    /// The compact backend must agree with a `BTreeMap` model (and the
    /// heap oracle's digest) through interleaved inserts, upserts and
    /// removes.
    #[test]
    fn prefix_boundary_front_coding(
        words in proptest::collection::vec("[a-b]{1,20}", 1..120),
        removes in proptest::collection::vec(0usize..120, 0..40),
    ) {
        let stored: Vec<Vec<u8>> =
            words.iter().map(|w| hot_keys::str_key(w.as_bytes()).unwrap()).collect();
        let mut arena = ArenaKeySource::new();
        let tids: Vec<u64> = stored.iter().map(|k| arena.push(k)).collect();
        let arena = Arc::new(arena);

        let mut heap = HotTrie::new(Arc::clone(&arena));
        let mut compact = CompactHot::new();
        let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        for (k, &tid) in stored.iter().zip(&tids) {
            prop_assert_eq!(heap.insert(k, tid), compact.insert(k, tid));
            model.insert(k.clone(), tid);
        }
        for &r in &removes {
            let k = &stored[r % stored.len()];
            prop_assert_eq!(heap.remove(k), compact.remove(k));
            model.remove(k);
        }
        prop_assert_eq!(heap.structure_digest(), compact.structure_digest());
        prop_assert_eq!(compact.len(), model.len());
        for (k, &tid) in &model {
            prop_assert_eq!(compact.get(k), Some(tid));
        }
        let in_order: Vec<u64> = compact.iter().collect();
        let want: Vec<u64> = model.values().copied().collect();
        prop_assert_eq!(in_order, want);
        compact.check_invariants();
    }
}

/// 32-bit offset exhaustion surfaces as a typed [`ArenaFull`] carrying the
/// exhausted arena and its ceiling, and the failed mutation rolls back.
#[test]
fn exhaustion_is_typed_and_recoverable() {
    const SLAB: usize = 1 << 20;
    let mut trie = CompactHot::with_capacity(SLAB, usize::MAX);
    let mut n = 0u64;
    let err: ArenaFull = loop {
        match trie.try_insert(format!("k{n:08}").as_bytes(), n) {
            Ok(_) => n += 1,
            Err(e) => break e,
        }
    };
    assert_eq!(err.kind, ArenaKind::Node);
    assert_eq!(err.capacity, SLAB);
    assert!(err.requested > 0);
    assert!(!err.to_string().is_empty());
    assert_eq!(trie.len(), n as usize);
    trie.check_invariants();

    let mut leaf_bound = CompactHot::with_capacity(usize::MAX, SLAB);
    let mut m = 0u64;
    let err = loop {
        let key = format!("{:032x}/{}", m.wrapping_mul(0x9E37_79B9_7F4A_7C15), "y".repeat(160));
        match leaf_bound.try_insert(key.as_bytes(), m) {
            Ok(_) => m += 1,
            Err(e) => break e,
        }
    };
    assert_eq!(err.kind, ArenaKind::Leaf);
    assert_eq!(leaf_bound.len(), m as usize);
    leaf_bound.check_invariants();
}

/// Concurrent wrapper: readers race a writer through inserts, upserts and
/// removes; every lookup must return either a value the key held at some
/// point or a miss while absent, and the quiesced end state must match the
/// single-threaded compact backend exactly.
#[test]
fn concurrent_compact_churn() {
    use hot_core::sync::ConcurrentCompact;
    use std::sync::atomic::{AtomicBool, Ordering};

    let index = Arc::new(ConcurrentCompact::new());
    let keys: Arc<Vec<Vec<u8>>> = Arc::new(
        (0..4_000u64)
            .map(|i| format!("churn/{:06}", i.wrapping_mul(2654435761) % 1_000_000).into_bytes())
            .collect(),
    );
    let stop = Arc::new(AtomicBool::new(false));

    let mut readers = Vec::new();
    for t in 0..3 {
        let index = Arc::clone(&index);
        let keys = Arc::clone(&keys);
        let stop = Arc::clone(&stop);
        readers.push(std::thread::spawn(move || {
            let mut hits = 0u64;
            let mut out = Vec::new();
            let mut cursor = CompactScanCursor::new();
            let mut round = 0usize;
            while !stop.load(Ordering::Relaxed) {
                for (i, k) in keys.iter().enumerate().skip(t).step_by(3) {
                    // TIDs are always the key's index (upserts rewrite
                    // the same value), so a hit must be exact.
                    if let Some(tid) = index.get(k) {
                        assert_eq!(tid as usize, i % 2_000, "reader {t} key {i}");
                        hits += 1;
                    }
                    if i % 97 == 0 {
                        index.scan_with(&mut cursor, k, 5, &mut out);
                        assert!(out.len() <= 5);
                    }
                }
                round += 1;
                if round > 10_000 {
                    break;
                }
            }
            hits
        }));
    }

    // Writer: two full passes of insert/upsert, one pass removing half.
    for pass in 0..2 {
        for (i, k) in keys.iter().enumerate() {
            index.insert(k, (i % 2_000) as u64);
            if pass == 1 && i % 2 == 0 {
                index.remove(k);
            }
        }
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().expect("reader panicked");
    }

    // Quiesced: replay the same operations single-threaded and compare.
    let mut oracle = CompactHot::new();
    for pass in 0..2 {
        for (i, k) in keys.iter().enumerate() {
            oracle.insert(k, (i % 2_000) as u64);
            if pass == 1 && i % 2 == 0 {
                oracle.remove(k);
            }
        }
    }
    assert_eq!(index.len(), oracle.len());
    assert_eq!(index.structure_digest(), oracle.structure_digest());
    index.check_invariants();
}
