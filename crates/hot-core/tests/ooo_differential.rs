//! Differential tests for the completion-driven out-of-order scheduler
//! (DESIGN.md §14): every batch served through [`MlpScheduler`] must be
//! **byte-identical** — same hits, same misses, same TIDs in the same
//! order, same scan bounds — to both the scalar operations and the
//! round-robin cursors, across four key distributions (URL, email,
//! YAGO-triple, integer), every in-flight depth (which shuffles the
//! *completion* order without being allowed to shuffle the *result*
//! order), mixed get/scan streams, and concurrent churn on the ROWEX
//! index. The whole file is also exercised in the `HOT_FORCE_SCALAR` and
//! `HOT_FORCE_ROUND_ROBIN` CI lanes: results must not depend on either
//! override.

use hot_core::sync::ConcurrentHot;
use hot_core::{BatchCursor, BatchRequest, HotTrie, MlpScheduler, ScanBatchCursor};
use hot_keys::{encode_u64, ArenaKeySource};
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// In-flight depths spanning the supported range: depth 1 serializes the
/// ring (completion order == request order), larger depths complete
/// shallow keys many rounds before deep ones.
const DEPTHS: [usize; 5] = [1, 2, 7, 16, 64];

/// FNV-1a over a result stream — the "checksums identical" acceptance
/// criterion reduced to one word per batch.
fn fnv1a(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn checksum_out(out: &[Option<u64>]) -> u64 {
    fnv1a(out.iter().map(|s| s.map_or(u64::MAX, |t| t.wrapping_add(1))))
}

fn checksum_scan(tids: &[u64], bounds: &[usize]) -> u64 {
    fnv1a(
        tids.iter()
            .copied()
            .chain(bounds.iter().map(|&b| b as u64 ^ 0x5ca_5ca5)),
    )
}

/// The four key distributions of the paper's evaluation, miniaturized:
/// URLs share long common prefixes, emails discriminate mid-key, YAGO
/// triples are short and dense, integers are fixed-width binary. All sets
/// are prefix-free (every key ends in a unique terminator region).
fn datasets() -> Vec<(&'static str, Vec<Vec<u8>>)> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x0007_D15C);
    let hosts = ["cs.uni-example.org", "db.example.com", "example.net"];
    let url: Vec<Vec<u8>> = (0..2_500u32)
        .map(|i| {
            let mut k = format!(
                "https://{}/path/{:02}/item-{:06}?v={}",
                hosts[(i % 3) as usize],
                i % 17,
                i,
                rng.gen_range(0..100u32)
            )
            .into_bytes();
            k.push(0);
            k
        })
        .collect();
    let email: Vec<Vec<u8>> = (0..2_500u32)
        .map(|i| {
            let mut k = format!("user{:05}@dept{}.example.org", i, i % 23).into_bytes();
            k.push(0);
            k
        })
        .collect();
    let yago: Vec<Vec<u8>> = (0..2_500u32)
        .map(|i| {
            let mut k = format!("e{:06}\trel{:02}", i * 7 % 100_000, i % 40).into_bytes();
            k.push(0);
            k.push((i / 4_000) as u8 + 1); // disambiguate collisions, no interior NUL
            k.push(0);
            k
        })
        .collect();
    let integer: Vec<Vec<u8>> = (0..2_500u64).map(|i| encode_u64(i * 3).to_vec()).collect();
    vec![("url", url), ("email", email), ("yago", yago), ("integer", integer)]
}

/// Probe set: every inserted key, plus mutated misses, shuffled so
/// adjacent lanes descend to unrelated parts of the trie.
fn probes_for(keys: &[Vec<u8>], rng: &mut impl Rng) -> Vec<Vec<u8>> {
    let mut probes: Vec<Vec<u8>> = keys.to_vec();
    probes.extend(keys.iter().step_by(5).map(|k| {
        let mut m = k.clone();
        let mid = m.len() / 2;
        m[mid] ^= 0x15;
        m
    }));
    // Fisher–Yates with the caller's seeded rng.
    for i in (1..probes.len()).rev() {
        probes.swap(i, rng.gen_range(0..=i));
    }
    probes
}

struct Fixture {
    name: &'static str,
    trie: HotTrie<Arc<ArenaKeySource>>,
    sync: ConcurrentHot<Arc<ArenaKeySource>>,
    probes: Vec<Vec<u8>>,
}

fn fixtures() -> Vec<Fixture> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xBEE5);
    datasets()
        .into_iter()
        .map(|(name, keys)| {
            let mut arena = ArenaKeySource::new();
            let tids: Vec<u64> = keys.iter().map(|k| arena.push(k)).collect();
            let arena = Arc::new(arena);
            let mut trie = HotTrie::new(Arc::clone(&arena));
            let sync = ConcurrentHot::new(Arc::clone(&arena));
            for (k, &tid) in keys.iter().zip(&tids) {
                trie.insert(k, tid);
                sync.insert(k, tid);
            }
            let probes = probes_for(&keys, &mut rng);
            Fixture { name, trie, sync, probes }
        })
        .collect()
}

#[test]
fn lookups_byte_identical_across_scalar_round_robin_and_every_depth() {
    for fx in fixtures() {
        let expected: Vec<Option<u64>> = fx.probes.iter().map(|k| fx.trie.get(k)).collect();
        let want = checksum_out(&expected);

        let mut cursor = BatchCursor::new();
        let mut out = vec![None; fx.probes.len()];
        fx.trie.get_batch_with(&fx.probes, &mut out, &mut cursor);
        assert_eq!(checksum_out(&out), want, "{}: round-robin", fx.name);
        assert_eq!(out, expected, "{}: round-robin lookup results", fx.name);

        for depth in DEPTHS {
            let mut sched = MlpScheduler::with_depth(depth);
            let mut out = vec![None; fx.probes.len()];
            fx.trie.get_batch_ooo(&fx.probes, &mut out, &mut sched);
            assert_eq!(checksum_out(&out), want, "{}: ooo depth {depth}", fx.name);
            assert_eq!(out, expected, "{}: ooo depth {depth} results", fx.name);

            // Same scheduler, same batch, second run: lane-state reuse must
            // not leak between batches.
            let mut again = vec![None; fx.probes.len()];
            fx.trie.get_batch_ooo(&fx.probes, &mut again, &mut sched);
            assert_eq!(again, expected, "{}: ooo depth {depth} reused", fx.name);

            // ROWEX variant, quiesced: identical answers.
            let mut out = vec![None; fx.probes.len()];
            fx.sync.get_batch_ooo(&fx.probes, &mut out, &mut sched);
            assert_eq!(checksum_out(&out), want, "{}: sync ooo depth {depth}", fx.name);
        }
    }
}

#[test]
fn scans_byte_identical_across_scalar_round_robin_and_every_depth() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5CA7);
    for fx in fixtures() {
        let requests: Vec<(Vec<u8>, usize)> = fx
            .probes
            .iter()
            .step_by(3)
            .map(|k| (k.clone(), rng.gen_range(0..24usize)))
            .collect();

        // Scalar ground truth, concatenated in request order.
        let mut want_tids = Vec::new();
        let mut want_bounds = vec![0usize];
        for (k, limit) in &requests {
            want_tids.extend(fx.trie.scan(k, *limit));
            want_bounds.push(want_tids.len());
        }
        let want = checksum_scan(&want_tids, &want_bounds);

        let mut cursor = ScanBatchCursor::new();
        let (mut tids, mut bounds) = (Vec::new(), Vec::new());
        fx.trie.scan_batch_with(&requests, &mut tids, &mut bounds, &mut cursor);
        assert_eq!(checksum_scan(&tids, &bounds), want, "{}: round-robin scan", fx.name);
        assert_eq!((&tids, &bounds), (&want_tids, &want_bounds), "{}: rr scan", fx.name);

        for depth in DEPTHS {
            let mut sched = MlpScheduler::with_depth(depth);
            fx.trie.scan_batch_ooo(&requests, &mut tids, &mut bounds, &mut sched);
            assert_eq!(checksum_scan(&tids, &bounds), want, "{}: ooo scan depth {depth}", fx.name);
            assert_eq!(tids, want_tids, "{}: ooo scan tids depth {depth}", fx.name);
            assert_eq!(bounds, want_bounds, "{}: ooo scan bounds depth {depth}", fx.name);

            fx.sync.scan_batch_ooo(&requests, &mut tids, &mut bounds, &mut sched);
            assert_eq!(checksum_scan(&tids, &bounds), want, "{}: sync ooo scan depth {depth}", fx.name);
        }
    }
}

#[test]
fn mixed_get_scan_streams_interleave_without_cross_talk() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x111D);
    for fx in fixtures() {
        // Alternate gets and scans in one request stream; limits vary.
        let limits: Vec<usize> = fx.probes.iter().map(|_| rng.gen_range(0..9)).collect();
        let reqs: Vec<BatchRequest> = fx
            .probes
            .iter()
            .zip(&limits)
            .enumerate()
            .map(|(i, (k, &limit))| {
                if i % 2 == 0 {
                    BatchRequest::Get(k.as_slice())
                } else {
                    BatchRequest::Scan(k.as_slice(), limit)
                }
            })
            .collect();

        // Scalar ground truth, walking the stream in order.
        let mut want_out: Vec<Option<u64>> = vec![None; reqs.len()];
        let mut want_tids = Vec::new();
        let mut want_bounds = vec![0usize];
        for (i, req) in reqs.iter().enumerate() {
            match req {
                BatchRequest::Get(k) => want_out[i] = fx.trie.get(k),
                BatchRequest::Scan(k, limit) => {
                    want_tids.extend(fx.trie.scan(k, *limit));
                    want_bounds.push(want_tids.len());
                }
            }
        }

        for depth in DEPTHS {
            let mut sched = MlpScheduler::with_depth(depth);
            let mut out = vec![None; reqs.len()];
            let (mut tids, mut bounds) = (Vec::new(), Vec::new());
            fx.trie.mixed_batch_ooo(&reqs, &mut out, &mut tids, &mut bounds, &mut sched);
            assert_eq!(out, want_out, "{}: mixed gets depth {depth}", fx.name);
            assert_eq!(tids, want_tids, "{}: mixed scan tids depth {depth}", fx.name);
            assert_eq!(bounds, want_bounds, "{}: mixed scan bounds depth {depth}", fx.name);

            let mut out = vec![None; reqs.len()];
            fx.sync.mixed_batch_ooo(&reqs, &mut out, &mut tids, &mut bounds, &mut sched);
            assert_eq!(out, want_out, "{}: sync mixed gets depth {depth}", fx.name);
            assert_eq!(tids, want_tids, "{}: sync mixed tids depth {depth}", fx.name);
        }
    }
}

#[test]
fn remove_batch_equals_sequential_removes() {
    for fx in fixtures() {
        // Two identical tries; remove a probe slice (hits, misses, and
        // in-batch duplicates) batched on one, sequentially on the other.
        let mut victims: Vec<Vec<u8>> = fx.probes.iter().step_by(4).cloned().collect();
        let dup = victims[0].clone();
        victims.push(dup);

        let mut batched = fx.trie;
        let expected: Vec<Option<u64>> = victims.iter().map(|k| fx.sync.remove(k)).collect();

        let mut out = vec![None; victims.len()];
        batched.remove_batch(&victims, &mut out);
        assert_eq!(out, expected, "{}: remove_batch answers", fx.name);

        // Post-state agrees key by key.
        for k in &victims {
            assert_eq!(batched.get(k), fx.sync.get(k), "{}: post-remove state", fx.name);
        }
        assert_eq!(batched.len(), fx.sync.len(), "{}: post-remove sizes", fx.name);
    }
}

#[test]
fn convenience_entry_points_agree_with_explicit_paths() {
    // `get_batch`/`scan_batch` route by HOT_FORCE_ROUND_ROBIN; whichever
    // way this process was launched, the answers must match both explicit
    // engines (this is what the forced CI lanes re-check).
    for fx in fixtures().into_iter().take(1) {
        let expected: Vec<Option<u64>> = fx.probes.iter().map(|k| fx.trie.get(k)).collect();
        let mut out = vec![None; fx.probes.len()];
        fx.trie.get_batch(&fx.probes, &mut out);
        assert_eq!(out, expected);
        let mut out = vec![None; fx.probes.len()];
        fx.sync.get_batch(&fx.probes, &mut out);
        assert_eq!(out, expected);
    }
}

#[test]
fn concurrent_churn_preserves_stable_keys_and_quiesced_equality() {
    // Writers churn odd keys while a reader batches lookups and scans over
    // even (stable) keys: stable lookups must always hit with their exact
    // TID no matter how the scheduler's lanes interleave with structural
    // modification, torn slots included (bounded re-descents recover).
    const STABLE: u64 = 4_000;
    const CHURN_ROUNDS: usize = 60;

    let sync = Arc::new(ConcurrentHot::new(hot_keys::EmbeddedKeySource));
    for k in 0..STABLE {
        sync.insert(&encode_u64(k * 2), k * 2);
    }

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    std::thread::scope(|scope| {
        for t in 0..2u64 {
            let sync = Arc::clone(&sync);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut rng = rand::rngs::StdRng::seed_from_u64(77 + t);
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let k = rng.gen_range(0..STABLE) * 2 + 1;
                    if rng.gen_bool(0.5) {
                        sync.insert(&encode_u64(k), k);
                    } else {
                        sync.remove(&encode_u64(k));
                    }
                }
            });
        }

        let mut rng = rand::rngs::StdRng::seed_from_u64(0xABBA);
        let mut sched = MlpScheduler::new();
        for round in 0..CHURN_ROUNDS {
            sched.set_depth(DEPTHS[round % DEPTHS.len()]);
            let probes: Vec<[u8; 8]> = (0..512)
                .map(|_| encode_u64(rng.gen_range(0..STABLE) * 2))
                .collect();
            let mut out = vec![None; probes.len()];
            sync.get_batch_ooo(&probes, &mut out, &mut sched);
            for (p, got) in probes.iter().zip(&out) {
                let want = u64::from_be_bytes(*p);
                assert_eq!(*got, Some(want), "stable key lost under churn");
            }

            // Scans seeded at stable keys: churned odd keys may or may not
            // appear, but every span is ordered, bounded by its limit, and
            // never reaches before its seek key.
            let reqs: Vec<([u8; 8], usize)> = (0..64)
                .map(|_| (encode_u64(rng.gen_range(0..STABLE - 8) * 2), 5))
                .collect();
            let (mut tids, mut bounds) = (Vec::new(), Vec::new());
            sync.scan_batch_ooo(&reqs, &mut tids, &mut bounds, &mut sched);
            assert_eq!(bounds.len(), reqs.len() + 1);
            for (i, (start, _)) in reqs.iter().enumerate() {
                let span = &tids[bounds[i]..bounds[i + 1]];
                assert!(span.len() <= 5, "scan respects its limit");
                assert!(span.windows(2).all(|w| w[0] < w[1]), "scan is ordered");
                let lo = u64::from_be_bytes(*start);
                assert!(span.iter().all(|&t| t >= lo), "scan starts at the seek key");
            }
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });

    // Quiesced: batched and scalar answers are byte-identical again.
    let probes: Vec<[u8; 8]> = (0..STABLE * 2 + 64).map(encode_u64).collect();
    let expected: Vec<Option<u64>> = probes.iter().map(|k| sync.get(k)).collect();
    let mut out = vec![None; probes.len()];
    let mut sched = MlpScheduler::new();
    sync.get_batch_ooo(&probes, &mut out, &mut sched);
    assert_eq!(checksum_out(&out), checksum_out(&expected));
    assert_eq!(out, expected);
}

/// `HOT_ARENA=1` shadow lane: the compact arena backend's pipelined batch
/// lookups and scalar scans must be byte-identical to the heap scheduler's
/// answers on all four distributions. A no-op unless the environment opts
/// in — CI runs this file once more with `HOT_ARENA=1` in both the normal
/// and `HOT_FORCE_SCALAR` jobs.
#[test]
fn arena_shadow_batches_byte_identical() {
    if std::env::var_os("HOT_ARENA").is_none() {
        return;
    }
    use hot_core::sync::ConcurrentCompact;
    use hot_core::{CompactBatchCursor, CompactHot, CompactScanCursor};

    let mut rng = rand::rngs::StdRng::seed_from_u64(0xBEE5);
    for (name, keys) in datasets() {
        let mut arena = ArenaKeySource::new();
        let tids: Vec<u64> = keys.iter().map(|k| arena.push(k)).collect();
        let arena = Arc::new(arena);
        let mut trie = HotTrie::new(Arc::clone(&arena));
        let mut compact = CompactHot::new();
        let csync = ConcurrentCompact::new();
        for (k, &tid) in keys.iter().zip(&tids) {
            trie.insert(k, tid);
            compact.insert(k, tid);
            csync.insert(k, tid);
        }
        let probes = probes_for(&keys, &mut rng);

        let expected: Vec<Option<u64>> = probes.iter().map(|k| trie.get(k)).collect();
        let want = checksum_out(&expected);

        let mut cursor = CompactBatchCursor::new();
        let mut out = vec![None; probes.len()];
        compact.get_batch_with(&mut cursor, &probes, &mut out);
        assert_eq!(checksum_out(&out), want, "{name}: compact batch checksum");
        assert_eq!(out, expected, "{name}: compact batch results");

        csync.get_batch_with(&mut cursor, &probes, &mut out);
        assert_eq!(checksum_out(&out), want, "{name}: concurrent compact batch");

        // Sampled scans against the heap truth.
        let mut scan_cursor = CompactScanCursor::new();
        let mut heap_hits = Vec::new();
        let mut compact_hits = Vec::new();
        for (i, p) in probes.iter().enumerate().step_by(7) {
            let limit = (i * 13) % 40;
            trie.scan_into(p, limit, &mut heap_hits);
            compact.scan_with(&mut scan_cursor, p, limit, &mut compact_hits);
            assert_eq!(heap_hits, compact_hits, "{name}: compact scan probe {i}");
            csync.scan_with(&mut scan_cursor, p, limit, &mut compact_hits);
            assert_eq!(heap_hits, compact_hits, "{name}: concurrent compact scan probe {i}");
        }
        compact.check_invariants();
        csync.check_invariants();
    }
}
