//! Differential tests for every range-scan entry point: `scan`, `scan_into`,
//! `scan_with` (reused cursor) and `scan_batch` must all return exactly what
//! `BTreeMap::range(start..)` returns — on the single-threaded trie and on
//! the ROWEX-synchronized variant — for present start keys, absent start
//! keys, and prefix-boundary start keys (a probe that is a strict prefix of
//! stored keys, with and without the string terminator).
//!
//! The whole file is SIMD-agnostic: the CI scalar-fallback job re-runs it
//! with `HOT_FORCE_SCALAR=1` so the scalar `match_prefix_*` seek path gets
//! the same coverage as the AVX2 one.

use hot_core::sync::ConcurrentHot;
use hot_core::{HotTrie, ScanBatchCursor, ScanCursor};
use hot_keys::{encode_u64, ArenaKeySource, EmbeddedKeySource, KeySource};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Asserts every scalar scan entry point agrees with `want` for one probe.
///
/// `cursor` and `out` are deliberately reused across calls so cursor state
/// leaking from one scan into the next would be caught.
fn assert_scan_paths<S: KeySource>(
    trie: &HotTrie<S>,
    sync: &ConcurrentHot<S>,
    start: &[u8],
    limit: usize,
    want: &[u64],
    cursor: &mut ScanCursor,
    out: &mut Vec<u64>,
) {
    assert_eq!(trie.scan(start, limit), want, "HotTrie::scan from {start:?}");
    trie.scan_into(start, limit, out);
    assert_eq!(out, want, "HotTrie::scan_into from {start:?}");
    trie.scan_with(start, limit, out, cursor);
    assert_eq!(out, want, "HotTrie::scan_with from {start:?}");

    assert_eq!(sync.scan(start, limit), want, "ConcurrentHot::scan from {start:?}");
    sync.scan_into(start, limit, out);
    assert_eq!(out, want, "ConcurrentHot::scan_into from {start:?}");
    sync.scan_with(start, limit, out, cursor);
    assert_eq!(out, want, "ConcurrentHot::scan_with from {start:?}");
}

/// Asserts the batched scan path returns `want[i]` in slot `i` for every
/// request, on both tries, for the given descent group width.
fn assert_batched_paths<S: KeySource, K: AsRef<[u8]>>(
    trie: &HotTrie<S>,
    sync: &ConcurrentHot<S>,
    requests: &[(K, usize)],
    want: &[Vec<u64>],
    group: usize,
) {
    let mut cursor = ScanBatchCursor::with_group(group);
    let mut tids = Vec::new();
    let mut bounds = Vec::new();

    trie.scan_batch_with(requests, &mut tids, &mut bounds, &mut cursor);
    assert_eq!(bounds.len(), requests.len() + 1);
    for (i, segment) in want.iter().enumerate() {
        assert_eq!(&tids[bounds[i]..bounds[i + 1]], &segment[..], "trie batch slot {i}");
    }

    sync.scan_batch_with(requests, &mut tids, &mut bounds, &mut cursor);
    assert_eq!(bounds.len(), requests.len() + 1);
    for (i, segment) in want.iter().enumerate() {
        assert_eq!(&tids[bounds[i]..bounds[i + 1]], &segment[..], "sync batch slot {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Integer keys: present picks, uniform (mostly absent) probes, and a
    /// limit sweep, checked against `BTreeMap::range` on every path.
    #[test]
    fn u64_scans_match_btreemap(
        keys in proptest::collection::vec(0u64..100_000, 1..300),
        uniform in proptest::collection::vec((0u64..100_100, 0usize..120), 0..25),
        picks in proptest::collection::vec((0usize..10_000, 0usize..120), 0..25),
        group in 1usize..17,
    ) {
        let mut trie = HotTrie::new(EmbeddedKeySource);
        let sync = ConcurrentHot::new(EmbeddedKeySource);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for &k in &keys {
            trie.insert(&encode_u64(k), k);
            sync.insert(&encode_u64(k), k);
            model.insert(k, k);
        }

        let mut probes: Vec<(u64, usize)> = uniform;
        probes.extend(picks.iter().map(|&(i, n)| (keys[i % keys.len()], n)));

        let mut cursor = ScanCursor::new();
        let mut out = Vec::new();
        let mut requests: Vec<([u8; 8], usize)> = Vec::new();
        let mut want_segments: Vec<Vec<u64>> = Vec::new();
        for &(k, n) in &probes {
            let want: Vec<u64> = model.range(k..).take(n).map(|(_, &v)| v).collect();
            assert_scan_paths(&trie, &sync, &encode_u64(k), n, &want, &mut cursor, &mut out);
            requests.push((encode_u64(k), n));
            want_segments.push(want);
        }
        assert_batched_paths(&trie, &sync, &requests, &want_segments, group);
    }

    /// String keys over a tiny alphabet (deep shared prefixes), with probes
    /// that sit exactly on prefix boundaries: for a stored "abc", probe both
    /// the raw prefix "ab" (orders before every stored key extending it) and
    /// the terminated sibling key "ab\0" (may itself be stored).
    #[test]
    fn string_scans_match_btreemap_at_prefix_boundaries(
        words in proptest::collection::vec("[a-c]{1,12}", 1..100),
        limit in 0usize..110,
    ) {
        let stored: Vec<Vec<u8>> =
            words.iter().map(|w| hot_keys::str_key(w.as_bytes()).unwrap()).collect();
        let mut arena = ArenaKeySource::new();
        let tids: Vec<u64> = stored.iter().map(|k| arena.push(k)).collect();
        let arena = Arc::new(arena);

        let mut trie = HotTrie::new(Arc::clone(&arena));
        let sync = ConcurrentHot::new(Arc::clone(&arena));
        let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        for (k, &tid) in stored.iter().zip(&tids) {
            // Duplicate words upsert; keep the model in lockstep.
            trie.insert(k, tid);
            sync.insert(k, tid);
            model.insert(k.clone(), tid);
        }

        let mut probes: Vec<Vec<u8>> = Vec::new();
        for w in &words {
            let half = w.len() / 2;
            for prefix in [&w.as_bytes()[..half], w.as_bytes()] {
                probes.push(prefix.to_vec());
                probes.push(hot_keys::str_key(prefix).unwrap());
            }
        }
        probes.push(Vec::new()); // empty start key: full scan from the front

        let mut cursor = ScanCursor::new();
        let mut out = Vec::new();
        let mut requests: Vec<(&[u8], usize)> = Vec::new();
        let mut want_segments: Vec<Vec<u64>> = Vec::new();
        for p in &probes {
            let want: Vec<u64> = model.range(p.clone()..).take(limit).map(|(_, &v)| v).collect();
            assert_scan_paths(&trie, &sync, p, limit, &want, &mut cursor, &mut out);
            requests.push((p, limit));
            want_segments.push(want);
        }
        assert_batched_paths(&trie, &sync, &requests, &want_segments, 8);
    }
}

/// A fixed nested-prefix chain ("a", "ab", ..., "abcabcabc") probed at every
/// boundary — the case where the seek's mismatch position lands exactly on a
/// discriminative bit between a key and its extension.
#[test]
fn nested_prefix_chain_scans() {
    let base = b"abcabcabc";
    let stored: Vec<Vec<u8>> =
        (1..=base.len()).map(|n| hot_keys::str_key(&base[..n]).unwrap()).collect();
    let mut arena = ArenaKeySource::new();
    let tids: Vec<u64> = stored.iter().map(|k| arena.push(k)).collect();
    let arena = Arc::new(arena);

    let mut trie = HotTrie::new(Arc::clone(&arena));
    let sync = ConcurrentHot::new(Arc::clone(&arena));
    let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
    for (k, &tid) in stored.iter().zip(&tids) {
        trie.insert(k, tid);
        sync.insert(k, tid);
        model.insert(k.clone(), tid);
    }

    let mut cursor = ScanCursor::new();
    let mut out = Vec::new();
    for n in 0..=base.len() {
        for probe in [base[..n].to_vec(), hot_keys::str_key(&base[..n]).unwrap()] {
            for limit in [0usize, 1, 3, 100] {
                let want: Vec<u64> =
                    model.range(probe.clone()..).take(limit).map(|(_, &v)| v).collect();
                assert_scan_paths(&trie, &sync, &probe, limit, &want, &mut cursor, &mut out);
            }
        }
    }
}

/// Empty and singleton tries: the degenerate roots bypass the seek entirely.
#[test]
fn degenerate_roots() {
    let mut trie = HotTrie::new(EmbeddedKeySource);
    let sync = ConcurrentHot::new(EmbeddedKeySource);
    let mut cursor = ScanCursor::new();
    let mut out = Vec::new();
    assert_scan_paths(&trie, &sync, &encode_u64(0), 10, &[], &mut cursor, &mut out);

    trie.insert(&encode_u64(42), 42);
    sync.insert(&encode_u64(42), 42);
    assert_scan_paths(&trie, &sync, &encode_u64(0), 10, &[42], &mut cursor, &mut out);
    assert_scan_paths(&trie, &sync, &encode_u64(42), 10, &[42], &mut cursor, &mut out);
    assert_scan_paths(&trie, &sync, &encode_u64(43), 10, &[], &mut cursor, &mut out);
    assert_batched_paths(
        &trie,
        &sync,
        &[(encode_u64(0), 2), (encode_u64(42), 0), (encode_u64(99), 5)],
        &[vec![42], vec![], vec![]],
        3,
    );
}

/// `HOT_ARENA=1` shadow lane: replay the nested-prefix-chain and integer
/// probes on the arena-backed compact backend (single-threaded and
/// concurrent) and hold it to the same `BTreeMap::range` truth. A no-op
/// unless the environment opts in — CI runs this file once more with
/// `HOT_ARENA=1` in both the normal and `HOT_FORCE_SCALAR` jobs.
#[test]
fn arena_shadow_scans() {
    if std::env::var_os("HOT_ARENA").is_none() {
        return;
    }
    use hot_core::sync::ConcurrentCompact;
    use hot_core::{CompactHot, CompactScanCursor};

    let base = b"abcabcabc";
    let mut stored: Vec<Vec<u8>> =
        (1..=base.len()).map(|n| hot_keys::str_key(&base[..n]).unwrap()).collect();
    for v in 0..400u64 {
        stored.push(encode_u64(v * 97).to_vec());
    }

    let mut compact = CompactHot::new();
    let sync = ConcurrentCompact::new();
    let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
    for (tid, k) in stored.iter().enumerate() {
        compact.insert(k, tid as u64);
        sync.insert(k, tid as u64);
        model.insert(k.clone(), tid as u64);
    }

    let mut probes: Vec<Vec<u8>> = Vec::new();
    for n in 0..=base.len() {
        probes.push(base[..n].to_vec());
        probes.push(hot_keys::str_key(&base[..n]).unwrap());
    }
    for v in [0u64, 96, 97, 19_399, 19_400, u64::MAX] {
        probes.push(encode_u64(v).to_vec());
    }

    let mut cursor = CompactScanCursor::new();
    let mut out = Vec::new();
    for p in &probes {
        for limit in [0usize, 1, 3, 1000] {
            let want: Vec<u64> =
                model.range(p.clone()..).take(limit).map(|(_, &v)| v).collect();
            assert_eq!(compact.scan(p, limit), want, "CompactHot::scan from {p:?}");
            compact.scan_with(&mut cursor, p, limit, &mut out);
            assert_eq!(out, want, "CompactHot::scan_with from {p:?}");
            assert_eq!(sync.scan(p, limit), want, "ConcurrentCompact::scan from {p:?}");
            sync.scan_with(&mut cursor, p, limit, &mut out);
            assert_eq!(out, want, "ConcurrentCompact::scan_with from {p:?}");
        }
        let from: Vec<u64> = compact.range_from(p).collect();
        let want: Vec<u64> = model.range(p.clone()..).map(|(_, &v)| v).collect();
        assert_eq!(from, want, "CompactHot::range_from {p:?}");
    }
    compact.check_invariants();
    sync.check_invariants();
}
