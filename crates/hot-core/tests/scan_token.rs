//! Regression tests for the resumable scan continuation token
//! (DESIGN.md §18): paging a `ShardedHot` scan through
//! `scan_page`/`scan_resume` must reproduce exactly what one unbroken
//! `scan_into` — and the `BTreeMap::range` ground truth of
//! `scan_differential.rs` — returns, at every page size, across shard
//! boundaries, and when the token's key is deleted between pages.
//!
//! Like the other scan differentials, this file is SIMD-agnostic and is
//! re-run in the `HOT_FORCE_SCALAR` CI lane.

use hot_core::{ScanToken, ShardedHot};
use hot_keys::{encode_u64, ArenaKeySource, EmbeddedKeySource};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Page through the whole key space from `start` in pages of `page`,
/// returning every TID in order.
fn paged_scan<S>(sharded: &ShardedHot<S>, start: &[u8], page: usize) -> Vec<u64>
where
    S: hot_keys::KeySource + Clone + Send + Sync + 'static,
{
    let mut all = Vec::new();
    let mut buf = Vec::new();
    let mut token = sharded.scan_page(start, page, &mut buf);
    all.extend_from_slice(&buf);
    while let Some(t) = token {
        token = sharded.scan_resume(&t, page, &mut buf);
        all.extend_from_slice(&buf);
        assert!(buf.len() <= page, "page overflow");
        if buf.is_empty() {
            assert!(token.is_none(), "an empty page must close the scan");
        }
    }
    all
}

/// String keys with deep shared prefixes over 1/2/4 shards: every page
/// size must reassemble the full `BTreeMap::range` answer, including
/// pages that end exactly on a shard splitter.
#[test]
fn paged_scans_match_btreemap_across_shards() {
    let words = [
        "a", "ab", "abc", "abca", "abcab", "abcabc", "b", "ba", "bab", "bb", "bbc", "c", "ca",
        "cab", "cabc", "cb", "cc", "ccc",
    ];
    let stored: Vec<Vec<u8>> =
        words.iter().map(|w| hot_keys::str_key(w.as_bytes()).unwrap()).collect();
    let mut arena = ArenaKeySource::new();
    let tids: Vec<u64> = stored.iter().map(|k| arena.push(k)).collect();
    let arena = Arc::new(arena);

    let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
    for (k, &tid) in stored.iter().zip(&tids) {
        model.insert(k.clone(), tid);
    }
    let mut order: Vec<usize> = (0..stored.len()).collect();
    order.sort_unstable_by(|&a, &b| stored[a].cmp(&stored[b]));
    let entries: Vec<(&[u8], u64)> =
        order.iter().map(|&i| (stored[i].as_slice(), tids[i])).collect();

    for shards in [1usize, 2, 4] {
        let sharded = ShardedHot::inline_router(Arc::clone(&arena), shards);
        sharded.bulk_load(&entries).expect("sorted distinct entries");
        let mut probes: Vec<Vec<u8>> = stored.clone();
        probes.push(Vec::new()); // full scan from the front
        probes.push(b"ab".to_vec()); // raw prefix, orders before its extensions
        probes.push(b"zz".to_vec()); // past the end
        // The splitters themselves: a page boundary exactly on a shard
        // boundary is the case the token exists for.
        probes.extend(sharded.splitters().iter().cloned());
        for start in &probes {
            let want: Vec<u64> = model.range(start.clone()..).map(|(_, &v)| v).collect();
            for page in [1usize, 2, 3, 7, 100] {
                assert_eq!(
                    paged_scan(&sharded, start, page),
                    want,
                    "shards={shards} page={page} start={start:?}"
                );
            }
        }
    }
}

/// Integer keys: a full paged sweep equals one unbroken scan, and a page
/// sized exactly to the remaining keys closes with one final empty page
/// (the token cannot know the key space ended on the page boundary).
#[test]
fn paged_scan_equals_unbroken_scan() {
    let n = 500u64;
    let sharded = ShardedHot::inline_router(EmbeddedKeySource, 4);
    let entries: Vec<Vec<u8>> = (0..n).map(|v| encode_u64(v * 3).to_vec()).collect();
    let pairs: Vec<(&[u8], u64)> =
        entries.iter().enumerate().map(|(i, k)| (k.as_slice(), (i as u64) * 3)).collect();
    sharded.bulk_load(&pairs).expect("sorted distinct entries");

    let unbroken = sharded.scan(&encode_u64(0), n as usize);
    assert_eq!(unbroken.len(), n as usize);
    for page in [1usize, 9, 64, 250, 500] {
        assert_eq!(paged_scan(&sharded, &encode_u64(0), page), unbroken, "page={page}");
    }

    // A boundary-exact page: the 500 keys fill pages of 500 exactly, so
    // one more (empty) resume closes the scan.
    let mut buf = Vec::new();
    let token = sharded.scan_page(&encode_u64(0), 500, &mut buf).expect("full page");
    assert_eq!(buf, unbroken);
    assert!(sharded.scan_resume(&token, 500, &mut buf).is_none());
    assert!(buf.is_empty(), "the key space was exhausted");
}

/// Deleting the token's key between pages must not lose or duplicate its
/// neighbors: the resume starts at the deleted key's successor.
#[test]
fn resume_survives_deleted_last_key() {
    let sharded = ShardedHot::inline_router(EmbeddedKeySource, 2);
    for v in 0..100u64 {
        sharded.insert(&encode_u64(v), v);
    }
    let mut buf = Vec::new();
    let token = sharded.scan_page(&encode_u64(0), 10, &mut buf).expect("more keys follow");
    assert_eq!(buf, (0..10).collect::<Vec<u64>>());
    assert_eq!(token.last_key, encode_u64(9));

    assert_eq!(sharded.remove(&encode_u64(9)), Some(9));
    let token = sharded.scan_resume(&token, 10, &mut buf).expect("more keys follow");
    assert_eq!(buf, (10..20).collect::<Vec<u64>>(), "no key lost or repeated");
    assert_eq!(token.last_key, encode_u64(19));
}

/// Token routing is by key, not by the stored shard hint: a token minted
/// under one splitter layout resumes correctly under another.
#[test]
fn token_shard_hint_is_not_a_correctness_input() {
    let a = ShardedHot::inline_router(EmbeddedKeySource, 4);
    let b = ShardedHot::inline_router(EmbeddedKeySource, 2);
    assert!(b.set_splitters(vec![encode_u64(77).to_vec()]));
    for v in 0..100u64 {
        a.insert(&encode_u64(v), v);
        b.insert(&encode_u64(v), v);
    }
    let mut buf = Vec::new();
    let token = a.scan_page(&encode_u64(50), 10, &mut buf).expect("more keys follow");
    let forged = ScanToken { shard: 0, last_key: token.last_key.clone() };
    let mut from_a = Vec::new();
    let mut from_b = Vec::new();
    a.scan_resume(&token, 10, &mut from_a);
    b.scan_resume(&forged, 10, &mut from_b);
    assert_eq!(from_a, from_b, "resume depends only on last_key");
    assert_eq!(from_a, (60..70).collect::<Vec<u64>>());
}

/// Degenerate cases: empty trie, zero limit, single key.
#[test]
fn degenerate_pages() {
    let sharded = ShardedHot::inline_router(EmbeddedKeySource, 2);
    let mut buf = vec![1, 2, 3];
    assert!(sharded.scan_page(&encode_u64(0), 10, &mut buf).is_none());
    assert!(buf.is_empty(), "scan_page clears its output");

    sharded.insert(&encode_u64(5), 5);
    // Zero-limit pages return nothing and never mint a fresh token.
    assert!(sharded.scan_page(&encode_u64(0), 0, &mut buf).is_none());
    let token = sharded.scan_page(&encode_u64(0), 1, &mut buf).expect("page filled");
    assert_eq!(buf, [5]);
    // A zero-limit resume keeps the position instead of losing it.
    let kept = sharded.scan_resume(&token, 0, &mut buf).expect("position kept");
    assert_eq!(kept, token);
    assert!(sharded.scan_resume(&kept, 10, &mut buf).is_none());
    assert!(buf.is_empty());
}
