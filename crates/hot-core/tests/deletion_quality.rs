//! Deletion-quality tests: underflow handling must not only preserve
//! correctness but keep the tree shallow (Section 3.2's deletion cases
//! mirror the insertion cases).

use hot_core::HotTrie;
use hot_keys::{encode_u64, EmbeddedKeySource};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

#[test]
fn underflow_merge_pulls_nodes_up() {
    // Build 10k keys, delete 95% of them: the tree must shrink back toward
    // the depth a fresh build of the survivors would have, not retain the
    // full-size skeleton.
    let mut rng = StdRng::seed_from_u64(71);
    let mut keys: Vec<u64> = (0..10_000u64).map(|_| rng.gen::<u64>() >> 1).collect();
    keys.sort_unstable();
    keys.dedup();
    let mut t = HotTrie::new(EmbeddedKeySource);
    for &k in &keys {
        t.insert(&encode_u64(k), k);
    }
    let mut order = keys.clone();
    order.shuffle(&mut rng);
    let survivors: Vec<u64> = order.split_off(order.len() * 95 / 100);
    for &k in &order {
        t.remove(&encode_u64(k)).expect("present");
    }
    t.validate();

    let mut fresh = HotTrie::new(EmbeddedKeySource);
    for &k in &survivors {
        fresh.insert(&encode_u64(k), k);
    }
    let shrunk = t.depth_stats();
    let rebuilt = fresh.depth_stats();
    assert_eq!(shrunk.total(), rebuilt.total());
    // Within one level of the fresh build on average (collapse + merge keep
    // paths short; without merging this drifts 2+ levels deep).
    assert!(
        shrunk.mean_depth() <= rebuilt.mean_depth() + 1.0,
        "shrunk mean {:.2} vs rebuilt {:.2}",
        shrunk.mean_depth(),
        rebuilt.mean_depth()
    );
    // Memory shrinks accordingly.
    let per_key = t.memory_stats().bytes_per_key();
    assert!(per_key < 40.0, "bytes/key after mass delete: {per_key:.1}");
}

#[test]
fn grow_shrink_grow_cycles() {
    let mut t = HotTrie::new(EmbeddedKeySource);
    let mut rng = StdRng::seed_from_u64(73);
    for cycle in 0..4 {
        let base = cycle * 100_000;
        let keys: Vec<u64> = (0..5_000).map(|i| base + i * 3).collect();
        for &k in &keys {
            t.insert(&encode_u64(k), k);
        }
        t.validate();
        let mut order = keys.clone();
        order.shuffle(&mut rng);
        for &k in &order {
            assert_eq!(t.remove(&encode_u64(k)), Some(k));
        }
        assert!(t.is_empty(), "cycle {cycle}");
        assert_eq!(t.memory_stats().node_bytes, 0);
    }
}

#[test]
fn merge_preserves_order_and_scans() {
    let mut t = HotTrie::new(EmbeddedKeySource);
    let keys: Vec<u64> = (0..2_000).collect();
    for &k in &keys {
        t.insert(&encode_u64(k), k);
    }
    // Delete a dense band in the middle; scans across the gap must stay
    // ordered and complete.
    for k in 500..1_500u64 {
        t.remove(&encode_u64(k));
    }
    t.validate();
    let got = t.scan(&encode_u64(490), 20);
    let want: Vec<u64> = (490..500).chain(1_500..1_510).collect();
    assert_eq!(got, want);
}
