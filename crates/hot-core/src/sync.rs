//! ROWEX synchronization protocol (Section 5 of the paper).
//!
//! HOT's copy-on-write nodes publish every structural change with a single
//! pointer store, which makes the index "a perfect fit for the Read-Optimized
//! Write EXclusion (ROWEX) synchronization strategy":
//!
//! * **readers** never acquire locks and never restart — they pin an epoch
//!   and traverse with acquire loads; replaced (obsolete) nodes stay intact
//!   until no reader can hold them;
//! * **writers** follow the paper's five steps: (a) traverse and determine
//!   the *affected nodes* (those whose contents or value slots the operation
//!   writes), (b) lock them bottom-up, (c) validate that none is obsolete —
//!   restart otherwise, (d) apply the copy-on-write modification, marking
//!   replaced nodes obsolete, (e) unlock top-down;
//! * **reclamation** is epoch-based (`crossbeam-epoch`): obsolete nodes are
//!   deferred until all pinned epochs have moved on.
//!
//! A single compare-and-swap would not suffice (two concurrent inserts could
//! strand one writer's copy, as Section 5 explains); the per-node locks make
//! the affected set mutually exclusive while leaving the rest of the tree
//! writable.
//!
//! The affected sets per operation case follow the paper exactly: a normal
//! insert locks the mismatching node and its parent; leaf-node pushdown only
//! the node itself; parent pull-up walks ancestors until a non-full node (or
//! the root); intermediate node creation stops at the first node with room
//! below its parent; and "finally, the direct parent of the last accessed
//! node is added". After acquiring the locks the writer re-runs its analysis
//! — in-place slot stores by other writers (which also hold the respective
//! node locks) may have changed the picture — and restarts when the affected
//! set no longer matches.

// All protocol-carrying atomics (root word, len, lock words via `node`)
// come from the shim so loom models can explore their interleavings; see
// `crate::sync_shim` for the normal-build/model-build switch.
use crate::sync_shim::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam_epoch as epoch;

use crate::bulk::BulkLoadError;
use crate::metrics::{Metrics, OpKind, RowexCounter};
use crate::node::builder::{true_height, Builder};
use crate::node::{MemCounter, NodeRef, RawNode, MAX_FANOUT};
use hot_keys::stats::MemoryStats;
use hot_keys::{DepthStats, KeySource, PaddedKey, KEY_SCRATCH_LEN, MAX_TID};

/// Lock-word bit 0: a writer holds this node's write lock.
pub(crate) const LOCKED: u32 = 1;
/// Lock-word bit 1: this node was replaced by a copy-on-write and awaits
/// epoch reclamation; writers must not modify it.
pub(crate) const OBSOLETE: u32 = 2;

/// Try to acquire a node's write lock. Returns false when contended.
///
/// Ordering: the initial load is a **Relaxed optimistic peek** — it only
/// decides whether to attempt the CAS at all, and a stale value is
/// harmless because the CAS revalidates the whole word atomically (a
/// stale "unlocked" fails the CAS; a stale "locked" means one wasted
/// retry). The CAS success ordering is **Acquire**: it pairs with the
/// **Release** in [`unlock`], so everything the previous lock holder
/// wrote to the node happens-before this writer's re-analysis. Failure
/// ordering is Relaxed — a failed attempt reads no protected data, the
/// caller just backs off and relocks from scratch.
#[inline]
fn try_lock(node: RawNode) -> bool {
    let word = node.lock_word();
    let current = word.load(Ordering::Relaxed);
    current & LOCKED == 0
        && word
            // pairs-with: node-lock
            .compare_exchange(current, current | LOCKED, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
}

/// Ordering: **Release** — pairs with the Acquire CAS in [`try_lock`];
/// all node/slot writes made under the lock happen-before the next
/// writer's acquisition. (Readers never take locks; they synchronize
/// through the Release slot/root stores instead.)
#[inline]
fn unlock(node: RawNode) {
    node.lock_word().fetch_and(!LOCKED, Ordering::Release); // pairs-with: node-lock
}

/// Ordering: **Acquire** — pairs with the Release in [`mark_obsolete`].
/// A writer that observes OBSOLETE restarts its descent; the pairing
/// guarantees it then also observes the Release-published replacement
/// node (no livelock on a stale root/slot).
#[inline]
fn is_obsolete(node: RawNode) -> bool {
    node.lock_word().load(Ordering::Acquire) & OBSOLETE != 0 // pairs-with: obsolete-flag
}

/// Ordering: **Release** — pairs with the Acquire in [`is_obsolete`].
/// Always called *after* the replacement is Release-published
/// ([`ConcurrentHot::publish`]), so `OBSOLETE` visible ⇒ replacement
/// visible.
#[inline]
fn mark_obsolete(node: RawNode) {
    node.lock_word().fetch_or(OBSOLETE, Ordering::Release); // pairs-with: obsolete-flag
}

/// A concurrently accessible Height Optimized Trie.
///
/// Shares the node representation and structure-adaptation algorithms with
/// [`HotTrie`](crate::HotTrie); all mutating operations take `&self` and may
/// run from any number of threads. Lookups and scans are wait-free.
///
/// ```
/// use hot_core::sync::ConcurrentHot;
/// use hot_keys::{encode_u64, EmbeddedKeySource};
/// use std::sync::Arc;
///
/// let trie = Arc::new(ConcurrentHot::new(EmbeddedKeySource));
/// let handles: Vec<_> = (0..4)
///     .map(|t| {
///         let trie = Arc::clone(&trie);
///         std::thread::spawn(move || {
///             for i in (t..1000).step_by(4) {
///                 trie.insert(&encode_u64(i), i);
///             }
///         })
///     })
///     .collect();
/// for h in handles {
///     h.join().unwrap();
/// }
/// assert_eq!(trie.len(), 1000);
/// assert_eq!(trie.get(&encode_u64(123)), Some(123));
/// ```
pub struct ConcurrentHot<S> {
    root: AtomicU64,
    source: S,
    len: AtomicUsize,
    mem: Arc<MemCounter>,
    /// Operation + ROWEX-health metrics recorder — zero-sized no-op unless
    /// the `metrics` feature is enabled (see [`crate::metrics`]).
    metrics: Metrics,
}

/// What the descent found and what the write operation will do.
struct Plan {
    /// (node, selected entry index) per level, root first.
    stack: Vec<(NodeRef, usize)>,
    kind: PlanKind,
}

enum PlanKind {
    /// Key present: replace the leaf word at `stack[level]`.
    Upsert { level: usize },
    /// Key present in a leaf root: swap the root word.
    UpsertRoot { existing: u64 },
    /// Empty tree / leaf root growth (no locks; CAS on the root word).
    GrowRoot { expected: u64, pos: u16, key_bit: u8, existing: u64 },
    /// Leaf-node pushdown into `stack[level]` at entry `slot`.
    Pushdown { level: usize, slot: usize, pos: u16, key_bit: u8 },
    /// Insert into `stack[level]`; `top` is the shallowest level whose
    /// *content* changes when the overflow cascade runs (equals `level`
    /// when no overflow happens).
    Insert { level: usize, top: usize, pos: u16, key_bit: u8 },
}

impl<S: KeySource> ConcurrentHot<S> {
    /// Create an empty concurrent trie resolving keys through `source`.
    pub fn new(source: S) -> Self {
        ConcurrentHot {
            root: AtomicU64::new(0),
            source,
            len: AtomicUsize::new(0),
            mem: Arc::new(MemCounter::default()),
            metrics: Metrics::new(),
        }
    }

    /// Number of keys stored.
    ///
    /// Ordering: Relaxed — `len` is a monotonic statistics counter, not a
    /// synchronization point; no reader derives pointer validity from it.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the trie is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Access the key source.
    pub fn source(&self) -> &S {
        &self.source
    }

    /// Crate-internal: the metrics sink, so the sharded router's fused
    /// batch drive can attribute its scheduler pass to this shard's
    /// registry.
    pub(crate) fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Build the whole trie bottom-up from sorted `(key, tid)` entries and
    /// publish it with a **single** root store — the concurrent counterpart
    /// of [`HotTrie::bulk_load`](crate::HotTrie::bulk_load) (DESIGN.md §11).
    ///
    /// The trie must be empty: the finished root is installed with one CAS
    /// of the null root word, so concurrent readers observe either the
    /// empty trie or the complete bulk-loaded one, never an intermediate
    /// state. If any entry (or a racing writer) got there first the build
    /// is discarded and [`BulkLoadError::NotEmpty`] is returned. Duplicates
    /// collapse last-write-wins; unsorted input returns
    /// [`BulkLoadError::Unsorted`]. Returns the number of distinct keys.
    pub fn bulk_load<K: AsRef<[u8]>>(
        &self,
        entries: &[(K, u64)],
    ) -> Result<usize, BulkLoadError> {
        self.bulk_load_parallel(entries, 1)
    }

    /// [`bulk_load`](Self::bulk_load) with the root fragment's subtries
    /// built on up to `threads` worker threads (see
    /// [`HotTrie::bulk_load_parallel`](crate::HotTrie::bulk_load_parallel)).
    pub fn bulk_load_parallel<K: AsRef<[u8]>>(
        &self,
        entries: &[(K, u64)],
        threads: usize,
    ) -> Result<usize, BulkLoadError> {
        if !self.load_root().is_null() {
            return Err(BulkLoadError::NotEmpty);
        }
        let _t = self.metrics.timer(OpKind::BulkLoad);
        let prepared = crate::bulk::prepare(entries)?;
        let n = prepared.tids.len();
        let root = match n {
            0 => return Ok(0),
            1 => NodeRef::leaf(prepared.tids[0]),
            _ => crate::bulk::build_parallel(&prepared.tids, &prepared.bounds, &self.mem, threads),
        };
        // Single-publish. Ordering: **Release** on success — pairs with the
        // Acquire `load_root`, so a reader that observes the new root
        // observes every `fill`ed node body built above (including the
        // worker threads' stores, which happened-before their join).
        match self
            .root
            // pairs-with: root-publish
            .compare_exchange(0, root.0, Ordering::Release, Ordering::Relaxed)
        {
            Ok(_) => {
                self.len.store(n, Ordering::Relaxed);
                self.metrics.items(OpKind::BulkLoad, n as u64);
                Ok(n)
            }
            Err(_) => {
                // Lost the race to a concurrent writer: nothing was
                // published, so the freshly built subtree is still private.
                crate::bulk::free_subtree(root, &self.mem);
                Err(BulkLoadError::NotEmpty)
            }
        }
    }

    /// Ordering: **Acquire** — pairs with every **Release** store/CAS of
    /// the root word (`publish`, `cascade_overflow`, `publish_remove`, the
    /// Grow/UpsertRoot CASes). A descent that observes a new root pointer
    /// therefore observes the fully `fill`ed node body behind it.
    #[inline]
    pub(crate) fn load_root(&self) -> NodeRef {
        NodeRef(self.root.load(Ordering::Acquire)) // pairs-with: root-publish
    }

    /// Wait-free lookup (Listing 2): no locks, no restarts.
    pub fn get(&self, key: &[u8]) -> Option<u64> {
        let _t = self.metrics.timer(OpKind::Get);
        self.metrics.incr(RowexCounter::EpochPin);
        let padded = PaddedKey::from_key(key);
        self.get_padded(&padded)
    }

    /// Like [`get`](Self::get) with a caller-provided padded-key buffer
    /// (avoids re-zeroing a fresh 264-byte buffer per call in tight loops),
    /// mirroring [`HotTrie::get_with`](crate::HotTrie::get_with).
    pub fn get_with(&self, key: &[u8], buf: &mut PaddedKey) -> Option<u64> {
        let _t = self.metrics.timer(OpKind::Get);
        self.metrics.incr(RowexCounter::EpochPin);
        buf.set(key);
        self.get_padded(buf)
    }

    fn get_padded(&self, key: &PaddedKey) -> Option<u64> {
        let _guard = epoch::pin();
        let mut cur = self.load_root();
        while cur.is_node() {
            let raw = cur.as_raw();
            hot_bits::prefetch_node(raw.base, 4);
            let (_, next) = raw.find_candidate(key.padded());
            cur = next;
        }
        if cur.is_null() {
            return None;
        }
        let tid = cur.tid();
        let mut scratch = [0u8; KEY_SCRATCH_LEN];
        let stored = self.source.load_key(tid, &mut scratch);
        hot_bits::first_mismatch_bit(stored, key.bytes()).is_none().then_some(tid)
    }

    /// Look up `keys` as one batch under a **single** epoch pin, writing
    /// `keys.len()` results into `out` (`out[i]` answers `keys[i]` exactly
    /// as [`get`](Self::get) would).
    ///
    /// Descents proceed in software-pipelined groups (see [`crate::batch`])
    /// whose padded-key buffers live in the cursor and are reused across
    /// the whole call, so neither the per-lookup `epoch::pin()` nor the
    /// 264-byte buffer zeroing of the scalar path is paid per key. Each
    /// group re-reads the root, so the batch observes writers at group
    /// granularity; each individual result is still exactly some
    /// linearized point-in-time answer, as for scalar `get`.
    ///
    /// # Panics
    /// Panics if `keys` and `out` differ in length.
    pub fn get_batch<K: AsRef<[u8]>>(&self, keys: &[K], out: &mut [Option<u64>]) {
        if crate::mlp::force_round_robin() {
            let mut cursor = crate::batch::BatchCursor::new();
            self.get_batch_with(keys, out, &mut cursor);
        } else {
            let mut sched = crate::mlp::MlpScheduler::new();
            self.get_batch_ooo(keys, out, &mut sched);
        }
    }

    /// Like [`get_batch`](Self::get_batch) with a caller-provided
    /// [`BatchCursor`](crate::BatchCursor): the fixed **round-robin**
    /// pipeline, amortizing its buffers (and fixing the group size) across
    /// many batches; trailing partial batches are balanced across groups.
    ///
    /// # Panics
    /// Panics if `keys` and `out` differ in length.
    pub fn get_batch_with<K: AsRef<[u8]>>(
        &self,
        keys: &[K],
        out: &mut [Option<u64>],
        cursor: &mut crate::batch::BatchCursor,
    ) {
        assert_eq!(keys.len(), out.len(), "one output slot per key");
        let _t = self.metrics.timer(OpKind::GetBatch);
        self.metrics.items(OpKind::GetBatch, keys.len() as u64);
        self.metrics.incr(RowexCounter::EpochPin);
        let _guard = epoch::pin();
        for r in crate::batch::balanced_chunks(keys.len(), cursor.group()) {
            // Reload the root per group: long batches must not pin one
            // stale root while writers replace it underneath.
            cursor.run_group(self.load_root(), &self.source, &keys[r.clone()], &mut out[r]);
        }
    }

    /// Like [`get_batch`](Self::get_batch) with a caller-provided
    /// [`MlpScheduler`](crate::MlpScheduler): the completion-driven
    /// out-of-order pipeline under a **single** epoch pin. The root is
    /// reloaded at every lane refill (finer-grained than the round-robin
    /// path's per-group reload), so a long batch never pins one stale root;
    /// a lane that observes a torn slot mid-descent re-descends from a
    /// fresh root a bounded number of times before answering "not present"
    /// exactly as scalar [`get`](Self::get) does.
    ///
    /// # Panics
    /// Panics if `keys` and `out` differ in length.
    pub fn get_batch_ooo<K: AsRef<[u8]>>(
        &self,
        keys: &[K],
        out: &mut [Option<u64>],
        sched: &mut crate::mlp::MlpScheduler,
    ) {
        assert_eq!(keys.len(), out.len(), "one output slot per key");
        let _t = self.metrics.timer(OpKind::GetBatch);
        self.metrics.items(OpKind::GetBatch, keys.len() as u64);
        self.metrics.incr(RowexCounter::EpochPin);
        let _guard = epoch::pin();
        let (mut tids, mut bounds) = (Vec::new(), Vec::new());
        sched.run(
            &self.source,
            &crate::mlp::LookupStream(keys),
            out,
            &mut tids,
            &mut bounds,
            |_| self.load_root(),
            false,
            true,
            &self.metrics,
        );
    }

    /// Service a mixed stream of point lookups and range scans in one
    /// out-of-order pipeline under a single epoch pin, mirroring
    /// [`HotTrie::mixed_batch_ooo`](crate::HotTrie::mixed_batch_ooo):
    /// `out[i]` answers `Get` request `i`; each `Scan` appends to `tids`
    /// with one end offset pushed to `bounds` in stream order (both
    /// cleared first, `bounds` seeded with 0). Records one `get_batch` and
    /// one `scan_batch` metrics sample.
    ///
    /// # Panics
    /// Panics if `reqs` and `out` differ in length.
    pub fn mixed_batch_ooo(
        &self,
        reqs: &[crate::mlp::BatchRequest<'_>],
        out: &mut [Option<u64>],
        tids: &mut Vec<u64>,
        bounds: &mut Vec<usize>,
        sched: &mut crate::mlp::MlpScheduler,
    ) {
        assert_eq!(reqs.len(), out.len(), "one output slot per request");
        let _tg = self.metrics.timer(OpKind::GetBatch);
        let _ts = self.metrics.timer(OpKind::ScanBatch);
        let gets = reqs
            .iter()
            .filter(|r| matches!(r, crate::mlp::BatchRequest::Get(_)))
            .count();
        self.metrics.items(OpKind::GetBatch, gets as u64);
        self.metrics.incr(RowexCounter::EpochPin);
        tids.clear();
        bounds.clear();
        bounds.push(0);
        let _guard = epoch::pin();
        sched.run(&self.source, reqs, out, tids, bounds, |_| self.load_root(), false, true, &self.metrics);
        self.metrics.items(OpKind::ScanBatch, tids.len() as u64);
    }

    /// Remove `keys` as one batch, writing what [`remove`](Self::remove)
    /// would have returned per key into `out`: the existence probes run as
    /// remove-probe descents through the out-of-order scheduler under one
    /// epoch pin (overlapping their misses and warming the paths), then
    /// the structural removals apply per probed-present key through the
    /// normal lock-then-validate write path.
    ///
    /// # Panics
    /// Panics if `keys` and `out` differ in length.
    pub fn remove_batch<K: AsRef<[u8]>>(&self, keys: &[K], out: &mut [Option<u64>]) {
        assert_eq!(keys.len(), out.len(), "one output slot per key");
        let _t = self.metrics.timer(OpKind::RemoveBatch);
        self.metrics.items(OpKind::RemoveBatch, keys.len() as u64);
        {
            self.metrics.incr(RowexCounter::EpochPin);
            let _guard = epoch::pin();
            let (mut tids, mut bounds) = (Vec::new(), Vec::new());
            let mut sched = crate::mlp::MlpScheduler::new();
            sched.run(
                &self.source,
                &crate::mlp::ProbeStream(keys),
                out,
                &mut tids,
                &mut bounds,
                |_| self.load_root(),
                false,
                true,
                &self.metrics,
            );
        }
        // Apply phase: the probe is a hint (a racing writer may beat us);
        // `remove` re-descends and gives the authoritative answer.
        for (key, slot) in keys.iter().zip(out.iter_mut()) {
            if slot.is_some() {
                *slot = self.remove(key.as_ref());
            }
        }
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.get(key).is_some()
    }

    /// Collect up to `limit` TIDs with keys `>= key`, in ascending key
    /// order. Wait-free; the scan observes an interleaving-consistent view
    /// (nodes replaced mid-scan keep serving their pre-replacement state,
    /// exactly as the paper describes for readers on obsolete nodes).
    ///
    /// Allocates the result vector and per-call cursor state; hot loops
    /// should hold a [`ScanCursor`](crate::ScanCursor) and call
    /// [`scan_with`](Self::scan_with) instead.
    pub fn scan(&self, key: &[u8], limit: usize) -> Vec<u64> {
        // Cap the pre-size by the trie's population: short scans on small
        // tries must not over-allocate (`len()` is a racy lower bound under
        // concurrent inserts, which only costs a Vec regrow, never results).
        let mut out = Vec::with_capacity(limit.min(128).min(self.len()));
        self.scan_into(key, limit, &mut out);
        out
    }

    /// Like [`scan`](Self::scan), writing the TIDs into `out` (cleared
    /// first) instead of allocating a fresh vector.
    pub fn scan_into(&self, key: &[u8], limit: usize, out: &mut Vec<u64>) {
        let mut cursor = crate::scan::ScanCursor::new();
        self.scan_with(key, limit, out, &mut cursor);
    }

    /// Like [`scan`](Self::scan) with caller-owned buffers: the TIDs land in
    /// `out` (cleared first), and the padded start key, descent path and
    /// frame stack all live in `cursor` — repeated scans allocate nothing
    /// once the buffers warmed up, and the traversal prefetches one subtree
    /// ahead (see [`crate::scan`]). One epoch pin per call.
    pub fn scan_with(
        &self,
        key: &[u8],
        limit: usize,
        out: &mut Vec<u64>,
        cursor: &mut crate::scan::ScanCursor,
    ) {
        let _t = self.metrics.timer(OpKind::Scan);
        self.metrics.incr(RowexCounter::EpochPin);
        out.clear();
        let _guard = epoch::pin();
        cursor.scan_root(self.load_root(), &self.source, key, limit, out);
        self.metrics.items(OpKind::Scan, out.len() as u64);
    }

    /// Service many scan requests `(start key, limit)` under a **single**
    /// epoch pin: request `i`'s TIDs land in `tids[bounds[i]..bounds[i +
    /// 1]]` (both vectors cleared first; `bounds` gets `requests.len() + 1`
    /// prefix offsets).
    ///
    /// Seek descents run through the completion-driven out-of-order
    /// scheduler (see [`crate::mlp`]) with the root reloaded at every lane
    /// refill, unless `HOT_FORCE_ROUND_ROBIN` pins this entry point to the
    /// fixed round-robin cursor (per-group root reload); each individual
    /// scan still observes an interleaving-consistent view, as for scalar
    /// [`scan`](Self::scan).
    pub fn scan_batch<K: AsRef<[u8]>>(
        &self,
        requests: &[(K, usize)],
        tids: &mut Vec<u64>,
        bounds: &mut Vec<usize>,
    ) {
        if crate::mlp::force_round_robin() {
            let mut cursor = crate::scan::ScanBatchCursor::new();
            self.scan_batch_with(requests, tids, bounds, &mut cursor);
        } else {
            let mut sched = crate::mlp::MlpScheduler::new();
            self.scan_batch_ooo(requests, tids, bounds, &mut sched);
        }
    }

    /// Like [`scan_batch`](Self::scan_batch) with a caller-provided
    /// [`ScanBatchCursor`](crate::ScanBatchCursor): the fixed
    /// **round-robin** pipeline, amortizing its lane state (and fixing the
    /// group size) across many batches; trailing partial batches are
    /// balanced across groups.
    pub fn scan_batch_with<K: AsRef<[u8]>>(
        &self,
        requests: &[(K, usize)],
        tids: &mut Vec<u64>,
        bounds: &mut Vec<usize>,
        cursor: &mut crate::scan::ScanBatchCursor,
    ) {
        let _t = self.metrics.timer(OpKind::ScanBatch);
        self.metrics.incr(RowexCounter::EpochPin);
        tids.clear();
        bounds.clear();
        bounds.push(0);
        let _guard = epoch::pin();
        for r in crate::batch::balanced_chunks(requests.len(), cursor.group()) {
            // Reload the root per group: long batches must not pin one
            // stale root while writers replace it underneath.
            cursor.run_group(self.load_root(), &self.source, &requests[r], tids, bounds);
        }
        self.metrics.items(OpKind::ScanBatch, tids.len() as u64);
    }

    /// Like [`scan_batch`](Self::scan_batch) with a caller-provided
    /// [`MlpScheduler`](crate::MlpScheduler): the completion-driven
    /// out-of-order pipeline under a single epoch pin, with the root
    /// reloaded at every lane refill and bounded torn-slot re-descents.
    pub fn scan_batch_ooo<K: AsRef<[u8]>>(
        &self,
        requests: &[(K, usize)],
        tids: &mut Vec<u64>,
        bounds: &mut Vec<usize>,
        sched: &mut crate::mlp::MlpScheduler,
    ) {
        let _t = self.metrics.timer(OpKind::ScanBatch);
        self.metrics.incr(RowexCounter::EpochPin);
        tids.clear();
        bounds.clear();
        bounds.push(0);
        let _guard = epoch::pin();
        let mut out: [Option<u64>; 0] = [];
        sched.run(
            &self.source,
            &crate::mlp::ScanStream(requests),
            &mut out,
            tids,
            bounds,
            |_| self.load_root(),
            false,
            true,
            &self.metrics,
        );
        self.metrics.items(OpKind::ScanBatch, tids.len() as u64);
    }

    /// Insert `key → tid` (upsert); returns the previous TID if present.
    ///
    /// # Panics
    /// Panics if `tid` exceeds [`MAX_TID`] or the key exceeds
    /// [`MAX_KEY_LEN`](hot_keys::MAX_KEY_LEN) bytes.
    pub fn insert(&self, key: &[u8], tid: u64) -> Option<u64> {
        assert!(tid <= MAX_TID, "tid exceeds MAX_TID");
        let _t = self.metrics.timer(OpKind::Insert);
        let padded = PaddedKey::from_key(key);
        let mut backoff = 0u32;
        loop {
            self.metrics.incr(RowexCounter::EpochPin);
            let guard = epoch::pin();
            match self.try_insert(&padded, tid, &guard) {
                Ok(old) => return old,
                Err(()) => {
                    self.metrics.incr(RowexCounter::Restart);
                    backoff_spin(&mut backoff);
                }
            }
        }
    }

    /// One optimistic insert attempt: analyze, lock, validate, re-analyze,
    /// apply. `Err` requests a restart.
    fn try_insert(&self, key: &PaddedKey, tid: u64, guard: &epoch::Guard) -> Result<Option<u64>, ()> {
        let plan = self.analyze(key, tid, guard)?;

        // Cases without node locks: root-word CAS.
        if let PlanKind::GrowRoot { expected, pos, key_bit, existing } = plan.kind {
            let new_word = if expected == 0 {
                NodeRef::leaf(tid).0
            } else {
                let (zero, one) = if key_bit == 1 {
                    (NodeRef::leaf(existing).0, NodeRef::leaf(tid).0)
                } else {
                    (NodeRef::leaf(tid).0, NodeRef::leaf(existing).0)
                };
                Builder::pair(pos, zero, one, 1).encode(&self.mem).0
            };
            // Ordering: **AcqRel** on success — the Release half publishes the
            // freshly encoded pair node (all its plain stores happen-before the
            // CAS), pairing with the Acquire in `load_root`; the Acquire half
            // orders this thread against whichever CAS installed `expected`.
            // **Acquire** on failure so the retry loop re-analyzes against a
            // fully published competing root.
            // pairs-with: root-publish
            return match self.root.compare_exchange(
                expected,
                new_word,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    // Ordering: Relaxed — `len` is a statistics counter, never
                    // used to synchronize access to trie memory.
                    self.len.fetch_add(1, Ordering::Relaxed);
                    Ok(None)
                }
                Err(_) => {
                    // Roll back the orphaned allocation, if any.
                    let r = NodeRef(new_word);
                    if r.is_node() {
                        // SAFETY: never published.
                        unsafe { r.as_raw().free(&self.mem) };
                    }
                    Err(())
                }
            };
        }
        if let PlanKind::UpsertRoot { existing } = plan.kind {
            // Ordering: AcqRel/Acquire for the same reasons as the GrowRoot
            // CAS above. Both sides of the exchange are tagged leaf words (no
            // node memory is published), but keeping the strongest ordering
            // used for root updates keeps the protocol uniform and costs
            // nothing on x86.
            // pairs-with: root-publish
            return match self.root.compare_exchange(
                NodeRef::leaf(existing).0,
                NodeRef::leaf(tid).0,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => Ok(Some(existing)),
                Err(_) => Err(()),
            };
        }

        // Determine the affected levels (nodes whose content or slots are
        // written) and lock them bottom-up.
        let affected = affected_levels(&plan);
        let locked = lock_levels(&plan.stack, &affected, guard).map_err(|()| {
            self.metrics.incr(RowexCounter::LockFail);
        })?;
        let result = (|| {
            // Validate: no locked node may be obsolete (step c).
            for &node in &locked {
                if is_obsolete(node.as_raw()) {
                    self.metrics.incr(RowexCounter::ObsoleteSeen);
                    return Err(());
                }
            }
            // Re-analyze under locks; the world may have changed before we
            // locked. The new plan must touch exactly the nodes we hold.
            let plan2 = self.analyze(key, tid, guard)?;
            if !plans_compatible(&plan, &plan2) {
                return Err(());
            }
            // Apply (step d).
            Ok(self.apply_insert(&plan2, key, tid, guard))
        })();
        // Unlock top-down (step e).
        for &node in locked.iter().rev() {
            unlock(node.as_raw());
        }
        result
    }

    /// Phase A/C: descend and classify the operation. `Err` = transient
    /// inconsistency observed (restart). The `_guard` parameter is a
    /// compile-time proof that the caller pinned the epoch: every node this
    /// descent dereferences stays live for at least as long as that pin.
    fn analyze(&self, key: &PaddedKey, _tid: u64, _guard: &epoch::Guard) -> Result<Plan, ()> {
        let root = self.load_root();
        if root.is_null() {
            return Ok(Plan {
                stack: Vec::new(),
                kind: PlanKind::GrowRoot { expected: 0, pos: 0, key_bit: 0, existing: 0 },
            });
        }

        let mut stack: Vec<(NodeRef, usize)> = Vec::new();
        let mut cur = root;
        while cur.is_node() {
            let raw = cur.as_raw();
            let (idx, next) = raw.find_candidate(key.padded());
            stack.push((cur, idx));
            cur = next;
        }
        if cur.is_null() {
            return Err(()); // torn read of a slot mid-publication
        }
        let existing = cur.tid();
        let mut scratch = [0u8; KEY_SCRATCH_LEN];
        let mismatch = {
            let stored = self.source.load_key(existing, &mut scratch);
            hot_bits::first_mismatch_bit(stored, key.bytes())
        };
        let Some(pos) = mismatch else {
            let kind = match stack.last() {
                None => PlanKind::UpsertRoot { existing },
                Some(_) => PlanKind::Upsert { level: stack.len() - 1 },
            };
            return Ok(Plan { stack, kind });
        };
        assert!(pos < u16::MAX as usize);
        let key_bit = hot_bits::bit_at(key.bytes(), pos);

        if stack.is_empty() {
            return Ok(Plan {
                stack,
                kind: PlanKind::GrowRoot {
                    expected: root.0,
                    pos: pos as u16,
                    key_bit,
                    existing,
                },
            });
        }

        // Target selection, as in the single-threaded insert.
        let mut level = stack.len() - 1;
        while level > 0 && stack[level].0.as_raw().min_position() as usize > pos {
            level -= 1;
        }
        let (target, idx) = stack[level];
        let raw = target.as_raw();
        let (mut lo, mut hi) = raw.affected_range(pos, idx);
        if lo == hi && raw.value(lo).is_node() {
            // The mismatching BiNode is the child's root: grow the child.
            if level + 1 >= stack.len() {
                return Err(()); // concurrent slot change; retry
            }
            level += 1;
            let (t2, idx2) = stack[level];
            (lo, hi) = t2.as_raw().affected_range(pos, idx2);
        }
        let raw = stack[level].0.as_raw();

        if lo == hi && raw.value(lo).is_leaf() && raw.height() > 1 {
            return Ok(Plan {
                stack,
                kind: PlanKind::Pushdown { level, slot: lo, pos: pos as u16, key_bit },
            });
        }

        // Simulate the overflow cascade to find the shallowest content-
        // changing level ("until a node with sufficient space or the root
        // node is reached").
        let mut top = level;
        let mut entries = raw.count() + 1;
        let mut height = raw.height();
        while entries > MAX_FANOUT {
            if top == 0 {
                break; // new root
            }
            let parent = stack[top - 1].0.as_raw();
            if height + 1 == parent.height() {
                // Parent pull-up: the parent gains one entry.
                top -= 1;
                entries = parent.count() + 1;
                height = parent.height();
            } else {
                // Intermediate node creation: the parent takes a slot store.
                top -= 1;
                break;
            }
        }
        Ok(Plan {
            stack,
            kind: PlanKind::Insert { level, top, pos: pos as u16, key_bit },
        })
    }

    /// Phase D: perform the modification. All affected nodes are locked and
    /// validated; `plan` is the fresh under-lock analysis.
    fn apply_insert(
        &self,
        plan: &Plan,
        _key: &PaddedKey,
        tid: u64,
        guard: &epoch::Guard,
    ) -> Option<u64> {
        match plan.kind {
            PlanKind::Upsert { level } => {
                let (node, idx) = plan.stack[level];
                let raw = node.as_raw();
                let old = raw.value(idx);
                debug_assert!(old.is_leaf());
                raw.store_value(idx, NodeRef::leaf(tid));
                Some(old.tid())
            }
            PlanKind::Pushdown { level, slot, pos, key_bit } => {
                let raw = plan.stack[level].0.as_raw();
                let old_leaf = raw.value(slot);
                debug_assert!(old_leaf.is_leaf());
                let (zero, one) = if key_bit == 1 {
                    (old_leaf.0, NodeRef::leaf(tid).0)
                } else {
                    (NodeRef::leaf(tid).0, old_leaf.0)
                };
                let pushed = Builder::pair(pos, zero, one, 1).encode(&self.mem);
                raw.store_value(slot, pushed);
                // Ordering: Relaxed — statistics counter only (see `len`).
                self.len.fetch_add(1, Ordering::Relaxed);
                None
            }
            PlanKind::Insert { level, pos, key_bit, .. } => {
                let (target, idx) = plan.stack[level];
                let raw = target.as_raw();
                if crate::trie::fast_path_enabled() {
                    let (lo, hi) = raw.affected_range(pos as usize, idx);
                    if let Some(new_node) = raw.insert_entry_cow(
                        pos as usize,
                        lo,
                        hi,
                        key_bit,
                        NodeRef::leaf(tid).0,
                        &self.mem,
                    ) {
                        self.publish(plan, level, new_node, guard);
                        self.retire(raw, guard);
                        // Ordering: Relaxed — statistics counter only.
                        self.len.fetch_add(1, Ordering::Relaxed);
                        return None;
                    }
                }
                let mut builder = Builder::decode(raw);
                builder.insert_entry(pos, idx, key_bit, NodeRef::leaf(tid).0);
                if !builder.overflowed() {
                    let new_node = builder.encode(&self.mem);
                    self.publish(plan, level, new_node, guard);
                    self.retire(raw, guard);
                } else {
                    self.cascade_overflow(plan, level, builder, guard);
                }
                // Ordering: Relaxed — statistics counter only.
                self.len.fetch_add(1, Ordering::Relaxed);
                None
            }
            PlanKind::GrowRoot { .. } | PlanKind::UpsertRoot { .. } => {
                unreachable!("handled before locking")
            }
        }
    }

    /// Overflow cascade under locks: mirrors the single-threaded
    /// `handle_overflow`, but publishes via locked slots / the root word and
    /// defers frees to the epoch.
    fn cascade_overflow(
        &self,
        plan: &Plan,
        mut level: usize,
        mut builder: Builder,
        guard: &epoch::Guard,
    ) {
        loop {
            debug_assert!(builder.overflowed());
            let (pos, left, right) = builder.split();
            let left_ref = self.half_ref(left);
            let right_ref = self.half_ref(right);
            let old_node = plan.stack[level].0.as_raw();

            if level == 0 {
                let h = true_height(&[left_ref.0, right_ref.0]);
                let new_root = Builder::pair(pos, left_ref.0, right_ref.0, h).encode(&self.mem);
                // The old root is locked and non-obsolete: no other writer
                // can have swapped the root pointer. Ordering: Release —
                // publishes the new root's body; pairs with `load_root`'s
                // Acquire.
                self.root.store(new_root.0, Ordering::Release); // pairs-with: root-publish
                self.retire(old_node, guard);
                return;
            }

            let (parent, parent_idx) = plan.stack[level - 1];
            let parent_raw = parent.as_raw();
            if builder.height + 1 == parent_raw.height() {
                let mut pb = Builder::decode(parent_raw);
                pb.replace_entry_with_pair(parent_idx, pos, left_ref.0, right_ref.0);
                self.retire(old_node, guard);
                if pb.overflowed() {
                    builder = pb;
                    level -= 1;
                    continue;
                }
                let new_parent = pb.encode(&self.mem);
                self.publish(plan, level - 1, new_parent, guard);
                self.retire(parent_raw, guard);
                return;
            }

            let h = true_height(&[left_ref.0, right_ref.0]);
            let inter = Builder::pair(pos, left_ref.0, right_ref.0, h).encode(&self.mem);
            parent_raw.store_value(parent_idx, inter);
            self.retire(old_node, guard);
            return;
        }
    }

    fn half_ref(&self, half: Builder) -> NodeRef {
        if half.len() == 1 {
            NodeRef(half.values[0])
        } else {
            half.encode(&self.mem)
        }
    }

    /// Point the slot above `level` (or the root word) at `new`.
    ///
    /// Ordering: the root store is **Release** (pairs with `load_root`'s
    /// Acquire); the slot store goes through `store_value`, which is likewise
    /// Release (pairing with the Acquire in `value`). Either way a descent
    /// that observes the new word observes the fully `fill`ed node behind it.
    fn publish(&self, plan: &Plan, level: usize, new: NodeRef, _guard: &epoch::Guard) {
        if level == 0 {
            self.root.store(new.0, Ordering::Release); // pairs-with: root-publish
        } else {
            let (parent, idx) = plan.stack[level - 1];
            parent.as_raw().store_value(idx, new);
        }
    }

    /// Mark a replaced node obsolete and defer its reclamation to the epoch.
    fn retire(&self, node: RawNode, guard: &epoch::Guard) {
        mark_obsolete(node);
        self.metrics.incr(RowexCounter::DeferredQueued);
        let base = node.base as u64;
        let tag = node.tag;
        let mem = Arc::clone(&self.mem);
        let metrics = self.metrics.handle();
        // SAFETY: the node is obsolete and unreachable from the (new)
        // structure; the epoch guarantees no pinned reader still holds it
        // when the deferred function runs.
        unsafe {
            guard.defer_unchecked(move || {
                RawNode {
                    base: base as *mut u8,
                    tag,
                }
                .free(&mem);
                metrics.incr(RowexCounter::DeferredFreed);
            });
        }
    }

    /// Remove `key`; returns its TID if present.
    pub fn remove(&self, key: &[u8]) -> Option<u64> {
        let _t = self.metrics.timer(OpKind::Remove);
        let padded = PaddedKey::from_key(key);
        let mut backoff = 0u32;
        loop {
            self.metrics.incr(RowexCounter::EpochPin);
            let guard = epoch::pin();
            match self.try_remove(&padded, &guard) {
                Ok(result) => return result,
                Err(()) => {
                    self.metrics.incr(RowexCounter::Restart);
                    backoff_spin(&mut backoff);
                }
            }
        }
    }

    fn try_remove(&self, key: &PaddedKey, guard: &epoch::Guard) -> Result<Option<u64>, ()> {
        // Analyze.
        let root = self.load_root();
        if root.is_null() {
            return Ok(None);
        }
        if root.is_leaf() {
            let tid = root.tid();
            let mut scratch = [0u8; KEY_SCRATCH_LEN];
            let stored = self.source.load_key(tid, &mut scratch);
            if hot_bits::first_mismatch_bit(stored, key.bytes()).is_some() {
                return Ok(None);
            }
            // Ordering: AcqRel/Acquire — matches the other root CASes. No
            // node memory is published here (leaf word → null), but the
            // Acquire side keeps a failed retry from re-analyzing against a
            // half-observed competing root.
            // pairs-with: root-publish
            return match self.root.compare_exchange(
                root.0,
                0,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    // Ordering: Relaxed — statistics counter only.
                    self.len.fetch_sub(1, Ordering::Relaxed);
                    Ok(Some(tid))
                }
                Err(_) => Err(()),
            };
        }

        let mut stack: Vec<(NodeRef, usize)> = Vec::new();
        let mut cur = root;
        while cur.is_node() {
            let raw = cur.as_raw();
            let (idx, next) = raw.find_candidate(key.padded());
            stack.push((cur, idx));
            cur = next;
        }
        if cur.is_null() {
            return Err(());
        }
        let tid = cur.tid();
        {
            let mut scratch = [0u8; KEY_SCRATCH_LEN];
            let stored = self.source.load_key(tid, &mut scratch);
            if hot_bits::first_mismatch_bit(stored, key.bytes()).is_some() {
                return Ok(None);
            }
        }

        // Affected: the deepest node and its parent (whose slot is written
        // on COW replacement or collapse).
        let level = stack.len() - 1;
        let mut locked: Vec<NodeRef> = Vec::new();
        let lock_order: Vec<usize> = if level == 0 {
            vec![0]
        } else {
            vec![level, level - 1]
        };
        for &l in &lock_order {
            let raw = stack[l].0.as_raw();
            if !try_lock(raw) {
                self.metrics.incr(RowexCounter::LockFail);
                for &n in locked.iter().rev() {
                    unlock(n.as_raw());
                }
                return Err(());
            }
            locked.push(stack[l].0);
        }
        let result = (|| {
            for &n in &locked {
                if is_obsolete(n.as_raw()) {
                    self.metrics.incr(RowexCounter::ObsoleteSeen);
                    return Err(());
                }
            }
            // Re-verify the leaf under locks: the locked node's slot must
            // still hold our leaf.
            let (node, idx) = stack[level];
            let raw = node.as_raw();
            let slot = raw.value(idx);
            if !slot.is_leaf() || slot.tid() != tid {
                return Err(());
            }
            // Re-check the candidate is still the search key's candidate
            // (the node content is stable: it is locked and not obsolete).
            if raw.count() == 2 {
                let survivor = raw.value(1 - idx);
                self.publish_remove(&stack, level, survivor, guard)?;
                self.retire(raw, guard);
            } else {
                let mut builder = Builder::decode(raw);
                builder.remove_entry(idx);
                let new_node = builder.encode(&self.mem);
                self.publish_remove(&stack, level, new_node, guard)?;
                self.retire(raw, guard);
            }
            // Ordering: Relaxed — statistics counter only.
            self.len.fetch_sub(1, Ordering::Relaxed);
            Ok(Some(tid))
        })();
        for &n in locked.iter().rev() {
            unlock(n.as_raw());
        }
        result
    }

    /// Install the post-remove replacement. `_guard` is the caller's proof
    /// of an active epoch pin (the parent we slot-write into is
    /// epoch-protected).
    fn publish_remove(
        &self,
        stack: &[(NodeRef, usize)],
        level: usize,
        new: NodeRef,
        _guard: &epoch::Guard,
    ) -> Result<(), ()> {
        if level == 0 {
            // The old root is locked and non-obsolete, so the root word
            // still points at it. Ordering: Release — publishes the
            // replacement body; pairs with `load_root`'s Acquire.
            self.root.store(new.0, Ordering::Release); // pairs-with: root-publish
        } else {
            let (parent, idx) = stack[level - 1];
            parent.as_raw().store_value(idx, new);
        }
        Ok(())
    }

    /// Index memory footprint. Exact only when quiesced (deferred frees may
    /// lag behind).
    pub fn memory_stats(&self) -> MemoryStats {
        MemoryStats {
            node_bytes: self.mem.bytes(),
            node_count: self.mem.nodes(),
            aux_bytes: 0,
            key_count: self.len(),
            capacity_bytes: 0,
        }
    }

    /// Leaf-depth histogram. Call on a quiesced tree.
    // epoch-exempt: quiesced-only diagnostic — the caller guarantees no
    // concurrent writers, so nothing can be retired under the walk.
    pub fn depth_stats(&self) -> DepthStats {
        let mut stats = DepthStats::new();
        // epoch-exempt: see depth_stats — quiesced-only inner walker.
        fn walk(r: NodeRef, depth: usize, stats: &mut DepthStats) {
            if r.is_leaf() {
                stats.record(depth);
            } else if r.is_node() {
                let raw = r.as_raw();
                for i in 0..raw.count() {
                    walk(raw.value(i), depth + 1, stats);
                }
            }
        }
        walk(self.load_root(), 0, &mut stats);
        stats
    }

    /// Full structural validation. Call on a quiesced tree.
    pub fn validate(&self) {
        self.check_invariants();
    }

    /// Whole-trie structural invariant check (see [`crate::invariants`]):
    /// fanout bounds, per-node linearization well-formedness, SIMD-search
    /// self-consistency, strict height decrease, in-order key ordering,
    /// leaf count, all lock words clear, and full re-lookup of every stored
    /// key. Returns summary statistics or the first violation.
    ///
    /// The index must be quiesced: concurrent writers would trip the
    /// lock-word and leaf-count checks spuriously.
    pub fn try_check_invariants(&self) -> Result<crate::InvariantReport, String> {
        // Re-lookups go through the uninstrumented internal path so the
        // walk never inflates the `get` / epoch-pin counters.
        crate::invariants::check_tree(self.load_root(), &self.source, self.len(), |k| {
            self.get_padded(&PaddedKey::from_key(k))
        })
    }

    /// Panicking wrapper over [`Self::try_check_invariants`]. Test-support.
    pub fn check_invariants(&self) -> crate::InvariantReport {
        match self.try_check_invariants() {
            Ok(report) => report,
            Err(msg) => panic!("ConcurrentHot invariant violation: {msg}"),
        }
    }

    /// Point-in-time metrics snapshot (DESIGN.md §13): merged operation
    /// counters, latency histograms and ROWEX health counters (lock
    /// failures, restarts, obsolete-marker encounters, epoch pins,
    /// deferred-free queue depth), plus structural gauges sampled from a
    /// full invariant walk. The counters are captured *before* the walk,
    /// and the walk uses the uninstrumented lookup path, so sampling never
    /// perturbs the stats. The structural gauges require a quiesced index
    /// (like [`Self::try_check_invariants`]); when the walk fails — e.g.
    /// concurrent writers are active — `structure` is left `None` and the
    /// counter half is still exact. Only available with the `metrics`
    /// feature.
    #[cfg(feature = "metrics")]
    pub fn metrics_snapshot(&self) -> hot_metrics::MetricsSnapshot {
        let mut snap = self.metrics.0.ops_snapshot();
        if let Ok(report) = self.try_check_invariants() {
            snap.structure = Some(crate::metrics::structural_snapshot(&report));
        }
        snap
    }

    /// The counter/histogram half of [`Self::metrics_snapshot`] without
    /// the structural walk — safe and cheap to call while writers are
    /// active (`structure` is `None`). Only with the `metrics` feature.
    #[cfg(feature = "metrics")]
    pub fn metrics_ops_snapshot(&self) -> hot_metrics::MetricsSnapshot {
        self.metrics.0.ops_snapshot()
    }
}

/// The levels whose nodes the operation writes (content or slots), deepest
/// first — the paper's lock-acquisition order.
fn affected_levels(plan: &Plan) -> Vec<usize> {
    match plan.kind {
        PlanKind::Upsert { level } | PlanKind::Pushdown { level, .. } => vec![level],
        PlanKind::Insert { level, top, .. } => {
            let lowest = top.saturating_sub(1); // the slot-written parent
            (lowest..=level).rev().collect()
        }
        PlanKind::GrowRoot { .. } | PlanKind::UpsertRoot { .. } => Vec::new(),
    }
}

/// Try-lock the given levels (already deepest-first). On success returns the
/// locked nodes in acquisition order; on contention unlocks and fails. The
/// `_guard` parameter is the caller's proof of an active epoch pin — the
/// lock words we touch live in nodes that may otherwise be reclaimed.
fn lock_levels(
    stack: &[(NodeRef, usize)],
    levels: &[usize],
    _guard: &epoch::Guard,
) -> Result<Vec<NodeRef>, ()> {
    let mut locked: Vec<NodeRef> = Vec::with_capacity(levels.len());
    for &l in levels {
        let node = stack[l].0;
        if !try_lock(node.as_raw()) {
            for &n in locked.iter().rev() {
                unlock(n.as_raw());
            }
            return Err(());
        }
        locked.push(node);
    }
    Ok(locked)
}

/// Two plans are compatible when the re-analysis touches exactly the same
/// nodes with the same operation shape.
fn plans_compatible(a: &Plan, b: &Plan) -> bool {
    let (la, lb) = (affected_levels(a), affected_levels(b));
    if la.len() != lb.len() {
        return false;
    }
    for (&x, &y) in la.iter().zip(&lb) {
        if x != y || a.stack.get(x).map(|e| e.0) != b.stack.get(y).map(|e| e.0) {
            return false;
        }
    }
    matches!(
        (&a.kind, &b.kind),
        (PlanKind::Upsert { .. }, PlanKind::Upsert { .. })
            | (PlanKind::Pushdown { .. }, PlanKind::Pushdown { .. })
            | (PlanKind::Insert { .. }, PlanKind::Insert { .. })
    )
}

#[inline]
fn backoff_spin(backoff: &mut u32) {
    *backoff = (*backoff + 1).min(10);
    for _ in 0..(1u32 << *backoff) {
        crate::sync_shim::spin_hint();
    }
    if *backoff >= 8 {
        crate::sync_shim::yield_now();
    }
}

impl<S> Drop for ConcurrentHot<S> {
    // epoch-exempt: `&mut self` proves exclusive access — no concurrent
    // reader can hold these nodes, and nothing retires them under us.
    fn drop(&mut self) {
        // epoch-exempt: see drop — exclusive-access teardown.
        fn free_subtree(r: NodeRef, mem: &MemCounter) {
            if r.is_node() {
                let raw = r.as_raw();
                for i in 0..raw.count() {
                    free_subtree(raw.value(i), mem);
                }
                // SAFETY: &mut self — no concurrent accessors remain.
                unsafe { raw.free(mem) };
            }
        }
        // Ordering: Relaxed — `&mut self` proves exclusive access; the drop
        // glue itself already synchronized with all prior threads.
        free_subtree(NodeRef(self.root.load(Ordering::Relaxed)), &self.mem);
    }
}

// SAFETY: all shared mutation is guarded by per-node locks, atomics and
// epoch-based reclamation; S must be Sync for shared key resolution.
unsafe impl<S: Sync> Sync for ConcurrentHot<S> {}
// SAFETY: nodes are plain heap allocations owned (transitively) by the
// index; moving the index to another thread moves exclusive ownership.
unsafe impl<S: Send> Send for ConcurrentHot<S> {}

// ---- concurrent facade over the compact arena layout ------------------------

use crate::arena::{
    ArenaFull, ArenaStats, CompactBatchCursor, CompactInner, CompactScanCursor, CompactScratch,
};
use hot_keys::MAX_KEY_LEN;

/// Concurrent wrapper over the arena-backed compact layout
/// ([`CompactHot`](crate::CompactHot)): wait-free readers over 32-bit
/// offset words, a single serialized writer, and epoch-deferred node-block
/// reclamation.
///
/// The publish/retire protocol is simpler than full ROWEX because the
/// compact backend already funnels every structural change through one
/// `Release` store (a child slot or the root word) and arena slabs are
/// never unmapped while the index lives:
///
/// * **readers** pin an epoch and traverse with acquire loads of the slab
///   table, child slots and root — no locks, no restarts; front-coded
///   leaf bytes are immutable once published, so reconstruction needs no
///   synchronization at all;
/// * **the writer** (one at a time, serialized by an internal mutex)
///   builds copy-on-write nodes in fresh arena blocks, publishes with one
///   `Release` store, and defers the replaced blocks' return to the
///   node-arena free list until all pinned epochs have moved on;
/// * **leaf records** are append-only and never reclaimed individually
///   (superseded records are dead-byte accounting only), so readers can
///   keep walking a front-coding chain across any number of concurrent
///   upserts.
pub struct ConcurrentCompact {
    inner: Arc<CompactInner>,
    /// Serializes writers; also owns the reusable mutation scratch.
    scratch: std::sync::Mutex<CompactScratch>,
}

impl Default for ConcurrentCompact {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrentCompact {
    /// An empty index with the default arena ceilings.
    pub fn new() -> Self {
        Self::with_capacity(crate::arena::DEFAULT_NODE_CAP, crate::arena::DEFAULT_LEAF_CAP)
    }

    /// An empty index with explicit node/leaf arena byte ceilings.
    pub fn with_capacity(node_cap_bytes: usize, leaf_cap_bytes: usize) -> Self {
        ConcurrentCompact {
            inner: Arc::new(CompactInner::new(node_cap_bytes, leaf_cap_bytes)),
            scratch: std::sync::Mutex::new(CompactScratch::new()),
        }
    }

    /// Number of stored keys. Exact only when quiesced.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look up `key`; returns its TID if present. Wait-free.
    pub fn get(&self, key: &[u8]) -> Option<u64> {
        let padded = PaddedKey::from_key(key);
        let _guard = epoch::pin();
        let mut buf = [0u8; MAX_KEY_LEN];
        self.inner.get_padded(&padded, &mut buf)
    }

    /// Like [`get`](Self::get) with a caller-provided padded-key buffer.
    pub fn get_with(&self, key: &[u8], buf: &mut PaddedKey) -> Option<u64> {
        buf.set(key);
        let _guard = epoch::pin();
        let mut kb = [0u8; MAX_KEY_LEN];
        self.inner.get_padded(buf, &mut kb)
    }

    /// True when `key` is present.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.get(key).is_some()
    }

    /// Batched point lookups through a fresh pipeline cursor.
    ///
    /// # Panics
    /// Panics if `out.len() != keys.len()`.
    pub fn get_batch<K: AsRef<[u8]>>(&self, keys: &[K], out: &mut [Option<u64>]) {
        let mut cursor = CompactBatchCursor::new();
        self.get_batch_with(&mut cursor, keys, out);
    }

    /// Batched point lookups with a caller-owned cursor; one epoch pin
    /// covers the whole batch.
    ///
    /// # Panics
    /// Panics if `out.len() != keys.len()`.
    pub fn get_batch_with<K: AsRef<[u8]>>(
        &self,
        cursor: &mut CompactBatchCursor,
        keys: &[K],
        out: &mut [Option<u64>],
    ) {
        assert_eq!(keys.len(), out.len(), "output slice length mismatch");
        let _guard = epoch::pin();
        let g = cursor.group();
        for (kc, oc) in keys.chunks(g).zip(out.chunks_mut(g)) {
            cursor.run_group(&self.inner, kc, oc);
        }
    }

    /// Collect up to `limit` TIDs with keys `>= key`, ascending.
    pub fn scan(&self, key: &[u8], limit: usize) -> Vec<u64> {
        let mut out = Vec::with_capacity(limit.min(1024));
        self.scan_into(key, limit, &mut out);
        out
    }

    /// Like [`scan`](Self::scan) into a caller buffer (cleared first).
    pub fn scan_into(&self, key: &[u8], limit: usize, out: &mut Vec<u64>) {
        let mut cursor = CompactScanCursor::new();
        self.scan_with(&mut cursor, key, limit, out);
    }

    /// Like [`scan`](Self::scan) with a caller-owned reusable cursor
    /// (`out` is cleared first); one epoch pin covers the whole scan.
    pub fn scan_with(
        &self,
        cursor: &mut CompactScanCursor,
        key: &[u8],
        limit: usize,
        out: &mut Vec<u64>,
    ) {
        out.clear();
        let _guard = epoch::pin();
        cursor.scan_root(&self.inner, key, limit, out);
    }

    /// Insert `key -> tid`; returns the previous TID on upsert.
    ///
    /// # Panics
    /// Panics if `tid` exceeds [`MAX_TID`], the key exceeds
    /// [`MAX_KEY_LEN`] bytes, or an arena ceiling is hit (use
    /// [`try_insert`](Self::try_insert) to handle that case).
    pub fn insert(&self, key: &[u8], tid: u64) -> Option<u64> {
        self.try_insert(key, tid)
            .unwrap_or_else(|e| panic!("compact insert: {e}"))
    }

    /// Insert `key -> tid`, reporting arena exhaustion as a typed error.
    /// On [`ArenaFull`] the tree is unchanged.
    ///
    /// # Panics
    /// Panics if `tid` exceeds [`MAX_TID`] or the key exceeds
    /// [`MAX_KEY_LEN`] bytes.
    pub fn try_insert(&self, key: &[u8], tid: u64) -> Result<Option<u64>, ArenaFull> {
        assert!(tid <= MAX_TID, "tid exceeds MAX_TID");
        let guard = epoch::pin();
        let mut s = self.scratch.lock().expect("compact writer mutex poisoned");
        let mut key_buf = s.key_buf.take().unwrap_or_default();
        key_buf.set(key);
        let result = crate::arena::insert_op(&self.inner, &mut s, &key_buf, tid);
        s.key_buf = Some(key_buf);
        self.retire_drained(&mut s, &guard);
        result
    }

    /// Remove `key`; returns its TID if it was present.
    ///
    /// # Panics
    /// Panics if an arena ceiling is hit while re-encoding a merged node
    /// (use [`try_remove`](Self::try_remove) to handle that case).
    pub fn remove(&self, key: &[u8]) -> Option<u64> {
        self.try_remove(key)
            .unwrap_or_else(|e| panic!("compact remove: {e}"))
    }

    /// Remove `key`, reporting arena exhaustion as a typed error. On
    /// [`ArenaFull`] the tree is unchanged.
    pub fn try_remove(&self, key: &[u8]) -> Result<Option<u64>, ArenaFull> {
        let guard = epoch::pin();
        let mut s = self.scratch.lock().expect("compact writer mutex poisoned");
        let mut key_buf = s.key_buf.take().unwrap_or_default();
        key_buf.set(key);
        let result = crate::arena::remove_op(&self.inner, &mut s, &key_buf);
        s.key_buf = Some(key_buf);
        self.retire_drained(&mut s, &guard);
        result
    }

    /// Defer every replaced node block's return to the free list until all
    /// pinned epochs have moved on. (On a failed mutation the list is
    /// already empty — rollback freed only never-published blocks, which
    /// no reader can hold.)
    fn retire_drained(&self, s: &mut CompactScratch, guard: &epoch::Guard) {
        for r in s.retired.drain(..) {
            let inner = Arc::clone(&self.inner);
            // SAFETY: `r` was unlinked by this mutation's single Release
            // publish; the epoch guarantees no pinned reader still holds
            // it when the deferred function runs, and the captured Arc
            // keeps the slabs mapped until then.
            unsafe {
                guard.defer_unchecked(move || inner.free_node(r));
            }
        }
    }

    /// Bulk-load sorted `(key, tid)` pairs into an empty index (one
    /// publish at the end; concurrent readers see the whole tree or
    /// nothing).
    ///
    /// # Panics
    /// Panics if an arena ceiling is hit mid-build.
    pub fn bulk_load<K: AsRef<[u8]>>(
        &self,
        entries: &[(K, u64)],
    ) -> Result<usize, BulkLoadError> {
        let _s = self.scratch.lock().expect("compact writer mutex poisoned");
        if !self.inner.load_root().is_null() {
            return Err(BulkLoadError::NotEmpty);
        }
        self.inner.bulk_inner(entries)
    }

    /// Index memory footprint (live bytes plus reserved arena capacity).
    pub fn memory_stats(&self) -> MemoryStats {
        self.inner.memory_stats()
    }

    /// Allocator-level accounting for both arenas. Deferred frees may lag
    /// behind; exact only when quiesced.
    pub fn arena_stats(&self) -> ArenaStats {
        self.inner.arena_stats()
    }

    /// Leaf-depth histogram. Call on a quiesced index.
    pub fn depth_stats(&self) -> DepthStats {
        self.inner.depth_stats()
    }

    /// Structural fingerprint (see
    /// [`HotTrie::structure_digest`](crate::HotTrie::structure_digest)).
    /// Call on a quiesced index.
    pub fn structure_digest(&self) -> u64 {
        self.inner.structure_digest()
    }

    /// Whole-trie invariant walk. Call on a quiesced index.
    pub fn try_check_invariants(&self) -> Result<crate::InvariantReport, String> {
        self.inner.try_check_invariants()
    }

    /// Like [`try_check_invariants`](Self::try_check_invariants) but
    /// panics on violation.
    pub fn check_invariants(&self) -> crate::InvariantReport {
        match self.inner.try_check_invariants() {
            Ok(report) => report,
            Err(e) => panic!("compact invariant violation: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hot_keys::{encode_u64, EmbeddedKeySource};
    use std::sync::Arc;

    #[test]
    fn single_threaded_semantics() {
        let trie = ConcurrentHot::new(EmbeddedKeySource);
        assert_eq!(trie.get(&encode_u64(1)), None);
        for k in 0..5_000u64 {
            assert_eq!(trie.insert(&encode_u64(k), k), None);
        }
        for k in 0..5_000u64 {
            assert_eq!(trie.get(&encode_u64(k)), Some(k));
        }
        assert_eq!(trie.len(), 5_000);
        trie.validate();
        // Scans.
        assert_eq!(trie.scan(&encode_u64(100), 5), vec![100, 101, 102, 103, 104]);
        // Upsert through the concurrent path.
        assert_eq!(trie.insert(&encode_u64(7), 7), Some(7));
        // Removal.
        for k in (0..5_000u64).step_by(2) {
            assert_eq!(trie.remove(&encode_u64(k)), Some(k));
        }
        assert_eq!(trie.len(), 2_500);
        trie.validate();
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        let trie = Arc::new(ConcurrentHot::new(EmbeddedKeySource));
        let threads = 8;
        let per = 4_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let trie = Arc::clone(&trie);
                std::thread::spawn(move || {
                    for i in 0..per {
                        let k = i * threads as u64 + t as u64;
                        assert_eq!(trie.insert(&encode_u64(k), k), None);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(trie.len(), per as usize * threads);
        trie.validate();
        for k in 0..per * threads as u64 {
            assert_eq!(trie.get(&encode_u64(k)), Some(k));
        }
    }

    #[test]
    fn concurrent_overlapping_inserts() {
        // All threads hammer the same small key space: maximal lock overlap.
        let trie = Arc::new(ConcurrentHot::new(EmbeddedKeySource));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let trie = Arc::clone(&trie);
                std::thread::spawn(move || {
                    let mut x = 0x1234_5678u64 ^ (t as u64) << 32;
                    for _ in 0..3_000 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = x % 1_000;
                        trie.insert(&encode_u64(k), k);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(trie.len(), 1_000);
        trie.validate();
    }

    #[test]
    fn readers_during_writes() {
        let trie = Arc::new(ConcurrentHot::new(EmbeddedKeySource));
        for k in 0..2_000u64 {
            trie.insert(&encode_u64(k * 2), k * 2);
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let mut handles = Vec::new();
        // Readers: every even key must stay visible throughout.
        for _ in 0..3 {
            let trie = Arc::clone(&trie);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut x = 99u64;
                while !stop.load(Ordering::Relaxed) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let k = (x % 2_000) * 2;
                    assert_eq!(trie.get(&encode_u64(k)), Some(k), "reader lost key {k}");
                }
            }));
        }
        // Writers: insert odd keys.
        for t in 0..3u64 {
            let trie = Arc::clone(&trie);
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000u64 {
                    let k = (i * 3 + t) * 2 + 1;
                    trie.insert(&encode_u64(k), k);
                }
            }));
        }
        std::thread::sleep(std::time::Duration::from_millis(200));
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        trie.validate();
    }

    #[test]
    fn concurrent_inserts_and_removes() {
        let trie = Arc::new(ConcurrentHot::new(EmbeddedKeySource));
        // Stable backbone that must never disappear.
        for k in 0..500u64 {
            trie.insert(&encode_u64(k * 1_000_000), k * 1_000_000);
        }
        let handles: Vec<_> = (0..6)
            .map(|t| {
                let trie = Arc::clone(&trie);
                std::thread::spawn(move || {
                    let mut x = 7u64 + t as u64;
                    for _ in 0..4_000 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = x % 10_000 + 1; // offset: never a backbone key
                        if x.is_multiple_of(3) {
                            trie.remove(&encode_u64(k));
                        } else {
                            trie.insert(&encode_u64(k), k);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for k in 0..500u64 {
            assert_eq!(
                trie.get(&encode_u64(k * 1_000_000)),
                Some(k * 1_000_000),
                "backbone key lost"
            );
        }
        trie.validate();
    }

    #[test]
    fn matches_single_threaded_structure_when_quiesced() {
        // After all concurrent inserts land, the structure must be exactly
        // the deterministic HOT for that key set (determinism conjecture).
        let keys: Vec<u64> = (0..3_000u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 1).collect();
        let trie = Arc::new(ConcurrentHot::new(EmbeddedKeySource));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let trie = Arc::clone(&trie);
                let keys = keys.clone();
                std::thread::spawn(move || {
                    for k in keys.iter().skip(t).step_by(4) {
                        trie.insert(&encode_u64(*k), *k);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut st = crate::HotTrie::new(EmbeddedKeySource);
        for &k in &keys {
            st.insert(&encode_u64(k), k);
        }
        let concurrent_leaves: Vec<u64> = {
            // Collect leaves in order via scans.
            trie.scan(&[], 10_000)
        };
        assert_eq!(concurrent_leaves, st.iter().collect::<Vec<_>>());
        assert_eq!(trie.depth_stats(), st.depth_stats());
    }
}
