//! Thread-affinity shim for the sharded execution layer (DESIGN.md §17).
//!
//! NUMA placement in this codebase is **first-touch**: each shard's arena
//! and nodes are allocated by the worker thread that owns the shard, so
//! pinning that worker to one core before it allocates puts the shard's
//! memory on the core's local node without any explicit `mbind`-style
//! page migration. All this module has to supply is the pin itself.
//!
//! On Linux the pin is one `sched_setaffinity(2)` call issued through a
//! hand-rolled binding (the workspace deliberately has no `libc`
//! dependency); everywhere else — and whenever `HOT_PIN=0` disables
//! pinning, mirroring the `HOT_MLP_DEPTH` escape-hatch convention —
//! [`pin_to_core`] is a graceful no-op that reports `false` and the
//! sharded layer runs unpinned with identical results.

use std::sync::OnceLock;

/// Largest CPU index [`pin_to_core`] can express: the bitmask handed to
/// `sched_setaffinity` spans 1024 CPUs, the kernel's default `cpu_set_t`
/// width.
pub const MAX_CPUS: usize = 1024;

#[cfg(target_os = "linux")]
mod sys {
    // Hand-rolled glibc bindings (no `libc` crate in the workspace): the
    // affinity mask is passed as a plain `u64` word array, which matches
    // the kernel ABI — `cpu_set_t` is nothing but a fixed bit array.
    extern "C" {
        pub fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
        pub fn sched_getcpu() -> i32;
    }
}

static PIN_ENABLED: OnceLock<bool> = OnceLock::new();

/// Whether pinning is enabled for this process: `true` unless the
/// `HOT_PIN=0` override is set (cached process-wide, like
/// `HOT_MLP_DEPTH` / `HOT_FORCE_SCALAR`).
pub fn pin_enabled() -> bool {
    *PIN_ENABLED.get_or_init(|| std::env::var_os("HOT_PIN").is_none_or(|v| v != "0"))
}

/// Number of CPUs available to this process (≥ 1).
pub fn core_count() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Pin the calling thread to `core`.
///
/// Returns `true` when the affinity call succeeded; `false` when pinning
/// is disabled (`HOT_PIN=0`), unsupported on this platform, `core` is out
/// of range, or the kernel rejected the mask (e.g. a cgroup cpuset that
/// excludes `core`). Callers treat `false` as "run unpinned": placement
/// is a performance hint, never a correctness requirement.
pub fn pin_to_core(core: usize) -> bool {
    if !pin_enabled() || core >= MAX_CPUS {
        return false;
    }
    #[cfg(target_os = "linux")]
    {
        let mut mask = [0u64; MAX_CPUS / 64];
        mask[core / 64] = 1u64 << (core % 64);
        // SAFETY: `mask` is a live, initialized bit array of exactly
        // `cpusetsize` bytes; pid 0 names the calling thread; the call
        // only reads the mask and touches no other process memory.
        unsafe { sys::sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) == 0 }
    }
    #[cfg(not(target_os = "linux"))]
    {
        false
    }
}

/// CPU the calling thread is currently running on, when the platform can
/// tell (`None` on non-Linux targets or on `sched_getcpu` failure).
pub fn current_core() -> Option<usize> {
    #[cfg(target_os = "linux")]
    {
        // SAFETY: `sched_getcpu` takes no arguments and touches no caller
        // memory; it returns the current CPU index or -1.
        let cpu = unsafe { sys::sched_getcpu() };
        usize::try_from(cpu).ok()
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_round_trips_on_linux() {
        if !cfg!(target_os = "linux") || !pin_enabled() {
            return;
        }
        // Pinning to core 0 must succeed on any Linux host whose cpuset
        // includes it; afterwards the thread reports core 0.
        if pin_to_core(0) {
            assert_eq!(current_core(), Some(0));
        }
        // Restore a permissive mask so later tests on this thread are not
        // confined: pin to every available core in turn is not needed —
        // the test harness gives each test a fresh thread.
    }

    #[test]
    fn out_of_range_core_is_rejected() {
        assert!(!pin_to_core(MAX_CPUS));
        assert!(!pin_to_core(usize::MAX));
    }

    #[test]
    fn core_count_is_positive() {
        assert!(core_count() >= 1);
    }
}
