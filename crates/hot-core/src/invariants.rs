//! Whole-trie structural invariant checking.
//!
//! epoch-exempt: runs on a quiesced tree (or under `try_check_invariants`'s
//! best-effort contract) — nothing is retired while the walker holds nodes.
//!
//! [`check_tree`] walks every compound node of a (quiesced) HOT and
//! verifies the paper's structural claims end to end, extending the
//! per-node [`Builder::try_check_invariants`](crate::node::builder::Builder::try_check_invariants)
//! check to tree scope:
//!
//! * **Fanout bounds** — every node holds `2..=k` entries (`k = 32`);
//!   overflowed `k + 1` builders are transient and must never be
//!   materialized.
//! * **Sparse-partial-key discriminativity** — each node's linearization
//!   decodes to a well-formed binary Patricia trie (Section 3.2), and the
//!   layout-specific SIMD search maps every stored sparse key back to its
//!   own entry index.
//! * **Height bounds** — node heights strictly decrease towards the
//!   leaves, so the root's height bounds the trie height, and every node
//!   satisfies `height >= 1 + max(child heights)`. Exact equality is *not*
//!   required below the root: remove paths deliberately skip recomputing
//!   ancestor heights (a stale-high height is safe, merely conservative),
//!   so the walk reports the number of slack nodes instead of failing.
//! * **Partition ordering** — the in-order leaf sequence resolves (through
//!   the [`KeySource`]) to strictly ascending keys, i.e. each BiNode's
//!   0-side subtree precedes its 1-side subtree in key order.
//! * **Reachability** — the walk finds exactly `len` leaves, and every
//!   leaf's key is found again through the public lookup path (the
//!   discriminative-bit prefixes along its path really select it).
//! * **Quiescence** — no lock word has the `LOCKED` or `OBSOLETE` bit set;
//!   an obsolete node reachable from the root means a writer published a
//!   retired node, a locked one means the caller raced a writer.
//!
//! The checker returns `Err(description)` on the first violation instead
//! of panicking, so property tests can report it as a counterexample and
//! the `fig8_throughput --check` flag can fail with context. `HotTrie` and
//! `ConcurrentHot` expose it as `try_check_invariants` /
//! `check_invariants`.

use crate::node::builder::Builder;
use crate::node::{NodeRef, MAX_FANOUT};
use crate::sync::{LOCKED, OBSOLETE};
use crate::sync_shim::Ordering;
use hot_keys::{KeySource, KEY_SCRATCH_LEN};

/// Summary statistics gathered by a successful [`check_tree`] walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvariantReport {
    /// Compound nodes visited.
    pub nodes: usize,
    /// Leaf entries visited (equals the index `len`).
    pub leaves: usize,
    /// Root node height (0 for empty or single-leaf tries).
    pub height: usize,
    /// Nodes whose height exceeds `1 + max(child heights)` — stale-high
    /// heights left behind by remove paths. Safe but worth watching: a
    /// growing slack count on an insert-only workload would be a bug.
    pub height_slack: usize,
    /// Total entry slots across all compound nodes (leaves + child
    /// pointers). `entries / nodes` is the average node fill out of
    /// `k = 32` — the bulk loader packs maximal nodes, so its fill should
    /// never trail the incremental build's.
    pub entries: usize,
    /// Live nodes per physical layout, indexed by `NodeTag as usize`
    /// (Single8 = 0 … Multi32x32 = 8): the observable footprint of the
    /// paper's two adaptivity dimensions.
    pub layout_census: [usize; 9],
    /// Leaf count per depth (compound nodes on the root-to-leaf path),
    /// clamped to the final slot. Depth 0 counts a single-leaf root.
    pub leaf_depths: [usize; MAX_DEPTH_SLOTS],
}

/// Number of tracked leaf-depth buckets in [`InvariantReport::leaf_depths`]
/// (deeper leaves are clamped into the last slot — a height beyond this
/// would itself be an invariant violation for any realistic key count).
pub const MAX_DEPTH_SLOTS: usize = 16;

impl InvariantReport {
    /// Average entries per compound node (0.0 for leafless tries); the
    /// maximum is `k = 32`.
    pub fn avg_fill(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.entries as f64 / self.nodes as f64
        }
    }
}

struct Walker<'s, S> {
    source: &'s S,
    scratch: [u8; KEY_SCRATCH_LEN],
    prev_key: Option<Vec<u8>>,
    report: InvariantReport,
    leaf_tids: Vec<u64>,
}

impl<S: KeySource> Walker<'_, S> {
    /// Check the subtree under `r`; returns its height (leaves are 0).
    fn walk(&mut self, r: NodeRef, depth: usize) -> Result<usize, String> {
        if r.is_null() {
            return Err(format!("null child reference at depth {depth}"));
        }
        if r.is_leaf() {
            let tid = r.tid();
            let key = self.source.load_key(tid, &mut self.scratch);
            if let Some(prev) = &self.prev_key {
                if prev.as_slice() >= key {
                    return Err(format!(
                        "partition ordering violated: leaf tid {tid} at depth \
                         {depth} is not strictly greater than its in-order \
                         predecessor ({prev:?} >= {key:?})"
                    ));
                }
            }
            self.prev_key = Some(key.to_vec());
            self.leaf_tids.push(tid);
            self.report.leaves += 1;
            self.report.leaf_depths[depth.min(MAX_DEPTH_SLOTS - 1)] += 1;
            return Ok(0);
        }
        let raw = r.as_raw();
        let n = raw.count();
        let h = raw.height() as usize;
        let ctx = |what: &str| format!("node at depth {depth} (tag {:?}, n={n}, h={h}): {what}", raw.tag);
        if !(2..=MAX_FANOUT).contains(&n) {
            return Err(ctx("entry count outside 2..=32"));
        }
        if h < 1 {
            return Err(ctx("compound node with height 0"));
        }
        let lock = raw.lock_word().load(Ordering::Relaxed);
        if lock & OBSOLETE != 0 {
            return Err(ctx("reachable node is marked OBSOLETE"));
        }
        if lock & LOCKED != 0 {
            return Err(ctx("node lock word is LOCKED on a quiesced tree"));
        }
        let builder = Builder::decode(raw);
        builder
            .try_check_invariants()
            .map_err(|e| ctx(&format!("linearization invalid: {e}")))?;
        // The SIMD search must map each stored sparse key to its own entry:
        // per-layout search and the decoded linearization agree.
        for i in 0..n {
            let found = raw.search(raw.sparse_key(i));
            if found != i {
                return Err(ctx(&format!(
                    "search(sparse_key({i})) returned {found}, not {i}"
                )));
            }
        }
        self.report.nodes += 1;
        self.report.entries += n;
        self.report.layout_census[raw.tag as usize] += 1;
        let mut max_child = 0usize;
        for i in 0..n {
            let ch = self.walk(raw.value(i), depth + 1)?;
            if ch >= h {
                return Err(ctx(&format!(
                    "entry {i}: child height {ch} >= node height {h}"
                )));
            }
            max_child = max_child.max(ch);
        }
        if h > 1 + max_child {
            self.report.height_slack += 1;
        }
        Ok(h)
    }
}

/// Walk the whole tree under `root`, verifying every structural invariant
/// (see the module docs for the list). `expected_len` is the index's
/// published length; `lookup` is the index's public point-lookup, used to
/// re-find every stored key. Returns summary statistics on success and a
/// description of the first violation otherwise.
///
/// The tree must be quiesced: no concurrent writers (the walk reads slots
/// non-atomically with respect to the ROWEX protocol and expects all lock
/// words clear).
pub fn check_tree<S, F>(
    root: NodeRef,
    source: &S,
    expected_len: usize,
    lookup: F,
) -> Result<InvariantReport, String>
where
    S: KeySource,
    F: Fn(&[u8]) -> Option<u64>,
{
    let mut w = Walker {
        source,
        scratch: [0u8; KEY_SCRATCH_LEN],
        prev_key: None,
        report: InvariantReport {
            nodes: 0,
            leaves: 0,
            height: 0,
            height_slack: 0,
            entries: 0,
            layout_census: [0; 9],
            leaf_depths: [0; MAX_DEPTH_SLOTS],
        },
        leaf_tids: Vec::with_capacity(expected_len),
    };
    if root.is_null() {
        if expected_len != 0 {
            return Err(format!("empty root but len is {expected_len}"));
        }
        return Ok(w.report);
    }
    w.report.height = w.walk(root, 0)?;
    if w.report.leaves != expected_len {
        return Err(format!(
            "leaf count {} does not match len {expected_len}",
            w.report.leaves
        ));
    }
    // Every stored key must be found again through the public lookup path:
    // the discriminative bits along each leaf's path actually select it.
    let mut scratch = [0u8; KEY_SCRATCH_LEN];
    for tid in std::mem::take(&mut w.leaf_tids) {
        let key = source.load_key(tid, &mut scratch);
        match lookup(key) {
            Some(found) if found == tid => {}
            other => {
                return Err(format!(
                    "stored key for tid {tid} resolves to {other:?} through \
                     the public lookup path"
                ));
            }
        }
    }
    Ok(w.report)
}
