//! Allocation-free, prefetch-pipelined range scans (workload E fast path).
//!
//! epoch-exempt: shared descent core. The concurrent wrappers in `sync.rs`
//! pin the epoch *before* loading the root and calling in here; the
//! single-threaded `HotTrie` needs no pin. Protection is the caller's
//! contract — these routines only borrow already-protected nodes.
//!
//! A YCSB-E scan is `range_from(start).take(len)`: seek to the first entry
//! `>= start`, then walk leaves in order. Done naively that costs, per
//! operation, a fresh frame-stack `Vec`, a fresh output `Vec`, a 264-byte
//! padded-key zeroing — and one *dependent* cache miss per visited node,
//! because the in-order walk only discovers a subtree's address one hop
//! before it needs it.
//!
//! Two cursors fix this:
//!
//! * [`ScanCursor`] owns the seek/traversal state (padded start key, descent
//!   path, frame stack) and is reused across calls —
//!   [`scan_with`](crate::HotTrie::scan_with) touches the heap only when a
//!   buffer has to grow, so repeated scans are allocation-free steady-state.
//!   During the drain it prefetches a subtree's node *before* descending
//!   into it and the **next sibling subtree's header** at the same moment,
//!   so the sibling's miss overlaps the entire walk of the current subtree
//!   instead of serializing behind it (the inter-node analogue of the
//!   Section 4.5 intra-node prefetch).
//! * [`ScanBatchCursor`] services many scan requests per call the way
//!   [`BatchCursor`](crate::BatchCursor) services point lookups: the *seek
//!   descents* of G scans advance round-robin, each hop prefetching the
//!   lane's next node, so G seek misses stay in flight concurrently. The
//!   drains then run lane-by-lane (an in-order walk cannot be reordered)
//!   with the sibling prefetch above. On
//!   [`ConcurrentHot`](crate::sync::ConcurrentHot) the whole batch runs
//!   under a **single epoch pin**, re-reading the root once per group so a
//!   long batch never pins one stale root (same protocol as `get_batch`).
//!
//! Results are written into caller-owned buffers (`&mut Vec<u64>`); batched
//! results land flat in one TID vector with a bounds (prefix-offset) vector,
//! so a full batch costs zero allocations once the buffers warmed up.

use crate::node::NodeRef;
use hot_keys::{KeySource, PaddedKey, KEY_SCRATCH_LEN};

/// Cache lines prefetched per upcoming node — matches the point-lookup path
/// (Section 4.5: header + partial keys + values).
const PREFETCH_LINES: usize = 4;

/// Cache lines prefetched of the *next sibling* subtree's node while the
/// current subtree is walked. One line covers the header and the partial-key
/// section of every layout; the full node follows when the walk arrives.
const SIBLING_PREFETCH_LINES: usize = 1;

/// Reusable range-scan state: padded start key, descent path and in-order
/// frame stack.
///
/// One cursor serves any number of sequential
/// [`scan_with`](crate::HotTrie::scan_with) calls; everything it owns is
/// recycled, so steady-state scans allocate nothing. Creating one per scan
/// ([`scan_into`](crate::HotTrie::scan_into) does) costs one boxed key
/// buffer plus two empty `Vec`s.
pub struct ScanCursor {
    /// Padded start key (boxed: moving the cursor must not copy 272 bytes).
    key: Box<PaddedKey>,
    /// Root-to-leaf descent path of the seek: (node, taken entry index).
    path: Vec<(NodeRef, usize)>,
    /// In-order traversal stack: (node, next entry index).
    frames: Vec<(NodeRef, usize)>,
}

impl Default for ScanCursor {
    fn default() -> Self {
        Self::new()
    }
}

impl ScanCursor {
    /// A fresh cursor (buffers grow on first use).
    pub fn new() -> Self {
        ScanCursor {
            key: Box::new(PaddedKey::new()),
            path: Vec::new(),
            frames: Vec::new(),
        }
    }

    /// Run one scan against `root`, appending up to `limit` TIDs (keys
    /// `>= key`, ascending) to `out`.
    ///
    /// Accepts any root word (node, leaf, null) so both tries share the
    /// entry point. Appends — callers decide whether `out` accumulates
    /// (batching) or was cleared (single scan).
    pub(crate) fn scan_root<S: KeySource>(
        &mut self,
        root: NodeRef,
        source: &S,
        key: &[u8],
        limit: usize,
        out: &mut Vec<u64>,
    ) {
        if limit == 0 {
            return;
        }
        if root.is_null() {
            return;
        }
        let mut scratch = [0u8; KEY_SCRATCH_LEN];
        if root.is_leaf() {
            if source.load_key(root.tid(), &mut scratch) >= key {
                out.push(root.tid());
            }
            return;
        }

        // Seek: descend to the candidate leaf, recording the path and
        // prefetching each next hop before the current node's entry decode
        // retires.
        self.key.set(key);
        self.path.clear();
        let mut cur = root;
        while cur.is_node() {
            let raw = cur.as_raw();
            let (idx, next) = raw.find_candidate(self.key.padded());
            if next.is_node() {
                hot_bits::prefetch_node(next.as_raw().base, PREFETCH_LINES);
            }
            self.path.push((cur, idx));
            cur = next;
        }
        let limit = limit.saturating_add(out.len());
        position_frames(source, &self.key, &self.path, cur, &mut self.frames, out);
        drain_frames(&mut self.frames, limit, out);
    }
}

/// Turn a completed seek descent into an in-order frame stack positioned at
/// the first entry `>= key`, pushing the exact-match TID (if any) to `out`.
///
/// `leaf` is the descent's terminal word: a leaf, or null when a slot was
/// observed mid-update on the concurrent index (treated as a mismatch above
/// everything, which resumes the scan at a defined position).
pub(crate) fn position_frames<S: KeySource>(
    source: &S,
    key: &PaddedKey,
    path: &[(NodeRef, usize)],
    leaf: NodeRef,
    frames: &mut Vec<(NodeRef, usize)>,
    out: &mut Vec<u64>,
) {
    frames.clear();
    let mut scratch = [0u8; KEY_SCRATCH_LEN];
    let mismatch = if leaf.is_leaf() {
        let stored = source.load_key(leaf.tid(), &mut scratch);
        hot_bits::first_mismatch_bit(stored, key.bytes())
    } else {
        Some(0)
    };
    match mismatch {
        None => {
            // Exact hit: resume every ancestor after its taken entry and
            // yield the hit first.
            for &(node, idx) in path {
                frames.push((node, idx + 1));
            }
            out.push(leaf.tid());
        }
        Some(pos) => {
            // Locate the node the mismatch splits (same rule as insert),
            // then start at the boundary of the affected entry run — found
            // with one SIMD prefix compare (`affected_range`), not a scalar
            // narrowing walk.
            let mut level = path.len() - 1;
            while level > 0 && path[level].0.as_raw().min_position() as usize > pos {
                level -= 1;
            }
            for &(node, idx) in &path[..level] {
                frames.push((node, idx + 1));
            }
            let (target, idx) = path[level];
            let (lo, hi) = target.as_raw().affected_range(pos, idx);
            let start = if hot_bits::bit_at(key.bytes(), pos) == 0 {
                lo // the search key precedes the affected subtree
            } else {
                hi + 1 // the search key follows the affected subtree
            };
            frames.push((target, start));
        }
    }
}

/// Drain an in-order frame stack until `out` holds `limit` TIDs or the
/// frames are exhausted, prefetching one subtree ahead.
pub(crate) fn drain_frames(frames: &mut Vec<(NodeRef, usize)>, limit: usize, out: &mut Vec<u64>) {
    while out.len() < limit {
        let Some(&(node, idx)) = frames.last() else {
            break;
        };
        let raw = node.as_raw();
        if idx >= raw.count() {
            frames.pop();
            continue;
        }
        frames.last_mut().expect("non-empty").1 += 1;
        let value = raw.value(idx);
        if value.is_leaf() {
            out.push(value.tid());
        } else if value.is_node() {
            // The subtree we are about to walk, plus the header of the
            // sibling that follows it: the sibling's miss resolves while
            // this whole subtree is traversed, instead of stalling the walk
            // when the frame advances.
            hot_bits::prefetch_node(value.as_raw().base, PREFETCH_LINES);
            if idx + 1 < raw.count() {
                let sib = raw.value(idx + 1);
                if sib.is_node() {
                    hot_bits::prefetch_node(sib.as_raw().base, SIBLING_PREFETCH_LINES);
                }
            }
            frames.push((value, 0));
        }
        // Null slots (concurrent mid-update) are skipped: the entry's new
        // value is published with a single store the scan either sees or
        // not — exactly the paper's reader guarantee.
    }
}

/// One in-flight scan request of a batch.
struct ScanLane {
    /// Padded start key.
    key: PaddedKey,
    /// Current descent position (node while descending; leaf/null once
    /// done).
    cur: NodeRef,
    /// Recorded descent path.
    path: Vec<(NodeRef, usize)>,
    /// In-order frame stack (reused across batches).
    frames: Vec<(NodeRef, usize)>,
}

impl ScanLane {
    fn new() -> Self {
        ScanLane {
            key: PaddedKey::new(),
            cur: NodeRef::NULL,
            path: Vec::new(),
            frames: Vec::new(),
        }
    }
}

/// Reusable state machine batching many range scans: seek descents advance
/// round-robin (one hop per lane per round, next node prefetched), then each
/// lane drains in request order.
///
/// Group size trades overlap against cache pressure exactly as for
/// [`BatchCursor`](crate::BatchCursor); the default matches
/// [`DEFAULT_GROUP`](crate::DEFAULT_GROUP).
pub struct ScanBatchCursor {
    group: usize,
    lanes: Vec<ScanLane>,
    /// Worklist of lane indices still descending, compacted in place.
    active: Vec<usize>,
}

impl Default for ScanBatchCursor {
    fn default() -> Self {
        Self::new()
    }
}

impl ScanBatchCursor {
    /// Cursor with the default group size
    /// ([`DEFAULT_GROUP`](crate::DEFAULT_GROUP)).
    pub fn new() -> Self {
        Self::with_group(crate::batch::DEFAULT_GROUP)
    }

    /// Cursor keeping up to `group` seek descents in flight (≥ 1).
    pub fn with_group(group: usize) -> Self {
        assert!(group >= 1, "group size must be at least 1");
        ScanBatchCursor {
            group,
            lanes: Vec::new(),
            active: Vec::new(),
        }
    }

    /// The configured group size.
    pub fn group(&self) -> usize {
        self.group
    }

    /// Service one group of at most `group` requests against `root`,
    /// appending each scan's TIDs to `tids` and one end offset per request
    /// to `bounds`.
    pub(crate) fn run_group<S, K>(
        &mut self,
        root: NodeRef,
        source: &S,
        requests: &[(K, usize)],
        tids: &mut Vec<u64>,
        bounds: &mut Vec<usize>,
    ) where
        S: KeySource,
        K: AsRef<[u8]>,
    {
        let n = requests.len();
        debug_assert!(n <= self.group, "caller chunks batches by group size");
        while self.lanes.len() < n {
            self.lanes.push(ScanLane::new());
        }
        self.active.clear();

        // Load phase: stage every start key, point every lane at the root.
        for (lane, (key, _)) in self.lanes.iter_mut().zip(requests) {
            lane.key.set(key.as_ref());
            lane.cur = root;
            lane.path.clear();
        }
        for lane in 0..n {
            if root.is_node() {
                self.active.push(lane);
            }
        }

        // Seek phase: every pass advances each in-flight descent exactly one
        // node, prefetching the hop after it — G seek misses overlap instead
        // of serializing (the drain below then finds the upper tree levels
        // resident).
        let mut live = self.active.len();
        while live > 0 {
            let mut kept = 0;
            for slot in 0..live {
                let lane = &mut self.lanes[self.active[slot]];
                let raw = lane.cur.as_raw();
                let (idx, next) = raw.find_candidate(lane.key.padded());
                lane.path.push((lane.cur, idx));
                lane.cur = next;
                if next.is_node() {
                    hot_bits::prefetch_node(next.as_raw().base, PREFETCH_LINES);
                    self.active[kept] = self.active[slot];
                    kept += 1;
                } else if next.is_leaf() {
                    // The mismatch check against the stored key runs in the
                    // drain phase; start its miss now.
                    source.prefetch_key(next.tid());
                }
            }
            live = kept;
        }

        // Drain phase, in request order: position each lane's frames at its
        // start entry and walk leaves until the lane's limit.
        let mut scratch = [0u8; KEY_SCRATCH_LEN];
        for (lane, (key, limit)) in self.lanes.iter_mut().zip(requests) {
            let begin = tids.len();
            let limit = *limit;
            if limit > 0 && root.is_leaf() {
                if source.load_key(root.tid(), &mut scratch) >= key.as_ref() {
                    tids.push(root.tid());
                }
            } else if limit > 0 && root.is_node() {
                position_frames(source, &lane.key, &lane.path, lane.cur, &mut lane.frames, tids);
                drain_frames(&mut lane.frames, begin.saturating_add(limit), tids);
            }
            bounds.push(tids.len());
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::HotTrie;
    use hot_keys::{encode_u64, EmbeddedKeySource};

    fn build(n: u64) -> HotTrie<EmbeddedKeySource> {
        let mut t = HotTrie::new(EmbeddedKeySource);
        for v in 0..n {
            t.insert(&encode_u64(v * 3), v * 3);
        }
        t
    }

    #[test]
    fn scan_with_matches_scan_across_reuse() {
        let t = build(5_000);
        let mut cursor = super::ScanCursor::new();
        let mut out = Vec::new();
        for start in [0u64, 1, 2, 3, 299, 14_996, 14_997, 15_000, u64::MAX] {
            for limit in [0usize, 1, 7, 100] {
                t.scan_with(&encode_u64(start), limit, &mut out, &mut cursor);
                assert_eq!(out, t.scan(&encode_u64(start), limit), "start={start} limit={limit}");
            }
        }
    }

    #[test]
    fn scan_batch_matches_sequential_scans() {
        let t = build(4_000);
        let requests: Vec<([u8; 8], usize)> = (0..64u64)
            .map(|i| (encode_u64(i * 191), (i % 13) as usize))
            .collect();
        let mut tids = Vec::new();
        let mut bounds = Vec::new();
        t.scan_batch(&requests, &mut tids, &mut bounds);
        assert_eq!(bounds.len(), requests.len() + 1);
        for (i, (key, limit)) in requests.iter().enumerate() {
            assert_eq!(
                &tids[bounds[i]..bounds[i + 1]],
                t.scan(key, *limit).as_slice(),
                "request {i}"
            );
        }
    }

    #[test]
    fn scan_batch_on_empty_and_single_leaf_trees() {
        let requests = [(encode_u64(0), 5usize), (encode_u64(9), 5)];
        let (mut tids, mut bounds) = (Vec::new(), Vec::new());

        let t: HotTrie<EmbeddedKeySource> = HotTrie::new(EmbeddedKeySource);
        t.scan_batch(&requests, &mut tids, &mut bounds);
        assert_eq!(bounds, [0, 0, 0]);
        assert!(tids.is_empty());

        let mut t = HotTrie::new(EmbeddedKeySource);
        t.insert(&encode_u64(7), 7);
        t.scan_batch(&requests, &mut tids, &mut bounds);
        assert_eq!(tids, [7]);
        assert_eq!(bounds, [0, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "group size")]
    fn zero_group_rejected() {
        super::ScanBatchCursor::with_group(0);
    }
}
