//! Atomic/lock-word primitives behind a model-checking switch.
//!
//! Everything the ROWEX protocol synchronizes through — node **lock
//! words**, node **value slots**, the **root word**, the published
//! **len** counter, and the writer **backoff** hints — imports its atomic
//! types from this module instead of `std::sync::atomic`. In a normal
//! build the re-exports *are* the `std` types (zero cost). Under
//! `--cfg loom` or the `loom-model` cargo feature they swap to the
//! vendored [`loom`] stand-ins, whose every operation is a scheduler
//! yield point, so `tests/loom_rowex.rs` can exhaustively explore the
//! protocol's interleavings (see DESIGN.md §10).
//!
//! Two rules keep the swap sound:
//!
//! * The loom atomics are `#[repr(transparent)]` over the `std` atomics,
//!   so `RawNode::lock_word`'s cast from raw node memory is valid in both
//!   modes (this is guaranteed by the vendored crate, documented in its
//!   crate docs, and asserted by `layout_matches_std` below).
//! * Pure bookkeeping that is *not* part of the protocol — the
//!   [`MemCounter`](crate::node::MemCounter) allocation counters —
//!   deliberately stays on `std` atomics: instrumenting it would blow up
//!   the model's state space without adding any checked property. The
//!   insert fast-path kill switch *does* live here (see
//!   [`insert_fast_path_enabled`]): it is a process-global flag a test
//!   harness may flip while model threads run, so routing it through the
//!   shim makes that flip itself a modeled yield point.
//!
//! The epoch layer is *not* swapped: the vendored `crossbeam-epoch`
//! serializes its bookkeeping under a plain `Mutex` and never touches a
//! shim atomic while holding it, so running it unmodeled cannot mask a
//! scheduling-dependent bug in the protocol itself; it only means the
//! model checks "grace periods are respected" by construction rather
//! than by exploration.

/// True when the ROWEX atomics are the model-checked loom types.
#[cfg(any(loom, feature = "loom-model"))]
pub const MODEL_CHECKING: bool = true;
/// True when the ROWEX atomics are the model-checked loom types.
#[cfg(not(any(loom, feature = "loom-model")))]
pub const MODEL_CHECKING: bool = false;

#[cfg(any(loom, feature = "loom-model"))]
pub use loom::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};

#[cfg(not(any(loom, feature = "loom-model")))]
pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};

/// Disable the fused insert fast path (differential-testing support: the
/// fast path and the general builder path must produce identical trees, so
/// the differential suite builds the same data set once with each).
///
/// Process-global on purpose — it selects between two code paths that are
/// asserted byte-identical, so a racing flip can change timing but never
/// an observable result.
static DISABLE_INSERT_FAST_PATH: AtomicBool = AtomicBool::new(false);

/// True while the fused insert fast path is enabled (the default).
#[inline]
pub fn insert_fast_path_enabled() -> bool {
!DISABLE_INSERT_FAST_PATH.load(Ordering::Relaxed)
}

/// Turn the fused insert fast path off (`true`) or back on (`false`).
/// Test-harness support; see [`insert_fast_path_enabled`].
pub fn set_disable_insert_fast_path(disable: bool) {
DISABLE_INSERT_FAST_PATH.store(disable, Ordering::Relaxed);
}

/// One step of a contended writer's spin: a pause instruction normally, a
/// voluntary scheduler yield under the model (so the model's bounded
/// scheduler always lets the lock holder run).
#[inline]
pub fn spin_hint() {
    #[cfg(any(loom, feature = "loom-model"))]
    loom::hint::spin_loop();
    #[cfg(not(any(loom, feature = "loom-model")))]
    std::hint::spin_loop();
}

/// Yield the OS thread (escalation step of the writer backoff).
#[inline]
pub fn yield_now() {
    #[cfg(any(loom, feature = "loom-model"))]
    loom::thread::yield_now();
    #[cfg(not(any(loom, feature = "loom-model")))]
    std::thread::yield_now();
}

#[cfg(test)]
mod tests {
    /// `RawNode::lock_word` casts raw node memory to `&AtomicU32`; that is
    /// only sound while the shim's atomic is layout-identical to a `u32`.
    #[test]
    fn layout_matches_std() {
        assert_eq!(
            std::mem::size_of::<super::AtomicU32>(),
            std::mem::size_of::<u32>()
        );
        assert_eq!(
            std::mem::align_of::<super::AtomicU32>(),
            std::mem::align_of::<u32>()
        );
        assert_eq!(
            std::mem::size_of::<super::AtomicU64>(),
            std::mem::size_of::<u64>()
        );
        assert_eq!(
            std::mem::align_of::<super::AtomicU64>(),
            std::mem::align_of::<u64>()
        );
    }
}
