//! # HOT — Height Optimized Trie
//!
//! A from-scratch Rust implementation of the index structure of
//! *Binna, Zangerle, Pichl, Specht, Leis: "HOT: A Height Optimized Trie
//! Index for Main-Memory Database Systems" (SIGMOD 2018)*.
//!
//! The core idea: instead of a trie with a fixed span and data-dependent
//! fanout, HOT fixes the **maximum fanout** `k = 32` and lets the **span**
//! (the set of key bits each node inspects) adapt to the data. Every
//! compound node embeds a binary Patricia trie of up to `k - 1` BiNodes,
//! linearized into *sparse partial keys* that are searched with SIMD
//! compares after a single `PEXT`-based extraction of the search key's
//! discriminative bits. Structural adaptation on insert (normal insert,
//! leaf-node pushdown, parent pull-up, intermediate node creation) keeps the
//! overall height minimal: like a B-tree, the height only grows when a new
//! root is created.
//!
//! ## Entry points
//!
//! * [`HotTrie`] — the single-threaded index mapping prefix-free byte keys
//!   to tuple identifiers, with the key bytes resolved back through a
//!   [`KeySource`](hot_keys::KeySource);
//! * [`sync::ConcurrentHot`] — the ROWEX-synchronized variant of Section 5:
//!   wait-free readers, lock-only-what-you-modify writers, epoch-based
//!   memory reclamation;
//! * [`CompactHot`] — the arena-backed compact layout: 32-bit offset-word
//!   child references and inline front-coded leaf records, cutting
//!   bytes/key roughly in half while producing structurally identical
//!   trees (same [`structure_digest`](HotTrie::structure_digest));
//! * [`HotMap`] — a convenience ordered map that owns its keys and values.
//!
//! ```
//! use hot_core::HotTrie;
//! use hot_keys::{encode_u64, EmbeddedKeySource};
//!
//! let mut trie = HotTrie::new(EmbeddedKeySource);
//! for v in [42u64, 7, 13_000_000] {
//!     trie.insert(&encode_u64(v), v);
//! }
//! assert_eq!(trie.get(&encode_u64(7)), Some(7));
//! let in_order: Vec<u64> = trie.iter().collect();
//! assert_eq!(in_order, vec![7, 42, 13_000_000]);
//! ```

#![deny(missing_docs)]

pub mod arena;
pub mod batch;
pub mod bulk;
pub mod invariants;
pub mod map;
pub(crate) mod metrics;
pub mod mlp;
pub mod node;
pub mod numa;
pub mod scan;
pub mod shard;
pub mod sync;
pub mod sync_shim;
pub mod trie;

/// Re-export of the observability crate backing
/// [`HotTrie::metrics_snapshot`] (only with the `metrics` feature).
#[cfg(feature = "metrics")]
pub use hot_metrics;

pub use arena::{
    ArenaFull, ArenaKind, ArenaStats, CompactBatchCursor, CompactCursor, CompactHot,
    CompactScanCursor,
};
pub use batch::{BatchCursor, DEFAULT_GROUP};
pub use bulk::BulkLoadError;
pub use invariants::InvariantReport;
pub use map::HotMap;
pub use mlp::{BatchRequest, MlpScheduler, DEFAULT_DEPTH, DEPTH_SWEEP, MAX_DEPTH};
pub use node::{MemCounter, NodeRef, NodeTag, MAX_FANOUT};
pub use scan::{ScanBatchCursor, ScanCursor};
pub use shard::{
    shard_of_key, splitters_from_sample, RouterScratch, ScanToken, ShardedHot, MAX_SHARDS,
};
pub use trie::HotTrie;
