//! Feature-gated instrumentation shim (DESIGN.md §13).
//!
//! Every instrumented call site in `trie.rs`, `sync.rs` and friends goes
//! through this module so the two build flavours stay source-identical:
//!
//! * with the `metrics` cargo feature, [`Metrics`] wraps an
//!   `Arc<hot_metrics::Registry>` and records operation latencies, item
//!   counts and ROWEX health counters;
//! * without it (the default), [`Metrics`] is a zero-sized `Copy` struct
//!   whose methods are empty `#[inline(always)]` bodies and whose timer
//!   type has no `Drop` — the optimizer erases every trace, the structs
//!   gain no field bytes, and `hot-metrics` is not even compiled
//!   (`cargo xtask verify-no-metrics` proves the symbols are absent).
//!
//! Instrumentation lives on the *public wrapper* methods (`get`,
//! `insert`, `scan_with`, …), never on the internal descent paths, so
//! internal reuse (e.g. the invariant walker re-looking-up every key)
//! does not inflate the operation counters.

#[cfg(feature = "metrics")]
pub(crate) use enabled::Metrics;
#[cfg(not(feature = "metrics"))]
pub(crate) use disabled::Metrics;

/// Operation kinds, mirrored so call sites compile in both flavours.
#[cfg(feature = "metrics")]
pub(crate) use hot_metrics::OpKind;
#[cfg(feature = "metrics")]
pub(crate) use hot_metrics::RowexCounter;
#[cfg(feature = "metrics")]
pub(crate) use hot_metrics::SchedCounter;

/// Operation kinds (no-op flavour).
#[cfg(not(feature = "metrics"))]
#[derive(Debug, Clone, Copy)]
#[allow(dead_code, reason = "mirror of hot_metrics::OpKind; variants are named at call sites")]
pub(crate) enum OpKind {
    /// Point lookup.
    Get,
    /// Upsert.
    Insert,
    /// Deletion.
    Remove,
    /// Range scan.
    Scan,
    /// Batched point lookups.
    GetBatch,
    /// Batched range scans.
    ScanBatch,
    /// Sorted bulk load.
    BulkLoad,
    /// Batched removals (probe descents + applies).
    RemoveBatch,
}

/// ROWEX health counters (no-op flavour).
#[cfg(not(feature = "metrics"))]
#[derive(Debug, Clone, Copy)]
#[allow(dead_code, reason = "mirror of hot_metrics::RowexCounter; variants are named at call sites")]
pub(crate) enum RowexCounter {
    /// Failed node-lock acquisition.
    LockFail,
    /// Optimistic write attempt restarted.
    Restart,
    /// Obsolete marker observed during validation.
    ObsoleteSeen,
    /// Epoch pinned.
    EpochPin,
    /// Node handed to the deferred-free queue.
    DeferredQueued,
    /// Deferred free executed.
    DeferredFreed,
}

/// MLP scheduler health counters (no-op flavour).
#[cfg(not(feature = "metrics"))]
#[derive(Debug, Clone, Copy)]
#[allow(dead_code, reason = "mirror of hot_metrics::SchedCounter; variants are named at call sites")]
pub(crate) enum SchedCounter {
    /// Lane loaded with a pending request.
    Refill,
    /// Lookup descent completed.
    LookupDone,
    /// Scan-seek descent completed.
    ScanSeekDone,
    /// Remove-probe descent completed.
    ProbeDone,
    /// Re-descent after a torn-slot observation.
    Redescent,
}

/// Convert an invariant-walk report into the structural gauges a
/// [`hot_metrics::MetricsSnapshot`] carries (trailing-zero depth slots
/// trimmed for tidy JSON).
#[cfg(feature = "metrics")]
pub(crate) fn structural_snapshot(
    report: &crate::InvariantReport,
) -> hot_metrics::StructuralSnapshot {
    let mut layout_census = [0u64; 9];
    for (out, &n) in layout_census.iter_mut().zip(report.layout_census.iter()) {
        *out = n as u64;
    }
    let last = report
        .leaf_depths
        .iter()
        .rposition(|&n| n != 0)
        .map_or(0, |i| i + 1);
    hot_metrics::StructuralSnapshot {
        nodes: report.nodes as u64,
        leaves: report.leaves as u64,
        height: report.height as u64,
        entries: report.entries as u64,
        layout_census,
        leaf_depths: report.leaf_depths[..last].iter().map(|&n| n as u64).collect(),
    }
}

#[cfg(feature = "metrics")]
mod enabled {
    use std::sync::Arc;

    /// Recording handle: a shared sharded registry.
    #[derive(Clone)]
    pub(crate) struct Metrics(pub(crate) Arc<hot_metrics::Registry>);

    impl Metrics {
        #[inline]
        pub(crate) fn new() -> Metrics {
            Metrics(Arc::new(hot_metrics::Registry::new()))
        }

        /// Time one operation; records on scope exit. The guard owns an
        /// `Arc` to the registry so it coexists with `&mut self` methods
        /// on the instrumented structure.
        #[inline]
        pub(crate) fn timer(&self, op: super::OpKind) -> hot_metrics::SharedOpTimer {
            hot_metrics::SharedOpTimer::new(Arc::clone(&self.0), op)
        }

        /// Add to an operation's items counter.
        #[inline]
        pub(crate) fn items(&self, op: super::OpKind, n: u64) {
            self.0.add_items(op, n);
        }

        /// Increment a ROWEX counter.
        #[inline]
        pub(crate) fn incr(&self, c: super::RowexCounter) {
            self.0.incr(c);
        }

        /// Increment an MLP scheduler health counter.
        #[inline]
        pub(crate) fn sched(&self, c: super::SchedCounter) {
            self.0.incr_sched(c);
        }

        /// Record one lane-occupancy sample.
        #[inline]
        pub(crate) fn occupancy(&self, busy: usize) {
            self.0.record_occupancy(busy);
        }

        /// An owned handle to move into a deferred closure (clones the
        /// `Arc`; the no-op flavour just copies the ZST).
        #[inline]
        pub(crate) fn handle(&self) -> Metrics {
            Metrics(Arc::clone(&self.0))
        }
    }
}

#[cfg(not(feature = "metrics"))]
mod disabled {
    /// Zero-sized no-op recording handle.
    #[derive(Clone, Copy)]
    pub(crate) struct Metrics;

    /// Zero-sized timer with no `Drop`: binding it is free.
    pub(crate) struct NoopTimer;

    impl Metrics {
        #[inline(always)]
        pub(crate) fn new() -> Metrics {
            Metrics
        }

        #[inline(always)]
        pub(crate) fn timer(&self, _op: super::OpKind) -> NoopTimer {
            NoopTimer
        }

        #[inline(always)]
        pub(crate) fn items(&self, _op: super::OpKind, _n: u64) {}

        #[inline(always)]
        pub(crate) fn incr(&self, _c: super::RowexCounter) {}

        #[inline(always)]
        pub(crate) fn sched(&self, _c: super::SchedCounter) {}

        #[inline(always)]
        pub(crate) fn occupancy(&self, _busy: usize) {}

        #[inline(always)]
        pub(crate) fn handle(&self) -> Metrics {
            Metrics
        }
    }
}
