//! Memory-level-parallel batched lookups: software-pipelined descent.
//!
//! epoch-exempt: shared descent core. The concurrent wrappers in `sync.rs`
//! pin the epoch *before* loading roots and calling in here; the
//! single-threaded `HotTrie` needs no pin. Protection is the caller's
//! contract — these routines only borrow already-protected nodes.
//!
//! A single HOT lookup is a serial pointer chase — every compound-node hop
//! depends on the previous one, so the core can never have more than one
//! lookup-related cache miss in flight (the Section 4.5 prefetch hides the
//! *intra-node* latency of reading 4 lines, not the *inter-node* dependency).
//! DRAM-resident indexes leave most of the memory system idle this way: an
//! out-of-order core sustains ~10 outstanding misses (line-fill buffers),
//! a descent uses one.
//!
//! [`BatchCursor`] recovers that parallelism across *independent* lookups,
//! the way software-pipelined hash joins and the Cuckoo Trie do: take a
//! group of G keys, keep one descent state per key, and advance the group
//! round-robin — each round advances every in-flight key by exactly one
//! node, issues a prefetch for the key's *next* node, then moves on to the
//! other lanes. By the time a lane comes around again its node is (ideally)
//! already in cache, so G misses overlap instead of serializing.
//!
//! The trailing full-key verification (`KeySource::load_key` +
//! `first_mismatch_bit`, Listing 2 line 7) is pipelined the same way: each
//! lane prefetches its tuple's key record the moment its descent reaches a
//! leaf, and the actual comparisons run in a final pass over the group —
//! one more level of overlapped misses.
//!
//! Group size G trades overlap against cache/register pressure: G must not
//! exceed the machine's outstanding-miss budget, and G padded key buffers
//! (264 B each) must stay resident. G = 8 is the sweet spot on commodity
//! x86 (10–12 line-fill buffers); the `batch_ops` bench sweeps G ∈ {1, 2,
//! 4, 8, 16, 32} to verify. See DESIGN.md, "Memory-level parallelism and
//! batched descent".

use crate::node::NodeRef;
use hot_keys::{KeySource, PaddedKey, KEY_SCRATCH_LEN};

/// Default descent group size (number of lookups kept in flight).
pub const DEFAULT_GROUP: usize = 8;

/// Split `len` requests into contiguous runs for round-robin groups of at
/// most `group` items: every run is exactly `group` wide except the last
/// two, which split the remainder evenly.
///
/// Plain `chunks(group)` leaves the trailing remainder nearly empty
/// (`len % group` lanes in flight, the rest idle — 33 requests at G = 8
/// would run 8/8/8/8/1, ending on a near-serial descent). Balancing every
/// run instead (7/7/7/6/6) fixes the tail but thins the interleave of the
/// *whole* batch — a cost router-split shard slices pay on every group,
/// not just the last. So the depth concession is made once, at the tail:
/// 33 requests at G = 8 run 8/8/8/5/4, full-depth groups throughout with
/// the final two balanced so neither drops below ⌈G/2⌉ lanes. A slice of
/// `len < group` is a single `len`-deep run. Results are unaffected: runs
/// stay contiguous and in order.
pub(crate) fn balanced_chunks(
    len: usize,
    group: usize,
) -> impl Iterator<Item = std::ops::Range<usize>> {
    // `full` leading runs of exactly `group`, then a remainder in
    // `group + 1..2 * group` split into two balanced runs (or, when the
    // whole slice fits one group, a single run of `len`).
    let full = if len.is_multiple_of(group) {
        len / group
    } else {
        (len / group).saturating_sub(1)
    };
    let rem = len - full * group;
    let runs = full + usize::from(rem > 0) + usize::from(rem > group);
    let mut start = 0;
    (0..runs).map(move |run| {
        let size = if run < full {
            group
        } else if rem <= group {
            rem
        } else if run == full {
            rem.div_ceil(2)
        } else {
            rem / 2
        };
        let range = start..start + size;
        start += size;
        range
    })
}

/// Number of cache lines prefetched per upcoming node — matches the
/// point-lookup path (Section 4.5: header + partial keys + values).
const PREFETCH_LINES: usize = 4;

/// Reusable state machine interleaving up to G concurrent descents.
///
/// One cursor holds G padded-key buffers and G lane states; reusing it
/// across [`get_batch_with`](crate::HotTrie::get_batch_with) calls amortizes
/// both the allocation and the 264-byte zeroing of key buffers over entire
/// workloads. A cursor is cheap enough to create per batch when convenience
/// matters more ([`get_batch`](crate::HotTrie::get_batch) does exactly
/// that).
pub struct BatchCursor {
    group: usize,
    /// Reused padded search keys, one per lane.
    bufs: Vec<PaddedKey>,
    /// Current node (or terminal leaf/null word) per lane.
    lanes: Vec<NodeRef>,
    /// Worklist of lane indices still descending, compacted in place.
    active: Vec<usize>,
}

impl Default for BatchCursor {
    fn default() -> Self {
        Self::new()
    }
}

impl BatchCursor {
    /// Cursor with the default group size ([`DEFAULT_GROUP`]).
    pub fn new() -> Self {
        Self::with_group(DEFAULT_GROUP)
    }

    /// Cursor keeping up to `group` lookups in flight (≥ 1).
    ///
    /// Buffers are allocated lazily on first use, so an unused cursor costs
    /// three empty `Vec`s.
    pub fn with_group(group: usize) -> Self {
        assert!(group >= 1, "group size must be at least 1");
        BatchCursor {
            group,
            bufs: Vec::new(),
            lanes: Vec::new(),
            active: Vec::new(),
        }
    }

    /// The configured group size.
    pub fn group(&self) -> usize {
        self.group
    }

    /// Resolve one group of at most `group` keys against `root`, writing
    /// one result per key into `out`.
    ///
    /// This is the pipelined core: descents advance round-robin, each hop
    /// prefetching the lane's next node (or, on reaching a leaf, the
    /// tuple's key record) before control moves to the other lanes.
    pub(crate) fn run_group<S, K>(&mut self, root: NodeRef, source: &S, keys: &[K], out: &mut [Option<u64>])
    where
        S: KeySource,
        K: AsRef<[u8]>,
    {
        let n = keys.len();
        debug_assert!(n <= self.group, "caller chunks batches by group size");
        debug_assert_eq!(n, out.len());
        while self.bufs.len() < n {
            self.bufs.push(PaddedKey::new());
        }
        self.lanes.clear();
        self.active.clear();

        // Load phase: stage every search key into its reused buffer and
        // point every lane at the root.
        for (lane, key) in keys.iter().enumerate() {
            self.bufs[lane].set(key.as_ref());
            self.lanes.push(root);
            if root.is_node() {
                self.active.push(lane);
            } else if root.is_leaf() {
                // Single-leaf tree: descent is already over; overlap the
                // tuple load with the remaining lanes' staging instead.
                source.prefetch_key(root.tid());
            }
        }

        // Descent phase: every pass over `active` advances each in-flight
        // lane exactly one node. Finished lanes are compacted out so later
        // rounds only touch live descents (tries are height-balanced, so
        // most lanes finish in the same round; stragglers keep pipelining
        // among themselves).
        let mut live = self.active.len();
        while live > 0 {
            let mut kept = 0;
            for slot in 0..live {
                let lane = self.active[slot];
                let raw = self.lanes[lane].as_raw();
                let (_, next) = raw.find_candidate(self.bufs[lane].padded());
                self.lanes[lane] = next;
                if next.is_node() {
                    // The next hop's memory starts loading now; it is
                    // needed only after every other live lane has moved.
                    hot_bits::prefetch_node(next.as_raw().base, PREFETCH_LINES);
                    self.active[kept] = lane;
                    kept += 1;
                } else if next.is_leaf() {
                    source.prefetch_key(next.tid());
                }
            }
            live = kept;
        }

        // Verification phase (Listing 2 line 7, batched): by now every
        // lane's tuple key record has been prefetched, so the mandatory
        // full-key comparisons run back to back with their misses already
        // overlapped.
        for ((&end, buf), slot) in self.lanes.iter().zip(&self.bufs).zip(out.iter_mut()) {
            *slot = if end.is_leaf() {
                let tid = end.tid();
                let mut scratch = [0u8; KEY_SCRATCH_LEN];
                let stored = source.load_key(tid, &mut scratch);
                hot_bits::first_mismatch_bit(stored, buf.bytes())
                    .is_none()
                    .then_some(tid)
            } else {
                // Null: empty tree, or a slot observed mid-update on the
                // concurrent index — both mean "not present".
                None
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HotTrie;
    use hot_keys::{encode_u64, EmbeddedKeySource};

    fn build(n: u64) -> HotTrie<EmbeddedKeySource> {
        let mut t = HotTrie::new(EmbeddedKeySource);
        for v in 0..n {
            t.insert(&encode_u64(v * 3), v * 3);
        }
        t
    }

    #[test]
    fn batch_matches_scalar_on_hits_and_misses() {
        let t = build(10_000);
        // Probes straddle present (multiples of 3) and absent keys.
        let keys: Vec<[u8; 8]> = (0..1_000).map(encode_u64).collect();
        let mut out = vec![None; keys.len()];
        t.get_batch(&keys, &mut out);
        for (k, got) in keys.iter().zip(&out) {
            assert_eq!(*got, t.get(k));
        }
    }

    #[test]
    fn empty_and_tiny_batches() {
        let t = build(100);
        let empty: [&[u8]; 0] = [];
        let mut out: Vec<Option<u64>> = vec![];
        t.get_batch(&empty, &mut out);

        let one = [encode_u64(3)];
        let mut out = [None];
        t.get_batch(&one, &mut out);
        assert_eq!(out[0], Some(3));
    }

    #[test]
    fn empty_tree_and_single_leaf_tree() {
        let t: HotTrie<EmbeddedKeySource> = HotTrie::new(EmbeddedKeySource);
        let keys = [encode_u64(1), encode_u64(2)];
        let mut out = [Some(9), Some(9)];
        t.get_batch(&keys, &mut out);
        assert_eq!(out, [None, None]);

        let mut t = HotTrie::new(EmbeddedKeySource);
        t.insert(&encode_u64(7), 7);
        let keys = [encode_u64(7), encode_u64(8)];
        let mut out = [None, None];
        t.get_batch(&keys, &mut out);
        assert_eq!(out, [Some(7), None]);
    }

    #[test]
    #[should_panic(expected = "group size")]
    fn zero_group_rejected() {
        BatchCursor::with_group(0);
    }

    #[test]
    fn balanced_chunks_cover_len_and_never_exceed_group() {
        for len in 0..200usize {
            for group in 1..20usize {
                let mut covered = 0;
                let mut min_size = usize::MAX;
                let mut sizes = Vec::new();
                for range in super::balanced_chunks(len, group) {
                    assert_eq!(range.start, covered, "contiguous");
                    covered = range.end;
                    min_size = min_size.min(range.len());
                    sizes.push(range.len());
                }
                assert_eq!(covered, len, "covers every request");
                if len > 0 {
                    assert!(sizes.iter().all(|&s| s <= group), "len={len} group={group}");
                    // Full interleave depth everywhere but the final two
                    // runs, and no near-serial tail: the depth concession
                    // is made once, bounded by half a group.
                    assert!(
                        sizes.iter().rev().skip(2).all(|&s| s == group),
                        "only the last two runs shrink: len={len} group={group} sizes={sizes:?}"
                    );
                    assert!(
                        min_size >= group.div_ceil(2).min(len),
                        "tail keeps >= half depth: len={len} group={group} sizes={sizes:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn router_split_slices_keep_full_depth_groups() {
        // Regression: a shard slice just over a group multiple must not
        // thin every group's interleave. 2G + 1 requests at G = 8 used to
        // run 6/6/6 (depth lost on the whole slice); now the full-depth
        // group survives and only the tail balances.
        let sizes: Vec<usize> = super::balanced_chunks(17, 8).map(|r| r.len()).collect();
        assert_eq!(sizes, [8, 5, 4]);
        // A slice smaller than the tuned depth is one run clamped to the
        // slice length — never split into shallower refills.
        for len in 1..8usize {
            let runs: Vec<_> = super::balanced_chunks(len, 8).collect();
            assert_eq!(runs.len(), 1, "len={len}");
            assert_eq!(runs[0], 0..len, "len={len}");
        }
    }
}
