//! The single-threaded Height Optimized Trie (Sections 3 and 4).
//!
//! epoch-exempt: mutation takes `&mut self` and reads run against a tree
//! nobody reclaims concurrently — no epoch pin is ever required here.

use crate::bulk::BulkLoadError;
use crate::metrics::{Metrics, OpKind};
use crate::node::builder::Builder;
use crate::node::{MemCounter, NodeRef, MAX_FANOUT};
use hot_keys::stats::MemoryStats;
use hot_keys::{DepthStats, KeySource, PaddedKey, KEY_SCRATCH_LEN, MAX_TID};

/// A Height Optimized Trie mapping prefix-free byte-string keys to 63-bit
/// tuple identifiers.
///
/// Keys handed to [`insert`](HotTrie::insert) are *not* stored by the index
/// itself (HOT is Patricia-style and keeps only discriminative bits); they
/// are resolved back from TIDs through the [`KeySource`] whenever a full-key
/// comparison is required, exactly as a main-memory DBMS resolves tuples.
/// Use [`HotMap`](crate::HotMap) for a self-contained ordered map.
pub struct HotTrie<S> {
    root: NodeRef,
    source: S,
    len: usize,
    mem: MemCounter,
    /// Reused descent stack: (node, selected entry index).
    stack: Vec<(NodeRef, usize)>,
    /// Reused padded key buffer for mutating operations (boxed so taking it
    /// out is a pointer move, not a 272-byte copy).
    key_buf: Option<Box<PaddedKey>>,
    /// Reused decode buffer for the copy-on-write insert path.
    scratch: Option<Builder>,
    /// Operation metrics recorder — zero-sized no-op unless the `metrics`
    /// feature is enabled (see [`crate::metrics`]).
    metrics: Metrics,
}

pub(crate) use crate::sync_shim::insert_fast_path_enabled as fast_path_enabled;

impl<S: KeySource> HotTrie<S> {
    /// Create an empty trie resolving keys through `source`.
    pub fn new(source: S) -> Self {
        HotTrie {
            root: NodeRef::NULL,
            source,
            len: 0,
            mem: MemCounter::default(),
            stack: Vec::with_capacity(16),
            key_buf: Some(Box::new(PaddedKey::new())),
            scratch: None,
            metrics: Metrics::new(),
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trie is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Access the key source.
    pub fn source(&self) -> &S {
        &self.source
    }

    /// Overall tree height in compound nodes (0 for empty or single-leaf
    /// trees). Grows only when a new root is created.
    pub fn height(&self) -> usize {
        if self.root.is_node() {
            self.root.as_raw().height() as usize
        } else {
            0
        }
    }

    /// Look up `key`; returns its TID if present.
    ///
    /// Wait-free: performs one descent plus one full-key verification
    /// (Listing 2 of the paper).
    pub fn get(&self, key: &[u8]) -> Option<u64> {
        let _t = self.metrics.timer(OpKind::Get);
        let padded = PaddedKey::from_key(key);
        self.get_padded(&padded)
    }

    /// Like [`get`](Self::get) with a caller-provided padded-key buffer
    /// (avoids re-zeroing in tight loops).
    pub fn get_with(&self, key: &[u8], buf: &mut PaddedKey) -> Option<u64> {
        let _t = self.metrics.timer(OpKind::Get);
        buf.set(key);
        self.get_padded(buf)
    }

    fn get_padded(&self, key: &PaddedKey) -> Option<u64> {
        let mut cur = self.root;
        while cur.is_node() {
            let raw = cur.as_raw();
            hot_bits::prefetch_node(raw.base, 4);
            let (_, next) = raw.find_candidate(key.padded());
            cur = next;
        }
        if cur.is_null() {
            return None;
        }
        let tid = cur.tid();
        let mut scratch = [0u8; KEY_SCRATCH_LEN];
        let stored = self.source.load_key(tid, &mut scratch);
        if hot_bits::first_mismatch_bit(stored, key.bytes()).is_none() {
            Some(tid)
        } else {
            None
        }
    }

    /// Look up `keys` as one batch, writing `keys.len()` results into
    /// `out` (`out[i]` answers `keys[i]`, exactly as [`get`](Self::get)
    /// would).
    ///
    /// Descents run through the completion-driven out-of-order scheduler
    /// ([`crate::mlp`]): up to N independent descents stay in flight, each
    /// lane refilling from the pending keys the moment it completes, so
    /// depth variance between keys never idles a lane. Set
    /// `HOT_FORCE_ROUND_ROBIN` to pin this entry point to the fixed
    /// round-robin cursor instead (the comparison baseline). Results are
    /// byte-for-byte identical to calling `get` per key on either path.
    ///
    /// # Panics
    /// Panics if `keys` and `out` differ in length.
    pub fn get_batch<K: AsRef<[u8]>>(&self, keys: &[K], out: &mut [Option<u64>]) {
        if crate::mlp::force_round_robin() {
            let mut cursor = crate::batch::BatchCursor::new();
            self.get_batch_with(keys, out, &mut cursor);
        } else {
            let mut sched = crate::mlp::MlpScheduler::new();
            self.get_batch_ooo(keys, out, &mut sched);
        }
    }

    /// Like [`get_batch`](Self::get_batch) with a caller-provided
    /// [`BatchCursor`](crate::BatchCursor): the fixed **round-robin**
    /// pipeline, amortizing the cursor's buffers (and fixing the group
    /// size) across many batches. Trailing partial batches are balanced
    /// across groups so no group runs nearly empty (see
    /// `crate::batch::balanced_chunks`).
    ///
    /// # Panics
    /// Panics if `keys` and `out` differ in length.
    pub fn get_batch_with<K: AsRef<[u8]>>(
        &self,
        keys: &[K],
        out: &mut [Option<u64>],
        cursor: &mut crate::batch::BatchCursor,
    ) {
        assert_eq!(keys.len(), out.len(), "one output slot per key");
        let _t = self.metrics.timer(OpKind::GetBatch);
        self.metrics.items(OpKind::GetBatch, keys.len() as u64);
        for r in crate::batch::balanced_chunks(keys.len(), cursor.group()) {
            cursor.run_group(self.root, &self.source, &keys[r.clone()], &mut out[r]);
        }
    }

    /// Like [`get_batch`](Self::get_batch) with a caller-provided
    /// [`MlpScheduler`](crate::MlpScheduler): the completion-driven
    /// out-of-order pipeline with the scheduler's lane buffers (and its
    /// in-flight depth) amortized across many batches.
    ///
    /// # Panics
    /// Panics if `keys` and `out` differ in length.
    pub fn get_batch_ooo<K: AsRef<[u8]>>(
        &self,
        keys: &[K],
        out: &mut [Option<u64>],
        sched: &mut crate::mlp::MlpScheduler,
    ) {
        assert_eq!(keys.len(), out.len(), "one output slot per key");
        let _t = self.metrics.timer(OpKind::GetBatch);
        self.metrics.items(OpKind::GetBatch, keys.len() as u64);
        let (mut tids, mut bounds) = (Vec::new(), Vec::new());
        sched.run(
            &self.source,
            &crate::mlp::LookupStream(keys),
            out,
            &mut tids,
            &mut bounds,
            |_| self.root,
            false,
            false,
            &self.metrics,
        );
    }

    /// Service a mixed stream of point lookups and range scans in one
    /// out-of-order pipeline: `out[i]` answers request `i` when it is a
    /// [`BatchRequest::Get`](crate::BatchRequest); each
    /// [`BatchRequest::Scan`](crate::BatchRequest) appends its TIDs to
    /// `tids` with one end offset pushed to `bounds`, in stream order
    /// (`tids` and `bounds` are cleared first; `bounds` starts with 0).
    ///
    /// This is the entry point YCSB's coalesced operation batches feed:
    /// get and scan-seek descents share the same lane ring, so a scan-heavy
    /// stretch never drains the lookup pipeline or vice versa. Records one
    /// `get_batch` and one `scan_batch` metrics sample.
    ///
    /// # Panics
    /// Panics if `reqs` and `out` differ in length.
    pub fn mixed_batch_ooo(
        &self,
        reqs: &[crate::mlp::BatchRequest<'_>],
        out: &mut [Option<u64>],
        tids: &mut Vec<u64>,
        bounds: &mut Vec<usize>,
        sched: &mut crate::mlp::MlpScheduler,
    ) {
        assert_eq!(reqs.len(), out.len(), "one output slot per request");
        let _tg = self.metrics.timer(OpKind::GetBatch);
        let _ts = self.metrics.timer(OpKind::ScanBatch);
        let gets = reqs
            .iter()
            .filter(|r| matches!(r, crate::mlp::BatchRequest::Get(_)))
            .count();
        self.metrics.items(OpKind::GetBatch, gets as u64);
        tids.clear();
        bounds.clear();
        bounds.push(0);
        sched.run(&self.source, reqs, out, tids, bounds, |_| self.root, false, false, &self.metrics);
        self.metrics.items(OpKind::ScanBatch, tids.len() as u64);
    }

    /// Remove `keys` as one batch, writing what [`remove`](Self::remove)
    /// would have returned for each key (in order) into `out`.
    ///
    /// The existence probes run as remove-probe descents through the
    /// out-of-order scheduler — overlapping their cache misses and warming
    /// the upper tree levels — then the structural removals apply
    /// sequentially for the keys that probed present. Results are
    /// identical to calling `remove` per key.
    ///
    /// # Panics
    /// Panics if `keys` and `out` differ in length.
    pub fn remove_batch<K: AsRef<[u8]>>(&mut self, keys: &[K], out: &mut [Option<u64>]) {
        assert_eq!(keys.len(), out.len(), "one output slot per key");
        let _t = self.metrics.timer(OpKind::RemoveBatch);
        self.metrics.items(OpKind::RemoveBatch, keys.len() as u64);
        let mut sched = crate::mlp::MlpScheduler::new();
        let (mut tids, mut bounds) = (Vec::new(), Vec::new());
        sched.run(
            &self.source,
            &crate::mlp::ProbeStream(keys),
            out,
            &mut tids,
            &mut bounds,
            |_| self.root,
            false,
            false,
            &self.metrics,
        );
        // Apply phase: only probed-present keys walk the structural remove.
        // A duplicate key probes present in every slot but the first apply
        // wins — exactly the answers sequential `remove` calls give.
        let mut key_buf = self.key_buf.take().unwrap_or_default();
        for (key, slot) in keys.iter().zip(out.iter_mut()) {
            if slot.is_some() {
                key_buf.set(key.as_ref());
                *slot = self.remove_padded(&key_buf);
            }
        }
        self.key_buf = Some(key_buf);
    }

    /// Run the adaptive in-flight-depth controller: sweep
    /// [`DEPTH_SWEEP`](crate::mlp::DEPTH_SWEEP) over a `get_batch_ooo` of
    /// `sample` and return a scheduler configured with the fastest depth
    /// (`HOT_MLP_DEPTH` overrides without sweeping). With the `metrics`
    /// feature, the lane-occupancy histogram accumulated during the sweep
    /// shows how full each candidate ran.
    pub fn tuned_scheduler<K: AsRef<[u8]>>(&self, sample: &[K]) -> crate::mlp::MlpScheduler {
        let mut out = vec![None; sample.len()];
        let depth = crate::mlp::tune_depth(|depth| {
            let mut sched = crate::mlp::MlpScheduler::with_depth(depth);
            let start = std::time::Instant::now();
            self.get_batch_ooo(sample, &mut out, &mut sched);
            start.elapsed()
        });
        crate::mlp::MlpScheduler::with_depth(depth)
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.get(key).is_some()
    }

    /// Insert `key → tid` (upsert). Returns the previous TID if the key was
    /// already present.
    ///
    /// # Panics
    /// Panics if `tid` exceeds [`MAX_TID`] or the key exceeds
    /// [`MAX_KEY_LEN`](hot_keys::MAX_KEY_LEN) bytes.
    pub fn insert(&mut self, key: &[u8], tid: u64) -> Option<u64> {
        assert!(tid <= MAX_TID, "tid exceeds MAX_TID");
        let _t = self.metrics.timer(OpKind::Insert);
        let mut key_buf = self.key_buf.take().unwrap_or_default();
        key_buf.set(key);
        let result = self.insert_padded(&key_buf, tid);
        self.key_buf = Some(key_buf);
        result
    }

    fn insert_padded(&mut self, key: &PaddedKey, tid: u64) -> Option<u64> {
        if self.root.is_null() {
            self.root = NodeRef::leaf(tid);
            self.len = 1;
            return None;
        }

        // Descend to the candidate leaf, recording the path.
        self.stack.clear();
        let mut cur = self.root;
        while cur.is_node() {
            let raw = cur.as_raw();
            let (idx, next) = raw.find_candidate(key.padded());
            self.stack.push((cur, idx));
            cur = next;
        }
        let existing_tid = cur.tid();
        let mut scratch = [0u8; KEY_SCRATCH_LEN];
        let mismatch = {
            let stored = self.source.load_key(existing_tid, &mut scratch);
            hot_bits::first_mismatch_bit(stored, key.bytes())
        };
        let Some(pos) = mismatch else {
            // Upsert: swap the leaf word in place.
            match self.stack.last() {
                None => self.root = NodeRef::leaf(tid),
                Some(&(node, idx)) => node.as_raw().store_value(idx, NodeRef::leaf(tid)),
            }
            return Some(existing_tid);
        };
        assert!(pos < u16::MAX as usize, "mismatch position fits u16");
        let key_bit = hot_bits::bit_at(key.bytes(), pos);

        if self.stack.is_empty() {
            // The root was a single leaf: grow into the first 2-entry node.
            let (zero, one) = if key_bit == 1 {
                (NodeRef::leaf(existing_tid).0, NodeRef::leaf(tid).0)
            } else {
                (NodeRef::leaf(tid).0, NodeRef::leaf(existing_tid).0)
            };
            self.root = Builder::pair(pos as u16, zero, one, 1).encode(&self.mem);
            self.len += 1;
            return None;
        }

        // Find the node the new BiNode belongs to. Listing 1 traverses until
        // the *mismatching BiNode*: the first path BiNode whose position
        // exceeds the mismatch position. Start from the deepest node whose
        // root BiNode position is <= the mismatch position (defaulting to
        // the root node, which may grow upward)…
        let mut level = self.stack.len() - 1;
        while level > 0 && self.stack[level].0.as_raw().min_position() as usize > pos {
            level -= 1;
        }
        let (mut target, mut idx) = self.stack[level];
        let mut raw = target.as_raw();
        let (mut lo, mut hi) = raw.affected_range(pos, idx);

        // …but when the affected "subtree" inside that node is a single
        // child-node entry, the mismatching BiNode is the child's root
        // BiNode: the new BiNode belongs to the *child*, which grows upward
        // (this is what keeps e.g. monotonic inserts filling one node to
        // fanout 32 instead of bloating its parent).
        if lo == hi && raw.value(lo).is_node() {
            level += 1;
            (target, idx) = self.stack[level];
            raw = target.as_raw();
            (lo, hi) = raw.affected_range(pos, idx);
            debug_assert_eq!((lo, hi), (0, raw.count() - 1));
        }
        let _ = target;

        if lo == hi && raw.value(lo).is_leaf() && raw.height() > 1 {
            // Leaf-node pushdown (Section 3.2): the mismatching BiNode is a
            // leaf entry of an inner node — replace the leaf by a fresh
            // height-1 node instead of growing this node. No copy-on-write:
            // a single slot store publishes the new node.
            let old_leaf = raw.value(lo);
            let (zero, one) = if key_bit == 1 {
                (old_leaf.0, NodeRef::leaf(tid).0)
            } else {
                (NodeRef::leaf(tid).0, old_leaf.0)
            };
            let pushed = Builder::pair(pos as u16, zero, one, 1).encode(&self.mem);
            raw.store_value(lo, pushed);
            self.len += 1;
            return None;
        }

        // Normal insert, fused fast path: when the physical layout is
        // stable the new node is built straight from the old one.
        if fast_path_enabled() {
            if let Some(new_node) =
                raw.insert_entry_cow(pos, lo, hi, key_bit, NodeRef::leaf(tid).0, &self.mem)
            {
                self.replace_slot(level, new_node);
                // SAFETY: the old node is unreachable after the slot swap
                // and the single-threaded trie has no concurrent readers.
                unsafe { raw.free(&self.mem) };
                self.len += 1;
                return None;
            }
        }

        // General path: decode into the reused scratch builder (malloc-free
        // apart from the new node allocation).
        let mut builder = self.scratch.take().unwrap_or_else(Builder::empty);
        builder.decode_into(raw);
        builder.insert_entry(pos as u16, idx, key_bit, NodeRef::leaf(tid).0);
        if !builder.overflowed() {
            let new_node = builder.encode(&self.mem);
            self.replace_slot(level, new_node);
            // SAFETY: the old node is unreachable after the slot swap and
            // the single-threaded trie has no concurrent readers.
            unsafe { raw.free(&self.mem) };
            self.scratch = Some(builder);
        } else {
            self.handle_overflow(level, builder);
        }
        self.len += 1;
        None
    }

    /// Resolve an overflowed builder at `level` per Listing 1: split at the
    /// root BiNode, then parent pull-up (recursing upward) or intermediate
    /// node creation, growing the tree only at the root.
    fn handle_overflow(&mut self, mut level: usize, mut builder: Builder) {
        loop {
            debug_assert!(builder.overflowed());
            let (pos, left, right) = builder.split();
            let left_ref = self.half_ref(left);
            let right_ref = self.half_ref(right);
            let old_node = self.stack[level].0.as_raw();

            if level == 0 {
                // Only the root grows the tree height.
                let h = crate::node::builder::true_height(&[left_ref.0, right_ref.0]);
                let new_root =
                    Builder::pair(pos, left_ref.0, right_ref.0, h).encode(&self.mem);
                self.root = new_root;
                // SAFETY: unreachable after the root swap; single-threaded.
                unsafe { old_node.free(&self.mem) };
                return;
            }

            let (parent, parent_idx) = self.stack[level - 1];
            let parent_raw = parent.as_raw();
            debug_assert!(parent_raw.height() > builder.height);
            if builder.height + 1 == parent_raw.height() {
                // Parent pull-up: move the split root BiNode into the parent.
                let mut pb = Builder::decode(parent_raw);
                pb.replace_entry_with_pair(parent_idx, pos, left_ref.0, right_ref.0);
                // SAFETY: replaced by the two halves; single-threaded.
                unsafe { old_node.free(&self.mem) };
                if pb.overflowed() {
                    builder = pb;
                    level -= 1;
                    continue;
                }
                let new_parent = pb.encode(&self.mem);
                self.replace_slot(level - 1, new_parent);
                // SAFETY: unreachable after the slot swap; single-threaded.
                unsafe { parent_raw.free(&self.mem) };
                return;
            }

            // Intermediate node creation: there is room between this node
            // and its parent, so an extra level here does not increase the
            // overall tree height.
            let h = crate::node::builder::true_height(&[left_ref.0, right_ref.0]);
            let inter = Builder::pair(pos, left_ref.0, right_ref.0, h).encode(&self.mem);
            parent_raw.store_value(parent_idx, inter);
            // SAFETY: unreachable after the slot swap; single-threaded.
            unsafe { old_node.free(&self.mem) };
            return;
        }
    }

    /// Encode a split half, collapsing singleton halves to their bare value.
    fn half_ref(&self, half: Builder) -> NodeRef {
        if half.len() == 1 {
            NodeRef(half.values[0])
        } else {
            half.encode(&self.mem)
        }
    }

    /// Point the slot holding the node at `level` (or the root) at `new`.
    fn replace_slot(&mut self, level: usize, new: NodeRef) {
        if level == 0 {
            self.root = new;
        } else {
            let (parent, idx) = self.stack[level - 1];
            parent.as_raw().store_value(idx, new);
        }
        self.stack[level].0 = new;
    }

    /// Build the whole trie bottom-up from sorted `(key, tid)` entries
    /// (DESIGN.md §11).
    ///
    /// Keys must be ascending, prefix-free byte strings of at most
    /// [`MAX_KEY_LEN`](hot_keys::MAX_KEY_LEN) bytes that resolve back from
    /// their TIDs through the trie's [`KeySource`] — the same contract as
    /// [`insert`](Self::insert), plus the sort order. Duplicate keys are
    /// collapsed deterministically (the last entry's TID wins); out-of-order
    /// input returns [`BulkLoadError::Unsorted`] without modifying the trie,
    /// and a non-empty trie returns [`BulkLoadError::NotEmpty`].
    ///
    /// Every compound node is computed from the adjacent-key mismatch
    /// positions and encoded exactly once, with no intermediate
    /// copy-on-write churn, so loading is several times faster than an
    /// insert loop and the resulting footprint is never larger. Returns the
    /// number of distinct keys loaded.
    pub fn bulk_load<K: AsRef<[u8]>>(
        &mut self,
        entries: &[(K, u64)],
    ) -> Result<usize, BulkLoadError> {
        self.bulk_load_parallel(entries, 1)
    }

    /// [`bulk_load`](Self::bulk_load) with the root fragment's independent
    /// subtries built on up to `threads` `std::thread` workers and grafted
    /// under a root node built from the partition fences. `threads <= 1` is
    /// the sequential build.
    pub fn bulk_load_parallel<K: AsRef<[u8]>>(
        &mut self,
        entries: &[(K, u64)],
        threads: usize,
    ) -> Result<usize, BulkLoadError> {
        if !self.root.is_null() {
            return Err(BulkLoadError::NotEmpty);
        }
        let _t = self.metrics.timer(OpKind::BulkLoad);
        let prepared = crate::bulk::prepare(entries)?;
        let n = prepared.tids.len();
        self.root = match n {
            0 => NodeRef::NULL,
            1 => NodeRef::leaf(prepared.tids[0]),
            _ => crate::bulk::build_parallel(&prepared.tids, &prepared.bounds, &self.mem, threads),
        };
        self.len = n;
        self.metrics.items(OpKind::BulkLoad, n as u64);
        Ok(n)
    }

    /// Remove `key`; returns its TID if it was present.
    ///
    /// Deletion mirrors insertion (Section 3.2): a normal delete modifies a
    /// single node; a node underflowing to one entry collapses into its
    /// parent slot (the counterpart of leaf-node pushdown / intermediate
    /// node creation).
    pub fn remove(&mut self, key: &[u8]) -> Option<u64> {
        let _t = self.metrics.timer(OpKind::Remove);
        let mut key_buf = self.key_buf.take().unwrap_or_default();
        key_buf.set(key);
        let result = self.remove_padded(&key_buf);
        self.key_buf = Some(key_buf);
        result
    }

    fn remove_padded(&mut self, key: &PaddedKey) -> Option<u64> {
        if self.root.is_null() {
            return None;
        }
        self.stack.clear();
        let mut cur = self.root;
        while cur.is_node() {
            let raw = cur.as_raw();
            let (idx, next) = raw.find_candidate(key.padded());
            self.stack.push((cur, idx));
            cur = next;
        }
        let tid = cur.tid();
        let mut scratch = [0u8; KEY_SCRATCH_LEN];
        {
            let stored = self.source.load_key(tid, &mut scratch);
            if hot_bits::first_mismatch_bit(stored, key.bytes()).is_some() {
                return None;
            }
        }

        let Some(&(node, idx)) = self.stack.last() else {
            // The root itself was the leaf.
            self.root = NodeRef::NULL;
            self.len = 0;
            return Some(tid);
        };
        let raw = node.as_raw();
        let level = self.stack.len() - 1;
        if raw.count() == 2 {
            // Underflow: the node collapses to its surviving entry.
            let survivor = raw.value(1 - idx);
            self.replace_slot(level, survivor);
            // SAFETY: unreachable after the slot swap; single-threaded.
            unsafe { raw.free(&self.mem) };
        } else {
            let mut builder = Builder::decode(raw);
            builder.remove_entry(idx);
            // Underflow merge (Section 3.2's deletion counterpart of
            // pushdown / intermediate node creation): a node shrunk to two
            // entries dissolves into its parent when there is room, pulling
            // its single BiNode up and shortening the path by one level.
            if builder.len() == 2 && level > 0 {
                let (parent, parent_idx) = self.stack[level - 1];
                let parent_raw = parent.as_raw();
                if parent_raw.count() < MAX_FANOUT {
                    let mut pb = Builder::decode(parent_raw);
                    pb.replace_entry_with_pair(
                        parent_idx,
                        builder.positions[0],
                        builder.values[0],
                        builder.values[1],
                    );
                    let new_parent = pb.encode(&self.mem);
                    self.replace_slot(level - 1, new_parent);
                    // SAFETY: both old nodes are unreachable after the slot
                    // swap; single-threaded.
                    unsafe {
                        raw.free(&self.mem);
                        parent_raw.free(&self.mem);
                    }
                    self.len -= 1;
                    return Some(tid);
                }
            }
            let new_node = builder.encode(&self.mem);
            self.replace_slot(level, new_node);
            // SAFETY: unreachable after the slot swap; single-threaded.
            unsafe { raw.free(&self.mem) };
        }
        self.len -= 1;
        Some(tid)
    }

    /// Iterator over all TIDs in ascending key order.
    pub fn iter(&self) -> Cursor<'_> {
        let mut frames = Vec::new();
        let mut pending = None;
        if self.root.is_node() {
            frames.push((self.root, 0));
        } else if self.root.is_leaf() {
            pending = Some(self.root.tid());
        }
        Cursor::new(frames, pending)
    }

    /// Iterator over TIDs whose keys are `>= key`, in ascending key order —
    /// the building block of workload E's short range scans.
    pub fn range_from(&self, key: &[u8]) -> Cursor<'_> {
        let padded = PaddedKey::from_key(key);
        let mut frames: Vec<(NodeRef, usize)> = Vec::new();
        let mut pending = None;

        if self.root.is_leaf() {
            let mut scratch = [0u8; KEY_SCRATCH_LEN];
            let stored = self.source.load_key(self.root.tid(), &mut scratch);
            if stored >= padded.bytes() {
                pending = Some(self.root.tid());
            }
            return Cursor::new(frames, pending);
        }
        if self.root.is_null() {
            return Cursor::new(frames, pending);
        }

        // Descend to the candidate leaf, recording the path.
        let mut path: Vec<(NodeRef, usize)> = Vec::new();
        let mut cur = self.root;
        while cur.is_node() {
            let raw = cur.as_raw();
            let (idx, next) = raw.find_candidate(padded.padded());
            path.push((cur, idx));
            cur = next;
        }
        let mut scratch = [0u8; KEY_SCRATCH_LEN];
        let mismatch = {
            let stored = self.source.load_key(cur.tid(), &mut scratch);
            hot_bits::first_mismatch_bit(stored, padded.bytes())
        };

        match mismatch {
            None => {
                // Exact hit: resume every ancestor after its taken entry and
                // yield the hit first.
                for &(node, idx) in &path {
                    frames.push((node, idx + 1));
                }
                pending = Some(cur.tid());
            }
            Some(pos) => {
                // Locate the node the mismatch splits (same rule as insert).
                let mut level = path.len() - 1;
                while level > 0 && path[level].0.as_raw().min_position() as usize > pos {
                    level -= 1;
                }
                for &(node, idx) in &path[..level] {
                    frames.push((node, idx + 1));
                }
                let (target, idx) = path[level];
                let (lo, hi) = target.as_raw().affected_range(pos, idx);
                let start = if hot_bits::bit_at(padded.bytes(), pos) == 0 {
                    lo // the search key precedes the affected subtree
                } else {
                    hi + 1 // the search key follows the affected subtree
                };
                frames.push((target, start));
            }
        }
        Cursor::new(frames, pending)
    }

    /// Collect up to `limit` TIDs with keys `>= key` (the paper's workload E
    /// operation: "range scans accessing up to 100 elements").
    ///
    /// Thin wrapper over [`scan_into`](Self::scan_into) — it allocates the
    /// result vector and per-call cursor state. Hot loops should hold a
    /// [`ScanCursor`](crate::ScanCursor) and call
    /// [`scan_with`](Self::scan_with) instead.
    pub fn scan(&self, key: &[u8], limit: usize) -> Vec<u64> {
        let mut out = Vec::new();
        self.scan_into(key, limit, &mut out);
        out
    }

    /// Like [`scan`](Self::scan), writing the TIDs into `out` (cleared
    /// first) instead of allocating a fresh vector.
    pub fn scan_into(&self, key: &[u8], limit: usize, out: &mut Vec<u64>) {
        let mut cursor = crate::scan::ScanCursor::new();
        self.scan_with(key, limit, out, &mut cursor);
    }

    /// Like [`scan`](Self::scan) with caller-owned buffers: the TIDs land in
    /// `out` (cleared first) and every piece of traversal state lives in
    /// `cursor`. Once the buffers have warmed up, repeated scans perform
    /// **zero** heap allocations, and the traversal prefetches one subtree
    /// ahead (see [`crate::scan`]).
    pub fn scan_with(
        &self,
        key: &[u8],
        limit: usize,
        out: &mut Vec<u64>,
        cursor: &mut crate::scan::ScanCursor,
    ) {
        let _t = self.metrics.timer(OpKind::Scan);
        out.clear();
        cursor.scan_root(self.root, &self.source, key, limit, out);
        self.metrics.items(OpKind::Scan, out.len() as u64);
    }

    /// Service many scan requests `(start key, limit)` in one call: request
    /// `i`'s TIDs land in `tids[bounds[i]..bounds[i + 1]]` (both vectors are
    /// cleared first; `bounds` gets `requests.len() + 1` prefix offsets).
    ///
    /// The seek descents run through the completion-driven out-of-order
    /// scheduler ([`crate::mlp`]) — up to N seeks in flight, lanes
    /// refilling on completion — unless `HOT_FORCE_ROUND_ROBIN` pins this
    /// entry point to the fixed round-robin cursor. Results are identical
    /// to calling [`scan`](Self::scan) per request on either path.
    pub fn scan_batch<K: AsRef<[u8]>>(
        &self,
        requests: &[(K, usize)],
        tids: &mut Vec<u64>,
        bounds: &mut Vec<usize>,
    ) {
        if crate::mlp::force_round_robin() {
            let mut cursor = crate::scan::ScanBatchCursor::new();
            self.scan_batch_with(requests, tids, bounds, &mut cursor);
        } else {
            let mut sched = crate::mlp::MlpScheduler::new();
            self.scan_batch_ooo(requests, tids, bounds, &mut sched);
        }
    }

    /// Like [`scan_batch`](Self::scan_batch) with a caller-provided
    /// [`ScanBatchCursor`](crate::ScanBatchCursor): the fixed
    /// **round-robin** pipeline, amortizing its lane state (and fixing the
    /// group size) across many batches; trailing partial batches are
    /// balanced across groups.
    pub fn scan_batch_with<K: AsRef<[u8]>>(
        &self,
        requests: &[(K, usize)],
        tids: &mut Vec<u64>,
        bounds: &mut Vec<usize>,
        cursor: &mut crate::scan::ScanBatchCursor,
    ) {
        let _t = self.metrics.timer(OpKind::ScanBatch);
        tids.clear();
        bounds.clear();
        bounds.push(0);
        for r in crate::batch::balanced_chunks(requests.len(), cursor.group()) {
            cursor.run_group(self.root, &self.source, &requests[r], tids, bounds);
        }
        self.metrics.items(OpKind::ScanBatch, tids.len() as u64);
    }

    /// Like [`scan_batch`](Self::scan_batch) with a caller-provided
    /// [`MlpScheduler`](crate::MlpScheduler): the completion-driven
    /// out-of-order pipeline, sharing its lane ring (and in-flight depth)
    /// across many batches.
    pub fn scan_batch_ooo<K: AsRef<[u8]>>(
        &self,
        requests: &[(K, usize)],
        tids: &mut Vec<u64>,
        bounds: &mut Vec<usize>,
        sched: &mut crate::mlp::MlpScheduler,
    ) {
        let _t = self.metrics.timer(OpKind::ScanBatch);
        tids.clear();
        bounds.clear();
        bounds.push(0);
        let mut out: [Option<u64>; 0] = [];
        sched.run(
            &self.source,
            &crate::mlp::ScanStream(requests),
            &mut out,
            tids,
            bounds,
            |_| self.root,
            false,
            false,
            &self.metrics,
        );
        self.metrics.items(OpKind::ScanBatch, tids.len() as u64);
    }

    /// Iterator over TIDs with `start <= key < end`, in ascending key order
    /// (each yielded TID costs one key resolution for the bound check).
    pub fn range<'a>(
        &'a self,
        start: &[u8],
        end: &'a [u8],
    ) -> impl Iterator<Item = u64> + 'a {
        self.range_from(start).take_while(move |&tid| {
            let mut scratch = [0u8; KEY_SCRATCH_LEN];
            self.source.load_key(tid, &mut scratch) < end
        })
    }

    /// Index memory footprint (nodes only; leaf storage is the key source's).
    pub fn memory_stats(&self) -> MemoryStats {
        MemoryStats {
            node_bytes: self.mem.bytes(),
            node_count: self.mem.nodes(),
            aux_bytes: 0,
            key_count: self.len,
            capacity_bytes: 0,
        }
    }

    /// Leaf-depth histogram (depth = compound nodes on the root-to-leaf
    /// path), as reported in Figure 11.
    pub fn depth_stats(&self) -> DepthStats {
        let mut stats = DepthStats::new();
        fn walk(r: NodeRef, depth: usize, stats: &mut DepthStats) {
            if r.is_leaf() {
                stats.record(depth);
            } else if r.is_node() {
                let raw = r.as_raw();
                for i in 0..raw.count() {
                    walk(raw.value(i), depth + 1, stats);
                }
            }
        }
        walk(self.root, 0, &mut stats);
        stats
    }

    /// Whole-trie structural invariant check (see [`crate::invariants`]):
    /// fanout bounds, per-node linearization well-formedness, SIMD-search
    /// self-consistency, strict height decrease, in-order key ordering,
    /// leaf count, and full re-lookup of every stored key. Returns summary
    /// statistics or a description of the first violation.
    pub fn try_check_invariants(&self) -> Result<crate::InvariantReport, String> {
        // Re-lookups go through the uninstrumented internal path so the
        // walk never inflates the `get` operation counters.
        crate::invariants::check_tree(self.root, &self.source, self.len, |k| {
            self.get_padded(&PaddedKey::from_key(k))
        })
    }

    /// Point-in-time metrics snapshot (DESIGN.md §13): merged operation
    /// counters and latency histograms, plus structural gauges (layout
    /// census, leaf-depth distribution, fill factor) sampled from a full
    /// invariant walk. The operation counters are captured *before* the
    /// structural walk, and the walk re-looks keys up through the
    /// uninstrumented internal path, so sampling never perturbs the
    /// operation stats. Only available with the `metrics` feature.
    #[cfg(feature = "metrics")]
    pub fn metrics_snapshot(&self) -> hot_metrics::MetricsSnapshot {
        let mut snap = self.metrics.0.ops_snapshot();
        if let Ok(report) = self.try_check_invariants() {
            snap.structure = Some(crate::metrics::structural_snapshot(&report));
        }
        snap
    }

    /// The counter/histogram half of [`Self::metrics_snapshot`] without
    /// the structural walk — cheap enough to call at workload-phase
    /// boundaries (`structure` is `None`). Only with the `metrics`
    /// feature.
    #[cfg(feature = "metrics")]
    pub fn metrics_ops_snapshot(&self) -> hot_metrics::MetricsSnapshot {
        self.metrics.0.ops_snapshot()
    }

    /// Panicking wrapper over [`Self::try_check_invariants`]. Test-support.
    pub fn check_invariants(&self) -> crate::InvariantReport {
        match self.try_check_invariants() {
            Ok(report) => report,
            Err(msg) => panic!("HotTrie invariant violation: {msg}"),
        }
    }

    /// Verify every structural invariant; panics on violation. Test-support.
    ///
    /// Delegates the structural walk to [`Self::check_invariants`] and
    /// additionally checks that the public iterator visits exactly `len`
    /// leaves (cursor coverage the raw walk doesn't exercise).
    pub fn validate(&self) {
        self.check_invariants();
        assert_eq!(
            self.iter().count(),
            self.len,
            "len matches iterated leaf count"
        );
    }

    /// Count of live nodes per physical layout (indexed by `NodeTag as
    /// usize`): the observable footprint of the paper's two adaptivity
    /// dimensions. Test and diagnostics support.
    pub fn layout_census(&self) -> [usize; 9] {
        let mut census = [0usize; 9];
        fn walk(r: NodeRef, census: &mut [usize; 9]) {
            if r.is_node() {
                let raw = r.as_raw();
                census[raw.tag as usize] += 1;
                for i in 0..raw.count() {
                    walk(raw.value(i), census);
                }
            }
        }
        walk(self.root, &mut census);
        census
    }

    /// A structural fingerprint: equal digests mean structurally identical
    /// trees (layouts, positions, sparse keys, heights, leaf order). Used to
    /// test the paper's determinism conjecture (Section 3.3): "any given set
    /// of keys results in the same structure, regardless of the insertion
    /// order".
    pub fn structure_digest(&self) -> u64 {
        fn mix(h: u64, v: u64) -> u64 {
            (h ^ v).wrapping_mul(0x100_0000_01b3).rotate_left(17)
        }
        fn walk(r: NodeRef, mut h: u64) -> u64 {
            if r.is_leaf() {
                return mix(h, r.tid() ^ 0xAAAA_AAAA);
            }
            if r.is_null() {
                return mix(h, 0x5555);
            }
            let raw = r.as_raw();
            h = mix(h, raw.tag as u64);
            h = mix(h, raw.height() as u64);
            for p in raw.positions() {
                h = mix(h, p as u64);
            }
            for i in 0..raw.count() {
                h = mix(h, raw.sparse_key(i) as u64);
                h = walk(raw.value(i), h);
            }
            h
        }
        walk(self.root, 0xcbf2_9ce4_8422_2325)
    }
}

impl<S> Drop for HotTrie<S> {
    fn drop(&mut self) {
        fn free_subtree(r: NodeRef, mem: &MemCounter) {
            if r.is_node() {
                let raw = r.as_raw();
                for i in 0..raw.count() {
                    free_subtree(raw.value(i), mem);
                }
                // SAFETY: dropping the trie, sole owner of all nodes.
                unsafe { raw.free(mem) };
            }
        }
        free_subtree(self.root, &self.mem);
        debug_assert_eq!(self.mem.bytes(), 0, "all node memory released");
    }
}

/// Ordered iterator over leaf TIDs.
pub struct Cursor<'a> {
    frames: Vec<(NodeRef, usize)>,
    pending: Option<u64>,
    // Cursors borrow the tree they iterate.
    _marker: std::marker::PhantomData<&'a ()>,
}

impl<'a> Cursor<'a> {
    fn new(frames: Vec<(NodeRef, usize)>, pending: Option<u64>) -> Cursor<'a> {
        Cursor {
            frames,
            pending,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<'a> Iterator for Cursor<'a> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if let Some(tid) = self.pending.take() {
            return Some(tid);
        }
        loop {
            let &(node, idx) = self.frames.last()?;
            let raw = node.as_raw();
            if idx >= raw.count() {
                self.frames.pop();
                continue;
            }
            self.frames.last_mut().expect("non-empty").1 += 1;
            let value = raw.value(idx);
            if value.is_leaf() {
                return Some(value.tid());
            }
            self.frames.push((value, 0));
        }
    }
}
