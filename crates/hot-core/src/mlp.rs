//! Completion-driven out-of-order MLP scheduler (DESIGN.md §14).
//!
//! epoch-exempt: shared descent core. The concurrent wrappers in `sync.rs`
//! pin the epoch *before* loading roots and calling in here; the
//! single-threaded `HotTrie` needs no pin. Protection is the caller's
//! contract — these routines only borrow already-protected nodes.
//!
//! The round-robin cursors in [`crate::batch`] and [`crate::scan`] overlap
//! the cache misses of G independent descents, but they are *synchronous*:
//! every lane advances exactly once per round, so one slow lane (a deep URL
//! descent, a re-descent on the concurrent index) stalls the whole group,
//! and a group only refills once **all** G descents finished. The Cuckoo
//! Trie observation applies: the memory system rewards keeping N misses in
//! flight *continuously*, not in lock-step convoys.
//!
//! [`MlpScheduler`] fixes both pathologies. It owns a ring of up to N lane
//! state machines — point lookups, range-scan seeks and remove probes run
//! as one [`DescentKind`] through the same ring — and sweeps the ring,
//! advancing each in-flight descent by one node per visit with the next
//! hop prefetched. The moment a lane *completes* (its result is written,
//! its scan drained), it is refilled from the pending-request queue in
//! place, without waiting for the rest of the ring: in-flight depth stays
//! at N until the queue runs dry, regardless of per-key depth variance,
//! and mixed get/scan/probe streams interleave in one pipeline.
//!
//! Completion order is data-dependent; *results are not*. Lookup results
//! land at their request's slot, and scan drains are staged in a scratch
//! vector and emitted in request order afterwards, so every entry point is
//! byte-identical to the scalar and round-robin paths (the
//! `ooo_differential` test asserts checksums across all three).
//!
//! The in-flight depth N defaults to [`DEFAULT_DEPTH`], can be forced with
//! `HOT_MLP_DEPTH`, and can be chosen by the adaptive controller
//! ([`tune_depth`]) which sweeps [`DEPTH_SWEEP`] at startup; with the
//! `metrics` feature the lane-occupancy histogram shows whether the chosen
//! depth is actually sustained (mean occupancy ≈ N until the tail).

use crate::metrics::{Metrics, SchedCounter};
use crate::node::NodeRef;
use crate::scan::{drain_frames, position_frames};
use hot_keys::{KeySource, PaddedKey, KEY_SCRATCH_LEN};
use std::sync::OnceLock;

/// Default in-flight depth (compile-time default of the adaptive
/// controller). Deeper than the round-robin G = 8: completion-driven
/// refill keeps all lanes useful, so the limit is the line-fill-buffer
/// budget plus the L2 MLP the prefetcher adds, not the convoy barrier.
pub const DEFAULT_DEPTH: usize = 16;

/// Largest supported in-flight depth (matches
/// `hot_metrics::MAX_OCCUPANCY`, so the occupancy histogram resolves every
/// legal depth exactly).
pub const MAX_DEPTH: usize = 64;

/// Depths the adaptive controller sweeps at startup.
pub const DEPTH_SWEEP: [usize; 5] = [4, 8, 16, 32, 64];

/// Cache lines prefetched per upcoming node (Section 4.5: header + partial
/// keys + values) — identical to the round-robin paths.
const PREFETCH_LINES: usize = 4;

/// Cache lines prefetched per pending request's key bytes ahead of a
/// refill (two lines cover a ≤ 64-byte key at any alignment; longer keys
/// still get their critical first lines started).
const KEY_PREFETCH_LINES: usize = 2;

/// Re-descents allowed per request after torn-slot (null) observations on
/// the concurrent index before the descent completes as a miss, which is
/// the same "not present" answer the scalar reader gives.
const MAX_REDESCENTS: u32 = 3;

/// What kind of descent occupies a lane (the `Descent` enum of DESIGN.md
/// §14, flattened into per-lane state).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DescentKind {
    /// Point lookup: the verified TID (or `None`) goes to `out[slot]`.
    Lookup,
    /// Range-scan seek: the recorded path seeds an in-order drain of up to
    /// `limit` TIDs.
    ScanSeek,
    /// Existence probe ahead of a removal: same verification as a lookup,
    /// and the descent warms the path the subsequent structural removal
    /// re-walks.
    RemoveProbe,
}

/// Lane stage within a descent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    /// Lazy-routed lane staged without a root: the key bytes were copied
    /// into the lane at stage time (pure data movement the out-of-order
    /// core overlaps freely), and the per-key root resolution — which
    /// *branches* on those bytes and would stall the whole ring if it ran
    /// against a cold line — happens on the lane's first sweep visit,
    /// when the copy is L1-resident.
    Route,
    /// Chasing compound nodes root-to-leaf.
    Descend,
    /// Terminal word reached and the tuple's key record prefetched last
    /// visit; the full-key verification (or scan positioning + drain) runs
    /// this visit, with the other lanes' misses having overlapped it.
    Finish,
}

/// One request as the scheduler consumes it: key bytes, descent kind, and
/// the scan limit (ignored for lookups/probes).
///
/// Implemented over the caller's natural containers so no per-call request
/// vector is materialized.
pub(crate) trait RequestStream {
    /// Number of requests.
    fn len(&self) -> usize;
    /// The `i`-th request.
    fn fetch(&self, i: usize) -> (&[u8], DescentKind, usize);
}

/// `&[K]` as a stream of lookups.
pub(crate) struct LookupStream<'a, K>(pub &'a [K]);

impl<K: AsRef<[u8]>> RequestStream for LookupStream<'_, K> {
    fn len(&self) -> usize {
        self.0.len()
    }
    fn fetch(&self, i: usize) -> (&[u8], DescentKind, usize) {
        (self.0[i].as_ref(), DescentKind::Lookup, 0)
    }
}

/// `&[K]` as a stream of remove probes.
pub(crate) struct ProbeStream<'a, K>(pub &'a [K]);

impl<K: AsRef<[u8]>> RequestStream for ProbeStream<'_, K> {
    fn len(&self) -> usize {
        self.0.len()
    }
    fn fetch(&self, i: usize) -> (&[u8], DescentKind, usize) {
        (self.0[i].as_ref(), DescentKind::RemoveProbe, 0)
    }
}

/// `&[(K, usize)]` as a stream of scan seeks.
pub(crate) struct ScanStream<'a, K>(pub &'a [(K, usize)]);

impl<K: AsRef<[u8]>> RequestStream for ScanStream<'_, K> {
    fn len(&self) -> usize {
        self.0.len()
    }
    fn fetch(&self, i: usize) -> (&[u8], DescentKind, usize) {
        let (key, limit) = &self.0[i];
        (key.as_ref(), DescentKind::ScanSeek, *limit)
    }
}

/// One request of a mixed batched stream (gets and scans interleaved in
/// stream order), the shape YCSB's coalesced operation batches take.
#[derive(Debug, Clone, Copy)]
pub enum BatchRequest<'a> {
    /// Point lookup; its result lands at this request's slot in `out`.
    Get(&'a [u8]),
    /// Range scan `(start key, limit)`; its TIDs land in the flat TID
    /// vector with one bounds entry per scan request, in stream order.
    Scan(&'a [u8], usize),
}

impl RequestStream for [BatchRequest<'_>] {
    fn len(&self) -> usize {
        <[BatchRequest<'_>]>::len(self)
    }
    fn fetch(&self, i: usize) -> (&[u8], DescentKind, usize) {
        match self[i] {
            BatchRequest::Get(key) => (key, DescentKind::Lookup, 0),
            BatchRequest::Scan(key, limit) => (key, DescentKind::ScanSeek, limit),
        }
    }
}

/// One in-flight descent.
struct Lane {
    /// Padded search key.
    key: PaddedKey,
    /// Current word: node while descending, leaf/null once terminal.
    cur: NodeRef,
    /// Descent kind.
    kind: DescentKind,
    /// Stage within the descent.
    stage: Stage,
    /// Request index this lane is servicing.
    req: usize,
    /// Scan limit (scan-seek lanes only).
    limit: usize,
    /// Re-descents consumed (torn-slot recovery on the concurrent index).
    attempts: u32,
    /// Recorded descent path (scan-seek lanes only).
    path: Vec<(NodeRef, usize)>,
    /// In-order frame stack for the drain (scan-seek lanes only; reused).
    frames: Vec<(NodeRef, usize)>,
}

impl Lane {
    fn new() -> Lane {
        Lane {
            key: PaddedKey::new(),
            cur: NodeRef::NULL,
            kind: DescentKind::Lookup,
            stage: Stage::Descend,
            req: 0,
            limit: 0,
            attempts: 0,
            path: Vec::new(),
            frames: Vec::new(),
        }
    }
}

static FORCE_ROUND_ROBIN: OnceLock<bool> = OnceLock::new();

/// Whether `HOT_FORCE_ROUND_ROBIN` (any non-empty value) pins the
/// convenience batch entry points to the fixed round-robin cursors —
/// the comparison baseline for the out-of-order scheduler. Cached
/// process-wide like `HOT_FORCE_SCALAR`.
pub fn force_round_robin() -> bool {
    *FORCE_ROUND_ROBIN.get_or_init(|| {
        std::env::var_os("HOT_FORCE_ROUND_ROBIN").is_some_and(|v| !v.is_empty())
    })
}

static ENV_DEPTH: OnceLock<Option<usize>> = OnceLock::new();

/// `HOT_MLP_DEPTH` override (clamped to `1..=MAX_DEPTH`), cached
/// process-wide.
fn env_depth() -> Option<usize> {
    *ENV_DEPTH.get_or_init(|| {
        std::env::var("HOT_MLP_DEPTH")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map(|n| n.clamp(1, MAX_DEPTH))
    })
}

/// Adaptive in-flight-depth controller: run `measure(depth)` over the
/// candidate depths of [`DEPTH_SWEEP`] (each measured twice, best kept)
/// and return the fastest. An explicit `HOT_MLP_DEPTH` wins without
/// sweeping. With the `metrics` feature, the lane-occupancy histogram
/// recorded during the sweep shows how full each candidate actually ran.
pub fn tune_depth<F>(mut measure: F) -> usize
where
    F: FnMut(usize) -> std::time::Duration,
{
    if let Some(depth) = env_depth() {
        return depth;
    }
    let mut best = (std::time::Duration::MAX, DEFAULT_DEPTH);
    for &depth in &DEPTH_SWEEP {
        let t = measure(depth).min(measure(depth));
        if t < best.0 {
            best = (t, depth);
        }
    }
    best.1
}

/// Reusable completion-driven out-of-order descent scheduler.
///
/// One scheduler owns N lane state machines plus the scan staging buffers;
/// reusing it across batches amortizes every allocation, exactly like the
/// round-robin cursors. The convenience entry points
/// ([`get_batch`](crate::HotTrie::get_batch) and friends) create one per
/// call.
pub struct MlpScheduler {
    depth: usize,
    lanes: Vec<Lane>,
    /// Ring of occupied lane indices, compacted in place per sweep.
    active: Vec<usize>,
    /// Scan drains staged in completion order; emitted in request order.
    scratch_tids: Vec<u64>,
    /// Per-request `(begin, end)` span into `scratch_tids` (scan requests
    /// only; lookups leave their slot untouched).
    spans: Vec<(usize, usize)>,
}

impl Default for MlpScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl MlpScheduler {
    /// Scheduler with the environment-selected depth (`HOT_MLP_DEPTH`,
    /// else [`DEFAULT_DEPTH`]).
    pub fn new() -> Self {
        Self::with_depth(env_depth().unwrap_or(DEFAULT_DEPTH))
    }

    /// Scheduler keeping up to `depth` descents in flight
    /// (`1..=`[`MAX_DEPTH`]).
    ///
    /// Lane buffers are allocated lazily on first use.
    pub fn with_depth(depth: usize) -> Self {
        assert!(
            (1..=MAX_DEPTH).contains(&depth),
            "in-flight depth must be in 1..={MAX_DEPTH}"
        );
        MlpScheduler {
            depth,
            lanes: Vec::new(),
            active: Vec::new(),
            scratch_tids: Vec::new(),
            spans: Vec::new(),
        }
    }

    /// The configured in-flight depth N.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Change the in-flight depth (the adaptive controller uses this to
    /// apply a tuned value to an existing scheduler).
    pub fn set_depth(&mut self, depth: usize) {
        assert!(
            (1..=MAX_DEPTH).contains(&depth),
            "in-flight depth must be in 1..={MAX_DEPTH}"
        );
        self.depth = depth;
    }

    /// Drain `reqs` through the ring.
    ///
    /// * Lookup/probe results are written to `out[i]` for request `i`
    ///   (`out` must have one slot per request whenever the stream
    ///   contains lookups or probes).
    /// * Scan results are appended flat to `tids`, with one end offset
    ///   pushed to `bounds` per scan request in request order (the caller
    ///   seeds `bounds` with the starting offset, matching `scan_batch`).
    /// * `reload_root` is called with the request's key bytes once per
    ///   lane load and once per re-descent — the per-refill root reload
    ///   that keeps a long batch on the concurrent index from pinning
    ///   one stale root. The key lets a sharded caller pick the root
    ///   per request, folding shard routing into the descent pipeline
    ///   instead of a separate serial-miss classify pass.
    /// * `lazy_route` defers each `reload_root` to the lane's first
    ///   sweep visit (the [`Stage::Route`] hop), one visit after the
    ///   key bytes were copied into the lane — callers whose
    ///   `reload_root` actually branches on the key (the sharded
    ///   router) set it so classification reads the L1-resident lane
    ///   copy instead of stalling the ring on a cold miss; callers with
    ///   a key-independent root keep the eager staging (no extra hop).
    /// * `redescend` enables torn-slot recovery (concurrent index only;
    ///   the single-threaded trie never publishes null slots).
    #[allow(clippy::too_many_arguments)] // internal plumbing shared by four adapters
    pub(crate) fn run<S, Q, F>(
        &mut self,
        source: &S,
        reqs: &Q,
        out: &mut [Option<u64>],
        tids: &mut Vec<u64>,
        bounds: &mut Vec<usize>,
        mut reload_root: F,
        lazy_route: bool,
        redescend: bool,
        metrics: &Metrics,
    ) where
        S: KeySource,
        Q: RequestStream + ?Sized,
        F: FnMut(&[u8]) -> NodeRef,
    {
        let n = reqs.len();
        if n == 0 {
            return;
        }
        self.scratch_tids.clear();
        self.spans.clear();
        self.spans.resize(n, (0, 0));
        while self.lanes.len() < self.depth.min(n) {
            self.lanes.push(Lane::new());
        }
        self.active.clear();
        // Split borrows up front so the sweep loop can hold a lane `&mut`
        // while touching the active ring and the scan staging buffers.
        let MlpScheduler {
            depth,
            lanes,
            active,
            scratch_tids,
            spans,
        } = self;
        let depth = *depth;

        // Fill: load the first min(N, n) requests, one per lane. The
        // request keys live at stream-dependent addresses (for a random
        // probe stream, random lines of the key arena), so their reads are
        // misses too — start them all before the copies so they overlap
        // exactly like the round-robin load phase's back-to-back copies.
        for i in 0..depth.min(n) {
            let (key, _, _) = reqs.fetch(i);
            hot_bits::prefetch_node(key.as_ptr(), KEY_PREFETCH_LINES);
        }
        let mut next_req = 0;
        let mut scans = 0usize;
        while next_req < n && active.len() < depth {
            let lane = active.len();
            let root = if lazy_route {
                NodeRef::NULL
            } else {
                reload_root(reqs.fetch(next_req).0)
            };
            scans += usize::from(stage_request(
                &mut lanes[lane],
                next_req,
                reqs,
                root,
                lazy_route,
                source,
                metrics,
            ));
            active.push(lane);
            next_req += 1;
        }

        // Sweep: advance every occupied lane one step per round. A lane
        // that completes refills from the pending queue *immediately* —
        // the ring never idles a lane while requests remain, so in-flight
        // depth stays at N until the tail.
        //
        // The Descend hop is inlined here rather than behind a per-lane
        // function call: at trie heights of ~6–10 the call overhead alone
        // costs double-digit percent against the round-robin cursor, whose
        // sweep loop this mirrors hop for hop.
        let mut live = active.len();
        // Lanes currently in the Finish stage: lane `finishing` of them
        // will complete before the pending request at `next_req +
        // finishing` is staged, so that is the request whose key bytes a
        // newly terminal lane prefetches. Without this, every refill's key
        // copy is a *solo* arena miss in the middle of a sweep — the one
        // stall the round-robin cursor never takes (its load phase issues
        // all G key reads back to back).
        let mut finishing = 0usize;
        while live > 0 {
            metrics.occupancy(live);
            let mut kept = 0;
            for slot in 0..live {
                let lane = active[slot];
                let l = &mut lanes[lane];
                if l.stage == Stage::Route {
                    // Deferred root resolution: the key copy staged last
                    // visit is L1-resident now, so a classifying
                    // `reload_root` branches over warm bytes.
                    let root = reload_root(l.key.bytes());
                    l.cur = root;
                    if root.is_node() {
                        l.stage = Stage::Descend;
                        hot_bits::prefetch_node(root.as_raw().base, PREFETCH_LINES);
                    } else {
                        if root.is_leaf() {
                            source.prefetch_key(root.tid());
                        }
                        finishing += 1;
                        l.stage = Stage::Finish;
                    }
                    active[kept] = lane;
                    kept += 1;
                    continue;
                }
                if l.stage == Stage::Descend {
                    let raw = l.cur.as_raw();
                    let (idx, next) = raw.find_candidate(l.key.padded());
                    if l.kind == DescentKind::ScanSeek {
                        l.path.push((l.cur, idx));
                    }
                    l.cur = next;
                    if next.is_node() {
                        // The next hop's memory starts loading now; it is
                        // needed only after every other live lane has
                        // moved.
                        hot_bits::prefetch_node(next.as_raw().base, PREFETCH_LINES);
                    } else if next.is_leaf() {
                        // Terminal: start the tuple key record's miss and
                        // run the verification (or drain) on the next
                        // visit, and start the miss on the key bytes of
                        // the pending request this completion will refill
                        // with.
                        source.prefetch_key(next.tid());
                        let peek = next_req + finishing;
                        if peek < n {
                            let (key, _, _) = reqs.fetch(peek);
                            hot_bits::prefetch_node(key.as_ptr(), KEY_PREFETCH_LINES);
                        }
                        finishing += 1;
                        l.stage = Stage::Finish;
                    } else {
                        // Null mid-descent: only the concurrent index
                        // publishes these (a slot observed mid-update).
                        // Re-descend from a fresh root a bounded number of
                        // times, then fall through to the same "not
                        // present" answer the scalar reader gives.
                        if redescend && l.attempts < MAX_REDESCENTS {
                            l.attempts += 1;
                            l.path.clear();
                            let root = reload_root(l.key.bytes());
                            l.cur = root;
                            metrics.sched(SchedCounter::Redescent);
                            if root.is_node() {
                                hot_bits::prefetch_node(root.as_raw().base, PREFETCH_LINES);
                            } else {
                                if root.is_leaf() {
                                    source.prefetch_key(root.tid());
                                }
                                finishing += 1;
                                l.stage = Stage::Finish;
                            }
                        } else {
                            finishing += 1;
                            l.stage = Stage::Finish;
                        }
                    }
                    active[kept] = lane;
                    kept += 1;
                    continue;
                }
                // Finish stage: the lane's tuple line has had a full sweep
                // to arrive; complete the request and refill in place.
                finish_lane(l, source, out, scratch_tids, spans, metrics);
                // Saturating: lanes staged straight to Finish (single-leaf
                // or empty root) never incremented the counter.
                finishing = finishing.saturating_sub(1);
                if next_req < n {
                    // Completion-driven refill.
                    let root = if lazy_route {
                        NodeRef::NULL
                    } else {
                        reload_root(reqs.fetch(next_req).0)
                    };
                    scans += usize::from(stage_request(
                        l,
                        next_req,
                        reqs,
                        root,
                        lazy_route,
                        source,
                        metrics,
                    ));
                    next_req += 1;
                    active[kept] = lane;
                    kept += 1;
                }
            }
            live = kept;
        }

        // Emit scan results in request order: completion order shuffled
        // the staging vector, the spans restore the request view. Pure
        // lookup/probe windows (`scans == 0`) skip the re-fetch pass.
        if scans > 0 {
            for (i, &(begin, end)) in spans.iter().enumerate().take(n) {
                let (_, kind, _) = reqs.fetch(i);
                if kind == DescentKind::ScanSeek {
                    tids.extend_from_slice(&scratch_tids[begin..end]);
                    bounds.push(tids.len());
                }
            }
        }
    }
}

/// Stage request `req` into lane `l`: set the key, point the lane at a
/// freshly loaded root (or defer the root to the first sweep visit when
/// `lazy` — the key copy just made is what a classifying `reload_root`
/// reads warm), and start the root's prefetch. Returns `true` when the
/// staged request is a scan seek (the caller skips the request-order
/// emit pass for scan-free windows).
fn stage_request<S, Q>(
    l: &mut Lane,
    req: usize,
    reqs: &Q,
    root: NodeRef,
    lazy: bool,
    source: &S,
    metrics: &Metrics,
) -> bool
where
    S: KeySource,
    Q: RequestStream + ?Sized,
{
    let (key, kind, limit) = reqs.fetch(req);
    l.key.set(key);
    l.cur = root;
    l.kind = kind;
    l.req = req;
    l.limit = limit;
    l.attempts = 0;
    l.path.clear();
    metrics.sched(SchedCounter::Refill);
    if lazy {
        l.stage = Stage::Route;
    } else if root.is_node() {
        l.stage = Stage::Descend;
        hot_bits::prefetch_node(root.as_raw().base, PREFETCH_LINES);
    } else {
        // Single-leaf or empty tree: the descent is already terminal;
        // overlap the tuple load (if any) with the other lanes and finish
        // on the next visit.
        l.stage = Stage::Finish;
        if root.is_leaf() {
            source.prefetch_key(root.tid());
        }
    }
    kind == DescentKind::ScanSeek
}

/// Complete lane `l`'s request: verify a lookup/probe TID into `out`, or
/// position + drain a scan seek into the staging vector. Cold relative to
/// the per-hop sweep — one call per *request*, not per node.
fn finish_lane<S>(
    l: &mut Lane,
    source: &S,
    out: &mut [Option<u64>],
    scratch_tids: &mut Vec<u64>,
    spans: &mut [(usize, usize)],
    metrics: &Metrics,
) where
    S: KeySource,
{
    let req = l.req;
    match l.kind {
        DescentKind::Lookup | DescentKind::RemoveProbe => {
            out[req] = if l.cur.is_leaf() {
                let tid = l.cur.tid();
                let mut scratch = [0u8; KEY_SCRATCH_LEN];
                let stored = source.load_key(tid, &mut scratch);
                hot_bits::first_mismatch_bit(stored, l.key.bytes())
                    .is_none()
                    .then_some(tid)
            } else {
                None
            };
            metrics.sched(match l.kind {
                DescentKind::Lookup => SchedCounter::LookupDone,
                _ => SchedCounter::ProbeDone,
            });
        }
        DescentKind::ScanSeek => {
            let begin = scratch_tids.len();
            if l.limit > 0 {
                if l.path.is_empty() {
                    // Root was a leaf or null when loaded — same cases
                    // `scan_root` handles before seeking.
                    if l.cur.is_leaf() {
                        let mut scratch = [0u8; KEY_SCRATCH_LEN];
                        if source.load_key(l.cur.tid(), &mut scratch) >= l.key.bytes() {
                            scratch_tids.push(l.cur.tid());
                        }
                    }
                } else {
                    let limit = begin.saturating_add(l.limit);
                    position_frames(source, &l.key, &l.path, l.cur, &mut l.frames, scratch_tids);
                    drain_frames(&mut l.frames, limit, scratch_tids);
                }
            }
            spans[req] = (begin, scratch_tids.len());
            metrics.sched(SchedCounter::ScanSeekDone);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HotTrie;
    use hot_keys::{encode_u64, EmbeddedKeySource};

    fn build(n: u64) -> HotTrie<EmbeddedKeySource> {
        let mut t = HotTrie::new(EmbeddedKeySource);
        for v in 0..n {
            t.insert(&encode_u64(v * 3), v * 3);
        }
        t
    }

    #[test]
    fn ooo_matches_scalar_on_hits_and_misses() {
        let t = build(10_000);
        let keys: Vec<[u8; 8]> = (0..1_000).map(encode_u64).collect();
        for depth in [1, 2, 5, 16, 64] {
            let mut sched = MlpScheduler::with_depth(depth);
            let mut out = vec![None; keys.len()];
            t.get_batch_ooo(&keys, &mut out, &mut sched);
            for (k, got) in keys.iter().zip(&out) {
                assert_eq!(*got, t.get(k), "depth {depth}");
            }
        }
    }

    #[test]
    fn ooo_scan_matches_scalar() {
        let t = build(4_000);
        let requests: Vec<([u8; 8], usize)> = (0..64u64)
            .map(|i| (encode_u64(i * 191), (i % 13) as usize))
            .collect();
        let mut sched = MlpScheduler::with_depth(7);
        let (mut tids, mut bounds) = (Vec::new(), Vec::new());
        t.scan_batch_ooo(&requests, &mut tids, &mut bounds, &mut sched);
        assert_eq!(bounds.len(), requests.len() + 1);
        for (i, (key, limit)) in requests.iter().enumerate() {
            assert_eq!(
                &tids[bounds[i]..bounds[i + 1]],
                t.scan(key, *limit).as_slice(),
                "request {i}"
            );
        }
    }

    #[test]
    fn empty_tree_single_leaf_and_empty_batch() {
        let t: HotTrie<EmbeddedKeySource> = HotTrie::new(EmbeddedKeySource);
        let mut sched = MlpScheduler::new();
        let empty: [[u8; 8]; 0] = [];
        let mut out: Vec<Option<u64>> = vec![];
        t.get_batch_ooo(&empty, &mut out, &mut sched);

        let keys = [encode_u64(1), encode_u64(2)];
        let mut out = [Some(9), Some(9)];
        t.get_batch_ooo(&keys, &mut out, &mut sched);
        assert_eq!(out, [None, None]);

        let mut t = HotTrie::new(EmbeddedKeySource);
        t.insert(&encode_u64(7), 7);
        let mut out = [None, None];
        t.get_batch_ooo(&keys[..1], &mut out[..1], &mut sched);
        let mut out2 = [None, None];
        t.get_batch_ooo(&[encode_u64(7), encode_u64(8)], &mut out2, &mut sched);
        assert_eq!(out2, [Some(7), None]);
    }

    #[test]
    fn mixed_stream_interleaves_gets_and_scans() {
        let t = build(3_000);
        let keys: Vec<[u8; 8]> = (0..200u64).map(|i| encode_u64(i * 45)).collect();
        let reqs: Vec<BatchRequest<'_>> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| {
                if i % 3 == 0 {
                    BatchRequest::Scan(k.as_ref(), i % 7)
                } else {
                    BatchRequest::Get(k.as_ref())
                }
            })
            .collect();
        let mut sched = MlpScheduler::with_depth(11);
        let mut out = vec![None; reqs.len()];
        let (mut tids, mut bounds) = (Vec::new(), Vec::new());
        t.mixed_batch_ooo(&reqs, &mut out, &mut tids, &mut bounds, &mut sched);

        let mut scan_idx = 0;
        for (i, req) in reqs.iter().enumerate() {
            match *req {
                BatchRequest::Get(k) => assert_eq!(out[i], t.get(k), "get {i}"),
                BatchRequest::Scan(k, limit) => {
                    assert_eq!(
                        &tids[bounds[scan_idx]..bounds[scan_idx + 1]],
                        t.scan(k, limit).as_slice(),
                        "scan {i}"
                    );
                    scan_idx += 1;
                }
            }
        }
        assert_eq!(bounds.len(), scan_idx + 1);
    }

    #[test]
    fn tune_depth_returns_a_sweep_candidate() {
        // Fake measurement: depth 32 "wins".
        let chosen = tune_depth(|d| std::time::Duration::from_nanos(if d == 32 { 1 } else { 100 }));
        // Either the env override or the fastest candidate.
        if std::env::var_os("HOT_MLP_DEPTH").is_none() {
            assert_eq!(chosen, 32);
        }
        assert!((1..=MAX_DEPTH).contains(&chosen));
    }

    #[test]
    #[should_panic(expected = "in-flight depth")]
    fn zero_depth_rejected() {
        MlpScheduler::with_depth(0);
    }
}
